/// \file
/// \brief CLI over obs::AnalyzeTraceFile: per-stage utilization, measured
/// overlap efficiency vs the CombineOverlap model, and the top-N longest
/// stalls of a trace captured with --trace / M3Options::trace_path.
///
/// Exit status is the CI smoke-gate contract (docs/OBSERVABILITY.md):
/// nonzero when the trace fails to parse or validate, and when any stage
/// named in --require_stages recorded zero spans — a pipeline that traced
/// no prefetch/compute/retire/evict work is a broken capture, not a quiet
/// run.

#include <cstdio>
#include <string>
#include <vector>

#include "obs/trace_analysis.h"
#include "util/flags.h"
#include "util/format.h"

namespace {

using m3::obs::StageUtilization;
using m3::obs::TraceSummary;

int Run(int argc, char** argv) {
  int64_t top = 10;
  std::string require_stages = "prefetch,compute,retire,evict";
  m3::util::FlagParser parser(
      "Summarize a pipeline trace (Chrome trace-event JSON written by "
      "--trace): stage utilization, overlap efficiency, longest stalls.");
  parser.AddInt64("top", &top, "stalls to list (longest first)");
  parser.AddString("require_stages", &require_stages,
                   "comma-separated stage names that must have >= 1 span "
                   "(empty disables the check)");
  m3::util::Status status = parser.Parse(argc, argv);
  if (parser.help_requested()) {
    return 0;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  if (parser.positional().size() != 1) {
    std::fprintf(stderr, "usage: %s [flags] TRACE.json\n%s", argv[0],
                 parser.Usage(argv[0]).c_str());
    return 1;
  }
  const std::string& path = parser.positional().front();
  auto summary = m3::obs::AnalyzeTraceFile(
      path, top > 0 ? static_cast<size_t>(top) : 0);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", summary.value().ToString().c_str());
  int missing = 0;
  for (const std::string& required :
       m3::util::StrSplit(require_stages, ',')) {
    if (required.empty()) {
      continue;
    }
    bool found = false;
    for (const StageUtilization& stage : summary.value().stages) {
      if (stage.name == required && stage.spans > 0) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "FAIL: required stage \"%s\" has no spans\n",
                   required.c_str());
      ++missing;
    }
  }
  return missing > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
