// Lint fixture: a bench binary that forgot to register --trace. The real
// bench_sparse_overlap registers the flag through bench_common.h's
// ValidateBenchFlags; this miniature omits it so the bench-trace rule has
// a seeded violation to find (never compiled, parsed only by m3_lint.py).

#include <cstdio>

int main(int argc, char** argv) {
  // flags.AddInt("rows", ...) etc. — but no trace flag and no
  // bench::TraceSession, the drift the bench-trace rule exists to catch.
  (void)argc;
  (void)argv;
  std::printf("sparse overlap bench (fixture)\n");
  return 0;
}
