// Fixture (never compiled): PipelineStats with a seeded drift field.
// `lost_chunks` is declared but serialized nowhere — m3_lint.py must
// flag it. See ../../README.md.
#ifndef FIXTURE_PIPELINE_STATS_H_
#define FIXTURE_PIPELINE_STATS_H_

#include <cstdint>
#include <string>

namespace m3::exec {

struct PipelineStats {
  uint64_t passes = 0;
  uint64_t lost_chunks = 0;  // seeded drift: in the struct, nowhere else

  PipelineStats& operator+=(const PipelineStats& rhs);
  io::ExecCounters counters() const;
  static PipelineStats FromCounters(const io::ExecCounters& counters);
  std::string ToJson() const;
};

}  // namespace m3::exec

#endif  // FIXTURE_PIPELINE_STATS_H_
