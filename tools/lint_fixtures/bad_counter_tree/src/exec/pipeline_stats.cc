// Fixture (never compiled): serialization that forgot `lost_chunks`.
#include "exec/pipeline_stats.h"

namespace m3::exec {

PipelineStats& PipelineStats::operator+=(const PipelineStats& rhs) {
  passes += rhs.passes;
  return *this;
}

io::ExecCounters PipelineStats::counters() const {
  io::ExecCounters out;
  out.passes = passes;
  return out;
}

PipelineStats PipelineStats::FromCounters(const io::ExecCounters& counters) {
  PipelineStats out;
  out.passes = counters.passes;
  return out;
}

std::string PipelineStats::ToJson() const {
  return util::StrFormat("{\"passes\": %llu}",
                         static_cast<unsigned long long>(passes));
}

}  // namespace m3::exec
