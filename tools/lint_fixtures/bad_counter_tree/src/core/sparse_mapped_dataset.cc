// Fixture: a blocking call inside a stage-callee body. The real
// CsrByteMap::AppendSpans runs inside chunk_pipeline's timed prefetch
// and compute windows; the hot-loop-blocking rule must scan this body
// even though the Stopwatch lives in another file. Never compiled.

namespace m3 {

void CsrByteMap::AppendSpans(size_t row_begin, size_t row_end,
                             std::vector<exec::ByteSpan>* out) const {
  std::lock_guard<std::mutex> guard(mu_);  // violation: blocks stage time
  out->push_back(exec::ByteSpan{row_begin, row_end - row_begin});
}

exec::ByteSpan CsrByteMap::Extent() const {
  return exec::ByteSpan{0, 0};
}

}  // namespace m3
