// Fixture (never compiled).
#include "io/io_stats.h"

namespace m3::io {

ExecCounters ExecCounters::operator-(const ExecCounters& rhs) const {
  ExecCounters out;
  out.passes = passes - rhs.passes;
  return out;
}

void AddExecCounters(const ExecCounters& delta) {
  (void)delta.passes;
}

}  // namespace m3::io
