// Fixture (never compiled): ExecCounters without the lost_chunks twin.
#ifndef FIXTURE_IO_STATS_H_
#define FIXTURE_IO_STATS_H_

#include <cstdint>

namespace m3::io {

struct ExecCounters {
  uint64_t passes = 0;

  ExecCounters operator-(const ExecCounters& rhs) const;
};

void AddExecCounters(const ExecCounters& delta);

}  // namespace m3::io

#endif  // FIXTURE_IO_STATS_H_
