// Fixture: seeded atomic-order violations. Never compiled. The path
// mirrors src/exec/chunk_pipeline.cc so HOT_PATH_FILES applies.

#include <atomic>

namespace m3::exec {

std::atomic<unsigned long> g_chunks{0};

void Tick() {
  g_chunks.fetch_add(1, std::memory_order_relaxed);  // violation: no why
}

unsigned long Snapshot() {
  return g_chunks.load();  // violation: defaulted seq_cst on a hot path
}

void TickJustified() {
  // Relaxed: monotone counter; no payload is published through it.
  g_chunks.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace m3::exec
