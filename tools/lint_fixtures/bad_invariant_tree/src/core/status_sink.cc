// Fixture: seeded unchecked-status violations. Never compiled.

namespace m3::core {

util::Status CloseLog();
util::Status FlushIndex();
util::Status SyncManifest();

void Teardown() {
  CloseLog();        // violation: bare drop of a Status return
  (void)FlushIndex();  // violation: (void) discard with no reason
  M3_IGNORE_STATUS(SyncManifest(), "fixture-good: reason recorded");
}

}  // namespace m3::core
