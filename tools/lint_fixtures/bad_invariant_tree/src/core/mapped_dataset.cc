// Fixture: seeded mmap-cast violations. Never compiled. The path
// mirrors src/core/mapped_dataset.cc so AUDITED_PATHS applies.

namespace m3::core {

double SumRows(const char* base, unsigned long rows) {
  const double* values = reinterpret_cast<const double*>(base + 64);
  double total = 0;
  for (unsigned long r = 0; r < rows; ++r) {
    total += values[r];
  }
  return total;
}

double FirstValue(const char* base) {
  return *(const double*)(base + 8);
}

const unsigned* ColIndex(const char* base) {
  // m3-aligned: fixture-good — the offset is validated at Open().
  return reinterpret_cast<const uint32_t*>(base + 32);
}

}  // namespace m3::core
