#!/usr/bin/env bash
# Checks that every relative markdown link in README.md and docs/*.md
# points at a file (or file#anchor) that exists in the repo. External
# http(s)/mailto links are skipped — CI has no business depending on the
# network. Run from anywhere; paths resolve against the repo root.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"

check_file() {
  local md="$1"
  local dir
  dir="$(dirname "$md")"
  # Pull out every (target) of a [text](target) link, tolerating several
  # links per line. Images ![alt](target) match too, which is what we want.
  # Fenced code blocks are stripped first: `[&](size_t x)` is a lambda,
  # not a link.
  awk '/^```/ { fence = !fence; next } !fence' "$md" |
  grep -oE '\]\([^)]+\)' | sed -e 's/^](//' -e 's/)$//' |
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    local path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      # Subshell from the pipe: signal via a marker file.
      touch "$root/.doc_link_failure"
    fi
  done
}

rm -f "$root/.doc_link_failure"
for md in "$root"/README.md "$root"/docs/*.md; do
  [ -e "$md" ] || continue
  check_file "$md"
done

if [ -e "$root/.doc_link_failure" ]; then
  rm -f "$root/.doc_link_failure"
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK"
