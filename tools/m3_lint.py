#!/usr/bin/env python3
"""m3_lint: project-invariant checks the C++ compiler cannot express.

The counter/trace plumbing spans four files that must stay in lockstep
(exec::PipelineStats, its serialization, io::ExecCounters, and the
pipeline's span instrumentation). Each rule below guards one invariant
that has historically drifted silently — a counter added to the struct
but not to ToJson() simply vanishes from every bench report and trace.

Rules (see docs/CORRECTNESS.md for the policy and how to extend):
  counter-twin        every uint64_t counter in exec::PipelineStats has a
                      same-named twin in io::ExecCounters, and vice versa.
  counter-serialized  every PipelineStats field is accumulated in
                      operator+=, emitted as a ToJson() key, and (counters
                      only) converted in counters()/FromCounters(); every
                      ExecCounters field is handled in operator- and
                      AddExecCounters.
  span-coverage       every ChunkPipeline stage (pass, prefetch, compute,
                      retire, evict) carries an "exec" span (ScopedSpan or
                      OBS_SPAN).
  hot-loop-blocking   no mutex/blocking call inside the *timed window*
                      (util::Stopwatch watch; ... watch.ElapsedSeconds())
                      of the prefetch/compute/retire/evict stage bodies,
                      nor in the stage-callee bodies those windows call
                      through (CsrByteMap's ChunkByteMap overrides) —
                      blocking there poisons the stage seconds the perf
                      model is fit against. The pass driver is exempt: it
                      orchestrates, so it legitimately waits.
  bench-trace         every bench/bench_*.cc registers a --trace flag and
                      drives it through bench::TraceSession.

Exit status: 0 clean; 1 violations (one "path:line: [rule] message" per
finding); 2 usage/internal error. Rules whose input files are absent are
skipped with a note — pass --strict (CI does) to turn skips into errors.
"""

import argparse
import os
import re
import sys

# Stages of exec::ChunkPipeline. "pass" is the driver: spanned, but exempt
# from hot-loop-blocking (it waits on workers by design).
PIPELINE_STAGES = ("pass", "prefetch", "compute", "retire", "evict")
HOT_STAGES = ("prefetch", "compute", "retire", "evict")

# Function bodies that run INSIDE the timed stage windows but live in
# another file: the sparse pipeline's ChunkByteMap overrides, which the
# prefetch/compute stages call per chunk. A blocking call there is
# charged to stage time exactly as if it sat in chunk_pipeline.cc, so
# the hot-loop-blocking rule scans these bodies too (a per-line scan of
# chunk_pipeline.cc alone is blind to them).
HOT_CALLEE_BODIES = {
    "src/core/sparse_mapped_dataset.cc":
        ("CsrByteMap::AppendSpans", "CsrByteMap::Extent"),
}

# Tokens that block or syscall; none may sit inside a timed stage window.
BLOCKING_TOKENS = (
    "std::mutex", "lock_guard", "unique_lock", "scoped_lock", ".lock()",
    "->lock()", "sleep_for", "sleep_until", "usleep", "std::cout",
    "std::cerr", "printf", "fprintf", "fopen", "ifstream", "ofstream",
    "->Wait()", "condition_variable",
)

FIELD_RE = re.compile(r"^\s*(uint64_t|double)\s+(\w+)\s*=")


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []
        self.skips = []

    def finding(self, rel, line, rule, message):
        self.findings.append(f"{rel}:{line}: [{rule}] {message}")

    def read(self, rel):
        path = os.path.join(self.root, rel)
        if not os.path.isfile(path):
            return None
        with open(path, encoding="utf-8") as f:
            return f.read()

    def skip(self, rule, rel):
        self.skips.append(f"note: [{rule}] skipped — {rel} not found")

    # ---- parsing helpers ------------------------------------------------

    @staticmethod
    def brace_block(text, start):
        """Return (body, end_index) for the {...} block opening at/after start."""
        open_idx = text.index("{", start)
        depth = 0
        for i in range(open_idx, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    return text[open_idx + 1:i], i
        raise ValueError("unbalanced braces")

    def struct_fields(self, text, struct_name):
        """-> {field: (type, line)} for uint64_t/double members of struct."""
        match = re.search(r"struct\s+%s\b" % struct_name, text)
        if match is None:
            return None
        body, _ = self.brace_block(text, match.end())
        base_line = text.count("\n", 0, match.start()) + 1
        fields = {}
        for offset, line in enumerate(body.splitlines()):
            m = FIELD_RE.match(line)
            if m:
                fields[m.group(2)] = (m.group(1), base_line + offset + 1)
        return fields

    def function_body(self, text, signature_re):
        match = re.search(signature_re, text)
        if match is None:
            return None
        body, _ = self.brace_block(text, match.end())
        return body

    # ---- rules ----------------------------------------------------------

    def check_counter_plumbing(self):
        stats_h = self.read("src/exec/pipeline_stats.h")
        stats_cc = self.read("src/exec/pipeline_stats.cc")
        io_h = self.read("src/io/io_stats.h")
        io_cc = self.read("src/io/io_stats.cc")
        if stats_h is None or io_h is None:
            self.skip("counter-twin", "src/exec/pipeline_stats.h or "
                      "src/io/io_stats.h")
            return
        pipeline = self.struct_fields(stats_h, "PipelineStats")
        execc = self.struct_fields(io_h, "ExecCounters")
        if pipeline is None or execc is None:
            self.skip("counter-twin", "struct PipelineStats / ExecCounters")
            return
        counters = {f: loc for f, (ty, loc) in pipeline.items()
                    if ty == "uint64_t"}
        seconds = {f: loc for f, (ty, loc) in pipeline.items()
                   if ty == "double"}

        # Rule: counter-twin — the two counter sets must be identical.
        for field, line in sorted(counters.items()):
            if field not in execc:
                self.finding(
                    "src/exec/pipeline_stats.h", line, "counter-twin",
                    f"PipelineStats counter '{field}' has no io::ExecCounters "
                    "twin — add the field to src/io/io_stats.h and plumb it "
                    "through operator-, AddExecCounters, and "
                    "PipelineStats::counters()/FromCounters()")
        for field, (ty, line) in sorted(execc.items()):
            if ty == "uint64_t" and field not in counters:
                self.finding(
                    "src/io/io_stats.h", line, "counter-twin",
                    f"io::ExecCounters field '{field}' has no PipelineStats "
                    "twin — add it to src/exec/pipeline_stats.h")

        # Rule: counter-serialized — every field lands in every sink.
        if stats_cc is not None:
            sinks = {
                "operator+=": self.function_body(
                    stats_cc, r"PipelineStats&\s*PipelineStats::operator\+="),
                "counters()": self.function_body(
                    stats_cc, r"ExecCounters\s+PipelineStats::counters"),
                "FromCounters()": self.function_body(
                    stats_cc, r"PipelineStats\s+PipelineStats::FromCounters"),
                "ToJson()": self.function_body(
                    stats_cc, r"std::string\s+PipelineStats::ToJson"),
            }
            for field, line in sorted(counters.items()):
                for sink in ("operator+=", "counters()", "FromCounters()"):
                    body = sinks[sink]
                    if body is not None and \
                            re.search(r"\b%s\b" % field, body) is None:
                        self.finding(
                            "src/exec/pipeline_stats.cc", 1,
                            "counter-serialized",
                            f"counter '{field}' missing from "
                            f"PipelineStats::{sink} — it will silently "
                            "read as zero downstream")
            for field, line in sorted({**counters, **seconds}.items()):
                body = sinks["ToJson()"]
                if body is not None and f'\\"{field}\\"' not in body:
                    self.finding(
                        "src/exec/pipeline_stats.cc", 1, "counter-serialized",
                        f"field '{field}' has no \"{field}\" key in "
                        "PipelineStats::ToJson() — bench JSON and trace "
                        "metadata will omit it")
        else:
            self.skip("counter-serialized", "src/exec/pipeline_stats.cc")

        if io_cc is not None:
            for fn, sig in (("operator-",
                             r"ExecCounters\s+ExecCounters::operator-"),
                            ("AddExecCounters",
                             r"void\s+AddExecCounters")):
                body = self.function_body(io_cc, sig)
                if body is None:
                    continue
                for field, (ty, line) in sorted(execc.items()):
                    if ty == "uint64_t" and \
                            re.search(r"\b%s\b" % field, body) is None:
                        self.finding(
                            "src/io/io_stats.cc", 1, "counter-serialized",
                            f"ExecCounters field '{field}' missing from "
                            f"{fn} — deltas/accumulation will drop it")
        else:
            self.skip("counter-serialized", "src/io/io_stats.cc")

    def check_span_coverage(self):
        rel = "src/exec/chunk_pipeline.cc"
        text = self.read(rel)
        if text is None:
            self.skip("span-coverage", rel)
            return
        for stage in PIPELINE_STAGES:
            pattern = (r'(ScopedSpan\s+\w+|OBS_SPAN)\s*\(\s*"exec"\s*,\s*"'
                       + re.escape(stage) + r'"')
            if re.search(pattern, text) is None:
                self.finding(
                    rel, 1, "span-coverage",
                    f"pipeline stage '{stage}' has no "
                    f'obs span ("exec", "{stage}") — traces will show a '
                    "hole where this stage ran")

    def check_hot_loop_blocking(self):
        rel = "src/exec/chunk_pipeline.cc"
        text = self.read(rel)
        if text is None:
            self.skip("hot-loop-blocking", rel)
            return
        lines = text.splitlines()
        for stage in HOT_STAGES:
            span_re = re.compile(
                r'(ScopedSpan\s+\w+|OBS_SPAN)\s*\(\s*"exec"\s*,\s*"'
                + re.escape(stage) + r'"')
            for i, line in enumerate(lines):
                if span_re.search(line) is None:
                    continue
                # Timed window: the Stopwatch after the span to its first
                # ElapsedSeconds() read.
                start = end = None
                for j in range(i + 1, min(i + 40, len(lines))):
                    if start is None and "util::Stopwatch" in lines[j]:
                        start = j
                    elif start is not None and "ElapsedSeconds()" in lines[j]:
                        end = j
                        break
                if start is None or end is None:
                    continue  # untimed span sites are fine
                for j in range(start + 1, end):
                    for token in BLOCKING_TOKENS:
                        if token in lines[j]:
                            self.finding(
                                rel, j + 1, "hot-loop-blocking",
                                f"'{token}' inside the timed window of the "
                                f"'{stage}' stage — blocking here is "
                                "counted as stage time and skews the "
                                "fitted perf model; move it past "
                                "ElapsedSeconds()")

    def check_hot_callee_bodies(self):
        for rel, callees in HOT_CALLEE_BODIES.items():
            text = self.read(rel)
            if text is None:
                self.skip("hot-loop-blocking", rel)
                continue
            for callee in callees:
                match = re.search(re.escape(callee) + r"\s*\(", text)
                if match is None:
                    self.skip("hot-loop-blocking", f"{rel} {callee}")
                    continue
                try:
                    body, _ = self.brace_block(text, match.end())
                except ValueError:
                    continue
                base_line = text.count(
                    "\n", 0, text.index("{", match.end())) + 1
                for offset, line in enumerate(body.splitlines()):
                    for token in BLOCKING_TOKENS:
                        if token in line:
                            self.finding(
                                rel, base_line + offset,
                                "hot-loop-blocking",
                                f"'{token}' in {callee}, which runs "
                                "inside the timed prefetch/compute "
                                "windows — blocking here is counted as "
                                "stage time and skews the fitted perf "
                                "model")

    def check_bench_trace(self):
        bench_dir = os.path.join(self.root, "bench")
        if not os.path.isdir(bench_dir):
            self.skip("bench-trace", "bench/")
            return
        for name in sorted(os.listdir(bench_dir)):
            if not (name.startswith("bench_") and name.endswith(".cc")):
                continue
            rel = f"bench/{name}"
            text = self.read(rel)
            # Two accepted registration idioms: the flags helper, or a
            # hand-parsed "--trace" (bench_kernels: google-benchmark owns
            # argv and rejects flags it does not recognize).
            if 'AddString("trace"' not in text and '"--trace"' not in text:
                self.finding(
                    rel, 1, "bench-trace",
                    'bench binary does not register a --trace flag '
                    '(flags.AddString("trace", ...)) — every bench must be '
                    "traceable (see bench/bench_common.h)")
            elif "TraceSession" not in text:
                self.finding(
                    rel, 1, "bench-trace",
                    "--trace flag registered but never handed to "
                    "bench::TraceSession — the flag is dead")

    # ---- driver ---------------------------------------------------------

    def run(self):
        self.check_counter_plumbing()
        self.check_span_coverage()
        self.check_hot_loop_blocking()
        self.check_hot_callee_bodies()
        self.check_bench_trace()
        return self.findings, self.skips


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (or fixture tree) to lint")
    parser.add_argument("--strict", action="store_true",
                        help="treat skipped rules (missing files) as errors")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args()
    if args.list_rules:
        print("counter-twin counter-serialized span-coverage "
              "hot-loop-blocking bench-trace")
        return 0
    if not os.path.isdir(args.root):
        print(f"m3_lint: no such directory: {args.root}", file=sys.stderr)
        return 2
    findings, skips = Linter(args.root).run()
    for note in skips:
        print(note, file=sys.stderr)
    for finding in findings:
        print(finding)
    if findings:
        print(f"m3_lint: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    if args.strict and skips:
        print("m3_lint: --strict and rules were skipped", file=sys.stderr)
        return 1
    print("m3_lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
