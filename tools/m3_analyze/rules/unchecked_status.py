"""unchecked-status: every Status/Result-returning call is consumed.

A silently dropped `util::Status` is how an error path dies: the close /
unmap / publish failed, nobody looked, and the job reports success. The
compiler-level twin is `[[nodiscard]]` on Status/Result (util/status.h)
with -Werror=unused-result; this rule closes the gaps the attribute
cannot see — `(void)` casts that silence the warning without a recorded
reason, and pre-compile review of fixture trees.

A call is CONSUMED when its value is returned, assigned, tested, passed
as an argument, chained into (`.IgnoreError()`, `.ok()`), or wrapped in
M3_IGNORE_STATUS(expr, "why") / M3_RETURN_IF_ERROR / M3_ASSIGN_OR_RETURN.
Findings:
  * a bare call statement `Foo(...);` whose callee returns Status/Result;
  * a `(void)Foo(...);` cast — it defeats [[nodiscard]] while recording
    no reason; M3_IGNORE_STATUS exists precisely for that.

AST frontend: walks CALL_EXPRs whose spelled result type names
util::Status / util::Result and whose parent is a compound statement.
Tokenizer fallback: builds a declaration registry — every function /
method name declared with a Status/Result return type anywhere in the
analyzed tree — then flags statement-level calls to registered names.
Names that are ALSO declared with a non-Status return type somewhere are
ambiguous and skipped (reported under --verbose), trading recall for a
zero-false-positive default; the [[nodiscard]] twin still catches those
at compile time.
"""

import re

from .. import engine, lexer

# Return-type spellings accepted by both frontends.
_STATUS_TYPE_RE = re.compile(
    r"\b(?:m3::)?(?:util::)?(?:Status|Result<.*>)\s*&?$")

# Declaration scan: `[qualifiers] util::Status Name(` / `Result<T> Name(`.
_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*"
    r"(?:m3::)?(?:util::)?(?P<type>Status|Result<[^;={]*>)\s+"
    r"(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*\(")

# Same shape with a non-Status head type: used to mark names ambiguous.
_OTHER_DECL_RE = re.compile(
    r"^\s*(?:\[\[nodiscard\]\]\s*)?"
    r"(?:virtual\s+|static\s+|inline\s+|constexpr\s+|friend\s+|explicit\s+)*"
    r"(?P<type>void|bool|int|unsigned|long|float|double|auto|size_t|ssize_t|"
    r"u?int(?:8|16|32|64)_t|std::\w+(?:<[^;={]*>)?|[A-Z]\w*(?:<[^;={]*>)?)"
    r"\s*[*&]?\s+"
    r"(?:[A-Za-z_]\w*::)*(?P<name>[A-Za-z_]\w*)\s*\(")

# Tokens that legitimately begin a statement right before a bare call.
_STMT_BOUNDARY = {";", "{", "}", "else", "do"}

# Chain tokens: a statement made only of these up to the callee is a bare
# `a.b->c::Fn(...)` access chain (no consumption).
_CHAIN_TOKENS = {".", "->", "::"}

# Keywords that consume the value when they lead the statement; their
# presence makes the prefix not a bare access chain.
_CONSUMING_KEYWORDS = {"return", "co_return", "co_await", "co_yield",
                       "throw", "new", "delete", "case", "goto"}

# Qualifiers naming namespaces outside the analyzed tree: a registered
# name called as `benchmark::Shutdown()` is a different function whose
# declaration the registry never saw (system headers are not analyzed).
_EXTERNAL_NAMESPACES = {"std", "benchmark", "testing", "absl", "gtest"}


def build_registry(ctx):
    """-> (status_names, ambiguous_names) from declarations tree-wide."""
    status_names = set()
    other_names = set()
    for f in ctx.files:
        for raw in f.lines:
            m = _DECL_RE.match(raw)
            if m:
                status_names.add(m.group("name"))
                continue
            m = _OTHER_DECL_RE.match(raw)
            if m and m.group("type") not in ("Status",) and \
                    not m.group("type").startswith("Result<"):
                other_names.add(m.group("name"))
    return status_names, status_names & other_names


def _statement_start(code, callee_index):
    """Index of the first token of the statement containing the callee."""
    depth = 0
    i = callee_index - 1
    while i >= 0:
        text = code[i].text
        if text in (")", "]"):
            depth += 1
        elif text in ("(", "["):
            if depth == 0:
                return i + 1  # inside an argument list / condition
            depth -= 1
        elif depth == 0 and text in _STMT_BOUNDARY:
            return i + 1
        i -= 1
    return 0


def _is_pure_chain(code, start, callee_index):
    """True if tokens[start:callee_index] are only `obj . -> ::` chains
    (including calls inside the chain, e.g. `file().Close`)."""
    i = start
    depth = 0
    while i < callee_index:
        text = code[i].text
        if text in ("(", "["):
            depth += 1
        elif text in (")", "]"):
            depth -= 1
        elif depth == 0:
            if code[i].kind == lexer.IDENT:
                if text in _CONSUMING_KEYWORDS:
                    return False
            elif text in _CHAIN_TOKENS:
                pass
            else:
                return False
        i += 1
    return depth == 0


def _is_void_cast(code, start, callee_index):
    """True for `(void) chain Fn(...)`."""
    if callee_index - start < 3:
        return False
    if (code[start].text, code[start + 1].text, code[start + 2].text) != \
            ("(", "void", ")"):
        return False
    return _is_pure_chain(code, start + 3, callee_index)


def token_findings(source, status_names, ambiguous, skipped_ambiguous):
    """Tokenizer frontend for one file."""
    findings = []
    code = source.code
    for i, tok in enumerate(code):
        if tok.kind != lexer.IDENT or tok.text not in status_names:
            continue
        if i + 1 >= len(code) or code[i + 1].text != "(":
            continue
        # Declarations/definitions: the registry regex already matched
        # this line; a following `{`, `;` after the param list with a
        # leading return type is not a call. Distinguish calls by the
        # token before the name chain: a type name directly before the
        # identifier (IDENT IDENT `(`) is a declaration.
        if i > 0 and code[i - 1].kind == lexer.IDENT and \
                code[i - 1].text not in ("return",):
            continue  # `Status Close(` declaration or `auto x Foo(` junk
        if i >= 2 and code[i - 1].text == "::" and \
                code[i - 2].kind == lexer.IDENT and \
                code[i - 2].text in _EXTERNAL_NAMESPACES:
            continue  # same name, external namespace (e.g. benchmark::)
        close = lexer.match_forward(code, i + 1)
        if close is None:
            continue
        after = code[close + 1] if close + 1 < len(code) else None
        if after is None or after.text != ";":
            continue  # chained / nested / condition: consumed
        start = _statement_start(code, i)
        if tok.text in ambiguous:
            if _is_pure_chain(code, start, i) or \
                    _is_void_cast(code, start, i):
                skipped_ambiguous.add(tok.text)
            continue
        if _is_void_cast(code, start, i):
            findings.append(engine.Finding(
                source.rel, tok.line, "unchecked-status",
                f"'(void){tok.text}(...)' discards a util::Status with no "
                "recorded reason — use M3_IGNORE_STATUS(expr, \"why\") "
                "(util/status.h) so the discard carries its justification"))
        elif _is_pure_chain(code, start, i):
            findings.append(engine.Finding(
                source.rel, tok.line, "unchecked-status",
                f"result of '{tok.text}(...)' (returns util::Status/"
                "Result) is silently dropped — return it, test .ok(), or "
                "discard explicitly via M3_IGNORE_STATUS(expr, \"why\")"))
    return findings


# ---------------------------------------------------------------------------
# libclang frontend
# ---------------------------------------------------------------------------

def ast_findings(ctx, source):
    """AST frontend for one TU. Returns None when the TU cannot be parsed
    (caller falls back to tokens for that file)."""
    from clang import cindex  # import guarded by caller

    args = [a for a in ctx.args_by_file.get(source.path, [])[1:]
            if a != source.path and not a.startswith(("-o", "-c"))]
    try:
        tu = ctx.clang_index.parse(source.path, args=args)
    except Exception:
        return None
    if any(d.severity >= cindex.Diagnostic.Fatal for d in tu.diagnostics):
        return None
    findings = []

    def is_status_call(node):
        if node.kind != cindex.CursorKind.CALL_EXPR:
            return False
        return bool(_STATUS_TYPE_RE.search(node.type.spelling))

    def line_text(loc):
        if 1 <= loc.line <= len(source.lines):
            return source.lines[loc.line - 1]
        return ""

    def visit(node):
        if node.kind == cindex.CursorKind.COMPOUND_STMT:
            for child in node.get_children():
                stmt = child
                void_cast = False
                if stmt.kind == cindex.CursorKind.CSTYLE_CAST_EXPR and \
                        stmt.type.spelling == "void":
                    inner = list(stmt.get_children())
                    if inner:
                        stmt = inner[-1]
                        void_cast = True
                if is_status_call(stmt):
                    text = line_text(stmt.location)
                    if "M3_IGNORE_STATUS" in text or \
                            "IgnoreError" in text:
                        continue
                    what = stmt.spelling or "call"
                    if void_cast:
                        findings.append(engine.Finding(
                            source.rel, stmt.location.line,
                            "unchecked-status",
                            f"'(void){what}(...)' discards a util::Status "
                            "with no recorded reason — use "
                            "M3_IGNORE_STATUS(expr, \"why\")"))
                    else:
                        findings.append(engine.Finding(
                            source.rel, stmt.location.line,
                            "unchecked-status",
                            f"result of '{what}(...)' (returns "
                            f"{stmt.type.spelling}) is silently dropped — "
                            "return it, test .ok(), or discard via "
                            "M3_IGNORE_STATUS(expr, \"why\")"))
        for child in node.get_children():
            if child.location.file is not None and \
                    child.location.file.name == source.path:
                visit(child)
            elif node.kind == cindex.CursorKind.TRANSLATION_UNIT:
                continue

    visit(tu.cursor)
    return findings


@engine.rule(
    "unchecked-status",
    "every util::Status / util::Result<T> returning call must be consumed")
class UncheckedStatusRule:
    def run(self, ctx):
        findings = []
        skipped_ambiguous = set()
        status_names, ambiguous = build_registry(ctx)
        if not status_names:
            ctx.notes.append(
                "note: [unchecked-status] no Status/Result declarations "
                "found — rule had nothing to check")
            return findings
        for source in ctx.files:
            per_file = None
            if ctx.clang_index is not None and \
                    source.path in ctx.args_by_file:
                per_file = ast_findings(ctx, source)
            if per_file is None:
                per_file = token_findings(
                    source, status_names, ambiguous, skipped_ambiguous)
            findings.extend(per_file)
        if skipped_ambiguous:
            ctx.notes.append(
                "note: [unchecked-status] skipped ambiguously-declared "
                "names (also declared with non-Status returns): "
                + ", ".join(sorted(skipped_ambiguous))
                + " — the [[nodiscard]] compile twin still covers them")
        return findings
