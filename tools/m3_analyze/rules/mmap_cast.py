"""mmap-cast: typed-pointer casts out of mapped byte regions need guards.

The M3 data plane is mmap'd bytes reinterpreted as typed arrays; a cast
whose offset is not provably aligned is undefined behavior that only
detonates on hosts/UBSan runs where the layout shifts (PR 7 fixed two of
these by hand in idx_format and edge_list — this rule closes the
recurrence hole). Inside the audited modules (the ones that reinterpret
mmap'd or shm bytes) every `reinterpret_cast<T*>` — and C-style pointer
cast `(T*)` — from a byte pointer must be DOMINATED by one of:

  * a `% alignof(T)` runtime check or `static_assert` on alignof in the
    same function body (edge_list.cc's payload check is the exemplar);
  * file-level `static_assert(... alignof(T) ...)`;
  * a `// m3-aligned: <why>` comment on the cast line or up to 3 lines
    above, citing the invariant that makes the offset aligned (e.g. the
    ReadDatasetMeta/ReadSparseDatasetMeta section-offset validation, or
    page-aligned shm slot bases plus 8-byte-multiple layout offsets).

Byte-pointer targets (char / uint8_t / std::byte / void) and integral
targets (uintptr_t — itself the alignment-check idiom) are exempt.
Token-level by design: the justification convention lives in comments,
which an AST does not carry.
"""

import re

from .. import engine, lexer

# Modules whose casts reinterpret mapped/shm regions. Matched as a
# substring of the root-relative path, so fixture trees mirroring the
# layout are audited identically.
AUDITED_PATHS = (
    "src/io/mmap_file",
    "src/io/shm_channel",
    "src/data/",
    "src/graph/edge_list",
    "src/core/mapped_dataset",
    "src/core/sparse_mapped_dataset",
    "src/cluster/process_fleet",
)

# Pointee base types that are themselves byte pointers: always aligned.
_BYTE_TYPES = {"char", "uint8_t", "int8_t", "byte", "void", "uchar"}

_SUPPRESS_MARK = "m3-aligned:"
_SUPPRESS_LOOKBACK = 3

# C-style pointer cast `(const T* )expr` — only flagged for this closed
# set of reinterpretation-prone scalar types, to keep the token-level
# pattern from matching parenthesized multiplications.
_C_CAST_TYPES = {"double", "float", "uint16_t", "uint32_t", "uint64_t",
                 "int16_t", "int32_t", "int64_t", "size_t"}


def _parse_cast_target(code, lt_index):
    """-> (base_type, is_pointer) for the `<...>` at lt_index."""
    gt = lexer.match_forward(code, lt_index)
    if gt is None:
        return None, False
    inner = code[lt_index + 1:gt]
    names = [t.text for t in inner
             if t.kind == lexer.IDENT and t.text not in
             ("const", "volatile", "struct", "std")]
    stars = any(t.text == "*" for t in inner)
    base = names[-1] if names else None
    return base, stars


def _function_guard(source, cast_index, base):
    """alignof(<base>) appearing in the enclosing function body."""
    code = source.code
    span = lexer.enclosing_function_body(code, cast_index)
    if span is None:
        return False
    lo, hi = span
    for i in range(lo, hi):
        if code[i].kind == lexer.IDENT and code[i].text == "alignof":
            # alignof(base) or alignof(decltype(...)): accept any alignof
            # naming the base type inside its parens.
            close = lexer.match_forward(code, i + 1) \
                if i + 1 < hi and code[i + 1].text == "(" else None
            if close is None:
                continue
            inside = {t.text for t in code[i + 1:close]}
            if base in inside or "decltype" in inside:
                return True
    return False


def _file_static_assert_guard(source, base):
    pattern = re.compile(
        r"static_assert\s*\([^;]*alignof\s*\(\s*(?:const\s+)?"
        + re.escape(base) + r"\b")
    return pattern.search(source.text) is not None


def _comment_guard(source, line):
    return source.comment_near(line, _SUPPRESS_LOOKBACK, _SUPPRESS_MARK)


def _check_cast(source, findings, cast_index, base, line, spelled):
    if base is None or base in _BYTE_TYPES:
        return
    if _comment_guard(source, line):
        return
    if _function_guard(source, cast_index, base):
        return
    if _file_static_assert_guard(source, base):
        return
    findings.append(engine.Finding(
        source.rel, line, "mmap-cast",
        f"{spelled} to '{base}*' in a mapped-region module with no "
        f"dominating alignment guard — add a `% alignof({base})` check "
        f"or static_assert in this function, or justify with "
        f"`// {_SUPPRESS_MARK} <invariant that aligns this offset>`"))


@engine.rule(
    "mmap-cast",
    "casts from mapped byte regions to typed pointers carry an "
    "alignment guard or justification")
class MmapCastRule:
    def run(self, ctx):
        findings = []
        for source in ctx.files:
            if not any(p in source.rel for p in AUDITED_PATHS):
                continue
            code = source.code
            for i, tok in enumerate(code):
                if tok.kind != lexer.IDENT:
                    continue
                if tok.text == "reinterpret_cast":
                    if i + 1 >= len(code) or code[i + 1].text != "<":
                        continue
                    base, is_ptr = _parse_cast_target(code, i + 1)
                    if not is_ptr:
                        continue  # integral target: uintptr_t idiom
                    _check_cast(source, findings, i, base, tok.line,
                                "reinterpret_cast")
                elif tok.text in _C_CAST_TYPES and i >= 1 and i + 1 < \
                        len(code):
                    # `( [const] T * ... ) expr` with expr an identifier
                    # or parenthesized expression.
                    j = i - 1
                    if code[j].text == "const":
                        j -= 1
                    if code[j].text != "(":
                        continue
                    k = i + 1
                    stars = 0
                    while k < len(code) and code[k].text == "*":
                        stars += 1
                        k += 1
                    if stars == 0 or k >= len(code) or \
                            code[k].text != ")":
                        continue
                    if k + 1 >= len(code) or not (
                            code[k + 1].kind == lexer.IDENT
                            or code[k + 1].text == "("):
                        continue
                    if code[k + 1].kind == lexer.IDENT and \
                            code[k + 1].text in ("const", "constexpr"):
                        continue  # parameter list, not a cast
                    _check_cast(source, findings, i, tok.text, tok.line,
                                "C-style cast")
        return findings
