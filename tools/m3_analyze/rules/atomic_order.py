"""atomic-order: relaxed needs a why; hot paths never default seq_cst.

Two sub-checks, one rule family (both emitted under [atomic-order]):

relaxed-needs-why — every `std::memory_order_relaxed` use carries the
why-relaxed comment convention established in PR 7 (io_stats.cc's
"Intentionally relaxed: ..." block is the exemplar): a comment
containing the word "relaxed" on the same line or within 12 lines
above. Relaxed is correct exactly when no other memory is published
through the atomic — a claim that must be written down where the next
editor will see it, because nothing else stops them from hanging data
off a flag whose ordering silently forgoes visibility.

hot-path-seq-cst — inside the hot-path files (HOT_PATH_FILES below:
the pipeline stage driver, the shm fleet channel, the trace recorder)
every atomic member op (.load/.store/.exchange/.fetch_*/
.compare_exchange_*) must spell its memory_order argument. A defaulted
op is seq_cst: correct, but silently so — on the files where a fence
per chunk/event is measurable, ordering choices must be explicit and
reviewable. (Token-level limitation, documented: `++`/`--`/`+=` on
atomics also default to seq_cst but are type-invisible without an AST;
the hot-path files use named ops exclusively, which this rule ratchets.)
"""

from .. import engine, lexer

# Root-relative substrings of the files where defaulted seq_cst is
# flagged. Fixture trees mirroring the layout are audited identically.
HOT_PATH_FILES = (
    "src/exec/chunk_pipeline.cc",
    "src/io/shm_channel.cc",
    "src/obs/trace_recorder.cc",
)

_RELAXED_LOOKBACK = 12

# Named atomic member ops with a memory_order parameter. `.wait()` is
# deliberately absent: std::future/condition_variable spell it too, and
# a type-blind token match would misfire on the pipeline's futures.
_ATOMIC_OPS = {
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong",
}


@engine.rule(
    "atomic-order",
    "memory_order_relaxed carries a why-relaxed comment; hot-path "
    "atomics spell their ordering")
class AtomicOrderRule:
    def run(self, ctx):
        findings = []
        for source in ctx.files:
            self._check_relaxed_comments(source, findings)
            if any(p in source.rel for p in HOT_PATH_FILES):
                self._check_hot_path_orders(source, findings)
        return findings

    @staticmethod
    def _check_relaxed_comments(source, findings):
        seen_lines = set()
        for tok in source.code:
            if tok.kind != lexer.IDENT or \
                    tok.text != "memory_order_relaxed":
                continue
            if tok.line in seen_lines:
                continue  # one finding per line (store+load pairs)
            seen_lines.add(tok.line)
            if source.comment_near(tok.line, _RELAXED_LOOKBACK, "relaxed"):
                continue
            findings.append(engine.Finding(
                source.rel, tok.line, "atomic-order",
                "memory_order_relaxed without a why-relaxed comment — "
                "state (within 12 lines above) why no other memory is "
                "published through this atomic, or strengthen the "
                "ordering (docs/CORRECTNESS.md, 'why-relaxed')"))

    @staticmethod
    def _check_hot_path_orders(source, findings):
        code = source.code
        for i, tok in enumerate(code):
            if tok.kind != lexer.IDENT or tok.text not in _ATOMIC_OPS:
                continue
            if i == 0 or code[i - 1].text not in (".", "->"):
                continue  # free function or declaration, not a member op
            if i + 1 >= len(code) or code[i + 1].text != "(":
                continue
            close = lexer.match_forward(code, i + 1)
            if close is None:
                continue
            args = code[i + 2:close]
            if any(t.kind == lexer.IDENT
                   and t.text.startswith("memory_order") for t in args):
                continue
            # `.load()` on non-atomics does not exist in the hot-path
            # files by construction; the member-op name set above is the
            # audited vocabulary there.
            findings.append(engine.Finding(
                source.rel, tok.line, "atomic-order",
                f"'.{tok.text}(...)' in a hot-path file defaults to "
                "seq_cst — spell the memory_order argument (and the "
                "reasoning, if weaker than seq_cst) so ordering choices "
                "stay explicit on the per-chunk/per-event path"))
