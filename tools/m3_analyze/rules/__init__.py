"""Rule modules. Importing this package registers every rule (the
@engine.rule decorator appends to engine.RULES); declaration order here
is the report order, so keep it stable."""

from . import unchecked_status  # noqa: F401
from . import mmap_cast  # noqa: F401
from . import atomic_order  # noqa: F401
