"""A small C++ lexer: just enough structure for invariant rules.

This is NOT a parser. It produces a flat token stream with line numbers,
keeps comments (the suppression conventions live in them), collapses
string/char literals to single tokens (so braces and casts inside
literals can never confuse a rule), and records preprocessor lines as
one token each. Rules pattern-match over `Token` sequences; helper
functions below provide balanced-delimiter matching and an
enclosing-function-body heuristic.
"""

from dataclasses import dataclass

# Token kinds.
IDENT = "ident"
NUMBER = "number"
STRING = "string"
CHAR = "char"
PUNCT = "punct"
COMMENT = "comment"
PP = "pp"  # one token per preprocessor line (continuations folded)

# Longest-match punctuators the rules care about; everything else falls
# back to single characters.
_PUNCTUATORS = (
    "->*", "<<=", ">>=", "...", "::", "->", "++", "--", "<<", ">>", "<=",
    ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=",
)


@dataclass
class Token:
    kind: str
    text: str
    line: int  # 1-based

    def __repr__(self):  # compact in test failure output
        return f"{self.kind}:{self.text!r}@{self.line}"


class LexError(Exception):
    pass


def lex(text):
    """Tokenizes C++ source. Returns a list of Token (comments included)."""
    tokens = []
    i = 0
    line = 1
    n = len(text)
    at_line_start = True  # only whitespace seen since the last newline
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        start_line = line
        # Preprocessor directive: swallow the logical line (with \-
        # continuations) as one token. Only at line start, so `a # b`
        # inside macros does not trigger.
        if c == "#" and at_line_start:
            j = i
            while j < n:
                if text[j] == "\n":
                    if j > i and text[j - 1] == "\\":
                        line += 1
                        j += 1
                        continue
                    break
                j += 1
            tokens.append(Token(PP, text[i:j], start_line))
            i = j
            continue
        at_line_start = False
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            tokens.append(Token(COMMENT, text[i:j], start_line))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                raise LexError(f"line {line}: unterminated block comment")
            body = text[i:j + 2]
            tokens.append(Token(COMMENT, body, start_line))
            line += body.count("\n")
            i = j + 2
            continue
        # Raw string literal R"delim( ... )delim".
        if c == "R" and text[i:i + 2] == 'R"':
            close = text.find("(", i + 2)
            if close < 0 or close - (i + 2) > 16:
                raise LexError(f"line {line}: malformed raw string")
            delim = text[i + 2:close]
            end_marker = ")" + delim + '"'
            j = text.find(end_marker, close + 1)
            if j < 0:
                raise LexError(f"line {line}: unterminated raw string")
            body = text[i:j + len(end_marker)]
            tokens.append(Token(STRING, body, start_line))
            line += body.count("\n")
            i = j + len(end_marker)
            continue
        if c == '"' or c == "'":
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == c:
                    break
                if text[j] == "\n":
                    raise LexError(f"line {line}: unterminated literal")
                j += 1
            if j >= n:
                raise LexError(f"line {line}: unterminated literal")
            kind = STRING if c == '"' else CHAR
            tokens.append(Token(kind, text[i:j + 1], start_line))
            i = j + 1
            continue
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token(IDENT, text[i:j], start_line))
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-" and text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token(NUMBER, text[i:j], start_line))
            i = j
            continue
        for punct in _PUNCTUATORS:
            if text.startswith(punct, i):
                tokens.append(Token(PUNCT, punct, start_line))
                i += len(punct)
                break
        else:
            tokens.append(Token(PUNCT, c, start_line))
            i += 1
    return tokens


def code_tokens(tokens):
    """Tokens with comments and preprocessor lines stripped."""
    return [t for t in tokens if t.kind not in (COMMENT, PP)]


def comment_lines(tokens):
    """-> {line_number: comment_text} covering every line a comment spans."""
    out = {}
    for tok in tokens:
        if tok.kind != COMMENT:
            continue
        for offset, part in enumerate(tok.text.splitlines()):
            key = tok.line + offset
            out[key] = out.get(key, "") + " " + part
    return out


def match_forward(tokens, open_index):
    """Index of the token closing the delimiter at open_index, or None.

    tokens[open_index] must be one of ( [ { < . For < the match gives up
    (returns None) on tokens that cannot occur in a template argument
    list, so `a < b` comparisons are not chased across the file.
    """
    pairs = {"(": ")", "[": "]", "{": "}", "<": ">"}
    opener = tokens[open_index].text
    closer = pairs[opener]
    template = opener == "<"
    depth = 0
    for i in range(open_index, len(tokens)):
        text = tokens[i].text
        if text == opener:
            depth += 1
        elif text == closer:
            depth -= 1
            if depth == 0:
                return i
        elif template and text in (";", "{", "}", "&&", "||"):
            return None
    return None


def enclosing_function_body(tokens, index):
    """-> (open_brace_index, close_brace_index) of the innermost brace
    block containing tokens[index] whose opener looks like a function
    (or lambda) body, else None.

    Heuristic: a `{` is a function body if the significant token before
    it is `)`, or a `)`-terminated group followed by const / noexcept /
    override / final / a trailing-return `-> Type`. Class, struct,
    namespace and enum braces fail the test, so guard searches do not
    leak across siblings.
    """
    # Stack of open-brace indices containing `index`.
    stack = []
    containing = []
    for i, tok in enumerate(tokens):
        if i > index and not stack:
            break
        if tok.text == "{":
            stack.append(i)
        elif tok.text == "}" and stack:
            open_i = stack.pop()
            if open_i <= index <= i:
                containing.append((open_i, i))
    for open_i, close_i in containing:  # innermost first
        j = open_i - 1
        # Skip function-suffix keywords between ')' and '{'.
        while j >= 0 and tokens[j].kind == IDENT and tokens[j].text in (
                "const", "noexcept", "override", "final", "mutable", "try"):
            j -= 1
        if j >= 0 and tokens[j].text == ")":
            return (open_i, close_i)
        # Trailing return type: `) -> Foo<Bar> {`.
        k = j
        while k >= 0 and tokens[k].text not in (")", ";", "{", "}"):
            k -= 1
        if k >= 0 and tokens[k].text == ")" and k + 1 <= j and \
                tokens[k + 1].text == "->":
            return (open_i, close_i)
    return None
