"""Unit tests for tools/m3_analyze: lexer, rule logic, suppressions, CLI.

Run directly (`python3 tools/m3_analyze/test_m3_analyze.py`) or via the
ctest entry `tools_m3_analyze_unittest`. The fixture-teeth canaries in
CMakeLists.txt cover the end-to-end tree; these tests pin the parsing
and suppression edge cases that the canaries' regexes cannot see.
"""

import contextlib
import io
import os
import sys
import tempfile
import unittest

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from m3_analyze import compdb, engine, lexer
    from m3_analyze.__main__ import main as cli_main
    from m3_analyze.engine import AnalyzerContext, SourceFile
    from m3_analyze.rules import atomic_order, mmap_cast, unchecked_status
else:
    from . import compdb, engine, lexer
    from .__main__ import main as cli_main
    from .engine import AnalyzerContext, SourceFile
    from .rules import atomic_order, mmap_cast, unchecked_status

_TOOLS_DIR = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_REPO_ROOT = os.path.dirname(_TOOLS_DIR)
_FIXTURE = os.path.join(_TOOLS_DIR, "lint_fixtures", "bad_invariant_tree")


class TempTree:
    """Context manager materializing {rel_path: text} as a source tree."""

    def __init__(self, files):
        self.files = files

    def __enter__(self):
        self.dir = tempfile.TemporaryDirectory(prefix="m3_analyze_test_")
        root = self.dir.name
        sources = []
        for rel, text in sorted(self.files.items()):
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            sources.append(SourceFile(root, path))
        return AnalyzerContext(root=root, files=sources)

    def __exit__(self, *exc):
        self.dir.cleanup()


def run_rule(rule_cls, files):
    with TempTree(files) as ctx:
        return [f.render() for f in rule_cls().run(ctx)], ctx.notes


class LexerTest(unittest.TestCase):
    def test_comments_strings_and_code(self):
        toks = lexer.lex('int a = 1; // x\n/* y\n z */ "s // not";\n')
        code = lexer.code_tokens(toks)
        self.assertEqual([t.text for t in code],
                         ["int", "a", "=", "1", ";", '"s // not"', ";"])
        comments = lexer.comment_lines(toks)
        self.assertIn("x", comments[1])
        self.assertIn("y", comments[2])
        self.assertIn("z", comments[3])  # block comment spans its lines

    def test_raw_string_swallows_quotes(self):
        toks = lexer.lex('auto s = R"(a " b // c)"; int z;\n')
        kinds = [t.kind for t in toks]
        self.assertNotIn(lexer.COMMENT, kinds)
        self.assertEqual(toks[-2].text, "z")

    def test_pp_continuation_folds_to_one_token(self):
        toks = lexer.lex("#define M(x) \\\n  (x + 1)\nint a;\n")
        pp = [t for t in toks if t.kind == lexer.PP]
        self.assertEqual(len(pp), 1)
        self.assertEqual(toks[-3].text, "int")
        self.assertEqual(toks[-3].line, 3)  # folded lines still counted

    def test_match_forward_template_gives_up_on_comparison(self):
        code = lexer.code_tokens(lexer.lex("if (a < b) { c(); }\n"))
        lt = next(i for i, t in enumerate(code) if t.text == "<")
        self.assertIsNone(lexer.match_forward(code, lt))

    def test_match_forward_nested_parens(self):
        code = lexer.code_tokens(lexer.lex("f(g(h(1)), 2);\n"))
        self.assertEqual(code[lexer.match_forward(code, 1)].text, ")")
        self.assertEqual(lexer.match_forward(code, 1), len(code) - 2)

    def test_enclosing_function_body_skips_class_braces(self):
        code = lexer.code_tokens(lexer.lex(
            "class C { int f() const { return g(); } };\n"))
        g = next(i for i, t in enumerate(code) if t.text == "g")
        span = lexer.enclosing_function_body(code, g)
        self.assertIsNotNone(span)
        self.assertEqual(code[span[0] - 1].text, "const")


class SourceFileTest(unittest.TestCase):
    def test_comment_near_window(self):
        files = {"src/a.cc": "// why: relaxed here\nint a;\nint b;\n"}
        with TempTree(files) as ctx:
            src = ctx.files[0]
            self.assertTrue(src.comment_near(2, 1, "relaxed"))
            self.assertTrue(src.comment_near(4, 3, "relaxed"))
            self.assertFalse(src.comment_near(5, 3, "relaxed"))


_STATUS_DECLS = "util::Status CloseLog();\nutil::Status FlushIndex();\n"


class UncheckedStatusTest(unittest.TestCase):
    def test_bare_and_void_cast_flagged(self):
        out, _ = run_rule(unchecked_status.UncheckedStatusRule, {
            "src/a.cc": _STATUS_DECLS +
            "void f() {\n  CloseLog();\n  (void)FlushIndex();\n}\n"})
        self.assertEqual(len(out), 2)
        self.assertIn("a.cc:4: [unchecked-status]", out[0])
        self.assertIn("'(void)FlushIndex(...)'", out[1])

    def test_consumed_calls_not_flagged(self):
        out, _ = run_rule(unchecked_status.UncheckedStatusRule, {
            "src/a.cc": _STATUS_DECLS + """
util::Status g() { return CloseLog(); }
void f() {
  if (auto st = CloseLog(); !st.ok()) { return; }
  auto st = FlushIndex();
  M3_IGNORE_STATUS(CloseLog(), "teardown");
  CloseLog().IgnoreError();
  bool same = CloseLog() == FlushIndex();
}
"""})
        self.assertEqual(out, [])

    def test_ambiguous_names_skipped_with_note(self):
        out, notes = run_rule(unchecked_status.UncheckedStatusRule, {
            "src/a.cc": "util::Status Append(int v);\n",
            "src/b.cc": "void Append(double v);\n"
                        "void f() {\n  Append(1);\n}\n"})
        self.assertEqual(out, [])
        self.assertTrue(any("Append" in n for n in notes))

    def test_external_namespace_not_flagged(self):
        out, _ = run_rule(unchecked_status.UncheckedStatusRule, {
            "src/a.cc": "util::Status Shutdown();\n"
                        "void f() {\n  benchmark::Shutdown();\n}\n"})
        self.assertEqual(out, [])

    def test_ternary_consumption_not_flagged(self):
        out, _ = run_rule(unchecked_status.UncheckedStatusRule, {
            "src/a.cc": _STATUS_DECLS +
            "void f(bool c) {\n"
            "  auto st = c ? CloseLog() : FlushIndex();\n}\n"})
        self.assertEqual(out, [])


_CAST_PRELUDE = "// fixture\nnamespace m3 {\n"


class MmapCastTest(unittest.TestCase):
    def _run(self, body, rel="src/core/mapped_dataset.cc"):
        out, _ = run_rule(mmap_cast.MmapCastRule,
                          {rel: _CAST_PRELUDE + body + "}\n"})
        return out

    def test_unguarded_cast_flagged(self):
        out = self._run("void f(const char* p) {\n"
                        "  auto* d = reinterpret_cast<const double*>(p);\n"
                        "}\n")
        self.assertEqual(len(out), 1)
        self.assertIn("[mmap-cast]", out[0])

    def test_alignof_guard_suppresses(self):
        out = self._run(
            "void f(const char* p, unsigned long off) {\n"
            "  if (off % alignof(double) != 0) { return; }\n"
            "  auto* d = reinterpret_cast<const double*>(p + off);\n"
            "}\n")
        self.assertEqual(out, [])

    def test_comment_guard_suppresses(self):
        out = self._run(
            "void f(const char* p) {\n"
            "  // m3-aligned: offset validated at Open().\n"
            "  auto* d = reinterpret_cast<const double*>(p + 8);\n"
            "}\n")
        self.assertEqual(out, [])

    def test_byte_targets_exempt(self):
        out = self._run(
            "void f(const void* p) {\n"
            "  auto* c = reinterpret_cast<const char*>(p);\n"
            "  auto* b = reinterpret_cast<const uint8_t*>(p);\n"
            "}\n")
        self.assertEqual(out, [])

    def test_unaudited_path_ignored(self):
        out, _ = run_rule(mmap_cast.MmapCastRule, {
            "src/la/blas.cc":
            "void f(const char* p) {\n"
            "  auto* d = reinterpret_cast<const double*>(p);\n"
            "}\n"})
        self.assertEqual(out, [])

    def test_c_style_cast_flagged_multiplication_not(self):
        out = self._run(
            "double f(const char* p, double scale) {\n"
            "  double v = *(const double*)(p + 8);\n"
            "  double w = (scale) * v;\n"
            "}\n")
        self.assertEqual(len(out), 1)
        self.assertIn("C-style cast", out[0])


class AtomicOrderTest(unittest.TestCase):
    def test_relaxed_without_why_flagged(self):
        out, _ = run_rule(atomic_order.AtomicOrderRule, {
            "src/la/x.cc":
            "void f() {\n"
            "  c.store(1, std::memory_order_relaxed);\n}\n"})
        self.assertEqual(len(out), 1)
        self.assertIn("why-relaxed", out[0])

    def test_relaxed_with_why_not_flagged(self):
        out, _ = run_rule(atomic_order.AtomicOrderRule, {
            "src/la/x.cc":
            "void f() {\n"
            "  // Relaxed: pure counter, nothing published.\n"
            "  c.store(1, std::memory_order_relaxed);\n}\n"})
        self.assertEqual(out, [])

    def test_hot_path_defaulted_order_flagged(self):
        out, _ = run_rule(atomic_order.AtomicOrderRule, {
            "src/exec/chunk_pipeline.cc":
            "void f() {\n  auto v = c.load();\n}\n"})
        self.assertEqual(len(out), 1)
        self.assertIn("seq_cst", out[0])

    def test_non_hot_path_defaulted_order_ignored(self):
        out, _ = run_rule(atomic_order.AtomicOrderRule, {
            "src/la/x.cc": "void f() {\n  auto v = c.load();\n}\n"})
        self.assertEqual(out, [])

    def test_hot_path_explicit_order_not_flagged(self):
        out, _ = run_rule(atomic_order.AtomicOrderRule, {
            "src/exec/chunk_pipeline.cc":
            "void f() {\n"
            "  auto v = c.load(std::memory_order_acquire);\n}\n"})
        self.assertEqual(out, [])


class FixtureTreeTest(unittest.TestCase):
    """End-to-end: the shipped canary tree seeds exactly the advertised
    violations and nothing else (the justified twins stay silent)."""

    def _cli(self, *argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(stdout), \
                contextlib.redirect_stderr(stderr):
            code = cli_main(list(argv))
        return code, stdout.getvalue(), stderr.getvalue()

    def test_fixture_findings(self):
        code, out, _ = self._cli("--root", _FIXTURE)
        self.assertEqual(code, 1)
        lines = [ln for ln in out.splitlines() if ln]
        self.assertEqual(len(lines), 6)
        for needle in ("status_sink.cc:10", "status_sink.cc:11",
                       "mapped_dataset.cc:7", "mapped_dataset.cc:16",
                       "chunk_pipeline.cc:11", "chunk_pipeline.cc:15"):
            self.assertTrue(any(needle in ln for ln in lines), needle)

    def test_rule_filter(self):
        code, out, _ = self._cli("--root", _FIXTURE, "--rule", "mmap-cast")
        self.assertEqual(code, 1)
        lines = [ln for ln in out.splitlines() if ln]
        self.assertEqual(len(lines), 2)
        self.assertTrue(all("[mmap-cast]" in ln for ln in lines))

    def test_unknown_rule_is_usage_error(self):
        code, _, err = self._cli("--root", _FIXTURE, "--rule", "nope")
        self.assertEqual(code, 2)
        self.assertIn("unknown rule", err)

    def test_fixture_trees_excluded_from_parent_glob(self):
        for path in compdb.glob_sources(_REPO_ROOT):
            self.assertNotIn("lint_fixtures", path)


if __name__ == "__main__":
    unittest.main()
