"""Analyzer engine: source model, finding type, rule registry, frontends.

A Rule sees the whole tree (an AnalyzerContext) and emits Findings; the
driver sorts and prints them m3_lint-style (`path:line: [rule] message`)
so ctest PASS_REGULAR_EXPRESSION canaries and humans read one format.

Two frontends exist for AST-grade questions (today: unchecked-status):

  * libclang (clang.cindex), loaded lazily and defensively — any import
    or .so resolution failure downgrades to the tokenizer with a note,
    never a crash. CI passes --require-libclang so the downgrade is loud
    there (a skipped rule must never read as a green gate).
  * the tokenizer fallback (lexer.py), always available, driving a
    declaration-registry heuristic documented in each rule.

Comment-convention rules always run on the tokenizer: suppression
justifications live in comments, which no AST preserves in full.
"""

import os
from dataclasses import dataclass, field

from . import lexer


@dataclass(frozen=True)
class Finding:
    path: str  # root-relative
    line: int
    rule: str
    message: str

    def render(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class SourceFile:
    """Lazy per-file lexical model shared by every rule."""

    def __init__(self, root, path):
        self.path = path
        self.rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8", errors="replace") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self._tokens = None
        self._code = None
        self._comments = None

    @property
    def tokens(self):
        if self._tokens is None:
            self._tokens = lexer.lex(self.text)
        return self._tokens

    @property
    def code(self):
        if self._code is None:
            self._code = lexer.code_tokens(self.tokens)
        return self._code

    @property
    def comments(self):
        """{line: comment text} for every line a comment touches."""
        if self._comments is None:
            self._comments = lexer.comment_lines(self.tokens)
        return self._comments

    def comment_near(self, line, lookback, needle):
        """True if a comment containing `needle` sits on `line` or within
        `lookback` lines above it (the why-comment convention window)."""
        for candidate in range(max(1, line - lookback), line + 1):
            text = self.comments.get(candidate)
            if text is not None and needle in text.lower():
                return True
        return False


@dataclass
class AnalyzerContext:
    root: str
    files: list  # [SourceFile] in deterministic (sorted-path) order
    args_by_file: dict = field(default_factory=dict)
    clang_index: object = None  # clang.cindex.Index or None (fallback)
    notes: list = field(default_factory=list)

    def by_rel(self, rel):
        for f in self.files:
            if f.rel == rel:
                return f
        return None


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RULES = []


def rule(name, doc):
    """Class decorator registering a rule. Rules expose run(ctx) -> [Finding]."""
    def wrap(cls):
        cls.name = name
        cls.doc = doc
        RULES.append(cls)
        return cls
    return wrap


def registered_rules():
    # Import for side effects exactly once; registration order is the
    # declaration order inside rules/__init__.py (deterministic output).
    from . import rules  # noqa: F401  pylint: disable=unused-import
    return list(RULES)


# ---------------------------------------------------------------------------
# libclang frontend loading
# ---------------------------------------------------------------------------

def load_libclang():
    """-> (clang.cindex.Index, None) or (None, reason string).

    Requires both the python bindings (python3-clang) and a resolvable
    libclang.so. Never raises: the analyzer must degrade to the tokenizer
    fallback, and the driver decides whether the degradation is an error
    (--require-libclang) or a note.
    """
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        return None, f"python clang bindings not importable ({e})"
    try:
        return cindex.Index.create(), None
    except Exception as first:  # cindex raises LibclangError and friends
        # Try well-known sonames before giving up; distro packages often
        # ship only a versioned libclang-XX.so.
        for name in ("libclang.so", "libclang-17.so", "libclang-16.so",
                     "libclang-15.so", "libclang-14.so",
                     "libclang.so.1", "libclang-cpp.so"):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
                return cindex.Index.create(), None
            except Exception:
                continue
        return None, f"libclang shared library not loadable ({first})"
