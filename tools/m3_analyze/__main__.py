"""CLI driver: `python3 tools/m3_analyze --root . [--compdb PATH] ...`.

Exit status mirrors tools/m3_lint.py: 0 clean; 1 findings (or, under
--strict, skipped rules / missing compilation database; or, under
--require-libclang, a missing libclang); 2 usage or internal error.
Output is one `path:line: [rule] message` per finding on stdout, notes
on stderr — the format the ctest fixture canaries regex against.
"""

import argparse
import os
import sys

# Allow both `python3 tools/m3_analyze` (package __main__) and
# `python3 tools/m3_analyze/__main__.py` (direct file) invocations.
if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from m3_analyze import compdb, engine  # type: ignore
    from m3_analyze.engine import AnalyzerContext, SourceFile  # type: ignore
else:
    from . import compdb, engine
    from .engine import AnalyzerContext, SourceFile


def build_context(root, compdb_path, require_libclang, no_libclang):
    files, args_by_file, notes = compdb.resolve_files(root, compdb_path)
    sources = []
    for path in files:
        try:
            sources.append(SourceFile(root, path))
        except OSError as e:
            notes.append(f"note: [io] skipped unreadable {path}: {e}")
    ctx = AnalyzerContext(root=root, files=sources,
                          args_by_file=args_by_file)
    ctx.notes.extend(notes)
    if no_libclang:
        index, reason = None, "disabled by --no-libclang"
    else:
        index, reason = engine.load_libclang()
    if index is None:
        message = (f"[libclang] {reason} — unchecked-status runs on the "
                   "tokenizer fallback (declaration-registry heuristic; "
                   "docs/CORRECTNESS.md describes the precision trade)")
        if require_libclang and not no_libclang:
            print(f"m3_analyze: error: {message}", file=sys.stderr)
            print("m3_analyze: --require-libclang demands the AST "
                  "frontend; install python3-clang + libclang",
                  file=sys.stderr)
            return None
        ctx.notes.append(f"note: {message}")
    ctx.clang_index = index
    return ctx


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="m3_analyze", description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repo root (or fixture tree) to analyze")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/, then <root>/)")
    parser.add_argument("--strict", action="store_true",
                        help="missing compile_commands.json or skipped "
                             "rules are errors")
    parser.add_argument("--require-libclang", action="store_true",
                        help="fail (exit 1) when the libclang AST "
                             "frontend is unavailable — CI passes this "
                             "so degradation is loud, not a silent skip")
    parser.add_argument("--no-libclang", action="store_true",
                        help="force the tokenizer fallback (testing)")
    parser.add_argument("--rule", action="append", default=None,
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule names and exit")
    args = parser.parse_args(argv)

    rules = engine.registered_rules()
    if args.list_rules:
        print(" ".join(r.name for r in rules))
        return 0
    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"m3_analyze: no such directory: {args.root}",
              file=sys.stderr)
        return 2
    if args.rule:
        unknown = set(args.rule) - {r.name for r in rules}
        if unknown:
            print(f"m3_analyze: unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.name in set(args.rule)]

    try:
        compdb_path = compdb.find_compdb(root, args.compdb)
    except compdb.CompDbError as e:
        print(f"m3_analyze: {e}", file=sys.stderr)
        return 2
    ctx = build_context(root, compdb_path, args.require_libclang,
                        args.no_libclang)
    if ctx is None:
        return 1

    findings = []
    for rule_cls in rules:
        try:
            findings.extend(rule_cls().run(ctx))
        except Exception as e:  # a rule crash must not read as clean
            print(f"m3_analyze: internal error in rule "
                  f"'{rule_cls.name}': {type(e).__name__}: {e}",
                  file=sys.stderr)
            return 2
    findings.sort(key=lambda f: (f.path, f.line, f.rule))

    for note in ctx.notes:
        print(note, file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"m3_analyze: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    if args.strict and compdb_path is None:
        print("m3_analyze: --strict and no compile_commands.json — "
              "configure the build first (CMAKE_EXPORT_COMPILE_COMMANDS "
              "is always on)", file=sys.stderr)
        return 1
    print(f"m3_analyze: clean ({len(ctx.files)} files, "
          f"{len(rules)} rules)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
