"""compile_commands.json loading and analyzed-file-set resolution.

The analyzer is compilation-database-driven: the TU list (and, for the
libclang frontend, the exact flags) come from compile_commands.json so
the analyzed tree is the compiled tree — a file CMake stopped building
silently leaves the gate with it. Headers are not TUs, so the file set
is the union of the database's in-root sources and a `src/**` header
glob; fixture trees without a database fall back to globbing sources
too, with a note (strict runs treat the missing database as an error).
"""

import json
import os


class CompDbError(Exception):
    pass


def _norm(root, directory, name):
    path = name if os.path.isabs(name) else os.path.join(directory, name)
    return os.path.normpath(path)


def load_compdb(root, compdb_path):
    """-> {abs_source_path: argument_list} for in-root entries."""
    with open(compdb_path, encoding="utf-8") as f:
        try:
            entries = json.load(f)
        except json.JSONDecodeError as e:
            raise CompDbError(f"{compdb_path}: not valid JSON: {e}") from e
    if not isinstance(entries, list):
        raise CompDbError(f"{compdb_path}: expected a JSON array")
    root = os.path.abspath(root)
    out = {}
    for entry in entries:
        try:
            directory = entry["directory"]
            source = _norm(root, directory, entry["file"])
        except (TypeError, KeyError) as e:
            raise CompDbError(
                f"{compdb_path}: entry missing directory/file: {e}") from e
        if not source.startswith(root + os.sep):
            continue
        if "arguments" in entry:
            args = list(entry["arguments"])
        elif "command" in entry:
            # shlex-free split is fine for CMake output (no quoted args
            # with spaces in this tree); keep it dependency-light.
            args = entry["command"].split()
        else:
            args = []
        out[source] = args
    return out


def find_compdb(root, explicit):
    """Resolves the database path: --compdb, then build/, then root."""
    if explicit:
        if not os.path.isfile(explicit):
            raise CompDbError(f"--compdb {explicit}: no such file")
        return explicit
    for candidate in (os.path.join(root, "build", "compile_commands.json"),
                      os.path.join(root, "compile_commands.json")):
        if os.path.isfile(candidate):
            return candidate
    return None


_SOURCE_DIRS = ("src", "bench", "examples", "tools", "tests")
_SOURCE_EXTS = (".cc", ".cpp", ".cxx")
_HEADER_EXTS = (".h", ".hpp")


# Deliberately-broken canary trees: analyzed only when --root points AT
# one, never when it merely contains one.
_FIXTURE_DIR = "lint_fixtures"


def _walk(root, top, exts):
    out = []
    for dirpath, dirnames, names in os.walk(os.path.join(root, top)):
        dirnames[:] = [d for d in dirnames if d != _FIXTURE_DIR]
        for name in sorted(names):
            if name.endswith(exts):
                out.append(os.path.join(dirpath, name))
    return out


def glob_sources(root, dirs=_SOURCE_DIRS):
    """Fallback TU list (no database): every C++ source under `dirs`."""
    return sorted(p for top in dirs for p in _walk(root, top, _SOURCE_EXTS))


def glob_headers(root, dirs=_SOURCE_DIRS):
    return sorted(p for top in dirs for p in _walk(root, top, _HEADER_EXTS))


def resolve_files(root, compdb_path):
    """-> (sorted file list, {path: args}, notes). Sources from the
    database when present (plus globbed headers, which have no TU entry);
    globbed sources otherwise, with a note explaining the degradation.
    """
    notes = []
    args_by_file = {}
    root = os.path.abspath(root)
    if compdb_path is not None:
        args_by_file = load_compdb(root, compdb_path)
        sources = [p for p in args_by_file
                   if p.endswith(_SOURCE_EXTS)
                   and _in_analyzed_dirs(root, p)]
        if not sources:
            raise CompDbError(
                f"{compdb_path}: no in-root C++ sources under "
                f"{'/'.join(_SOURCE_DIRS)} — wrong --root?")
    else:
        notes.append("note: [compdb] compile_commands.json not found — "
                     "falling back to globbing sources (configure with "
                     "CMake to analyze exactly the compiled TU set)")
        sources = glob_sources(root)
    files = sorted(set(sources) | set(glob_headers(root)))
    return files, args_by_file, notes


def _in_analyzed_dirs(root, path):
    rel = os.path.relpath(path, root)
    return rel.split(os.sep, 1)[0] in _SOURCE_DIRS
