"""m3_analyze: AST/token-level invariant analyzer for the m3 tree.

Enforces three m3-specific rule families over every TU named by
compile_commands.json (docs/CORRECTNESS.md has the policy):

  unchecked-status   every call to a util::Status / util::Result<T>
                     returning function must be consumed (assigned,
                     returned, tested, or discarded via M3_IGNORE_STATUS).
  mmap-cast          every reinterpret_cast / C-cast from a mapped byte
                     region to a typed pointer must be dominated by an
                     alignment guard or a `// m3-aligned:` justification.
  atomic-order       every std::memory_order_relaxed carries a why-relaxed
                     comment; hot-path atomics never default to seq_cst.

Frontends: when python3-clang + libclang are importable the
unchecked-status rule walks the real AST; otherwise every rule runs on
the built-in tokenizer (lexer.py) with a declaration-registry heuristic,
and the degradation is reported as a note (or an error under
--require-libclang, which CI passes so a broken install can never turn
the job into a silent skip). The comment-convention rules (mmap-cast
justifications, why-relaxed comments) are token/comment-level by nature
and always run on the tokenizer, libclang or not.
"""

__version__ = "1.0"
