#include "graph/edge_list.h"

#include <cstring>

#include "io/buffered_io.h"
#include "util/format.h"
#include "util/random.h"

namespace m3::graph {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'M', '3', 'G', 'R'};
constexpr uint32_t kVersion = 1;
constexpr uint64_t kHeaderBytes = 4096;

struct RawHeader {
  char magic[4];
  uint32_t version;
  uint64_t num_nodes;
  uint64_t num_edges;
};
static_assert(sizeof(RawHeader) == 24);

}  // namespace

Result<MappedEdgeList> MappedEdgeList::Open(const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::MemoryMappedFile mapping,
                      io::MemoryMappedFile::Map(path));
  if (mapping.size() < kHeaderBytes) {
    return Status::InvalidArgument("edge file too small: " + path);
  }
  RawHeader header;
  std::memcpy(&header, mapping.data(), sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an M3 edge file: " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported(
        util::StrFormat("edge file version %u unsupported", header.version));
  }
  const uint64_t expected = kHeaderBytes + header.num_edges * sizeof(Edge);
  if (mapping.size() < expected) {
    return Status::InvalidArgument(util::StrFormat(
        "edge file truncated: %llu bytes, header implies %llu",
        static_cast<unsigned long long>(mapping.size()),
        static_cast<unsigned long long>(expected)));
  }
  // The region cast below is only defined when the payload start satisfies
  // Edge's alignment. mmap bases are page-aligned and kHeaderBytes is a
  // page, so this never fires on a real mapping — the check turns a
  // would-be UBSan trap (misaligned member access through edges()) into a
  // diagnosable error if either guarantee is ever broken.
  static_assert(kHeaderBytes % alignof(Edge) == 0);
  const char* payload = mapping.As<const char>() + kHeaderBytes;
  if (reinterpret_cast<uintptr_t>(payload) % alignof(Edge) != 0) {
    return Status::InvalidArgument(
        "edge payload is not aligned for Edge records: " + path);
  }
  const Edge* edges = reinterpret_cast<const Edge*>(payload);
  return MappedEdgeList(std::move(mapping), header.num_nodes,
                        header.num_edges, edges);
}

size_t AutoChunkEdges(size_t requested) {
  if (requested > 0) {
    return requested;
  }
  return (8ull << 20) / sizeof(Edge);
}

exec::MappedRegion EdgeRegion(const MappedEdgeList& graph) {
  exec::MappedRegion region;
  region.mapping = &graph.mapping();
  region.base_offset = static_cast<uint64_t>(
      reinterpret_cast<const char*>(graph.edges()) -
      graph.mapping().As<const char>());
  region.row_bytes = sizeof(Edge);
  return region;
}

Status WriteEdgeList(const std::string& path, uint64_t num_nodes,
                     const std::vector<Edge>& edges) {
  for (const Edge& edge : edges) {
    if (edge.src >= num_nodes || edge.dst >= num_nodes) {
      return Status::InvalidArgument(util::StrFormat(
          "edge (%llu -> %llu) out of range for %llu nodes",
          static_cast<unsigned long long>(edge.src),
          static_cast<unsigned long long>(edge.dst),
          static_cast<unsigned long long>(num_nodes)));
    }
  }
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      io::BufferedWriter::Create(path, 4 << 20));
  RawHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_nodes = num_nodes;
  header.num_edges = edges.size();
  M3_RETURN_IF_ERROR(writer.Append(&header, sizeof(header)));
  const std::vector<char> pad(kHeaderBytes - sizeof(header), 0);
  M3_RETURN_IF_ERROR(writer.Append(pad.data(), pad.size()));
  M3_RETURN_IF_ERROR(
      writer.Append(edges.data(), edges.size() * sizeof(Edge)));
  return writer.Close();
}

std::vector<Edge> RandomGraph(uint64_t num_nodes, uint64_t num_edges,
                              uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> edges(num_edges);
  for (Edge& edge : edges) {
    edge.src = rng.UniformInt(num_nodes);
    edge.dst = rng.UniformInt(num_nodes);
  }
  return edges;
}

}  // namespace m3::graph
