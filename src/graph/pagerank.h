#ifndef M3_GRAPH_PAGERANK_H_
#define M3_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/edge_list.h"
#include "util/result.h"

namespace m3::graph {

/// \brief Options for power-iteration PageRank.
struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 20;
  /// Stop when the L1 change between iterations falls below this.
  double tolerance = 1e-9;
};

/// \brief PageRank result.
struct PageRankResult {
  std::vector<double> ranks;  ///< sums to 1
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Edge-scan PageRank over a mapped edge list.
///
/// Each power iteration is two sequential passes over the mapped edges
/// (degree-weighted scatter, then dangling/teleport fixup) — the graph
/// workload of the MMap prior work [3], included here to connect M3 back
/// to its inspiration. Out-degrees are computed once in a prologue scan.
util::Result<PageRankResult> PageRank(const MappedEdgeList& graph,
                                      PageRankOptions options =
                                          PageRankOptions());

}  // namespace m3::graph

#endif  // M3_GRAPH_PAGERANK_H_
