#ifndef M3_GRAPH_PAGERANK_H_
#define M3_GRAPH_PAGERANK_H_

#include <vector>

#include "graph/edge_list.h"
#include "util/result.h"

namespace m3::graph {

/// \brief Options for power-iteration PageRank.
struct PageRankOptions {
  double damping = 0.85;
  size_t max_iterations = 20;
  /// Stop when the L1 change between iterations falls below this.
  double tolerance = 1e-9;
  /// Edges per pipelined scan chunk (0 = auto, ~8 MiB of edge records).
  size_t chunk_edges = 0;
  /// Chunks of readahead the execution engine keeps ahead of the scatter
  /// scan (0 disables the prefetch stage).
  size_t readahead_chunks = 2;
  /// When positive, edge pages more than this many bytes behind the scan
  /// are evicted — bounded-RAM graph mining on arbitrarily large edge
  /// files.
  uint64_t ram_budget_bytes = 0;
};

/// \brief PageRank result.
struct PageRankResult {
  std::vector<double> ranks;  ///< sums to 1
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Edge-scan PageRank over a mapped edge list.
///
/// Each power iteration is two sequential passes over the mapped edges
/// (degree-weighted scatter, then dangling/teleport fixup) — the graph
/// workload of the MMap prior work [3], included here to connect M3 back
/// to its inspiration. Out-degrees are computed once in a prologue scan.
///
/// The prologue and scatter scans run on an exec::ChunkPipeline bound to
/// the edge region: MADV_WILLNEED readahead overlaps the scatter compute,
/// and the optional RAM budget evicts consumed edge pages behind the scan.
util::Result<PageRankResult> PageRank(const MappedEdgeList& graph,
                                      PageRankOptions options =
                                          PageRankOptions());

}  // namespace m3::graph

#endif  // M3_GRAPH_PAGERANK_H_
