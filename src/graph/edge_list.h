#ifndef M3_GRAPH_EDGE_LIST_H_
#define M3_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "exec/chunk_pipeline.h"
#include "io/mmap_file.h"
#include "util/result.h"

namespace m3::graph {

/// \brief One directed edge.
struct Edge {
  uint64_t src = 0;
  uint64_t dst = 0;
};
static_assert(sizeof(Edge) == 16, "Edge must be a packed 16-byte record");

/// \brief A binary edge-list file mapped into memory.
///
/// This module mirrors the prior work M3 generalizes from ([3] "MMap: Fast
/// billion-scale graph computation on a PC via memory mapping"): graph
/// algorithms stream a mapped edge file sequentially, exactly like the ML
/// algorithms stream a mapped feature matrix.
///
/// File layout: 4096-byte header page ("M3GR", version, node count, edge
/// count) followed by packed (src, dst) uint64 pairs.
class MappedEdgeList {
 public:
  /// Maps the edge file at `path` read-only.
  static util::Result<MappedEdgeList> Open(const std::string& path);

  MappedEdgeList(MappedEdgeList&&) = default;
  MappedEdgeList& operator=(MappedEdgeList&&) = default;

  uint64_t num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return num_edges_; }

  /// Edge `i`. \pre i < num_edges().
  const Edge& edge(uint64_t i) const { return edges_[i]; }

  /// Raw pointer to the packed edge array (sequential scans).
  const Edge* edges() const { return edges_; }

  io::MemoryMappedFile& mapping() { return mapping_; }
  const io::MemoryMappedFile& mapping() const { return mapping_; }

 private:
  MappedEdgeList(io::MemoryMappedFile mapping, uint64_t num_nodes,
                 uint64_t num_edges, const Edge* edges)
      : mapping_(std::move(mapping)),
        num_nodes_(num_nodes),
        num_edges_(num_edges),
        edges_(edges) {}

  io::MemoryMappedFile mapping_;
  uint64_t num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  const Edge* edges_ = nullptr;
};

/// \brief Edges per scan chunk so one chunk covers ~8 MiB of packed edge
/// records. A positive `requested` wins outright. The shared chunk-size
/// policy for every engine-driven edge scan (PageRank, connected
/// components).
size_t AutoChunkEdges(size_t requested);

/// \brief The packed edge array as an execution-engine region (one row =
/// one 16-byte Edge record), so graph scans bind an exec::ChunkPipeline
/// exactly like ML trainers bind the feature matrix.
exec::MappedRegion EdgeRegion(const MappedEdgeList& graph);

/// \brief Writes `edges` (validating node ids < num_nodes) as an edge file.
util::Status WriteEdgeList(const std::string& path, uint64_t num_nodes,
                           const std::vector<Edge>& edges);

/// \brief Generates a reproducible random directed graph: `num_edges`
/// edges with endpoints uniform over [0, num_nodes) (self-loops allowed,
/// like real web-graph crawls contain).
std::vector<Edge> RandomGraph(uint64_t num_nodes, uint64_t num_edges,
                              uint64_t seed);

}  // namespace m3::graph

#endif  // M3_GRAPH_EDGE_LIST_H_
