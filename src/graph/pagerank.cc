#include "graph/pagerank.h"

#include <cmath>

#include "exec/chunk_pipeline.h"
#include "la/chunker.h"

namespace m3::graph {

using util::Result;
using util::Status;

Result<PageRankResult> PageRank(const MappedEdgeList& graph,
                                PageRankOptions options) {
  const uint64_t n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  if (options.damping < 0 || options.damping >= 1) {
    return Status::InvalidArgument("damping must be in [0, 1)");
  }

  // Pipeline bound to the packed edge region: prefetch runs ahead of the
  // sequential edge scans, eviction trails them under the RAM budget. The
  // scatter writes to shared rank arrays, so compute stays on the driving
  // thread (no worker fan-out).
  const Edge* edges = graph.edges();
  exec::PipelineOptions pipeline_options;
  pipeline_options.readahead_chunks = options.readahead_chunks;
  pipeline_options.ram_budget_bytes = options.ram_budget_bytes;
  exec::ChunkPipeline pipeline(EdgeRegion(graph), pipeline_options);
  const la::RowChunker chunker(graph.num_edges(),
                               AutoChunkEdges(options.chunk_edges));

  // Prologue scan: out-degrees.
  std::vector<uint64_t> out_degree(n, 0);
  pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      ++out_degree[edges[e].src];
    }
  });

  PageRankResult result;
  result.ranks.assign(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    // Scatter pass: pipelined sequential scan of the mapped edge array.
    pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
      for (size_t e = begin; e < end; ++e) {
        const Edge& edge = edges[e];
        next[edge.dst] += result.ranks[edge.src] /
                          static_cast<double>(out_degree[edge.src]);
      }
    });
    // Dangling mass (nodes with no out-edges) is spread uniformly.
    double dangling = 0.0;
    for (uint64_t v = 0; v < n; ++v) {
      if (out_degree[v] == 0) {
        dangling += result.ranks[v];
      }
    }
    const double teleport =
        (1.0 - options.damping) / static_cast<double>(n);
    const double dangling_share =
        options.damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (uint64_t v = 0; v < n; ++v) {
      const double updated =
          teleport + dangling_share + options.damping * next[v];
      delta += std::fabs(updated - result.ranks[v]);
      result.ranks[v] = updated;
    }
    ++result.iterations;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace m3::graph
