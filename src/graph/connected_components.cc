#include "graph/connected_components.h"

#include <numeric>

namespace m3::graph {

using util::Result;
using util::Status;

namespace {

uint64_t Find(std::vector<uint64_t>* parent, uint64_t v) {
  // Iterative find with path halving.
  while ((*parent)[v] != v) {
    (*parent)[v] = (*parent)[(*parent)[v]];
    v = (*parent)[v];
  }
  return v;
}

}  // namespace

Result<ComponentsResult> ConnectedComponents(const MappedEdgeList& graph) {
  const uint64_t n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  std::vector<uint64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);

  // Single sequential pass over the mapped edges.
  const Edge* edges = graph.edges();
  for (uint64_t e = 0; e < graph.num_edges(); ++e) {
    uint64_t a = Find(&parent, edges[e].src);
    uint64_t b = Find(&parent, edges[e].dst);
    if (a != b) {
      // Union by minimum id: canonical labels independent of edge order.
      if (a < b) {
        parent[b] = a;
      } else {
        parent[a] = b;
      }
    }
  }

  ComponentsResult result;
  result.component.resize(n);
  for (uint64_t v = 0; v < n; ++v) {
    result.component[v] = Find(&parent, v);
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (result.component[v] == v) {
      ++result.num_components;
    }
  }
  return result;
}

}  // namespace m3::graph
