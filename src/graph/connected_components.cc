#include "graph/connected_components.h"

#include <numeric>

#include "exec/chunk_pipeline.h"
#include "la/chunker.h"

namespace m3::graph {

using util::Result;
using util::Status;

namespace {

uint64_t Find(std::vector<uint64_t>* parent, uint64_t v) {
  // Iterative find with path halving.
  while ((*parent)[v] != v) {
    (*parent)[v] = (*parent)[(*parent)[v]];
    v = (*parent)[v];
  }
  return v;
}

}  // namespace

Result<ComponentsResult> ConnectedComponents(const MappedEdgeList& graph,
                                             ComponentsOptions options) {
  const uint64_t n = graph.num_nodes();
  if (n == 0) {
    return Status::InvalidArgument("graph has no nodes");
  }
  std::vector<uint64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);

  // Pipelined sequential pass over the mapped edges: prefetch runs ahead
  // of the union-find scan, eviction trails it under the RAM budget. The
  // unions share one parent array, so compute stays on the driving thread
  // (no worker fan-out).
  const Edge* edges = graph.edges();
  exec::PipelineOptions pipeline_options;
  pipeline_options.readahead_chunks = options.readahead_chunks;
  pipeline_options.ram_budget_bytes = options.ram_budget_bytes;
  exec::ChunkPipeline pipeline(EdgeRegion(graph), pipeline_options);
  const la::RowChunker chunker(graph.num_edges(),
                               AutoChunkEdges(options.chunk_edges));
  pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
    for (size_t e = begin; e < end; ++e) {
      uint64_t a = Find(&parent, edges[e].src);
      uint64_t b = Find(&parent, edges[e].dst);
      if (a != b) {
        // Union by minimum id: canonical labels independent of edge order.
        if (a < b) {
          parent[b] = a;
        } else {
          parent[a] = b;
        }
      }
    }
  });

  ComponentsResult result;
  result.component.resize(n);
  for (uint64_t v = 0; v < n; ++v) {
    result.component[v] = Find(&parent, v);
  }
  for (uint64_t v = 0; v < n; ++v) {
    if (result.component[v] == v) {
      ++result.num_components;
    }
  }
  return result;
}

}  // namespace m3::graph
