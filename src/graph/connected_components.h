#ifndef M3_GRAPH_CONNECTED_COMPONENTS_H_
#define M3_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "util/result.h"

namespace m3::graph {

/// \brief Options for the engine-driven connected-components scan.
struct ComponentsOptions {
  /// Edges per pipelined scan chunk (0 = auto, ~8 MiB of edge records).
  size_t chunk_edges = 0;
  /// Chunks of readahead the execution engine keeps ahead of the
  /// union-find scan (0 disables the prefetch stage).
  size_t readahead_chunks = 2;
  /// When positive, edge pages more than this many bytes behind the scan
  /// are evicted — bounded-RAM components on arbitrarily large edge files.
  uint64_t ram_budget_bytes = 0;
};

/// \brief Connected-components result (edges treated as undirected).
struct ComponentsResult {
  /// Component label per node; labels are the smallest node id in the
  /// component (canonical, deterministic).
  std::vector<uint64_t> component;
  uint64_t num_components = 0;
};

/// \brief Union-find over one sequential scan of the mapped edges.
///
/// The second workload of the MMap prior work [3]: a single streaming pass
/// with O(nodes) state, rank-free union by minimum label + full path
/// compression in a finalize pass.
///
/// The edge scan runs on an exec::ChunkPipeline bound to the edge region
/// (like PageRank): MADV_WILLNEED readahead overlaps the union-find
/// compute, and the optional RAM budget evicts consumed edge pages behind
/// the scan. The unions mutate one shared parent array, so compute stays
/// on the driving thread; labels are independent of chunking and identical
/// to the plain loop's.
util::Result<ComponentsResult> ConnectedComponents(
    const MappedEdgeList& graph,
    ComponentsOptions options = ComponentsOptions());

}  // namespace m3::graph

#endif  // M3_GRAPH_CONNECTED_COMPONENTS_H_
