#ifndef M3_GRAPH_CONNECTED_COMPONENTS_H_
#define M3_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/edge_list.h"
#include "util/result.h"

namespace m3::graph {

/// \brief Connected-components result (edges treated as undirected).
struct ComponentsResult {
  /// Component label per node; labels are the smallest node id in the
  /// component (canonical, deterministic).
  std::vector<uint64_t> component;
  uint64_t num_components = 0;
};

/// \brief Union-find over one sequential scan of the mapped edges.
///
/// The second workload of the MMap prior work [3]: a single streaming pass
/// with O(nodes) state, rank-free union by minimum label + full path
/// compression in a finalize pass.
util::Result<ComponentsResult> ConnectedComponents(
    const MappedEdgeList& graph);

}  // namespace m3::graph

#endif  // M3_GRAPH_CONNECTED_COMPONENTS_H_
