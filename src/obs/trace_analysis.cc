#include "obs/trace_analysis.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/perf_model.h"
#include "io/file.h"
#include "util/format.h"

namespace m3::obs {

using util::JsonValue;
using util::Result;
using util::Status;

namespace {

/// ts/dur are written at %.3f µs; half a nanosecond of slack absorbs the
/// rounding when comparing span boundaries.
constexpr double kNestEpsilonUs = 0.0005;

bool IsSpan(const JsonValue& event) {
  const JsonValue* ph = event.Find("ph");
  return ph != nullptr && ph->is_string() && ph->string_value == "X";
}

bool IsCounter(const JsonValue& event) {
  const JsonValue* ph = event.Find("ph");
  return ph != nullptr && ph->is_string() && ph->string_value == "C";
}

const JsonValue* TraceEvents(const JsonValue& doc) {
  if (!doc.is_object()) {
    return nullptr;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return nullptr;
  }
  return events;
}

}  // namespace

Status ValidateTrace(const JsonValue& doc) {
  const JsonValue* events = TraceEvents(doc);
  if (events == nullptr) {
    return Status::InvalidArgument(
        "trace is not an object with a \"traceEvents\" array");
  }
  // Per-tid stack of open span end times (events arrive grouped per
  // thread and time-ordered within a thread; re-sort defensively).
  struct SpanEdge {
    double ts = 0;
    double end = 0;
  };
  std::map<uint64_t, std::vector<SpanEdge>> spans_by_tid;
  // Counter track -> samples in arrival order (arrival order is emission
  // order within the sampler thread, which is what monotonicity means).
  std::map<std::string, std::vector<double>> exec_tracks;
  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& event = events->array[i];
    if (!event.is_object()) {
      return Status::InvalidArgument(
          util::StrFormat("traceEvents[%zu] is not an object", i));
    }
    const JsonValue* ph = event.Find("ph");
    if (ph == nullptr || !ph->is_string()) {
      return Status::InvalidArgument(
          util::StrFormat("traceEvents[%zu] has no string \"ph\"", i));
    }
    if (IsSpan(event)) {
      const JsonValue* ts = event.Find("ts");
      const JsonValue* dur = event.Find("dur");
      if (ts == nullptr || !ts->is_number() || !std::isfinite(ts->number_value) ||
          dur == nullptr || !dur->is_number() ||
          !std::isfinite(dur->number_value) || dur->number_value < 0) {
        return Status::InvalidArgument(util::StrFormat(
            "traceEvents[%zu]: span without finite ts/dur", i));
      }
      const uint64_t tid = static_cast<uint64_t>(event.NumberOr("tid", 0));
      spans_by_tid[tid].push_back(
          SpanEdge{ts->number_value, ts->number_value + dur->number_value});
    } else if (IsCounter(event)) {
      const JsonValue* name = event.Find("name");
      const JsonValue* args = event.Find("args");
      if (name == nullptr || !name->is_string() || args == nullptr ||
          !args->is_object() || args->members.empty()) {
        return Status::InvalidArgument(util::StrFormat(
            "traceEvents[%zu]: counter without name/args", i));
      }
      if (name->string_value.rfind("exec.", 0) == 0) {
        exec_tracks[name->string_value].push_back(
            args->members.front().second.number_value);
      }
    }
  }
  // Spans on one thread must obey stack discipline: sorted by start (ties:
  // longer first, the enclosing span), each span either nests inside the
  // innermost open span or begins after it ends.
  for (auto& [tid, edges] : spans_by_tid) {
    std::sort(edges.begin(), edges.end(), [](const SpanEdge& a,
                                             const SpanEdge& b) {
      if (a.ts != b.ts) {
        return a.ts < b.ts;
      }
      return a.end > b.end;
    });
    std::vector<double> open_ends;
    for (const SpanEdge& edge : edges) {
      while (!open_ends.empty() &&
             edge.ts >= open_ends.back() - kNestEpsilonUs) {
        open_ends.pop_back();
      }
      if (!open_ends.empty() &&
          edge.end > open_ends.back() + kNestEpsilonUs) {
        return Status::InvalidArgument(util::StrFormat(
            "tid %llu: span [%.3f, %.3f] overlaps but does not nest inside "
            "enclosing span ending at %.3f",
            static_cast<unsigned long long>(tid), edge.ts, edge.end,
            open_ends.back()));
      }
      open_ends.push_back(edge.end);
    }
  }
  // exec.* tracks mirror cumulative io::ExecCounters, so going backwards
  // means the recorder scrambled sample order (or the counters were reset
  // mid-trace, which the quiescence contract forbids).
  for (const auto& [track, samples] : exec_tracks) {
    for (size_t i = 1; i < samples.size(); ++i) {
      if (samples[i] < samples[i - 1]) {
        return Status::InvalidArgument(util::StrFormat(
            "counter track \"%s\" is not monotone: sample %zu (%.0f) < "
            "sample %zu (%.0f)",
            track.c_str(), i, samples[i], i - 1, samples[i - 1]));
      }
    }
  }
  return Status::OK();
}

std::string TraceSummary::ToString() const {
  std::string out;
  out += util::StrFormat(
      "trace: %llu events (%llu spans, %llu counters, %llu dropped), "
      "wall %.3f s\n",
      static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(spans),
      static_cast<unsigned long long>(counters),
      static_cast<unsigned long long>(dropped_events), wall_seconds);
  out += "\nper-stage utilization:\n";
  for (const StageUtilization& stage : stages) {
    out += util::StrFormat("  %-10s %8llu spans  %10.3f s busy  %6.1f%%\n",
                           stage.name.c_str(),
                           static_cast<unsigned long long>(stage.spans),
                           stage.busy_seconds, stage.utilization * 100.0);
  }
  if (!counter_tracks.empty()) {
    out += "\ncounter tracks:";
    for (const std::string& track : counter_tracks) {
      out += " " + track;
    }
    out += "\n";
  }
  const double cpu = compute_seconds + retire_seconds;
  const double io = prefetch_seconds + evict_seconds;
  out += util::StrFormat(
      "\noverlap: cpu %.3f s, io %.3f s, drive %.3f s\n"
      "  measured efficiency %.2f (perfect-overlap drive %.3f s, "
      "bubble %.3f s)\n",
      cpu, io, drive_seconds, measured_overlap_efficiency,
      perfect_overlap_seconds, bubble_seconds);
  if (!top_stalls.empty()) {
    out += util::StrFormat("\ntop %zu stalls:\n", top_stalls.size());
    for (const StallRecord& stall : top_stalls) {
      out += util::StrFormat(
          "  %10.6f s  position %llu  chunk %llu  tid %llu\n", stall.seconds,
          static_cast<unsigned long long>(stall.position),
          static_cast<unsigned long long>(stall.chunk),
          static_cast<unsigned long long>(stall.tid));
    }
  }
  return out;
}

Result<TraceSummary> AnalyzeTrace(const JsonValue& doc, size_t top_n) {
  const JsonValue* events = TraceEvents(doc);
  if (events == nullptr) {
    return Status::InvalidArgument(
        "trace is not an object with a \"traceEvents\" array");
  }
  TraceSummary summary;
  summary.dropped_events =
      static_cast<uint64_t>(doc.NumberOr("dropped_events", 0));
  summary.events = events->array.size();
  std::unordered_map<std::string, StageUtilization> stages;
  std::vector<std::string> tracks;
  std::vector<StallRecord> stalls;
  double first_start = 0, last_end = 0;
  bool saw_span = false;
  for (const JsonValue& event : events->array) {
    if (!event.is_object()) {
      continue;
    }
    if (IsCounter(event)) {
      ++summary.counters;
      const JsonValue* name = event.Find("name");
      if (name != nullptr && name->is_string() &&
          std::find(tracks.begin(), tracks.end(), name->string_value) ==
              tracks.end()) {
        tracks.push_back(name->string_value);
      }
      continue;
    }
    if (!IsSpan(event)) {
      continue;
    }
    ++summary.spans;
    const double ts = event.NumberOr("ts", 0);
    const double dur = event.NumberOr("dur", 0);
    const double seconds = dur * 1e-6;
    const JsonValue* name = event.Find("name");
    const std::string stage_name =
        name != nullptr && name->is_string() ? name->string_value : "?";
    StageUtilization& stage = stages[stage_name];
    stage.name = stage_name;
    ++stage.spans;
    stage.busy_seconds += seconds;
    if (!saw_span || ts < first_start) {
      first_start = ts;
    }
    if (!saw_span || ts + dur > last_end) {
      last_end = ts + dur;
    }
    saw_span = true;
    if (stage_name == "pass") {
      summary.drive_seconds += seconds;
    } else if (stage_name == "compute") {
      summary.compute_seconds += seconds;
    } else if (stage_name == "retire") {
      summary.retire_seconds += seconds;
    } else if (stage_name == "prefetch") {
      summary.prefetch_seconds += seconds;
    } else if (stage_name == "evict") {
      summary.evict_seconds += seconds;
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->is_object()) {
      if (args->StringOr("race", "") == "stall") {
        StallRecord stall;
        stall.seconds = seconds;
        stall.position = static_cast<uint64_t>(args->NumberOr("position", 0));
        stall.chunk = static_cast<uint64_t>(args->NumberOr("chunk", 0));
        stall.tid = static_cast<uint64_t>(event.NumberOr("tid", 0));
        stalls.push_back(stall);
      }
    }
  }
  summary.wall_seconds = saw_span ? (last_end - first_start) * 1e-6 : 0;
  for (auto& [name, stage] : stages) {
    if (summary.wall_seconds > 0) {
      stage.utilization = stage.busy_seconds / summary.wall_seconds;
    }
    summary.stages.push_back(stage);
  }
  std::sort(summary.stages.begin(), summary.stages.end(),
            [](const StageUtilization& a, const StageUtilization& b) {
              return a.busy_seconds > b.busy_seconds;
            });
  std::sort(tracks.begin(), tracks.end());
  summary.counter_tracks = std::move(tracks);
  std::sort(stalls.begin(), stalls.end(),
            [](const StallRecord& a, const StallRecord& b) {
              return a.seconds > b.seconds;
            });
  if (stalls.size() > top_n) {
    stalls.resize(top_n);
  }
  summary.top_stalls = std::move(stalls);
  // Solve drive = max(cpu, io) + (1 - eff) * min(cpu, io) for eff. When a
  // pass has no I/O-side busy time (fully cached run) there is nothing to
  // overlap and efficiency is reported as 0, not NaN.
  const double cpu = summary.compute_seconds + summary.retire_seconds;
  const double io = summary.prefetch_seconds + summary.evict_seconds;
  const double overlapped = std::min(cpu, io);
  if (overlapped > 0 && summary.drive_seconds > 0) {
    summary.measured_overlap_efficiency = std::min(
        1.0,
        std::max(0.0, (cpu + io - summary.drive_seconds) / overlapped));
  }
  summary.perfect_overlap_seconds = m3::CombineOverlap(cpu, io, 1.0);
  summary.bubble_seconds =
      std::max(0.0, summary.drive_seconds - summary.perfect_overlap_seconds);
  return summary;
}

Result<TraceSummary> AnalyzeTraceFile(const std::string& path, size_t top_n) {
  M3_ASSIGN_OR_RETURN(std::string text, io::ReadFileToString(path));
  auto doc = util::JsonParse(text);
  if (!doc.ok()) {
    return doc.status().WithContext("parsing trace " + path);
  }
  M3_RETURN_IF_ERROR(ValidateTrace(doc.value()).WithContext(path));
  return AnalyzeTrace(doc.value(), top_n);
}

}  // namespace m3::obs
