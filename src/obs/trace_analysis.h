#ifndef M3_OBS_TRACE_ANALYSIS_H_
#define M3_OBS_TRACE_ANALYSIS_H_

/// \file
/// \brief Offline analysis of the Chrome-trace JSON written by
/// obs::TraceRecorder (docs/OBSERVABILITY.md).
///
/// Two consumers:
///  - `tools/trace_summarize` — the CLI that turns a captured trace into
///    per-stage utilization, measured overlap efficiency, and the top-N
///    longest stalls; CI runs it as a smoke gate over the nightly bench
///    trace.
///  - tests — `ValidateTrace` is the machine-checkable definition of "a
///    well-formed m3 trace": parses, spans nest per thread, and the
///    cumulative `exec.*` counter tracks never decrease.
///
/// The overlap-efficiency calculation deliberately mirrors
/// m3::CombineOverlap (core/perf_model.h, max + (1-eff)*min): with cpu = compute+retire
/// busy seconds, io = prefetch+evict busy seconds, and drive = total
/// "pass" span seconds, solving drive = max + (1-eff)*min for eff gives
///   eff = (cpu + io - drive) / min(cpu, io), clamped to [0, 1].
/// That makes a measured trace directly comparable to the fitted
/// PerfModel's overlap_efficiency — the calibration loop's residual check.

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::obs {

/// Aggregate of all "ph":"X" spans sharing one name.
struct StageUtilization {
  std::string name;
  uint64_t spans = 0;
  double busy_seconds = 0;   ///< sum of span durations
  /// busy_seconds / wall_seconds of the whole trace, in [0, 1] unless the
  /// stage runs concurrently with itself on several threads (workers).
  double utilization = 0;
};

/// One span that lost the prefetch race (args.race == "stall").
struct StallRecord {
  double seconds = 0;       ///< span duration
  uint64_t position = 0;    ///< schedule position (args.position)
  uint64_t chunk = 0;       ///< chunk id (args.chunk), 0 if absent
  uint64_t tid = 0;         ///< thread that served the fault
};

/// Everything trace_summarize prints; see AnalyzeTrace.
struct TraceSummary {
  double wall_seconds = 0;       ///< last span end - first span start
  double drive_seconds = 0;      ///< total "pass" span time
  double compute_seconds = 0;    ///< "compute" busy
  double retire_seconds = 0;     ///< "retire" busy
  double prefetch_seconds = 0;   ///< "prefetch" busy
  double evict_seconds = 0;      ///< "evict" busy
  /// Overlap efficiency solved from the measured stage times (see file
  /// doc). 0 when the pass had no I/O-side work to hide.
  double measured_overlap_efficiency = 0;
  /// CombineOverlap(cpu, io, 1.0) — the drive time a perfectly
  /// overlapped pipeline would have needed.
  double perfect_overlap_seconds = 0;
  /// drive - perfect: wall seconds lost to imperfect overlap ("bubble").
  double bubble_seconds = 0;

  std::vector<StageUtilization> stages;       ///< sorted by busy desc
  std::vector<std::string> counter_tracks;    ///< distinct counter names
  std::vector<StallRecord> top_stalls;        ///< longest first

  uint64_t events = 0;    ///< traceEvents entries (incl. metadata)
  uint64_t spans = 0;     ///< "ph":"X" events
  uint64_t counters = 0;  ///< "ph":"C" events
  uint64_t dropped_events = 0;  ///< ring-buffer overwrites (doc field)

  /// Human-readable report (what trace_summarize prints).
  std::string ToString() const;
};

/// \brief Structural validation of a parsed trace document.
///
/// Checks, in order:
///  - the document is an object with a "traceEvents" array;
///  - every event is an object with a string "ph";
///  - "ph":"X" spans carry finite ts/dur and, per tid, nest properly
///    (a span starting inside an earlier span ends within it — stack
///    discipline with a small epsilon for %.3f rounding);
///  - counter tracks named "exec.*" are cumulative and therefore must be
///    monotone non-decreasing in timestamp order.
util::Status ValidateTrace(const util::JsonValue& doc);

/// \brief Aggregate a parsed trace into a TraceSummary.
///
/// Does not validate; call ValidateTrace first when the trace is
/// untrusted. `top_n` bounds top_stalls.
util::Result<TraceSummary> AnalyzeTrace(const util::JsonValue& doc,
                                        size_t top_n = 10);

/// Read + parse + validate + analyze a trace file in one call.
util::Result<TraceSummary> AnalyzeTraceFile(const std::string& path,
                                            size_t top_n = 10);

}  // namespace m3::obs

#endif  // M3_OBS_TRACE_ANALYSIS_H_
