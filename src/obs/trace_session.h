#ifndef M3_OBS_TRACE_SESSION_H_
#define M3_OBS_TRACE_SESSION_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace m3::obs {

/// \file
/// The process-wide trace session: one output path, the TraceRecorder,
/// and the ResidencySampler started and stopped together. This is what
/// `--trace=FILE` / `M3Options::trace_path` /
/// `ClusterExecOptions::trace_path` all funnel into, so a path arriving
/// through any layer produces one coherent trace for the whole process.

struct TraceSessionOptions {
  TraceSessionOptions() {}  // NOLINT: allows `= TraceSessionOptions()`

  /// Ring capacity per thread (TraceRecorderOptions::events_per_thread).
  size_t events_per_thread = 1 << 15;

  /// ResidencySampler period; <= 0 keeps the default (10 ms).
  double sampler_period_seconds = 0.01;

  /// Start the ResidencySampler counter tracks alongside the spans.
  bool start_sampler = true;
};

/// \brief Starts the global session writing to `path` (idempotent: a
/// second caller joins the already-active session and its `path` is
/// ignored). Returns true when this call started the session.
///
/// An atexit finisher is registered on first start, so example binaries
/// that never call StopGlobalTraceAndWrite still get their trace file.
bool StartGlobalTrace(const std::string& path,
                      const TraceSessionOptions& options =
                          TraceSessionOptions());

/// \brief True between StartGlobalTrace and StopGlobalTraceAndWrite.
bool GlobalTraceActive();

/// \brief The active session's output path ("" when inactive).
std::string GlobalTracePath();

/// \brief Stops the sampler and recorder, takes a final counter sample,
/// and writes the trace JSON to the session path. No-op (OK) when no
/// session is active. Call only after in-flight instrumented work has
/// settled (see TraceRecorder's drain contract).
util::Status StopGlobalTraceAndWrite();

}  // namespace m3::obs

#endif  // M3_OBS_TRACE_SESSION_H_
