#ifndef M3_OBS_TRACE_RECORDER_H_
#define M3_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace m3::obs {

/// \file
/// Always-compiled, near-zero-cost-when-off tracing for the execution
/// engine. Every pipeline stage (and the cluster simulator's job
/// boundaries) is bracketed by an OBS_SPAN; with tracing disabled a span
/// costs one relaxed atomic load and a branch. With tracing enabled,
/// events land in per-thread ring buffers (single writer each; the
/// registry mutex is taken once per thread, at first append; a per-ring
/// mutex — uncontended except while a drain is in progress — makes
/// drains safe against live writers) and are drained into Chrome
/// trace-event / Perfetto JSON — `{"traceEvents": [...]}` with pid/tid,
/// thread-name metadata, duration ("ph":"X") spans and counter ("ph":"C")
/// tracks — loadable in https://ui.perfetto.dev or chrome://tracing. See
/// docs/OBSERVABILITY.md.

namespace internal {
/// The process-global enable flag. Read directly (relaxed) by the hot
/// path; written only by TraceRecorder::Start/Stop.
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// \brief True while the recorder is collecting events. The only check
/// instrumentation pays when tracing is off.
///
/// Intentionally relaxed: no data is published through this flag — a
/// stale read only makes a writer record (or skip) one borderline event,
/// and the ring state those writes touch is ordered by the per-ring
/// mutex, not by this load. Start()'s release store pairs with nothing
/// by design.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// \brief Monotonic (steady-clock) timestamp in nanoseconds.
uint64_t TraceNowNs();

/// \brief One typed span/counter argument. Keys and string values must be
/// string literals (static storage): events outlive the scopes that emit
/// them, and copying strings would put allocation on the hot path.
struct TraceArg {
  enum class Type : uint8_t { kNone, kUint, kDouble, kString };

  const char* key = nullptr;
  Type type = Type::kNone;
  uint64_t uint_value = 0;
  double double_value = 0.0;
  const char* string_value = nullptr;
};

inline constexpr size_t kMaxTraceArgs = 4;

/// \brief One recorded event. POD-ish by design: events are copied into
/// ring buffers by value, so no member may own memory.
struct TraceEvent {
  enum class Kind : uint8_t { kSpan, kCounter };

  const char* name = nullptr;      ///< static storage ("compute", ...)
  const char* category = nullptr;  ///< static storage ("exec", "cluster")
  uint64_t start_ns = 0;           ///< TraceNowNs() at open
  uint64_t dur_ns = 0;             ///< span duration (0 for counters)
  const char* counter_series = nullptr;  ///< counters: series inside track
  double counter_value = 0.0;            ///< counters: sampled value
  Kind kind = Kind::kSpan;
  uint8_t num_args = 0;
  TraceArg args[kMaxTraceArgs];
};

/// \brief Recorder configuration (Start()).
struct TraceRecorderOptions {
  TraceRecorderOptions() {}  // NOLINT: allows `= TraceRecorderOptions()`

  /// Ring capacity per thread, in events. When a thread overruns its ring
  /// the oldest events are overwritten (the newest tail of the run is what
  /// debugging wants) and the drop is counted into the trace metadata.
  size_t events_per_thread = 1 << 15;
};

/// \brief Process-wide trace recorder: per-thread ring buffers behind one
/// enable flag, drained to Chrome trace-event JSON.
///
/// Threading contract:
///   - Append/SetThreadName: any thread, while enabled. Each append takes
///     the calling thread's own ring mutex — uncontended (and therefore a
///     couple of atomic ops) except while a drain is copying that ring.
///   - Start/Stop/ToJson/WriteJson/dropped_events: any single controller
///     thread, at any time — including while writer threads are emitting.
///     A drain locks each ring in turn, so it sees a consistent prefix of
///     every thread's events; events appended while the drain runs may or
///     may not be included, but are never torn. (Callers that want a
///     *complete* trace should still quiesce first — pipelines' Run()
///     returns only after its pools went idle — but that is now a
///     completeness concern, not a data-race one.)
class TraceRecorder {
 public:
  /// The process-wide recorder (leaky singleton: worker threads may touch
  /// it during process teardown, so it is never destroyed).
  static TraceRecorder& Get();

  /// Clears all thread buffers, sets the trace epoch to now, and enables
  /// collection. Idempotent while already started (keeps collecting).
  void Start(const TraceRecorderOptions& options = TraceRecorderOptions());

  /// Disables collection. Buffered events stay available for ToJson().
  void Stop();

  bool enabled() const { return TracingEnabled(); }

  /// Appends one event to the calling thread's ring buffer. No-op when
  /// tracing is disabled (racing Stop() benignly records into the kept
  /// buffer).
  void Append(const TraceEvent& event);

  /// Names the calling thread's lane in the trace viewer ("driver",
  /// "pipeline-io", ...). First caller wins; `name` must be a literal.
  void SetThreadName(const char* name);

  /// Attaches `json` (a rendered JSON value) as a top-level document
  /// member next to "traceEvents" — e.g. the final PipelineStats::ToJson()
  /// so the trace carries the same stats schema as bench JSON. Last write
  /// per key wins.
  void SetMetadata(const std::string& key, std::string json);

  /// Renders the Chrome trace-event document. See the threading contract.
  util::Result<std::string> ToJson();

  /// ToJson() + atomic-ish write to `path`.
  util::Status WriteJson(const std::string& path);

  /// Events overwritten by ring wrap-around since Start(), summed over
  /// threads. Also emitted as "dropped_events" metadata.
  uint64_t dropped_events() const;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  friend class TraceRecorderPeer;  // tests

  /// One thread's ring. Single-writer (the owning thread); `mu` arbitrates
  /// the writer against concurrent drains (ToJson/dropped_events) and
  /// Start()'s reset — it is uncontended on the append path whenever no
  /// drain is in flight, which keeps enabled-path appends cheap while
  /// making drain-while-emitting a defined interleaving instead of a data
  /// race.
  struct ThreadBuffer {
    std::mutex mu;  ///< guards every field below
    std::vector<TraceEvent> ring;
    size_t capacity = 0;
    uint64_t appended = 0;  ///< total Append calls; wrap = appended > capacity
    uint32_t tid = 0;       ///< stable lane id, assigned at registration
    const char* name = nullptr;  ///< viewer lane name (literal), or null
  };

  TraceRecorder() = default;
  ThreadBuffer* BufferForThisThread();

  mutable std::mutex mu_;  ///< registry + options + metadata
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  TraceRecorderOptions options_;
  uint64_t epoch_ns_ = 0;  ///< Start() time; trace ts are relative to it
  std::map<std::string, std::string> metadata_;
};

/// \brief Names the calling thread's trace lane (no-op when tracing is
/// off or the thread is already named).
void NameThisThread(const char* name);

/// \brief Emits one counter sample onto `track` (viewer: one chart per
/// track, one line per series). Both names must be string literals.
void EmitCounter(const char* track, const char* series, double value);

/// \brief RAII duration span ("ph":"X"). Construction stamps the start,
/// destruction stamps the duration and appends the event. When tracing is
/// off, construction is one relaxed load + branch and destruction one
/// branch.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (TracingEnabled()) {
      armed_ = true;
      event_.category = category;
      event_.name = name;
      event_.kind = TraceEvent::Kind::kSpan;
      event_.start_ns = TraceNowNs();
    }
  }

  ~ScopedSpan() {
    if (armed_) {
      event_.dur_ns = TraceNowNs() - event_.start_ns;
      TraceRecorder::Get().Append(event_);
    }
  }

  /// True when this span is recording — guard AddArg argument
  /// computation with it to keep the disabled path free.
  bool armed() const { return armed_; }

  /// \name Span arguments (shown in the viewer's selection panel). At most
  /// kMaxTraceArgs stick; extras are dropped. Keys/string values must be
  /// literals.
  /// @{
  void AddArg(const char* key, uint64_t value) {
    TraceArg* arg = NextArg(key);
    if (arg != nullptr) {
      arg->type = TraceArg::Type::kUint;
      arg->uint_value = value;
    }
  }
  void AddArg(const char* key, double value) {
    TraceArg* arg = NextArg(key);
    if (arg != nullptr) {
      arg->type = TraceArg::Type::kDouble;
      arg->double_value = value;
    }
  }
  void AddArg(const char* key, const char* static_string) {
    TraceArg* arg = NextArg(key);
    if (arg != nullptr) {
      arg->type = TraceArg::Type::kString;
      arg->string_value = static_string;
    }
  }
  /// @}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceArg* NextArg(const char* key) {
    if (!armed_ || event_.num_args >= kMaxTraceArgs) {
      return nullptr;
    }
    TraceArg* arg = &event_.args[event_.num_args++];
    arg->key = key;
    return arg;
  }

  bool armed_ = false;
  TraceEvent event_;
};

// Instrumentation macro: opens a span for the rest of the enclosing scope.
//   OBS_SPAN("exec", "compute");
#define OBS_INTERNAL_CAT2(a, b) a##b
#define OBS_INTERNAL_CAT(a, b) OBS_INTERNAL_CAT2(a, b)
#define OBS_SPAN(category, name) \
  ::m3::obs::ScopedSpan OBS_INTERNAL_CAT(obs_span_, __LINE__)(category, name)

}  // namespace m3::obs

#endif  // M3_OBS_TRACE_RECORDER_H_
