#ifndef M3_OBS_RESIDENCY_SAMPLER_H_
#define M3_OBS_RESIDENCY_SAMPLER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace m3::io {
class MemoryMappedFile;
}  // namespace m3::io

namespace m3::obs {

/// \brief Background thread that turns point-in-time residency into
/// counter tracks on the active trace.
///
/// Every `period_seconds` (while tracing is enabled) it emits:
///   - "residency" / resident_bytes — mincore(2)-resident bytes summed
///     over the registered mappings (the time-resolved view of the
///     trailing eviction window doing its job);
///   - "rss" / rss_bytes — process resident set from /proc/self/statm;
///   - "exec.*" tracks — cumulative io::ExecCounters fields (prefetch
///     bytes, evicted bytes, stalls, hits), each monotone non-decreasing
///     so stall bursts line up against the span lanes.
///
/// Mappings register/unregister via ScopedMappingRegistration (a mapping
/// must outlive its registration — MappedDataset owns one for exactly its
/// own lifetime). Sampling a registered mapping that was explicitly
/// Unmap()ed early is benign: CountResidentPages fails and the sample is
/// skipped.
class ResidencySampler {
 public:
  /// The process-wide sampler (leaky singleton, like the TraceRecorder).
  static ResidencySampler& Get();

  /// Starts the sampling thread (idempotent). The thread itself is cheap
  /// while tracing is disabled — it just sleeps — but Stop() is the
  /// expected pairing from the trace session teardown.
  void Start(double period_seconds = 0.01);

  /// Stops and joins the sampling thread (idempotent).
  void Stop();

  bool running() const;

  /// \name Mapping registry (prefer ScopedMappingRegistration).
  /// @{
  void RegisterMapping(const io::MemoryMappedFile* mapping);
  void UnregisterMapping(const io::MemoryMappedFile* mapping);
  /// @}

  /// Takes one sample synchronously on the calling thread (tests; also
  /// the final sample the session takes before draining so short runs
  /// always carry counter tracks).
  void SampleOnce();

  ResidencySampler(const ResidencySampler&) = delete;
  ResidencySampler& operator=(const ResidencySampler&) = delete;

 private:
  ResidencySampler() = default;
  void Loop();

  /// Serializes Start/Stop transitions end to end (held across the
  /// Stop() join). Without it, two racing Stop()s both join `thread_`
  /// (UB), and a Start() racing a Stop() can observe `running_` still
  /// true and return with no thread actually left running. Lock order:
  /// lifecycle_mu_ before mu_; Loop() only ever takes mu_, so holding
  /// lifecycle_mu_ across the join cannot deadlock.
  std::mutex lifecycle_mu_;
  /// Guards the sampler state below (shared with the sampling thread).
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ = false;
  bool stop_requested_ = false;
  double period_seconds_ = 0.01;
  std::vector<const io::MemoryMappedFile*> mappings_;
};

/// \brief RAII registration of a mapping with the sampler. Created by
/// MappedDataset when a trace session is active.
class ScopedMappingRegistration {
 public:
  explicit ScopedMappingRegistration(const io::MemoryMappedFile* mapping)
      : mapping_(mapping) {
    ResidencySampler::Get().RegisterMapping(mapping_);
  }
  ~ScopedMappingRegistration() {
    ResidencySampler::Get().UnregisterMapping(mapping_);
  }

  ScopedMappingRegistration(const ScopedMappingRegistration&) = delete;
  ScopedMappingRegistration& operator=(const ScopedMappingRegistration&) =
      delete;

 private:
  const io::MemoryMappedFile* mapping_;
};

}  // namespace m3::obs

#endif  // M3_OBS_RESIDENCY_SAMPLER_H_
