#include "obs/trace_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "io/file.h"
#include "util/format.h"
#include "util/json.h"

namespace m3::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceRecorder& TraceRecorder::Get() {
  static TraceRecorder* recorder = new TraceRecorder;
  return *recorder;
}

void TraceRecorder::Start(const TraceRecorderOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.events_per_thread == 0) {
    options_.events_per_thread = 1;
  }
  epoch_ns_ = TraceNowNs();
  metadata_.clear();
  for (auto& buffer : buffers_) {
    // Lock order is always registry -> ring; Append takes only its own
    // ring mutex, so a live writer and this reset interleave per event
    // instead of racing.
    std::lock_guard<std::mutex> ring_lock(buffer->mu);
    buffer->capacity = options_.events_per_thread;
    buffer->ring.assign(buffer->capacity, TraceEvent());
    buffer->appended = 0;
  }
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() {
  internal::g_tracing_enabled.store(false, std::memory_order_release);
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  // The registry mutex is paid once per thread; every later Append goes
  // straight to the cached buffer (single writer, no synchronization).
  thread_local ThreadBuffer* tls_buffer = nullptr;
  if (tls_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->capacity = options_.events_per_thread == 0
                           ? TraceRecorderOptions().events_per_thread
                           : options_.events_per_thread;
    buffer->ring.assign(buffer->capacity, TraceEvent());
    buffer->tid = static_cast<uint32_t>(buffers_.size() + 1);
    tls_buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return tls_buffer;
}

void TraceRecorder::Append(const TraceEvent& event) {
  if (!TracingEnabled()) {
    return;
  }
  ThreadBuffer* buffer = BufferForThisThread();
  // Own-ring mutex: uncontended unless a drain (or Start's reset) is
  // touching exactly this ring right now, so the hot path stays a pair of
  // uncontended atomic ops — while a concurrent ToJson() never reads a
  // half-written slot.
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->ring[buffer->appended % buffer->capacity] = event;
  ++buffer->appended;
}

void TraceRecorder::SetThreadName(const char* name) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->name == nullptr) {
    buffer->name = name;
  }
}

void TraceRecorder::SetMetadata(const std::string& key, std::string json) {
  std::lock_guard<std::mutex> lock(mu_);
  metadata_[key] = std::move(json);
}

uint64_t TraceRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> ring_lock(buffer->mu);
    if (buffer->appended > buffer->capacity) {
      dropped += buffer->appended - buffer->capacity;
    }
  }
  return dropped;
}

namespace {

/// Microseconds (Chrome trace unit) relative to the trace epoch, with
/// nanosecond resolution preserved in the fraction.
double ToTraceUs(uint64_t ns, uint64_t epoch_ns) {
  if (ns <= epoch_ns) {
    return 0.0;
  }
  return static_cast<double>(ns - epoch_ns) / 1e3;
}

void AppendArgsJson(const TraceEvent& event, std::string* out) {
  for (size_t i = 0; i < event.num_args; ++i) {
    const TraceArg& arg = event.args[i];
    out->append(util::StrFormat(
        "%s\"%s\": ", i == 0 ? "" : ", ",
        util::JsonEscape(arg.key == nullptr ? "" : arg.key).c_str()));
    switch (arg.type) {
      case TraceArg::Type::kUint:
        out->append(util::StrFormat(
            "%llu", static_cast<unsigned long long>(arg.uint_value)));
        break;
      case TraceArg::Type::kDouble:
        out->append(util::StrFormat(
            "%.9f", std::isfinite(arg.double_value) ? arg.double_value : 0.0));
        break;
      case TraceArg::Type::kString:
        out->append(util::StrFormat(
            "\"%s\"",
            util::JsonEscape(arg.string_value == nullptr ? ""
                                                         : arg.string_value)
                .c_str()));
        break;
      case TraceArg::Type::kNone:
        out->append("null");
        break;
    }
  }
}

}  // namespace

util::Result<std::string> TraceRecorder::ToJson() {
  std::lock_guard<std::mutex> lock(mu_);
  const int pid = static_cast<int>(::getpid());
  std::string out = "{\"displayTimeUnit\": \"ms\"";
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> ring_lock(buffer->mu);
    if (buffer->appended > buffer->capacity) {
      dropped += buffer->appended - buffer->capacity;
    }
  }
  out += util::StrFormat(", \"dropped_events\": %llu",
                         static_cast<unsigned long long>(dropped));
  for (const auto& [key, json] : metadata_) {
    out += util::StrFormat(", \"%s\": %s", util::JsonEscape(key).c_str(),
                           json.c_str());
  }
  out += ", \"traceEvents\": [";
  bool first = true;
  auto comma = [&first, &out] {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n ";
  };
  comma();
  out += util::StrFormat(
      "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, \"tid\": 0, "
      "\"args\": {\"name\": \"m3\"}}",
      pid);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> ring_lock(buffer->mu);
    if (buffer->name == nullptr && buffer->appended == 0) {
      continue;
    }
    comma();
    out += util::StrFormat(
        "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %d, "
        "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
        pid, buffer->tid,
        util::JsonEscape(buffer->name == nullptr
                             ? util::StrFormat("thread-%u", buffer->tid)
                             : buffer->name)
            .c_str());
  }
  for (const auto& buffer : buffers_) {
    // Ring held for the duration of this lane's formatting (a leaf lock:
    // nothing below takes another). The owning thread keeps emitting into
    // its other lanes meanwhile; events it appends to THIS ring during the
    // copy simply wait for the lock and land after the drained window.
    std::lock_guard<std::mutex> ring_lock(buffer->mu);
    const uint64_t count = std::min<uint64_t>(buffer->appended,
                                              buffer->capacity);
    const uint64_t begin = buffer->appended - count;
    for (uint64_t i = begin; i < buffer->appended; ++i) {
      const TraceEvent& event = buffer->ring[i % buffer->capacity];
      comma();
      if (event.kind == TraceEvent::Kind::kCounter) {
        out += util::StrFormat(
            "{\"ph\": \"C\", \"name\": \"%s\", \"pid\": %d, \"tid\": %u, "
            "\"ts\": %.3f, \"args\": {\"%s\": %.3f}}",
            util::JsonEscape(event.name == nullptr ? "" : event.name).c_str(),
            pid, buffer->tid, ToTraceUs(event.start_ns, epoch_ns_),
            util::JsonEscape(event.counter_series == nullptr
                                 ? "value"
                                 : event.counter_series)
                .c_str(),
            std::isfinite(event.counter_value) ? event.counter_value : 0.0);
        continue;
      }
      out += util::StrFormat(
          "{\"ph\": \"X\", \"name\": \"%s\", \"cat\": \"%s\", \"pid\": %d, "
          "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
          util::JsonEscape(event.name == nullptr ? "" : event.name).c_str(),
          util::JsonEscape(event.category == nullptr ? "m3" : event.category)
              .c_str(),
          pid, buffer->tid, ToTraceUs(event.start_ns, epoch_ns_),
          static_cast<double>(event.dur_ns) / 1e3);
      if (event.num_args > 0) {
        out += ", \"args\": {";
        AppendArgsJson(event, &out);
        out += "}";
      }
      out += "}";
    }
  }
  out += "\n]}\n";
  return out;
}

util::Status TraceRecorder::WriteJson(const std::string& path) {
  M3_ASSIGN_OR_RETURN(std::string body, ToJson());
  return io::WriteStringToFile(path, body);
}

void NameThisThread(const char* name) {
  if (!TracingEnabled()) {
    return;
  }
  TraceRecorder::Get().SetThreadName(name);
}

void EmitCounter(const char* track, const char* series, double value) {
  if (!TracingEnabled()) {
    return;
  }
  TraceEvent event;
  event.kind = TraceEvent::Kind::kCounter;
  event.name = track;
  event.counter_series = series;
  event.counter_value = value;
  event.start_ns = TraceNowNs();
  TraceRecorder::Get().Append(event);
}

}  // namespace m3::obs
