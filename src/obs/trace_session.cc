#include "obs/trace_session.h"

#include <cstdlib>
#include <mutex>
#include <utility>

#include "obs/residency_sampler.h"
#include "obs/trace_recorder.h"

namespace m3::obs {

namespace {

struct SessionState {
  std::mutex mu;
  bool active = false;
  bool atexit_registered = false;
  std::string path;
};

SessionState& State() {
  static SessionState* state = new SessionState;
  return *state;
}

void FinishTraceAtExit() {
  // Last-chance flush for binaries that exit without stopping the session
  // (examples, aborted benches). Errors are unreportable here.
  StopGlobalTraceAndWrite().IgnoreError();
}

}  // namespace

bool StartGlobalTrace(const std::string& path,
                      const TraceSessionOptions& options) {
  SessionState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.active) {
    return false;
  }
  state.active = true;
  state.path = path;
  if (!state.atexit_registered) {
    state.atexit_registered = true;
    std::atexit(FinishTraceAtExit);
  }
  TraceRecorderOptions recorder_options;
  recorder_options.events_per_thread = options.events_per_thread;
  TraceRecorder::Get().Start(recorder_options);
  if (options.start_sampler) {
    ResidencySampler::Get().Start(options.sampler_period_seconds);
  }
  return true;
}

bool GlobalTraceActive() {
  SessionState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.active;
}

std::string GlobalTracePath() {
  SessionState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.active ? state.path : std::string();
}

util::Status StopGlobalTraceAndWrite() {
  SessionState& state = State();
  std::string path;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!state.active) {
      return util::Status::OK();
    }
    state.active = false;
    path = std::move(state.path);
    state.path.clear();
  }
  // Final counter sample while tracing is still enabled, so even runs
  // shorter than one sampler period carry counter tracks.
  ResidencySampler::Get().SampleOnce();
  ResidencySampler::Get().Stop();
  TraceRecorder::Get().Stop();
  return TraceRecorder::Get().WriteJson(path);
}

}  // namespace m3::obs
