#include "obs/residency_sampler.h"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "io/io_stats.h"
#include "io/mmap_file.h"
#include "obs/trace_recorder.h"

namespace m3::obs {

namespace {

/// Process RSS in bytes from /proc/self/statm (second field, pages).
/// Returns 0 on any parse trouble — a missing sample, not an error.
uint64_t ReadRssBytes() {
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) {
    return 0;
  }
  unsigned long long total_pages = 0, resident_pages = 0;
  const int matched =
      std::fscanf(file, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(file);
  if (matched != 2) {
    return 0;
  }
  return resident_pages * static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
}

}  // namespace

ResidencySampler& ResidencySampler::Get() {
  static ResidencySampler* sampler = new ResidencySampler;
  return *sampler;
}

void ResidencySampler::Start(double period_seconds) {
  // lifecycle_mu_ serializes whole Start/Stop transitions: a Start racing
  // a Stop waits for the join to finish instead of observing `running_`
  // mid-teardown and returning with no live thread.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  period_seconds_ = period_seconds > 0 ? period_seconds : 0.01;
  if (running_) {
    return;
  }
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ResidencySampler::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) {
      return;
    }
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stop_requested_ = false;
}

bool ResidencySampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void ResidencySampler::RegisterMapping(const io::MemoryMappedFile* mapping) {
  if (mapping == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  mappings_.push_back(mapping);
}

void ResidencySampler::UnregisterMapping(const io::MemoryMappedFile* mapping) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
    if (*it == mapping) {
      mappings_.erase(it);
      return;
    }
  }
}

void ResidencySampler::SampleOnce() {
  if (!TracingEnabled()) {
    return;
  }
  uint64_t resident_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const io::MemoryMappedFile* mapping : mappings_) {
      if (!mapping->is_mapped()) {
        continue;
      }
      auto pages = mapping->CountResidentPages(0, mapping->size());
      if (pages.ok()) {
        resident_bytes += pages.value() *
                          static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
      }
    }
  }
  EmitCounter("residency", "resident_bytes",
              static_cast<double>(resident_bytes));
  EmitCounter("rss", "rss_bytes", static_cast<double>(ReadRssBytes()));
  // Cumulative engine counters: monotone tracks, so a stall burst shows as
  // a slope change exactly under the span that paid for it.
  const io::ExecCounters exec = io::GlobalExecCounters();
  EmitCounter("exec.prefetch_bytes", "bytes",
              static_cast<double>(exec.prefetch_bytes));
  EmitCounter("exec.bytes_evicted", "bytes",
              static_cast<double>(exec.bytes_evicted));
  EmitCounter("exec.stalls", "count", static_cast<double>(exec.stalls));
  EmitCounter("exec.prefetch_hits", "count",
              static_cast<double>(exec.prefetch_hits));
}

void ResidencySampler::Loop() {
  NameThisThread("residency-sampler");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const auto period = std::chrono::duration<double>(period_seconds_);
    cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) {
      return;
    }
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

}  // namespace m3::obs
