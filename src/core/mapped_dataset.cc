#include "core/mapped_dataset.h"

#include "obs/trace_session.h"

namespace m3 {

using util::Result;
using util::Status;

Result<MappedDataset> MappedDataset::Open(const std::string& path,
                                          M3Options options) {
  M3_ASSIGN_OR_RETURN(data::DatasetMeta meta, data::ReadDatasetMeta(path));
  io::MemoryMappedFile::Options map_options;
  map_options.mode = io::MemoryMappedFile::Mode::kReadOnly;
  map_options.populate = options.populate;
  M3_ASSIGN_OR_RETURN(io::MemoryMappedFile mapping,
                      io::MemoryMappedFile::Map(path, map_options));
  MappedDataset dataset(
      std::make_unique<io::MemoryMappedFile>(std::move(mapping)), meta,
      options);
  M3_RETURN_IF_ERROR(dataset.Advise(options.advice));
  // Tracing is process-global: the first dataset opened with a trace path
  // starts the session; any dataset opened while a session is active joins
  // the residency sampler so its resident-bytes show up as a counter track.
  if (!options.trace_path.empty()) {
    obs::StartGlobalTrace(options.trace_path);
  }
  if (obs::GlobalTraceActive()) {
    dataset.trace_registration_ =
        std::make_unique<obs::ScopedMappingRegistration>(
            dataset.mapping_.get());
  }
  return dataset;
}

MappedDataset::MappedDataset(std::unique_ptr<io::MemoryMappedFile> mapping,
                             data::DatasetMeta meta, M3Options options)
    : mapping_(std::move(mapping)), meta_(meta), options_(options) {
  // The emulator's linear trailing cursor only models ascending scans;
  // under a non-sequential scan order the engine's per-visited-chunk
  // window enforces the budget instead (see pipeline()).
  if (options_.ram_budget_bytes > 0 &&
      options_.scan_order == exec::ScanOrder::kSequential) {
    budget_ = std::make_unique<RamBudgetEmulator>(
        mapping_.get(), options_.ram_budget_bytes,
        meta_.cols * sizeof(double), meta_.features_offset);
  }
}

la::ConstMatrixView MappedDataset::features() const {
  // m3-aligned: ReadDatasetMeta rejects misaligned section offsets
  // (data/dataset.cc), and the mmap base is page-aligned.
  const double* base = reinterpret_cast<const double*>(
      mapping_->As<const char>() + meta_.features_offset);
  return la::ConstMatrixView(base, meta_.rows, meta_.cols);
}

la::ConstVectorView MappedDataset::labels() const {
  // m3-aligned: ReadDatasetMeta rejects misaligned section offsets.
  const double* base = reinterpret_cast<const double*>(
      mapping_->As<const char>() + meta_.labels_offset);
  return la::ConstVectorView(base, meta_.rows);
}

std::vector<double> MappedDataset::CopyLabels() const {
  la::ConstVectorView view = labels();
  return std::vector<double>(view.begin(), view.end());
}

ml::ScanHooks MappedDataset::MakeScanHooks() {
  if (budget_ != nullptr) {
    return budget_->MakeHooks();
  }
  return ml::ScanHooks();
}

uint64_t MappedDataset::ScanChunkRows() const {
  return la::AutoChunkRows(meta_.cols, options_.chunk_rows);
}

exec::ChunkPipeline& MappedDataset::pipeline() {
  if (pipeline_ == nullptr) {
    exec::MappedRegion region;
    region.mapping = mapping_.get();
    region.base_offset = meta_.features_offset;
    region.row_bytes = meta_.cols * sizeof(double);
    exec::PipelineOptions options;
    options.readahead_chunks = options_.readahead_chunks;
    options.num_workers = options_.pipeline_workers;
    options.advice = options_.advice;
    // kAuto probes WILLNEED efficacy against this dataset's own mapping —
    // the filesystem the scan will actually fault from.
    options.prefetch_backend = options_.prefetch_backend;
    // Under a sequential scan order, budget eviction stays with the
    // RamBudgetEmulator via ScanHooks so its counters keep accounting for
    // all eviction work. A permuted order has no linear cursor, so the
    // engine's trailing window over visited chunks enforces the budget.
    options.ram_budget_bytes =
        options_.scan_order == exec::ScanOrder::kSequential
            ? 0
            : options_.ram_budget_bytes;
    pipeline_ = std::make_unique<exec::ChunkPipeline>(region, options);
  }
  return *pipeline_;
}

exec::ChunkSchedule MappedDataset::MakeScanSchedule(size_t num_chunks) const {
  return exec::ChunkSchedule::Make(options_.scan_order, num_chunks,
                                   options_.scan_seed + scan_passes_,
                                   options_.scan_stride,
                                   options_.scan_stride_offset);
}

void MappedDataset::ForEachChunk(const exec::ChunkFn& fn) {
  ml::ScanHooks hooks = MakeScanHooks();
  if (hooks.before_pass) {
    hooks.before_pass(scan_passes_);
  }
  const la::RowChunker chunker(rows(), ScanChunkRows());
  const exec::ChunkSchedule schedule = MakeScanSchedule(chunker.NumChunks());
  ++scan_passes_;
  pipeline().Run(
      chunker, schedule,
      [&fn](size_t, size_t chunk, size_t row_begin, size_t row_end) {
        fn(chunk, row_begin, row_end);
      },
      [&](size_t, size_t, size_t row_begin, size_t row_end) {
        if (hooks.after_chunk) {
          hooks.after_chunk(row_begin, row_end);
        }
      });
}

Status MappedDataset::Advise(io::Advice advice) {
  return mapping_->AdviseRange(advice, meta_.features_offset,
                               meta_.FeatureBytes());
}

Status MappedDataset::EvictAll() {
  return mapping_->Evict(meta_.features_offset, meta_.FeatureBytes());
}

}  // namespace m3
