#ifndef M3_CORE_MODEL_FIT_H_
#define M3_CORE_MODEL_FIT_H_

/// \file
/// \brief Fits the M3 performance model from measured engine execution.
///
/// `core/perf_model` predicts pass times from platform constants; the
/// execution engine measures what actually happened (`exec::PipelineStats`:
/// per-stage seconds, hit/stall counts, prefetch bytes). This is the layer
/// that closes the loop — the paper's §4 "profile and predict" — by fitting
/// every model parameter from a measured run instead of assuming it:
///
///   measured PipelineStats ──FitFromStats──▶ PerfModelParams
///        ▲                                        │ PredictPass / PredictRun
///        │          residual (predicted−measured) ▼
///   another measured run ◀────────────────── prediction
///
/// What each parameter is fit from:
///   - `cpu_seconds_per_byte`   — (compute + retire) seconds over the bytes
///                                the passes scanned. Calibrate on a *warm*
///                                run: on a cold one, stalled chunks serve
///                                their page faults inside the compute
///                                functor, inflating the CPU term.
///   - `disk_read_bytes_per_sec`— prefetch throughput on a run that
///                                actually stalled (MeasuredReadBandwidth):
///                                when the disk always wins the race the
///                                stats only bound bandwidth from below,
///                                and the caller's fallback (a disk probe)
///                                is kept.
///   - `overlap_efficiency`     — how much of min(cpu, io) the measured
///                                drive time shows was hidden, replacing
///                                the implicit perfect `max(cpu, io)`.
///   - `pass_overhead_seconds`  — optionally, the per-pass drive time left
///                                over beyond cpu + io (dispatch cost).
///
/// The cluster analogue is `cluster::ClusterConfig::CalibrateFromMeasured`,
/// which fits the simulator's spill/overlap constants from per-instance
/// `JobStats::instance_exec` through the same helpers.

#include <cstdint>
#include <string>

#include "core/perf_model.h"
#include "exec/pipeline_stats.h"
#include "util/result.h"

namespace m3 {

/// \brief Knobs for FitFromStats.
struct FitOptions {
  FitOptions() {}  // NOLINT: allows `= FitOptions()` defaults

  /// RAM assumed by the fitted params; 0 uses this machine's total RAM.
  uint64_t ram_bytes = 0;

  /// Storage bandwidth kept when the stats carry no stall evidence to fit
  /// one from (see MeasuredReadBandwidth). Feed io::ProbeDisk's measured
  /// sequential read rate here; the default is the paper's ~1 GB/s SSD.
  double fallback_disk_bytes_per_sec = 1e9;

  /// Attribute the per-pass drive time beyond cpu + io to
  /// `pass_overhead_seconds`. Off (the default) keeps overhead at zero so
  /// the fit's residual *reports* unmodeled time instead of absorbing it.
  bool fit_pass_overhead = false;
};

/// \brief A fitted model plus goodness-of-fit diagnostics.
///
/// The residual fields re-apply the fitted model to the calibration run
/// itself. They are zero when the three measured aggregates (cpu, io,
/// drive) are internally consistent with *some* overlap in [0, 1]; a
/// nonzero residual means the run fell outside the model family
/// (overlap_raw clamped — e.g. drive exceeded cpu + io and overhead
/// fitting was off). Cross-workload residuals — the interesting ones —
/// come from predicting a *different* measured run with `params`.
struct ModelFitResult {
  PerfModelParams params;

  uint64_t bytes_scanned = 0;  ///< calibration input: bytes over all passes
  uint64_t passes = 0;         ///< measured Run() invocations

  double cpu_seconds = 0;       ///< measured compute + retire seconds
  double io_seconds = 0;        ///< measured prefetch + evict seconds
  double measured_seconds = 0;  ///< measured drive (wall) seconds
  double predicted_seconds = 0;  ///< fitted model re-applied to the run
  double residual_seconds = 0;   ///< predicted − measured
  double relative_residual = 0;  ///< |residual| / measured

  /// Overlap estimate before clamping to [0, 1]: > 1 means drive was even
  /// shorter than max(cpu, io) (timer noise), < 0 means drive exceeded
  /// cpu + io (unmodeled per-pass overhead).
  double overlap_raw = 0;
  /// Fraction of scanned bytes whose chunk lost the prefetch race.
  double stall_byte_fraction = 0;
  /// True when `disk_read_bytes_per_sec` kept the caller's fallback
  /// because the run never stalled on storage.
  bool disk_bandwidth_from_fallback = false;

  std::string ToString() const;
};

/// \brief Storage read bandwidth measured by a stats block, bytes/sec.
///
/// Only a run that *stalled* observes raw storage speed — when every
/// prefetch wins its race, the stats bound bandwidth from below and
/// `fallback` is returned. The time base prefers the prefetch stage's own
/// seconds (real read time under the pread/uring backends) and falls back
/// to the drive time not accounted for by compute (madvise's WILLNEED
/// returns before the I/O it triggers, so its prefetch_seconds measure
/// submission, not reading).
double MeasuredReadBandwidth(const exec::PipelineStats& stats,
                             double fallback);

/// \brief Fits PerfModelParams from one measured stats block.
///
/// `bytes_scanned` is the total bytes the block's passes visited (pass
/// bytes × passes for repeated scans of one dataset). Returns
/// InvalidArgument when the stats carry nothing to fit from (no passes,
/// no drive time, or no compute time).
util::Result<ModelFitResult> FitFromStats(const exec::PipelineStats& stats,
                                          uint64_t bytes_scanned,
                                          const FitOptions& options =
                                              FitOptions());

}  // namespace m3

#endif  // M3_CORE_MODEL_FIT_H_
