#ifndef M3_CORE_RAM_BUDGET_H_
#define M3_CORE_RAM_BUDGET_H_

#include <cstdint>

#include "io/mmap_file.h"
#include "ml/objective.h"

namespace m3 {

/// \brief Emulates a machine whose RAM holds only `budget_bytes` of the
/// mapped feature region.
///
/// The paper's out-of-core regime (190 GB dataset, 32 GB RAM) cannot be
/// reproduced directly on a development machine, so this emulator recreates
/// its *mechanism*: under a cyclic sequential scan with LRU caching, every
/// page is evicted before the scan returns to it whenever the dataset
/// exceeds RAM — the steady-state hit rate is zero. The emulator registers
/// ScanHooks on a training objective; as the scan advances it evicts pages
/// more than `budget_bytes` behind the cursor (madvise + fadvise DONTNEED),
/// so the next pass takes real page faults and real storage reads through
/// the very same mmap code path the paper exercises.
///
/// Statistics are exposed so benches can report how much eviction work the
/// emulation performed. On kernels that silently ignore page eviction
/// (see io::GetPlatformCapabilities), the calls still execute but physical
/// re-reads may not occur; the PerfModel covers that case analytically.
class RamBudgetEmulator {
 public:
  /// \param mapping   the live mapping that backs the scanned matrix
  /// \param budget_bytes emulated RAM capacity for the feature region
  /// \param row_bytes bytes per matrix row (stride in the mapped file)
  /// \param base_offset byte offset of row 0 inside the mapping
  RamBudgetEmulator(io::MemoryMappedFile* mapping, uint64_t budget_bytes,
                    uint64_t row_bytes, uint64_t base_offset);

  /// Hooks to install on a training objective (ScanHooks composition:
  /// callers may wrap these if they need their own instrumentation too).
  ml::ScanHooks MakeHooks();

  /// Eviction calls issued so far.
  uint64_t evictions() const { return evictions_; }
  /// Bytes evicted so far (page-rounded by the kernel).
  uint64_t bytes_evicted() const { return bytes_evicted_; }
  /// Full passes observed.
  uint64_t passes() const { return passes_; }
  uint64_t budget_bytes() const { return budget_bytes_; }

 private:
  void OnChunk(size_t row_begin, size_t row_end);
  void OnPass(size_t pass_index);

  io::MemoryMappedFile* mapping_;
  uint64_t budget_bytes_;
  uint64_t row_bytes_;
  uint64_t base_offset_;
  uint64_t evict_cursor_ = 0;  // bytes [base, base+cursor) already evicted
  uint64_t evictions_ = 0;
  uint64_t bytes_evicted_ = 0;
  uint64_t passes_ = 0;
};

}  // namespace m3

#endif  // M3_CORE_RAM_BUDGET_H_
