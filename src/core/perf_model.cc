#include "core/perf_model.h"

#include <algorithm>

#include "util/format.h"
#include "util/logging.h"

namespace m3 {

double CombineOverlap(double cpu_seconds, double io_seconds,
                      double overlap_efficiency) {
  const double longer = std::max(cpu_seconds, io_seconds);
  const double shorter = std::min(cpu_seconds, io_seconds);
  return longer + (1.0 - overlap_efficiency) * shorter;
}

PerfModel::PerfModel(PerfModelParams params) : params_(params) {
  M3_CHECK(params_.disk_read_bytes_per_sec > 0, "disk bandwidth must be > 0");
  M3_CHECK(params_.overlap_efficiency >= 0 && params_.overlap_efficiency <= 1,
           "overlap_efficiency must be in [0, 1]");
}

namespace {

/// Prediction for a pass whose storage misses are already decided — the
/// one place stage seconds turn into wall seconds, shared by the steady
/// and cold predictions so their accounting cannot drift apart.
PassPrediction PredictWithMisses(const PerfModelParams& params,
                                 uint64_t dataset_bytes,
                                 uint64_t miss_bytes) {
  PassPrediction prediction;
  prediction.cpu_seconds =
      params.cpu_seconds_per_byte * static_cast<double>(dataset_bytes);
  prediction.miss_bytes = miss_bytes;
  prediction.io_seconds = static_cast<double>(prediction.miss_bytes) /
                          params.disk_read_bytes_per_sec;
  prediction.seconds =
      CombineOverlap(prediction.cpu_seconds, prediction.io_seconds,
                     params.overlap_efficiency) +
      params.pass_overhead_seconds;
  prediction.io_bound = prediction.io_seconds > prediction.cpu_seconds;
  prediction.cpu_utilization =
      prediction.seconds > 0 ? prediction.cpu_seconds / prediction.seconds
                             : 0.0;
  return prediction;
}

}  // namespace

PassPrediction PerfModel::PredictPass(uint64_t dataset_bytes) const {
  const bool fits = dataset_bytes <= params_.ram_bytes;
  return PredictWithMisses(params_, dataset_bytes,
                           fits ? 0 : dataset_bytes);
}

PassPrediction PerfModel::PredictColdPass(uint64_t dataset_bytes) const {
  // Cold: data comes from storage regardless of whether it will fit in
  // RAM afterwards.
  return PredictWithMisses(params_, dataset_bytes, dataset_bytes);
}

double PerfModel::PredictRun(uint64_t dataset_bytes,
                             size_t num_passes) const {
  if (num_passes == 0) {
    return 0.0;
  }
  return PredictColdPass(dataset_bytes).seconds +
         PredictPass(dataset_bytes).seconds *
             static_cast<double>(num_passes - 1);
}

double PerfModel::FitCpuSecondsPerByte(double measured_seconds,
                                       uint64_t dataset_bytes,
                                       size_t num_passes) {
  M3_CHECK(dataset_bytes > 0 && num_passes > 0, "empty measurement");
  return measured_seconds /
         (static_cast<double>(dataset_bytes) *
          static_cast<double>(num_passes));
}

std::string PerfModel::ToString() const {
  return util::StrFormat(
      "cpu=%.3g s/B disk=%s/s ram=%s overhead=%.3g s/pass overlap=%.2f",
      params_.cpu_seconds_per_byte,
      util::HumanBytes(
          static_cast<uint64_t>(params_.disk_read_bytes_per_sec))
          .c_str(),
      util::HumanBytes(params_.ram_bytes).c_str(),
      params_.pass_overhead_seconds, params_.overlap_efficiency);
}

std::vector<SweepPoint> PredictSweep(const PerfModel& model,
                                     const std::vector<uint64_t>& sizes,
                                     size_t num_passes) {
  std::vector<SweepPoint> points;
  points.reserve(sizes.size());
  for (uint64_t bytes : sizes) {
    SweepPoint point;
    point.dataset_bytes = bytes;
    point.predicted_seconds = model.PredictRun(bytes, num_passes);
    const PassPrediction pass = model.PredictPass(bytes);
    point.out_of_core = pass.miss_bytes > 0;
    point.cpu_utilization = pass.cpu_utilization;
    points.push_back(point);
  }
  return points;
}

}  // namespace m3
