#include "core/ram_budget.h"

#include <algorithm>

#include "io/io_stats.h"
#include "obs/trace_recorder.h"
#include "util/logging.h"

namespace m3 {

RamBudgetEmulator::RamBudgetEmulator(io::MemoryMappedFile* mapping,
                                     uint64_t budget_bytes,
                                     uint64_t row_bytes, uint64_t base_offset)
    : mapping_(mapping),
      budget_bytes_(budget_bytes),
      row_bytes_(row_bytes),
      base_offset_(base_offset) {
  M3_CHECK(mapping_ != nullptr, "null mapping");
  M3_CHECK(row_bytes_ > 0, "row_bytes must be positive");
}

ml::ScanHooks RamBudgetEmulator::MakeHooks() {
  ml::ScanHooks hooks;
  hooks.after_chunk = [this](size_t row_begin, size_t row_end) {
    OnChunk(row_begin, row_end);
  };
  hooks.before_pass = [this](size_t pass_index) { OnPass(pass_index); };
  return hooks;
}

void RamBudgetEmulator::OnPass(size_t) {
  ++passes_;
  // A new pass starts from row 0; whatever the previous pass evicted is
  // gone, and the tail window it left resident will be evicted as this
  // pass's cursor moves past budget distance. Reset the cursor so eviction
  // tracks this pass's progress.
  evict_cursor_ = 0;
}

void RamBudgetEmulator::OnChunk(size_t row_begin, size_t row_end) {
  (void)row_begin;
  if (budget_bytes_ == 0) {
    return;
  }
  // Scan cursor in bytes relative to the start of the feature region.
  const uint64_t cursor = row_end * row_bytes_;
  if (cursor <= budget_bytes_) {
    return;  // the whole prefix still fits in the emulated RAM
  }
  // Evict everything more than `budget` behind the cursor.
  const uint64_t evict_end = cursor - budget_bytes_;
  if (evict_end <= evict_cursor_) {
    return;
  }
  const uint64_t offset = base_offset_ + evict_cursor_;
  const uint64_t length = evict_end - evict_cursor_;
  // The emulator is the evict stage of trainer-driven scans, so it traces
  // under the same span name as the pipeline's background evictor.
  obs::ScopedSpan span("exec", "evict");
  if (span.armed()) {
    span.AddArg("bytes", length);
  }
  // Best effort: an eviction failure only weakens the emulation.
  util::Status status = mapping_->Evict(offset, length);
  if (status.ok()) {
    ++evictions_;
    bytes_evicted_ += length;
    io::ExecCounters delta;
    delta.evictions = 1;
    delta.bytes_evicted = length;
    io::AddExecCounters(delta);
  }
  evict_cursor_ = evict_end;
}

}  // namespace m3
