#ifndef M3_CORE_ACCESS_PATTERN_H_
#define M3_CORE_ACCESS_PATTERN_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace m3 {

/// \brief Summary statistics of a recorded row-access trace.
struct AccessPatternSummary {
  uint64_t num_accesses = 0;
  uint64_t unique_rows = 0;
  /// Fraction of accesses with stride exactly +1 (pure sequential scan
  /// approaches 1; uniform random access approaches 0).
  double sequential_fraction = 0;
  /// Mean |row_t - row_{t-1}|.
  double mean_abs_stride = 0;
  /// Fraction of accesses whose 4 KiB-page (given row_bytes) equals or
  /// follows the previous access's page — the readahead-friendliness proxy.
  double page_locality = 0;

  std::string ToString() const;
};

/// \brief Records row access order to study algorithm locality (§4 of the
/// paper: "extensively study the memory access patterns and locality of
/// algorithms (e.g., sequential scans vs random access)").
///
/// Not thread-safe: record from the scan driver, not from workers. For
/// long traces, construct with a sampling period to bound memory.
class AccessPatternTracer {
 public:
  /// \param row_bytes bytes per row (to map rows onto pages)
  /// \param sample_period record every k-th access (1 = all)
  explicit AccessPatternTracer(uint64_t row_bytes, uint64_t sample_period = 1);

  /// Records an access to `row`.
  void Record(uint64_t row);

  /// Records accesses to all rows in [begin, end) in order.
  void RecordRange(uint64_t begin, uint64_t end);

  /// Computes the summary over everything recorded so far.
  AccessPatternSummary Summarize() const;

  /// Recorded (possibly sampled) trace.
  const std::vector<uint64_t>& trace() const { return trace_; }

  void Clear();

 private:
  uint64_t row_bytes_;
  uint64_t sample_period_;
  uint64_t tick_ = 0;
  std::vector<uint64_t> trace_;
};

}  // namespace m3

#endif  // M3_CORE_ACCESS_PATTERN_H_
