#ifndef M3_CORE_MAPPED_DATASET_H_
#define M3_CORE_MAPPED_DATASET_H_

#include <memory>
#include <string>

#include "core/options.h"
#include "core/ram_budget.h"
#include "data/dataset.h"
#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "io/mmap_file.h"
#include "la/chunker.h"
#include "obs/residency_sampler.h"
#include "la/matrix.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3 {

/// \brief An M3 dataset file mapped into the address space.
///
/// The central M3 abstraction: open a dataset of any size and receive
/// matrix/vector *views* indistinguishable from in-memory data. Algorithms
/// take the views; the OS pages the file in and out. With
/// `M3Options::ram_budget_bytes` set, a RamBudgetEmulator rides along and
/// forces the out-of-core regime at laptop scale.
///
///   auto ds = m3::MappedDataset::Open("digits.m3").ValueOrDie();
///   trainer.Train(ds.features(), ds.labels());   // unchanged ML code
class MappedDataset {
 public:
  /// Maps the dataset at `path` read-only.
  static util::Result<MappedDataset> Open(const std::string& path,
                                          M3Options options = M3Options());

  MappedDataset(MappedDataset&&) = default;
  MappedDataset& operator=(MappedDataset&&) = default;
  MappedDataset(const MappedDataset&) = delete;
  MappedDataset& operator=(const MappedDataset&) = delete;

  /// The n x d feature matrix view over the mapping.
  la::ConstMatrixView features() const;

  /// The n labels view over the mapping.
  la::ConstVectorView labels() const;

  /// Copies the labels out (they are small) — convenient for metrics.
  std::vector<double> CopyLabels() const;

  uint64_t rows() const { return meta_.rows; }
  uint64_t cols() const { return meta_.cols; }
  uint32_t num_classes() const { return meta_.num_classes; }
  uint64_t feature_bytes() const { return meta_.FeatureBytes(); }
  const std::string& path() const { return mapping_->path(); }
  const data::DatasetMeta& meta() const { return meta_; }

  /// The underlying mapping (residency inspection, manual advice, ...).
  io::MemoryMappedFile& mapping() { return *mapping_; }
  const io::MemoryMappedFile& mapping() const { return *mapping_; }

  /// Scan hooks for training objectives. When a RAM budget is configured
  /// the hooks evict behind the scan; otherwise they are empty (no-ops).
  ml::ScanHooks MakeScanHooks();

  /// The emulator, or nullptr when no budget is configured.
  RamBudgetEmulator* ram_budget() { return budget_.get(); }

  /// The pipelined execution engine bound to the feature region, created
  /// lazily from the open options (readahead_chunks, pipeline_workers,
  /// advice). Eviction under a RAM budget stays with the emulator hooks,
  /// so budget accounting is identical with and without the engine.
  exec::ChunkPipeline& pipeline();

  /// \name Pipelined chunk scans over the feature rows.
  ///
  /// ForEachChunk drives `fn(chunk_index, row_begin, row_end)` over the
  /// whole feature matrix in `M3Options::scan_order` order (`chunk_rows()`
  /// rows per chunk) with prefetch ahead of the scan — along the
  /// schedule's permutation — and budget eviction behind it.
  /// MapReduceChunks additionally collects one `T` partial per chunk and
  /// folds them in ascending *visit* order — deterministic at any engine
  /// worker count for a fixed schedule. Both perform exactly one full
  /// pass; shuffled order reshuffles every pass (scan_seed + pass).
  /// @{
  void ForEachChunk(const exec::ChunkFn& fn);

  template <typename T, typename MapFn, typename ReduceFn>
  void MapReduceChunks(MapFn&& map, ReduceFn&& reduce) {
    ml::ScanHooks hooks = MakeScanHooks();
    if (hooks.before_pass) {
      hooks.before_pass(scan_passes_);
    }
    const la::RowChunker chunker(rows(), ScanChunkRows());
    const exec::ChunkSchedule schedule = MakeScanSchedule(chunker.NumChunks());
    ++scan_passes_;
    exec::MapReduceChunks<T>(
        &pipeline(), chunker, schedule,
        [&map](size_t chunk, size_t row_begin, size_t row_end) {
          return map(chunk, row_begin, row_end);
        },
        [&](size_t chunk, T&& partial) {
          reduce(chunk, std::move(partial));
          if (hooks.after_chunk) {
            const la::RowChunker::Range range = chunker.Chunk(chunk);
            hooks.after_chunk(range.begin, range.end);
          }
        });
  }
  /// @}

  /// The visit order for the next dataset-driven scan: pass index
  /// `scan_passes()` under the open options (sequential by default;
  /// shuffled reshuffles per pass with scan_seed + pass).
  exec::ChunkSchedule MakeScanSchedule(size_t num_chunks) const;

  /// Dataset-driven scan passes performed so far (ForEachChunk /
  /// MapReduceChunks; training objectives count their own passes).
  size_t scan_passes() const { return scan_passes_; }

  /// Chunk size (rows) the options request for training scans.
  uint64_t chunk_rows() const { return options_.chunk_rows; }

  /// Effective rows per chunk for dataset-driven scans (auto when the
  /// options leave chunk_rows at 0).
  uint64_t ScanChunkRows() const;

  /// Re-applies an madvise hint to the feature region.
  util::Status Advise(io::Advice advice);

  /// Drops the entire feature region from RAM and page cache (cold-cache
  /// benchmark preamble).
  util::Status EvictAll();

 private:
  MappedDataset(std::unique_ptr<io::MemoryMappedFile> mapping,
                data::DatasetMeta meta, M3Options options);

  // unique_ptr keeps the mapping address stable across moves so the
  // emulator's pointer (and any outstanding views) remain valid.
  std::unique_ptr<io::MemoryMappedFile> mapping_;
  data::DatasetMeta meta_;
  M3Options options_;
  std::unique_ptr<RamBudgetEmulator> budget_;
  std::unique_ptr<exec::ChunkPipeline> pipeline_;
  /// Set while the global trace session is active: the residency sampler
  /// tracks this dataset's mincore-resident bytes for its lifetime.
  std::unique_ptr<obs::ScopedMappingRegistration> trace_registration_;
  size_t scan_passes_ = 0;  ///< ForEachChunk/MapReduceChunks passes
};

}  // namespace m3

#endif  // M3_CORE_MAPPED_DATASET_H_
