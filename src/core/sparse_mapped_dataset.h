#ifndef M3_CORE_SPARSE_MAPPED_DATASET_H_
#define M3_CORE_SPARSE_MAPPED_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "core/options.h"
#include "data/sparse_dataset.h"
#include "exec/chunk_pipeline.h"
#include "io/mmap_file.h"
#include "la/chunker.h"
#include "la/sparse.h"
#include "obs/residency_sampler.h"
#include "util/result.h"

namespace m3 {

/// \brief Translates CSR row ranges to the byte spans a scan touches.
///
/// A chunk of rows [b, e) reads three spans: its row_ptr slice (b..e
/// inclusive of the closing offset), its col_idx slice and its values
/// slice — the latter two located via row_ptr, so spans are a pure
/// function of the row range as exec::ChunkByteMap requires. This is the
/// whole sparse-specific surface the engine sees: prefetch backends,
/// schedules, eviction, counters and tracing consume spans and carry
/// over unchanged.
class CsrByteMap final : public exec::ChunkByteMap {
 public:
  /// `row_ptr` points into the mapping described by `meta` and must
  /// outlive the map.
  CsrByteMap(const data::SparseDatasetMeta& meta, const uint64_t* row_ptr)
      : meta_(meta), row_ptr_(row_ptr) {}

  void AppendSpans(size_t row_begin, size_t row_end,
                   std::vector<exec::ByteSpan>* out) const override;
  exec::ByteSpan Extent() const override;

 private:
  data::SparseDatasetMeta meta_;
  const uint64_t* row_ptr_;
};

/// \brief An M3 sparse (CSR) dataset file mapped into the address space.
///
/// The sparse twin of MappedDataset: open a CSR file of any size and
/// receive a la::CsrView indistinguishable from in-memory data, plus a
/// ChunkPipeline whose prefetch/evict stages follow the CSR sections via
/// CsrByteMap. Open() validates the structure end to end (monotone
/// row_ptr, header/section agreement, column bounds) before handing out
/// a view, so the kernels can trust their invariants — the price is one
/// O(rows + nnz) sequential pass over sections a training scan was about
/// to fault in anyway.
class MappedSparseDataset {
 public:
  static util::Result<MappedSparseDataset> Open(const std::string& path,
                                                M3Options options = M3Options());

  MappedSparseDataset(MappedSparseDataset&&) = default;
  MappedSparseDataset& operator=(MappedSparseDataset&&) = default;
  MappedSparseDataset(const MappedSparseDataset&) = delete;
  MappedSparseDataset& operator=(const MappedSparseDataset&) = delete;

  /// The validated CSR view over the mapping.
  la::CsrView csr() const;

  /// The n labels view over the mapping.
  la::ConstVectorView labels() const;

  /// Copies the labels out (they are small) — convenient for metrics.
  std::vector<double> CopyLabels() const;

  uint64_t rows() const { return meta_.rows; }
  uint64_t cols() const { return meta_.cols; }
  uint64_t nnz() const { return meta_.nnz; }
  uint32_t num_classes() const { return meta_.num_classes; }
  /// Feature bytes a full pass scans (col_idx + values sections).
  uint64_t payload_bytes() const { return meta_.PayloadBytes(); }
  const std::string& path() const { return mapping_->path(); }
  const data::SparseDatasetMeta& meta() const { return meta_; }

  io::MemoryMappedFile& mapping() { return *mapping_; }
  const io::MemoryMappedFile& mapping() const { return *mapping_; }

  /// The row→bytes translation bound to this mapping.
  const CsrByteMap& byte_map() const { return *byte_map_; }

  /// Target payload bytes per chunk from the open options (0 = auto).
  uint64_t ChunkNnzBytes() const;

  /// The nnz-budget chunker for this dataset's row_ptr. With
  /// `M3Options::chunk_rows` set the caller wants uniform row chunks;
  /// build a la::RowChunker instead (ChunkedObjective does).
  la::SparseChunker MakeChunker() const;

  /// The pipelined execution engine bound to the CSR sections via
  /// byte_map(), created lazily from the open options.
  exec::ChunkPipeline& pipeline();

  /// Drops the CSR payload sections from RAM and page cache (cold-cache
  /// benchmark preamble).
  util::Status EvictAll();

 private:
  MappedSparseDataset(std::unique_ptr<io::MemoryMappedFile> mapping,
                      data::SparseDatasetMeta meta, M3Options options);

  // unique_ptrs keep addresses stable across moves: the pipeline holds
  // the byte map by pointer and views point into the mapping.
  std::unique_ptr<io::MemoryMappedFile> mapping_;
  data::SparseDatasetMeta meta_;
  M3Options options_;
  std::unique_ptr<CsrByteMap> byte_map_;
  std::unique_ptr<exec::ChunkPipeline> pipeline_;
  std::unique_ptr<obs::ScopedMappingRegistration> trace_registration_;
};

}  // namespace m3

#endif  // M3_CORE_SPARSE_MAPPED_DATASET_H_
