#ifndef M3_CORE_RESOURCE_MONITOR_H_
#define M3_CORE_RESOURCE_MONITOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/io_stats.h"

namespace m3 {

/// \brief One periodic snapshot of process resource usage.
struct MonitorSample {
  double at_seconds = 0;        ///< seconds since Start()
  double cpu_utilization = 0;   ///< [0, 1] across all cores
  double read_bandwidth = 0;    ///< bytes/sec from storage
  int64_t major_faults = 0;     ///< majors in this interval
};

/// \brief Summary over a monitored region.
struct MonitorReport {
  double wall_seconds = 0;
  double mean_cpu_utilization = 0;
  double peak_cpu_utilization = 0;
  uint64_t total_read_bytes = 0;
  double mean_read_bandwidth = 0;
  int64_t total_major_faults = 0;
  size_t num_samples = 0;
  /// False when the kernel serves synthetic counters (sandbox); CPU numbers
  /// are still valid, I/O numbers are not.
  bool io_counters_trustworthy = true;

  std::string ToString() const;
};

/// \brief Background sampler behind the paper's utilization finding.
///
/// The paper reports "disk I/O was 100% utilized while CPU was only
/// utilized at around 13%" for out-of-core M3. This monitor samples
/// process CPU time, /proc/self/io, and fault counters on an interval so
/// benches can print the same style of figures.
class ResourceMonitor {
 public:
  explicit ResourceMonitor(double interval_seconds = 0.2);
  ~ResourceMonitor();

  ResourceMonitor(const ResourceMonitor&) = delete;
  ResourceMonitor& operator=(const ResourceMonitor&) = delete;

  /// Starts the sampling thread. \pre not running.
  void Start();

  /// Stops sampling and returns the aggregated report.
  MonitorReport Stop();

  /// Samples collected so far (copy).
  std::vector<MonitorSample> samples() const;

  bool running() const { return running_.load(); }

 private:
  void SampleLoop();

  double interval_seconds_;
  std::atomic<bool> running_{false};
  std::thread thread_;
  mutable std::mutex mu_;
  std::vector<MonitorSample> samples_;
  io::ResourceSample start_sample_;
};

}  // namespace m3

#endif  // M3_CORE_RESOURCE_MONITOR_H_
