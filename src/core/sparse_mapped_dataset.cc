#include "core/sparse_mapped_dataset.h"

#include <algorithm>

#include "obs/trace_session.h"
#include "util/format.h"

namespace m3 {

using util::Result;
using util::Status;

void CsrByteMap::AppendSpans(size_t row_begin, size_t row_end,
                             std::vector<exec::ByteSpan>* out) const {
  if (row_begin >= row_end) {
    return;
  }
  const uint64_t nnz_begin = row_ptr_[row_begin];
  const uint64_t nnz_end = row_ptr_[row_end];
  // The row_ptr slice includes the closing offset row_ptr[row_end]; a
  // chunk's compute needs it to find its last row's end.
  out->push_back(exec::ByteSpan{
      meta_.row_ptr_offset + row_begin * sizeof(uint64_t),
      (row_end - row_begin + 1) * sizeof(uint64_t)});
  if (nnz_end > nnz_begin) {
    out->push_back(exec::ByteSpan{
        meta_.col_idx_offset + nnz_begin * sizeof(uint32_t),
        (nnz_end - nnz_begin) * sizeof(uint32_t)});
    out->push_back(exec::ByteSpan{
        meta_.values_offset + nnz_begin * sizeof(double),
        (nnz_end - nnz_begin) * sizeof(double)});
  }
}

exec::ByteSpan CsrByteMap::Extent() const {
  // Enclosing range of the three scan sections (labels excluded: scans
  // read them through their own view, not the chunk engine).
  uint64_t lo = meta_.row_ptr_offset;
  uint64_t hi = meta_.row_ptr_offset + meta_.RowPtrBytes();
  lo = std::min(lo, meta_.col_idx_offset);
  hi = std::max(hi, meta_.col_idx_offset + meta_.ColIdxBytes());
  lo = std::min(lo, meta_.values_offset);
  hi = std::max(hi, meta_.values_offset + meta_.ValueBytes());
  return exec::ByteSpan{lo, hi - lo};
}

Result<MappedSparseDataset> MappedSparseDataset::Open(const std::string& path,
                                                      M3Options options) {
  M3_ASSIGN_OR_RETURN(data::SparseDatasetMeta meta,
                      data::ReadSparseDatasetMeta(path));
  io::MemoryMappedFile::Options map_options;
  map_options.mode = io::MemoryMappedFile::Mode::kReadOnly;
  map_options.populate = options.populate;
  M3_ASSIGN_OR_RETURN(io::MemoryMappedFile mapping,
                      io::MemoryMappedFile::Map(path, map_options));
  // Deep structural validation before any view exists. The header passed
  // ReadSparseDatasetMeta, so the sections are in-bounds and aligned;
  // what is left is the CSR structure itself, which the kernels (and the
  // SparseChunker) trust. All of it is untrusted input until proven here
  // — the format-fuzz suite drives exactly these paths.
  const char* base = mapping.As<const char>();
  // m3-aligned: ReadSparseDatasetMeta rejects misaligned section
  // offsets (data/sparse_dataset.cc); the mmap base is page-aligned.
  const uint64_t* row_ptr =
      reinterpret_cast<const uint64_t*>(base + meta.row_ptr_offset);
  // m3-aligned: col_idx_offset is 4-aligned by the same validation.
  const uint32_t* col_idx =
      reinterpret_cast<const uint32_t*>(base + meta.col_idx_offset);
  if (row_ptr[0] != 0) {
    return Status::InvalidArgument(util::StrFormat(
        "sparse dataset row_ptr[0] = %llu, want 0: %s",
        static_cast<unsigned long long>(row_ptr[0]), path.c_str()));
  }
  for (uint64_t r = 0; r < meta.rows; ++r) {
    if (row_ptr[r + 1] < row_ptr[r]) {
      return Status::InvalidArgument(util::StrFormat(
          "sparse dataset row_ptr not monotone at row %llu "
          "(%llu after %llu): %s",
          static_cast<unsigned long long>(r),
          static_cast<unsigned long long>(row_ptr[r + 1]),
          static_cast<unsigned long long>(row_ptr[r]), path.c_str()));
    }
  }
  if (row_ptr[meta.rows] != meta.nnz) {
    return Status::InvalidArgument(util::StrFormat(
        "sparse dataset row_ptr[rows] = %llu disagrees with header nnz "
        "%llu: %s",
        static_cast<unsigned long long>(row_ptr[meta.rows]),
        static_cast<unsigned long long>(meta.nnz), path.c_str()));
  }
  for (uint64_t k = 0; k < meta.nnz; ++k) {
    if (col_idx[k] >= meta.cols) {
      return Status::InvalidArgument(util::StrFormat(
          "sparse dataset col_idx[%llu] = %u out of %llu columns: %s",
          static_cast<unsigned long long>(k),
          static_cast<unsigned>(col_idx[k]),
          static_cast<unsigned long long>(meta.cols), path.c_str()));
    }
  }
  MappedSparseDataset dataset(
      std::make_unique<io::MemoryMappedFile>(std::move(mapping)), meta,
      options);
  M3_RETURN_IF_ERROR(dataset.mapping_->AdviseRange(
      options.advice, dataset.byte_map_->Extent().offset,
      dataset.byte_map_->Extent().length));
  if (!options.trace_path.empty()) {
    obs::StartGlobalTrace(options.trace_path);
  }
  if (obs::GlobalTraceActive()) {
    dataset.trace_registration_ =
        std::make_unique<obs::ScopedMappingRegistration>(
            dataset.mapping_.get());
  }
  return dataset;
}

MappedSparseDataset::MappedSparseDataset(
    std::unique_ptr<io::MemoryMappedFile> mapping,
    data::SparseDatasetMeta meta, M3Options options)
    : mapping_(std::move(mapping)), meta_(meta), options_(options) {
  // m3-aligned: ReadSparseDatasetMeta rejects misaligned section
  // offsets; Open() validated this file before constructing us.
  const uint64_t* row_ptr = reinterpret_cast<const uint64_t*>(
      mapping_->As<const char>() + meta_.row_ptr_offset);
  byte_map_ = std::make_unique<CsrByteMap>(meta_, row_ptr);
}

la::CsrView MappedSparseDataset::csr() const {
  const char* base = mapping_->As<const char>();
  return la::CsrView(
      // m3-aligned: section offsets validated by ReadSparseDatasetMeta.
      reinterpret_cast<const uint64_t*>(base + meta_.row_ptr_offset),
      reinterpret_cast<const uint32_t*>(base + meta_.col_idx_offset),
      reinterpret_cast<const double*>(base + meta_.values_offset),
      meta_.rows, meta_.cols);
}

la::ConstVectorView MappedSparseDataset::labels() const {
  // m3-aligned: labels_offset validated by ReadSparseDatasetMeta.
  const double* base = reinterpret_cast<const double*>(
      mapping_->As<const char>() + meta_.labels_offset);
  return la::ConstVectorView(base, meta_.rows);
}

std::vector<double> MappedSparseDataset::CopyLabels() const {
  la::ConstVectorView view = labels();
  return std::vector<double>(view.begin(), view.end());
}

uint64_t MappedSparseDataset::ChunkNnzBytes() const {
  return options_.chunk_nnz_bytes > 0 ? options_.chunk_nnz_bytes
                                      : la::kDefaultNnzBudgetBytes;
}

la::SparseChunker MappedSparseDataset::MakeChunker() const {
  // m3-aligned: row_ptr_offset validated by ReadSparseDatasetMeta.
  const uint64_t* row_ptr = reinterpret_cast<const uint64_t*>(
      mapping_->As<const char>() + meta_.row_ptr_offset);
  return la::SparseChunker(row_ptr, meta_.rows, ChunkNnzBytes());
}

exec::ChunkPipeline& MappedSparseDataset::pipeline() {
  if (pipeline_ == nullptr) {
    exec::MappedRegion region;
    region.mapping = mapping_.get();
    region.byte_map = byte_map_.get();
    exec::PipelineOptions options;
    options.readahead_chunks = options_.readahead_chunks;
    options.num_workers = options_.pipeline_workers;
    options.advice = options_.advice;
    options.prefetch_backend = options_.prefetch_backend;
    // Sparse scans have no RamBudgetEmulator (its linear row cursor
    // assumes a uniform stride), so the engine's trailing span window
    // enforces the budget under every scan order.
    options.ram_budget_bytes = options_.ram_budget_bytes;
    pipeline_ = std::make_unique<exec::ChunkPipeline>(region, options);
  }
  return *pipeline_;
}

Status MappedSparseDataset::EvictAll() {
  const exec::ByteSpan extent = byte_map_->Extent();
  return mapping_->Evict(extent.offset, extent.length);
}

}  // namespace m3
