#include "core/access_pattern.h"

#include <cmath>

#include "util/format.h"
#include "util/logging.h"
#include "util/sys_info.h"

namespace m3 {

std::string AccessPatternSummary::ToString() const {
  return util::StrFormat(
      "accesses=%llu unique=%llu sequential=%.1f%% mean|stride|=%.2f "
      "page_locality=%.1f%%",
      static_cast<unsigned long long>(num_accesses),
      static_cast<unsigned long long>(unique_rows),
      sequential_fraction * 100, mean_abs_stride, page_locality * 100);
}

AccessPatternTracer::AccessPatternTracer(uint64_t row_bytes,
                                         uint64_t sample_period)
    : row_bytes_(row_bytes == 0 ? 1 : row_bytes),
      sample_period_(sample_period == 0 ? 1 : sample_period) {}

void AccessPatternTracer::Record(uint64_t row) {
  if (tick_++ % sample_period_ == 0) {
    trace_.push_back(row);
  }
}

void AccessPatternTracer::RecordRange(uint64_t begin, uint64_t end) {
  for (uint64_t row = begin; row < end; ++row) {
    Record(row);
  }
}

AccessPatternSummary AccessPatternTracer::Summarize() const {
  AccessPatternSummary summary;
  summary.num_accesses = trace_.size();
  if (trace_.empty()) {
    return summary;
  }
  std::unordered_set<uint64_t> unique(trace_.begin(), trace_.end());
  summary.unique_rows = unique.size();

  const uint64_t page = util::PageSize();
  uint64_t sequential = 0;
  uint64_t local_pages = 0;
  double stride_sum = 0;
  for (size_t i = 1; i < trace_.size(); ++i) {
    const uint64_t prev = trace_[i - 1];
    const uint64_t cur = trace_[i];
    if (cur == prev + 1) {
      ++sequential;
    }
    stride_sum += std::fabs(static_cast<double>(cur) -
                            static_cast<double>(prev));
    const uint64_t prev_page = prev * row_bytes_ / page;
    const uint64_t cur_page = cur * row_bytes_ / page;
    if (cur_page == prev_page || cur_page == prev_page + 1) {
      ++local_pages;
    }
  }
  const double transitions = static_cast<double>(trace_.size() - 1);
  if (transitions > 0) {
    summary.sequential_fraction = static_cast<double>(sequential) / transitions;
    summary.mean_abs_stride = stride_sum / transitions;
    summary.page_locality = static_cast<double>(local_pages) / transitions;
  }
  return summary;
}

void AccessPatternTracer::Clear() {
  trace_.clear();
  tick_ = 0;
}

}  // namespace m3
