#ifndef M3_CORE_OPTIONS_H_
#define M3_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "exec/chunk_schedule.h"
#include "io/mmap_file.h"
#include "io/prefetch_backend.h"

namespace m3 {

/// \brief Options controlling how M3 maps and scans a dataset.
struct M3Options {
  M3Options() {}  // NOLINT: explicit ctor so `= M3Options()` defaults work

  /// madvise hint applied to the feature region after mapping. The paper's
  /// workloads are sequential scans, so kSequential (aggressive readahead)
  /// is the default; kRandom is the ablation setting.
  io::Advice advice = io::Advice::kSequential;

  /// Pre-fault all pages at map time (only sensible when the dataset fits
  /// in RAM; defeats the purpose for out-of-core data).
  bool populate = false;

  /// Emulated RAM budget in bytes for the feature region. 0 disables
  /// emulation (use all physical RAM, the paper's in-core regime). When
  /// positive, pages more than `ram_budget_bytes` behind the scan cursor
  /// are evicted (madvise(DONTNEED) + fadvise(DONTNEED)), reproducing the
  /// paper's dataset-exceeds-RAM regime at laptop scale.
  uint64_t ram_budget_bytes = 0;

  /// Rows per sequential scan chunk for training algorithms (0 = auto).
  uint64_t chunk_rows = 0;

  /// Sparse (CSR) scans only: target payload bytes (col_idx + values) per
  /// chunk for the nnz-budget SparseChunker (0 = auto, ~8 MiB). Positive
  /// `chunk_rows` overrides with uniform row chunking — the mode whose
  /// chunk boundaries (and therefore bits) match a dense scan of the
  /// densified data.
  uint64_t chunk_nnz_bytes = 0;

  /// Chunks of MADV_WILLNEED readahead the execution engine
  /// (exec::ChunkPipeline) keeps ahead of training scans. 0 disables the
  /// prefetch stage; the default overlaps the next chunk's disk reads
  /// with the current chunk's compute. Engine-driven scans also feed the
  /// calibration loop: their measured per-stage `exec::PipelineStats`
  /// (via MappedDataset::pipeline()) are what `core/model_fit` fits the
  /// performance model from — see docs/ARCHITECTURE.md, "The calibration
  /// loop".
  uint64_t readahead_chunks = 2;

  /// Compute-stage fan-out of the execution engine: 0 or 1 runs chunk
  /// functors serially on the scanning thread; >= 2 map-reduces chunks
  /// across that many engine workers (results stay bitwise identical —
  /// partials merge in chunk order).
  uint64_t pipeline_workers = 0;

  /// How the engine's prefetch stage issues readahead I/O: kMadvise
  /// (MADV_WILLNEED, the default), kPread (page-cache-warming reads —
  /// works where WILLNEED is a silent no-op, e.g. several
  /// container/overlay filesystems), kUring (batched io_uring reads,
  /// falling back to pread when unavailable), or kAuto (probe WILLNEED
  /// efficacy on this dataset's filesystem once, then pick). Trained
  /// results are bitwise identical under every backend; only the degree
  /// of compute/disk overlap changes. See docs/ARCHITECTURE.md for the
  /// selection matrix.
  io::PrefetchBackendKind prefetch_backend = io::PrefetchBackendKind::kMadvise;

  /// Visit order for dataset-driven chunk scans (MappedDataset::
  /// ForEachChunk / MapReduceChunks). Non-sequential orders prefetch and
  /// evict along the schedule's permutation. Training objectives always
  /// scan sequentially (their in-chunk-order reductions are the bitwise
  /// determinism reference); SGD builds its own per-epoch shuffled
  /// schedules from SgdOptions::seed.
  ///
  /// With a RAM budget, sequential scans enforce it through the
  /// RamBudgetEmulator's linear trailing cursor (exact byte window);
  /// non-sequential orders enforce it engine-side as a trailing window
  /// over *visited* chunks (the linear cursor is meaningless under a
  /// permutation). Both bound residency to ram_budget_bytes.
  exec::ScanOrder scan_order = exec::ScanOrder::kSequential;

  /// Base seed for kShuffled dataset scans. Pass p reshuffles with seed
  /// `scan_seed + p` (epoch-shuffled), so repeated scans are deterministic
  /// but not identical pass to pass.
  uint64_t scan_seed = 42;

  /// Stride for kStrided dataset scans; 0 or 1 degenerates to sequential.
  uint64_t scan_stride = 0;

  /// Lane a kStrided scan starts at (offset % scan_stride): shard id when
  /// interleaved consumers each scan their own residue class first — the
  /// cluster simulator uses stride = instance count, offset = instance id.
  uint64_t scan_stride_offset = 0;

  /// When non-empty, MappedDataset::Open starts the process-global trace
  /// session (obs::StartGlobalTrace): pipeline stage spans and residency
  /// counter tracks are recorded and written to this path as Chrome
  /// trace-event JSON at obs::StopGlobalTraceAndWrite (or process exit).
  /// The dataset's mapping is registered with the residency sampler for
  /// its lifetime. Tracing is process-global: the first non-empty path
  /// wins; later Opens join the running session. Empty (the default)
  /// records nothing and costs one predicted branch per span site —
  /// see docs/OBSERVABILITY.md.
  std::string trace_path;
};

}  // namespace m3

#endif  // M3_CORE_OPTIONS_H_
