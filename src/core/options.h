#ifndef M3_CORE_OPTIONS_H_
#define M3_CORE_OPTIONS_H_

#include <cstdint>

#include "io/mmap_file.h"

namespace m3 {

/// \brief Options controlling how M3 maps and scans a dataset.
struct M3Options {
  M3Options() {}  // NOLINT: explicit ctor so `= M3Options()` defaults work

  /// madvise hint applied to the feature region after mapping. The paper's
  /// workloads are sequential scans, so kSequential (aggressive readahead)
  /// is the default; kRandom is the ablation setting.
  io::Advice advice = io::Advice::kSequential;

  /// Pre-fault all pages at map time (only sensible when the dataset fits
  /// in RAM; defeats the purpose for out-of-core data).
  bool populate = false;

  /// Emulated RAM budget in bytes for the feature region. 0 disables
  /// emulation (use all physical RAM, the paper's in-core regime). When
  /// positive, pages more than `ram_budget_bytes` behind the scan cursor
  /// are evicted (madvise(DONTNEED) + fadvise(DONTNEED)), reproducing the
  /// paper's dataset-exceeds-RAM regime at laptop scale.
  uint64_t ram_budget_bytes = 0;

  /// Rows per sequential scan chunk for training algorithms (0 = auto).
  uint64_t chunk_rows = 0;
};

}  // namespace m3

#endif  // M3_CORE_OPTIONS_H_
