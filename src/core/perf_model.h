#ifndef M3_CORE_PERF_MODEL_H_
#define M3_CORE_PERF_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m3 {

/// \brief Calibrated platform parameters for the M3 performance model.
///
/// Two calibration paths fill these in: the analytic one (io::ProbeDisk +
/// FitCpuSecondsPerByte from a timed run) and the measured one
/// (core/model_fit fits every term, overlap included, from a pass's
/// `exec::PipelineStats`).
struct PerfModelParams {
  /// CPU cost of the algorithm per byte of the feature matrix per pass
  /// (fit from an in-RAM timed run; includes parallel speedup).
  double cpu_seconds_per_byte = 0;
  /// Sequential storage read bandwidth, bytes/sec (from io::ProbeDisk,
  /// a measured fit, or the paper's hardware spec: the OCZ RevoDrive 350
  /// reads ~1 GB/s).
  double disk_read_bytes_per_sec = 1e9;
  /// RAM available for caching the dataset, bytes (the paper: 32 GB).
  uint64_t ram_bytes = 32ull << 30;
  /// Fixed per-pass overhead (dispatch, reductions), seconds.
  double pass_overhead_seconds = 0;
  /// Fraction of the smaller of (cpu, io) that pipelining hides, in
  /// [0, 1]: 1.0 is the classic perfect-overlap max(cpu, io) assumption,
  /// 0.0 is fully serialized cpu + io. Measured runs fit it between the
  /// two (core/model_fit::FitFromStats) instead of assuming 1.0.
  double overlap_efficiency = 1.0;
};

/// \brief Wall seconds of a pass whose CPU and I/O stages overlap with the
/// given efficiency: max(cpu, io) + (1 - efficiency) * min(cpu, io).
///
/// The single combination point shared by PerfModel (steady and cold
/// passes), the cluster's StageCostModel, and the measured-residual
/// reporting — so "how much overlap do we assume" is one number, not a
/// max() hardcoded at every call site.
double CombineOverlap(double cpu_seconds, double io_seconds,
                      double overlap_efficiency);

/// \brief Prediction for one full pass over a dataset.
struct PassPrediction {
  double seconds = 0;
  double cpu_seconds = 0;
  double io_seconds = 0;
  /// Bytes that must come from storage this pass (0 once cached in RAM).
  uint64_t miss_bytes = 0;
  bool io_bound = false;
  /// Predicted CPU utilization in [0, 1] (the paper observes ~13% when
  /// I/O-bound out-of-core).
  double cpu_utilization = 0;
};

/// \brief Analytic model of M3 pass time (§4 "develop mathematical models
/// ... to profile and predict algorithm performance").
///
/// Model: a training pass is a sequential scan of `dataset_bytes`. If the
/// dataset fits in `ram_bytes` it is served from the page cache after the
/// first pass (miss_bytes = 0). If it exceeds RAM, a cyclic sequential
/// scan under LRU has zero steady-state hit rate, so every byte is read
/// from storage each pass (miss_bytes = dataset_bytes) — this is why the
/// paper's Fig. 1a is linear on both sides of the RAM boundary with a
/// steeper out-of-core slope. CPU work overlaps I/O (readahead) with the
/// calibrated efficiency, so
///   pass_seconds = CombineOverlap(cpu, io, overlap_efficiency) + overhead.
class PerfModel {
 public:
  explicit PerfModel(PerfModelParams params);

  /// Predicts one steady-state pass over `dataset_bytes`.
  PassPrediction PredictPass(uint64_t dataset_bytes) const;

  /// Predicts the cold first pass over `dataset_bytes`: every byte comes
  /// from storage regardless of whether the dataset fits in RAM. Shares
  /// PredictPass's overlap + overhead accounting — the two predictions
  /// only differ in miss_bytes, never in how stage seconds combine.
  PassPrediction PredictColdPass(uint64_t dataset_bytes) const;

  /// Predicts a full run of `num_passes` over the dataset, including the
  /// cold first pass (which always reads from storage).
  double PredictRun(uint64_t dataset_bytes, size_t num_passes) const;

  /// Fits cpu_seconds_per_byte from an in-RAM measurement.
  static double FitCpuSecondsPerByte(double measured_seconds,
                                     uint64_t dataset_bytes,
                                     size_t num_passes);

  const PerfModelParams& params() const { return params_; }

  std::string ToString() const;

 private:
  PerfModelParams params_;
};

/// \brief One row of a Fig. 1a-style sweep table.
struct SweepPoint {
  uint64_t dataset_bytes = 0;
  double predicted_seconds = 0;
  bool out_of_core = false;
  double cpu_utilization = 0;
};

/// \brief Predicts runtimes for a sweep of dataset sizes (Fig. 1a shape).
std::vector<SweepPoint> PredictSweep(const PerfModel& model,
                                     const std::vector<uint64_t>& sizes,
                                     size_t num_passes);

}  // namespace m3

#endif  // M3_CORE_PERF_MODEL_H_
