#include "core/m3.h"

namespace m3 {

using util::Result;

Result<io::MemoryMappedFile> MmapAllocDoubles(const std::string& file,
                                              uint64_t count) {
  return io::MemoryMappedFile::CreateAndMap(file, count * sizeof(double));
}

Result<ml::LogisticRegressionModel> TrainLogisticRegression(
    MappedDataset& dataset, ml::LogisticRegressionOptions options,
    ml::OptimizationResult* stats) {
  if (!options.hooks.after_chunk && !options.hooks.before_pass) {
    options.hooks = dataset.MakeScanHooks();
  }
  if (options.chunk_rows == 0) {
    options.chunk_rows = dataset.chunk_rows();
  }
  if (options.pipeline == nullptr) {
    options.pipeline = &dataset.pipeline();
  }
  ml::LogisticRegression trainer(options);
  return trainer.Train(dataset.features(), dataset.labels(), stats);
}

Result<ml::KMeansResult> TrainKMeans(MappedDataset& dataset,
                                     ml::KMeansOptions options) {
  if (!options.hooks.after_chunk && !options.hooks.before_pass) {
    options.hooks = dataset.MakeScanHooks();
  }
  if (options.chunk_rows == 0) {
    options.chunk_rows = dataset.chunk_rows();
  }
  if (options.pipeline == nullptr) {
    options.pipeline = &dataset.pipeline();
  }
  ml::KMeans kmeans(options);
  return kmeans.Cluster(dataset.features());
}

ml::LbfgsOptions PaperLbfgsOptions() {
  ml::LbfgsOptions options;
  options.max_iterations = 10;   // "10 iterations of L-BFGS"
  options.gradient_tolerance = 0;  // run the full budget, like the bench
  options.objective_tolerance = 0;
  return options;
}

ml::KMeansOptions PaperKMeansOptions() {
  ml::KMeansOptions options;
  options.k = 5;                // "5 clusters"
  options.max_iterations = 10;  // "10 iterations"
  options.tolerance = 0;        // run the full budget
  return options;
}

}  // namespace m3
