#include "core/resource_monitor.h"

#include <algorithm>
#include <chrono>

#include "io/platform.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/sys_info.h"

namespace m3 {

std::string MonitorReport::ToString() const {
  std::string out = util::StrFormat(
      "wall=%s cpu(mean/peak)=%.0f%%/%.0f%% read=%s (%s/s) major_faults=%lld "
      "samples=%zu",
      util::HumanDuration(wall_seconds).c_str(), mean_cpu_utilization * 100,
      peak_cpu_utilization * 100, util::HumanBytes(total_read_bytes).c_str(),
      util::HumanBytes(static_cast<uint64_t>(mean_read_bandwidth)).c_str(),
      static_cast<long long>(total_major_faults), num_samples);
  if (!io_counters_trustworthy) {
    out += " [io counters synthetic on this kernel]";
  }
  return out;
}

ResourceMonitor::ResourceMonitor(double interval_seconds)
    : interval_seconds_(std::max(0.01, interval_seconds)) {}

ResourceMonitor::~ResourceMonitor() {
  if (running_.load()) {
    Stop();
  }
}

void ResourceMonitor::Start() {
  M3_CHECK(!running_.load(), "monitor already running");
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }
  start_sample_ = io::ResourceSample::Now();
  running_.store(true);
  thread_ = std::thread([this] { SampleLoop(); });
}

void ResourceMonitor::SampleLoop() {
  io::ResourceSample previous = start_sample_;
  while (running_.load()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds_));
    const io::ResourceSample now = io::ResourceSample::Now();
    const io::ResourceSample delta = now - previous;
    MonitorSample sample;
    sample.at_seconds = now.wall_seconds - start_sample_.wall_seconds;
    sample.cpu_utilization = delta.CpuUtilization(util::NumCpus());
    sample.read_bandwidth = delta.ReadBandwidth();
    sample.major_faults = delta.faults.major;
    {
      std::lock_guard<std::mutex> lock(mu_);
      samples_.push_back(sample);
    }
    previous = now;
  }
}

MonitorReport ResourceMonitor::Stop() {
  M3_CHECK(running_.load(), "monitor not running");
  running_.store(false);
  thread_.join();

  const io::ResourceSample end = io::ResourceSample::Now();
  const io::ResourceSample total = end - start_sample_;

  MonitorReport report;
  report.wall_seconds = total.wall_seconds;
  report.total_read_bytes = total.io.read_bytes;
  report.total_major_faults = total.faults.major;
  report.mean_cpu_utilization = total.CpuUtilization(util::NumCpus());
  report.mean_read_bandwidth =
      total.wall_seconds > 0
          ? static_cast<double>(total.io.read_bytes) / total.wall_seconds
          : 0.0;
  report.io_counters_trustworthy =
      io::GetPlatformCapabilities().proc_io_counters_live;
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.num_samples = samples_.size();
    for (const MonitorSample& s : samples_) {
      report.peak_cpu_utilization =
          std::max(report.peak_cpu_utilization, s.cpu_utilization);
    }
  }
  return report;
}

std::vector<MonitorSample> ResourceMonitor::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

}  // namespace m3
