#include "core/model_fit.h"

#include <algorithm>
#include <cmath>

#include "util/format.h"
#include "util/sys_info.h"

namespace m3 {

using util::Result;
using util::Status;

namespace {

/// Timings below this are indistinguishable from stopwatch noise.
constexpr double kMinSeconds = 1e-9;

}  // namespace

double MeasuredReadBandwidth(const exec::PipelineStats& stats,
                             double fallback) {
  if (stats.stalls == 0 || stats.prefetch_bytes == 0) {
    return fallback;  // the disk always won: bandwidth only bounded below
  }
  const double compute = stats.compute_seconds + stats.retire_seconds;
  const double io_wait =
      std::max(stats.prefetch_seconds, stats.drive_seconds - compute);
  if (io_wait <= kMinSeconds) {
    return fallback;
  }
  return static_cast<double>(stats.prefetch_bytes) / io_wait;
}

Result<ModelFitResult> FitFromStats(const exec::PipelineStats& stats,
                                    uint64_t bytes_scanned,
                                    const FitOptions& options) {
  if (stats.passes == 0 || bytes_scanned == 0) {
    return Status::InvalidArgument(
        "fit needs at least one measured pass over nonzero bytes");
  }
  if (stats.drive_seconds <= kMinSeconds) {
    return Status::InvalidArgument("stats carry no measured drive time");
  }
  const double cpu = stats.compute_seconds + stats.retire_seconds;
  if (cpu <= kMinSeconds) {
    return Status::InvalidArgument(
        "stats carry no compute/retire time to fit the CPU term from");
  }

  ModelFitResult fit;
  fit.bytes_scanned = bytes_scanned;
  fit.passes = stats.passes;
  fit.cpu_seconds = cpu;
  fit.io_seconds = stats.prefetch_seconds + stats.evict_seconds;
  fit.measured_seconds = stats.drive_seconds;
  fit.stall_byte_fraction =
      static_cast<double>(stats.stall_bytes) /
      static_cast<double>(bytes_scanned);

  fit.params.cpu_seconds_per_byte =
      cpu / static_cast<double>(bytes_scanned);
  fit.params.ram_bytes =
      options.ram_bytes != 0 ? options.ram_bytes : util::TotalRamBytes();
  const double measured_bw = MeasuredReadBandwidth(stats, /*fallback=*/0.0);
  fit.disk_bandwidth_from_fallback = measured_bw <= 0;
  fit.params.disk_read_bytes_per_sec =
      measured_bw > 0 ? measured_bw : options.fallback_disk_bytes_per_sec;

  // Overlap: how much of the shorter stage did the measured drive time
  // hide? drive == max + (1 - eff) * min solved for eff. min ~ 0 means
  // there was nothing to overlap; call that perfect.
  const double shorter = std::min(cpu, fit.io_seconds);
  fit.overlap_raw =
      shorter > kMinSeconds
          ? (cpu + fit.io_seconds - stats.drive_seconds) / shorter
          : 1.0;
  fit.params.overlap_efficiency = std::clamp(fit.overlap_raw, 0.0, 1.0);

  if (options.fit_pass_overhead) {
    // Only the drive time the overlap family cannot express (beyond
    // cpu + io, i.e. overlap_raw < 0) is attributable to per-pass
    // overhead; within the family the eff fit already matches drive.
    const double modeled = CombineOverlap(cpu, fit.io_seconds,
                                          fit.params.overlap_efficiency);
    fit.params.pass_overhead_seconds =
        std::max(0.0, stats.drive_seconds - modeled) /
        static_cast<double>(stats.passes);
  }

  fit.predicted_seconds =
      CombineOverlap(cpu, fit.io_seconds, fit.params.overlap_efficiency) +
      fit.params.pass_overhead_seconds * static_cast<double>(stats.passes);
  fit.residual_seconds = fit.predicted_seconds - fit.measured_seconds;
  fit.relative_residual =
      std::fabs(fit.residual_seconds) / fit.measured_seconds;
  return fit;
}

std::string ModelFitResult::ToString() const {
  return util::StrFormat(
      "fit[%s] over %llu passes / %s: cpu=%.3fs io=%.3fs drive=%.3fs "
      "overlap_raw=%.2f stall_bytes=%.0f%% residual=%+.3fs (%.1f%%)%s",
      PerfModel(params).ToString().c_str(),
      static_cast<unsigned long long>(passes),
      util::HumanBytes(bytes_scanned).c_str(), cpu_seconds, io_seconds,
      measured_seconds, overlap_raw, stall_byte_fraction * 100.0,
      residual_seconds, relative_residual * 100.0,
      disk_bandwidth_from_fallback ? " [disk bw from fallback]" : "");
}

}  // namespace m3
