#ifndef M3_CORE_M3_H_
#define M3_CORE_M3_H_

/// \file
/// \brief Umbrella header for the M3 library: Machine Learning via Memory
/// Mapping (Fang & Chau, SIGMOD 2016).
///
/// Quickstart (the paper's Table 1 in working code):
///
///   // Original (in-memory):            // M3 (memory-mapped):
///   la::Matrix data(rows, cols);        auto m = m3::MmapAllocDoubles(
///                                           file, rows * cols).ValueOrDie();
///                                       la::MatrixView data(
///                                           m.As<double>(), rows, cols);
///
/// Or with the dataset layer:
///
///   auto ds = m3::MappedDataset::Open("digits.m3").ValueOrDie();
///   auto model = m3::TrainLogisticRegression(ds).ValueOrDie();
///
/// Pipelined out-of-core execution (src/exec/): every dataset scan runs on
/// an exec::ChunkPipeline that overlaps MADV_WILLNEED prefetch of chunk
/// i+1 with compute on chunk i and evicts consumed pages behind the scan
/// when a RAM budget is set — the disk streams while the CPU computes.
/// Tune it with M3Options::readahead_chunks / pipeline_workers, or drive
/// custom scans directly:
///
///   M3Options options;
///   options.ram_budget_bytes = 1ull << 30;   // out-of-core at 1 GiB
///   options.pipeline_workers = 4;            // parallel chunk map-reduce
///   auto ds = m3::MappedDataset::Open("big.m3", options).ValueOrDie();
///
///   ds.ForEachChunk([&](size_t chunk, size_t row_begin, size_t row_end) {
///     Consume(ds.features().RowRange(row_begin, row_end - row_begin));
///   });
///
///   double loss = 0;
///   ds.MapReduceChunks<double>(
///       [&](size_t, size_t lo, size_t hi) { return PartialLoss(lo, hi); },
///       [&](size_t, double&& partial) { loss += partial; });
///
/// Partials always merge in chunk order, so results are bitwise identical
/// at any worker count. Engine counters (prefetch/evict/stall) land in
/// io::GlobalExecCounters().

#include <string>

#include "core/access_pattern.h"
#include "core/mapped_dataset.h"
#include "core/options.h"
#include "core/perf_model.h"
#include "core/ram_budget.h"
#include "core/resource_monitor.h"
#include "io/mmap_file.h"
#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "util/result.h"

namespace m3 {

/// \brief The paper's `mmapAlloc` helper: creates (or truncates) `file`,
/// sizes it to `count` doubles, and maps it read-write.
///
/// The returned mapping owns the region; take `As<double>()` for the raw
/// pointer of Table 1. Writes persist to the file.
util::Result<io::MemoryMappedFile> MmapAllocDoubles(const std::string& file,
                                                    uint64_t count);

/// \brief Trains binary logistic regression on a mapped dataset with the
/// paper's configuration (10 L-BFGS iterations by default); RAM-budget
/// hooks from the dataset are installed automatically.
util::Result<ml::LogisticRegressionModel> TrainLogisticRegression(
    MappedDataset& dataset,
    ml::LogisticRegressionOptions options = ml::LogisticRegressionOptions(),
    ml::OptimizationResult* stats = nullptr);

/// \brief Runs k-means on a mapped dataset (paper configuration: k = 5,
/// 10 iterations); RAM-budget hooks installed automatically.
util::Result<ml::KMeansResult> TrainKMeans(
    MappedDataset& dataset, ml::KMeansOptions options = ml::KMeansOptions());

/// \brief The paper's benchmark defaults: exactly 10 optimizer iterations,
/// no early stopping.
ml::LbfgsOptions PaperLbfgsOptions();
ml::KMeansOptions PaperKMeansOptions();

}  // namespace m3

#endif  // M3_CORE_M3_H_
