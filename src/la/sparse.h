#ifndef M3_LA_SPARSE_H_
#define M3_LA_SPARSE_H_

#include <cstddef>
#include <cstdint>

#include "la/matrix.h"
#include "util/logging.h"

namespace m3::la {

/// \defgroup sparse Sparse linear algebra (CSR, double precision)
///
/// The sparse twin of the dense-view design point: CsrView is a plain
/// pointer+shape wrapper over three parallel arrays (`row_ptr`,
/// `col_idx`, `values`), so a view over heap memory and a view over an
/// mmap'd CSR file are indistinguishable to the kernels. Kernels are
/// deliberately simple sequential loops, exactly like the dense ones in
/// blas.h: a sparse dot over a row's nonzeros performs the same additions
/// in the same order as a dense dot over the densified row (the zero
/// terms it skips are additive identities), which is what lets the
/// conformance suite pin sparse-vs-dense agreement to the last ulp.

/// \brief One CSR row: parallel column-index / value arrays of its
/// stored nonzeros. Column indices are strictly increasing.
struct SparseRowView {
  const uint32_t* cols = nullptr;
  const double* values = nullptr;
  size_t nnz = 0;
};

/// \brief Non-owning read-only view of a CSR matrix.
///
/// `row_ptr` holds `rows + 1` monotone offsets into `col_idx`/`values`;
/// row r's nonzeros live at [row_ptr[r], row_ptr[r+1]). The view trusts
/// its invariants (monotone row_ptr, col_idx < cols) — the validating
/// reader in core/sparse_mapped_dataset.h establishes them for mmap'd
/// data before a view is ever handed out.
class CsrView {
 public:
  CsrView() = default;
  CsrView(const uint64_t* row_ptr, const uint32_t* col_idx,
          const double* values, size_t rows, size_t cols)
      : row_ptr_(row_ptr),
        col_idx_(col_idx),
        values_(values),
        rows_(rows),
        cols_(cols) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  uint64_t nnz() const { return rows_ == 0 ? 0 : row_ptr_[rows_]; }

  const uint64_t* row_ptr() const { return row_ptr_; }
  const uint32_t* col_idx() const { return col_idx_; }
  const double* values() const { return values_; }

  /// Row `r`'s stored nonzeros. \pre r < rows().
  SparseRowView Row(size_t r) const {
    M3_CHECK(r < rows_, "row index %zu out of range (%zu rows)", r, rows_);
    const uint64_t begin = row_ptr_[r];
    return SparseRowView{col_idx_ + begin, values_ + begin,
                         static_cast<size_t>(row_ptr_[r + 1] - begin)};
  }

 private:
  const uint64_t* row_ptr_ = nullptr;
  const uint32_t* col_idx_ = nullptr;
  const double* values_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
};

/// \brief Sparse dot product: sum_k x.values[k] * w[x.cols[k]].
///
/// Accumulates in index order with no unrolling, mirroring la::Dot — the
/// bitwise twin of Dot(densify(x), w) for any w whose extra entries
/// multiply zeros.
double SparseDot(const SparseRowView& x, ConstVectorView w);

/// \brief Sparse axpy into a dense vector: y[x.cols[k]] += alpha *
/// x.values[k]. The sparse gradient-accumulate primitive, mirroring
/// la::Axpy's multiply-then-add per element.
void SparseAxpy(double alpha, const SparseRowView& x, VectorView y);

/// \brief Scatters `x` into `out` (zeroing it first). \pre every column
/// index < out.size().
void DensifyRow(const SparseRowView& x, VectorView out);

/// \brief Dense rows × cols copy of `x` (zeros where nothing is stored).
Matrix Densify(const CsrView& x);

}  // namespace m3::la

#endif  // M3_LA_SPARSE_H_
