#ifndef M3_LA_BLAS_H_
#define M3_LA_BLAS_H_

#include <cstddef>

#include "la/matrix.h"
#include "util/thread_pool.h"

namespace m3::la {

/// \defgroup blas BLAS-style kernels over views
///
/// Hand-rolled level-1/2/3 kernels sufficient for the paper's workloads
/// (logistic regression gradients, k-means distance passes). All kernels
/// accept views, so they run unchanged on heap memory and mmap'd files.

/// \brief Returns x . y. \pre x.size() == y.size().
double Dot(ConstVectorView x, ConstVectorView y);

/// \brief y += alpha * x. \pre x.size() == y.size().
void Axpy(double alpha, ConstVectorView x, VectorView y);

/// \brief x *= alpha.
void Scal(double alpha, VectorView x);

/// \brief Euclidean norm of x.
double Nrm2(ConstVectorView x);

/// \brief Sum of elements of x.
double Sum(ConstVectorView x);

/// \brief Largest absolute element of x (0 for empty).
double AbsMax(ConstVectorView x);

/// \brief || x - y ||^2 without forming the difference.
double SquaredDistance(ConstVectorView x, ConstVectorView y);

/// \brief out = x (element copy). \pre same size.
void Copy(ConstVectorView x, VectorView out);

/// \brief y = alpha * A * x + beta * y (row-major GEMV).
/// \pre A.cols() == x.size() and A.rows() == y.size().
void Gemv(double alpha, ConstMatrixView a, ConstVectorView x, double beta,
          VectorView y);

/// \brief y = alpha * A^T * x + beta * y.
/// \pre A.rows() == x.size() and A.cols() == y.size().
void GemvT(double alpha, ConstMatrixView a, ConstVectorView x, double beta,
           VectorView y);

/// \brief C = alpha * A * B + beta * C (blocked row-major GEMM).
/// \pre shapes conform: A(m,k), B(k,n), C(m,n).
void Gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c);

/// \brief Gemv partitioned by rows across the thread pool.
///
/// Equivalent to Gemv; worthwhile for tall matrices (the dataset pass).
void ParallelGemv(double alpha, ConstMatrixView a, ConstVectorView x,
                  double beta, VectorView y,
                  util::ThreadPool* pool = nullptr);

/// \brief GemvT with per-worker partials reduced at the end.
void ParallelGemvT(double alpha, ConstMatrixView a, ConstVectorView x,
                   double beta, VectorView y,
                   util::ThreadPool* pool = nullptr);

}  // namespace m3::la

#endif  // M3_LA_BLAS_H_
