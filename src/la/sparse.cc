#include "la/sparse.h"

namespace m3::la {

double SparseDot(const SparseRowView& x, ConstVectorView w) {
  double sum = 0.0;
  for (size_t k = 0; k < x.nnz; ++k) {
    sum += x.values[k] * w[x.cols[k]];
  }
  return sum;
}

void SparseAxpy(double alpha, const SparseRowView& x, VectorView y) {
  for (size_t k = 0; k < x.nnz; ++k) {
    y[x.cols[k]] += alpha * x.values[k];
  }
}

void DensifyRow(const SparseRowView& x, VectorView out) {
  out.SetZero();
  for (size_t k = 0; k < x.nnz; ++k) {
    M3_CHECK(x.cols[k] < out.size(), "column %u out of %zu",
             static_cast<unsigned>(x.cols[k]), out.size());
    out[x.cols[k]] = x.values[k];
  }
}

Matrix Densify(const CsrView& x) {
  Matrix dense(x.rows(), x.cols());
  for (size_t r = 0; r < x.rows(); ++r) {
    DensifyRow(x.Row(r), dense.Row(r));
  }
  return dense;
}

}  // namespace m3::la
