#ifndef M3_LA_CHUNKER_H_
#define M3_LA_CHUNKER_H_

#include <cstddef>

#include "util/logging.h"

namespace m3::la {

/// \brief Partitions `total` rows into contiguous chunks of at most
/// `chunk_rows`.
///
/// Drives the sequential-scan structure shared by the ML algorithms: one
/// pass per iteration, chunk by chunk, which is what gives M3 its
/// sequential, readahead-friendly access pattern on mapped files. Also used
/// by the RAM-budget emulator to decide which chunk to evict next.
class RowChunker {
 public:
  struct Range {
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };

  RowChunker(size_t total_rows, size_t chunk_rows)
      : total_rows_(total_rows),
        chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

  size_t total_rows() const { return total_rows_; }
  size_t chunk_rows() const { return chunk_rows_; }

  size_t NumChunks() const {
    return total_rows_ == 0 ? 0
                            : (total_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }

  /// Half-open row range of chunk `index`. \pre index < NumChunks().
  Range Chunk(size_t index) const {
    M3_CHECK(index < NumChunks(), "chunk index %zu out of %zu", index,
             NumChunks());
    const size_t begin = index * chunk_rows_;
    const size_t end =
        begin + chunk_rows_ < total_rows_ ? begin + chunk_rows_ : total_rows_;
    return Range{begin, end};
  }

 private:
  size_t total_rows_;
  size_t chunk_rows_;
};

}  // namespace m3::la

#endif  // M3_LA_CHUNKER_H_
