#ifndef M3_LA_CHUNKER_H_
#define M3_LA_CHUNKER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace m3::la {

/// \brief Picks a chunk size targeting ~8 MiB per chunk (min 256 rows)
/// for rows of `cols` doubles. A positive `requested` wins outright.
///
/// The shared chunk-size policy for every sequential scan consumer
/// (trainers, MappedDataset, the execution engine).
inline size_t AutoChunkRows(size_t cols, size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const size_t row_bytes = std::max<size_t>(1, cols * sizeof(double));
  const size_t target = 8ull << 20;  // ~8 MiB per chunk
  return std::max<size_t>(256, target / row_bytes);
}

/// \brief Partitions a row space into contiguous half-open chunks.
///
/// The execution engine (ChunkPipeline, MapReduceChunks, schedules) is
/// written against this interface: a chunk is a row range, and how rows
/// map to bytes is the MappedRegion's business (uniform row stride or a
/// ChunkByteMap). Two policies implement it: RowChunker (fixed row
/// count, the dense layout where every row costs the same) and
/// SparseChunker (an nnz byte budget, so ragged CSR rows still yield
/// chunks of roughly uniform I/O and compute cost).
class Chunker {
 public:
  struct Range {
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };

  virtual ~Chunker() = default;

  virtual size_t total_rows() const = 0;
  virtual size_t NumChunks() const = 0;

  /// Half-open row range of chunk `index`. \pre index < NumChunks().
  virtual Range Chunk(size_t index) const = 0;
};

/// \brief Partitions `total` rows into contiguous chunks of at most
/// `chunk_rows`.
///
/// Drives the sequential-scan structure shared by the ML algorithms: one
/// pass per iteration, chunk by chunk, which is what gives M3 its
/// sequential, readahead-friendly access pattern on mapped files. Also used
/// by the RAM-budget emulator to decide which chunk to evict next.
class RowChunker : public Chunker {
 public:
  RowChunker(size_t total_rows, size_t chunk_rows)
      : total_rows_(total_rows),
        chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

  size_t total_rows() const override { return total_rows_; }
  size_t chunk_rows() const { return chunk_rows_; }

  size_t NumChunks() const override {
    return total_rows_ == 0 ? 0
                            : (total_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }

  Range Chunk(size_t index) const override {
    M3_CHECK(index < NumChunks(), "chunk index %zu out of %zu", index,
             NumChunks());
    const size_t begin = index * chunk_rows_;
    const size_t end =
        begin + chunk_rows_ < total_rows_ ? begin + chunk_rows_ : total_rows_;
    return Range{begin, end};
  }

 private:
  size_t total_rows_;
  size_t chunk_rows_;
};

/// \brief Default SparseChunker payload budget (~8 MiB per chunk), chosen
/// to match AutoChunkRows so sparse and dense scans present the prefetch
/// engine with similarly sized units.
inline constexpr uint64_t kDefaultNnzBudgetBytes = 8ull << 20;

/// \brief col_idx (uint32) + value (double) bytes per stored nonzero —
/// the payload a CSR scan actually touches per entry.
inline constexpr uint64_t kCsrBytesPerNnz =
    sizeof(uint32_t) + sizeof(double);

/// \brief Partitions CSR rows into contiguous chunks whose *payload* size
/// (nnz × bytes_per_nnz) stays under a byte budget.
///
/// Uniform row counts are the wrong unit for sparse data: a chunk of 4096
/// empty rows costs nothing while a chunk of 4096 dense-ish rows can blow
/// the RAM budget and stall the prefetch window. Chunking by nnz bytes
/// keeps per-chunk I/O and compute cost roughly uniform, which is what the
/// readahead/evict engine and the calibrated perf model assume.
///
/// Boundary policy (greedy, one forward scan at construction):
///   - rows are appended to the current chunk until adding the next row
///     would exceed the budget; then the chunk closes,
///   - a single row larger than the whole budget becomes its own chunk
///     (it has to live somewhere; splitting a row would break the
///     row-range contract),
///   - empty rows are free and merge into whatever chunk is open.
/// Boundaries depend only on (row_ptr, budget, bytes_per_nnz), so every
/// pass and every worker count sees identical chunks — the precondition
/// for the engine's bitwise-deterministic fold.
class SparseChunker : public Chunker {
 public:
  /// `row_ptr` must outlive the chunker and hold `rows + 1` monotone
  /// offsets (a validated CSR row_ptr section). A zero budget clamps to
  /// one byte: every nonzero row becomes its own chunk.
  SparseChunker(const uint64_t* row_ptr, size_t rows,
                uint64_t nnz_budget_bytes = kDefaultNnzBudgetBytes,
                uint64_t bytes_per_nnz = kCsrBytesPerNnz)
      : row_ptr_(row_ptr), total_rows_(rows) {
    const uint64_t budget = std::max<uint64_t>(1, nnz_budget_bytes);
    const uint64_t per_nnz = std::max<uint64_t>(1, bytes_per_nnz);
    bounds_.push_back(0);
    uint64_t open_bytes = 0;  // payload of the chunk under construction
    for (size_t r = 0; r < rows; ++r) {
      M3_CHECK(row_ptr_[r + 1] >= row_ptr_[r],
               "row_ptr not monotone at row %zu", r);
      const uint64_t row_bytes = (row_ptr_[r + 1] - row_ptr_[r]) * per_nnz;
      const bool chunk_open = bounds_.back() != r;
      if (chunk_open && open_bytes + row_bytes > budget) {
        bounds_.push_back(r);
        open_bytes = 0;
      }
      open_bytes += row_bytes;
    }
    if (bounds_.back() != rows) {
      bounds_.push_back(rows);
    }
  }

  size_t total_rows() const override { return total_rows_; }

  size_t NumChunks() const override { return bounds_.size() - 1; }

  Range Chunk(size_t index) const override {
    M3_CHECK(index < NumChunks(), "chunk index %zu out of %zu", index,
             NumChunks());
    return Range{bounds_[index], bounds_[index + 1]};
  }

  /// Stored nonzeros in chunk `index` (its payload is ChunkNnz × the
  /// bytes_per_nnz the chunker was built with).
  uint64_t ChunkNnz(size_t index) const {
    const Range range = Chunk(index);
    return row_ptr_[range.end] - row_ptr_[range.begin];
  }

 private:
  const uint64_t* row_ptr_;
  size_t total_rows_;
  std::vector<size_t> bounds_;  ///< chunk i spans [bounds_[i], bounds_[i+1])
};

}  // namespace m3::la

#endif  // M3_LA_CHUNKER_H_
