#ifndef M3_LA_CHUNKER_H_
#define M3_LA_CHUNKER_H_

#include <algorithm>
#include <cstddef>

#include "util/logging.h"

namespace m3::la {

/// \brief Picks a chunk size targeting ~8 MiB per chunk (min 256 rows)
/// for rows of `cols` doubles. A positive `requested` wins outright.
///
/// The shared chunk-size policy for every sequential scan consumer
/// (trainers, MappedDataset, the execution engine).
inline size_t AutoChunkRows(size_t cols, size_t requested) {
  if (requested > 0) {
    return requested;
  }
  const size_t row_bytes = std::max<size_t>(1, cols * sizeof(double));
  const size_t target = 8ull << 20;  // ~8 MiB per chunk
  return std::max<size_t>(256, target / row_bytes);
}

/// \brief Partitions `total` rows into contiguous chunks of at most
/// `chunk_rows`.
///
/// Drives the sequential-scan structure shared by the ML algorithms: one
/// pass per iteration, chunk by chunk, which is what gives M3 its
/// sequential, readahead-friendly access pattern on mapped files. Also used
/// by the RAM-budget emulator to decide which chunk to evict next.
class RowChunker {
 public:
  struct Range {
    size_t begin = 0;
    size_t end = 0;
    size_t size() const { return end - begin; }
  };

  RowChunker(size_t total_rows, size_t chunk_rows)
      : total_rows_(total_rows),
        chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

  size_t total_rows() const { return total_rows_; }
  size_t chunk_rows() const { return chunk_rows_; }

  size_t NumChunks() const {
    return total_rows_ == 0 ? 0
                            : (total_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }

  /// Half-open row range of chunk `index`. \pre index < NumChunks().
  Range Chunk(size_t index) const {
    M3_CHECK(index < NumChunks(), "chunk index %zu out of %zu", index,
             NumChunks());
    const size_t begin = index * chunk_rows_;
    const size_t end =
        begin + chunk_rows_ < total_rows_ ? begin + chunk_rows_ : total_rows_;
    return Range{begin, end};
  }

 private:
  size_t total_rows_;
  size_t chunk_rows_;
};

}  // namespace m3::la

#endif  // M3_LA_CHUNKER_H_
