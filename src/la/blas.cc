#include "la/blas.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <vector>

namespace m3::la {

double Dot(ConstVectorView x, ConstVectorView y) {
  M3_CHECK(x.size() == y.size(), "Dot size mismatch %zu vs %zu", x.size(),
           y.size());
  double acc = 0.0;
  const size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  for (size_t i = 0; i < n; ++i) {
    acc += px[i] * py[i];
  }
  return acc;
}

void Axpy(double alpha, ConstVectorView x, VectorView y) {
  M3_CHECK(x.size() == y.size(), "Axpy size mismatch %zu vs %zu", x.size(),
           y.size());
  const size_t n = x.size();
  const double* px = x.data();
  double* py = y.data();
  for (size_t i = 0; i < n; ++i) {
    py[i] += alpha * px[i];
  }
}

void Scal(double alpha, VectorView x) {
  double* px = x.data();
  const size_t n = x.size();
  for (size_t i = 0; i < n; ++i) {
    px[i] *= alpha;
  }
}

double Nrm2(ConstVectorView x) { return std::sqrt(Dot(x, x)); }

double Sum(ConstVectorView x) {
  double acc = 0.0;
  for (double v : x) {
    acc += v;
  }
  return acc;
}

double AbsMax(ConstVectorView x) {
  double best = 0.0;
  for (double v : x) {
    best = std::max(best, std::fabs(v));
  }
  return best;
}

double SquaredDistance(ConstVectorView x, ConstVectorView y) {
  M3_CHECK(x.size() == y.size(), "SquaredDistance size mismatch");
  double acc = 0.0;
  const size_t n = x.size();
  const double* px = x.data();
  const double* py = y.data();
  for (size_t i = 0; i < n; ++i) {
    const double d = px[i] - py[i];
    acc += d * d;
  }
  return acc;
}

void Copy(ConstVectorView x, VectorView out) {
  M3_CHECK(x.size() == out.size(), "Copy size mismatch");
  std::copy(x.begin(), x.end(), out.begin());
}

void Gemv(double alpha, ConstMatrixView a, ConstVectorView x, double beta,
          VectorView y) {
  M3_CHECK(a.cols() == x.size(), "Gemv: A.cols %zu != x.size %zu", a.cols(),
           x.size());
  M3_CHECK(a.rows() == y.size(), "Gemv: A.rows %zu != y.size %zu", a.rows(),
           y.size());
  for (size_t r = 0; r < a.rows(); ++r) {
    y[r] = alpha * Dot(a.Row(r), x) + beta * y[r];
  }
}

void GemvT(double alpha, ConstMatrixView a, ConstVectorView x, double beta,
           VectorView y) {
  M3_CHECK(a.rows() == x.size(), "GemvT: A.rows %zu != x.size %zu", a.rows(),
           x.size());
  M3_CHECK(a.cols() == y.size(), "GemvT: A.cols %zu != y.size %zu", a.cols(),
           y.size());
  if (beta != 1.0) {
    Scal(beta, y);
  }
  // Row-major traversal: accumulate alpha * x[r] * A[r, :] into y.
  for (size_t r = 0; r < a.rows(); ++r) {
    Axpy(alpha * x[r], a.Row(r), y);
  }
}

void Gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c) {
  M3_CHECK(a.cols() == b.rows(), "Gemm: inner dims %zu vs %zu", a.cols(),
           b.rows());
  M3_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
           "Gemm: C shape mismatch");
  const size_t m = a.rows();
  const size_t k = a.cols();
  const size_t n = b.cols();
  if (beta != 1.0) {
    for (size_t r = 0; r < m; ++r) {
      Scal(beta, c.Row(r));
    }
  }
  // ikj loop order with cache blocking on k: streams B rows, accumulates C
  // rows; good locality for row-major operands.
  constexpr size_t kBlock = 64;
  for (size_t k0 = 0; k0 < k; k0 += kBlock) {
    const size_t k1 = std::min(k, k0 + kBlock);
    for (size_t i = 0; i < m; ++i) {
      double* crow = c.Row(i).data();
      for (size_t kk = k0; kk < k1; ++kk) {
        const double aik = alpha * a(i, kk);
        if (aik == 0.0) {
          continue;
        }
        const double* brow = b.Row(kk).data();
        for (size_t j = 0; j < n; ++j) {
          crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void ParallelGemv(double alpha, ConstMatrixView a, ConstVectorView x,
                  double beta, VectorView y, util::ThreadPool* pool) {
  M3_CHECK(a.cols() == x.size() && a.rows() == y.size(),
           "ParallelGemv shape mismatch");
  // Partition output rows; each worker owns a disjoint slice of y.
  util::ParallelFor(
      0, a.rows(), /*grain=*/256,
      [&](size_t lo, size_t hi) {
        Gemv(alpha, a.RowRange(lo, hi - lo), x, beta,
             y.Slice(lo, hi - lo));
      },
      pool);
}

void ParallelGemvT(double alpha, ConstMatrixView a, ConstVectorView x,
                   double beta, VectorView y, util::ThreadPool* pool) {
  M3_CHECK(a.rows() == x.size() && a.cols() == y.size(),
           "ParallelGemvT shape mismatch");
  if (beta != 1.0) {
    Scal(beta, y);
  }
  // Per-chunk partials merged in chunk order: the reduction is bitwise
  // deterministic for a fixed pool size.
  if (pool == nullptr) {
    pool = &util::GlobalThreadPool();
  }
  const auto ranges =
      util::PartitionRange(0, a.rows(), /*grain=*/256, pool->num_threads());
  std::vector<std::vector<double>> partials(ranges.size(),
                                            std::vector<double>(a.cols()));
  util::ParallelForIndexed(
      0, a.rows(), /*grain=*/256,
      [&](size_t chunk, size_t lo, size_t hi) {
        VectorView pview(partials[chunk].data(), partials[chunk].size());
        GemvT(alpha, a.RowRange(lo, hi - lo), x.Slice(lo, hi - lo), 1.0,
              pview);
      },
      pool);
  for (const auto& partial : partials) {
    Axpy(1.0, ConstVectorView(partial.data(), partial.size()), y);
  }
}

}  // namespace m3::la
