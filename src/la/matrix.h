#ifndef M3_LA_MATRIX_H_
#define M3_LA_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace m3::la {

/// \defgroup la Dense linear algebra (row-major, double precision)
///
/// The central design point for M3: every algorithm consumes *views*
/// (ConstMatrixView / ConstVectorView) that are plain pointer+shape
/// wrappers. A view over heap memory and a view over an mmap'd file are
/// indistinguishable to the math kernels — which is exactly the paper's
/// Table 1 claim that adopting memory mapping is a two-line change.

/// \brief Non-owning read-only view of a contiguous double vector.
class ConstVectorView {
 public:
  ConstVectorView() = default;
  ConstVectorView(const double* data, size_t size)
      : data_(data), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const double* data() const { return data_; }

  double operator[](size_t i) const { return data_[i]; }

  /// Sub-view [offset, offset + count). \pre offset + count <= size().
  ConstVectorView Slice(size_t offset, size_t count) const {
    M3_CHECK(offset + count <= size_, "vector slice out of range");
    return ConstVectorView(data_ + offset, count);
  }

  const double* begin() const { return data_; }
  const double* end() const { return data_ + size_; }

 private:
  const double* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Non-owning mutable view of a contiguous double vector.
class VectorView {
 public:
  VectorView() = default;
  VectorView(double* data, size_t size) : data_(data), size_(size) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double* data() const { return data_; }

  double& operator[](size_t i) const { return data_[i]; }

  /// Implicit read-only decay.
  operator ConstVectorView() const {  // NOLINT(runtime/explicit)
    return ConstVectorView(data_, size_);
  }

  VectorView Slice(size_t offset, size_t count) const {
    M3_CHECK(offset + count <= size_, "vector slice out of range");
    return VectorView(data_ + offset, count);
  }

  void Fill(double value) const {
    for (size_t i = 0; i < size_; ++i) {
      data_[i] = value;
    }
  }
  void SetZero() const { Fill(0.0); }

  double* begin() const { return data_; }
  double* end() const { return data_ + size_; }

 private:
  double* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Non-owning read-only view of a dense row-major matrix.
///
/// `stride` is the distance in elements between consecutive rows, allowing
/// views of row sub-ranges and of matrices embedded in larger buffers
/// (e.g. a feature block inside a dataset record). For a tightly packed
/// matrix, stride == cols.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols), stride_(cols) {}
  ConstMatrixView(const double* data, size_t rows, size_t cols, size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    M3_CHECK(stride >= cols, "stride must be >= cols");
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t stride() const { return stride_; }
  const double* data() const { return data_; }

  double operator()(size_t r, size_t c) const {
    return data_[r * stride_ + c];
  }

  /// Row `r` as a vector view.
  ConstVectorView Row(size_t r) const {
    M3_CHECK(r < rows_, "row index %zu out of range (%zu rows)", r, rows_);
    return ConstVectorView(data_ + r * stride_, cols_);
  }

  /// Rows [row0, row0 + count).
  ConstMatrixView RowRange(size_t row0, size_t count) const {
    M3_CHECK(row0 + count <= rows_, "row range out of bounds");
    return ConstMatrixView(data_ + row0 * stride_, count, cols_, stride_);
  }

 private:
  const double* data_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
};

/// \brief Non-owning mutable view of a dense row-major matrix.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols), stride_(cols) {}
  MatrixView(double* data, size_t rows, size_t cols, size_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    M3_CHECK(stride >= cols, "stride must be >= cols");
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t stride() const { return stride_; }
  double* data() const { return data_; }

  double& operator()(size_t r, size_t c) const {
    return data_[r * stride_ + c];
  }

  operator ConstMatrixView() const {  // NOLINT(runtime/explicit)
    return ConstMatrixView(data_, rows_, cols_, stride_);
  }

  VectorView Row(size_t r) const {
    M3_CHECK(r < rows_, "row index %zu out of range (%zu rows)", r, rows_);
    return VectorView(data_ + r * stride_, cols_);
  }

  MatrixView RowRange(size_t row0, size_t count) const {
    M3_CHECK(row0 + count <= rows_, "row range out of bounds");
    return MatrixView(data_ + row0 * stride_, count, cols_, stride_);
  }

  void Fill(double value) const {
    for (size_t r = 0; r < rows_; ++r) {
      Row(r).Fill(value);
    }
  }
  void SetZero() const { Fill(0.0); }

 private:
  double* data_ = nullptr;
  size_t rows_ = 0;
  size_t cols_ = 0;
  size_t stride_ = 0;
};

/// \brief Owning heap-allocated double vector.
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t size) : values_(size, 0.0) {}
  Vector(size_t size, double fill) : values_(size, fill) {}
  explicit Vector(std::vector<double> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  VectorView View() { return VectorView(values_.data(), values_.size()); }
  ConstVectorView View() const {
    return ConstVectorView(values_.data(), values_.size());
  }
  operator ConstVectorView() const { return View(); }  // NOLINT
  operator VectorView() { return View(); }             // NOLINT

  void Fill(double value) { View().Fill(value); }
  void SetZero() { Fill(0.0); }
  void Resize(size_t size) { values_.resize(size, 0.0); }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// \brief Owning heap-allocated row-major double matrix.
///
/// This is the "Mat data;" of the paper's Table 1: the conventional
/// in-memory container. The M3 path replaces it with a MatrixView over an
/// mmap'd region without touching downstream code.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     values_(rows * cols, 0.0) {}
  Matrix(size_t rows, size_t cols, std::vector<double> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {
    M3_CHECK(values_.size() == rows * cols,
             "matrix storage size mismatch: %zu != %zu*%zu", values_.size(),
             rows, cols);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  double* data() { return values_.data(); }
  const double* data() const { return values_.data(); }

  double operator()(size_t r, size_t c) const {
    return values_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return values_[r * cols_ + c]; }

  MatrixView View() { return MatrixView(values_.data(), rows_, cols_); }
  ConstMatrixView View() const {
    return ConstMatrixView(values_.data(), rows_, cols_);
  }
  operator ConstMatrixView() const { return View(); }  // NOLINT
  operator MatrixView() { return View(); }             // NOLINT

  VectorView Row(size_t r) { return View().Row(r); }
  ConstVectorView Row(size_t r) const { return View().Row(r); }

  void Fill(double value) { View().Fill(value); }
  void SetZero() { Fill(0.0); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> values_;
};

}  // namespace m3::la

#endif  // M3_LA_MATRIX_H_
