#include "la/solve.h"

#include <cmath>

#include "la/blas.h"

namespace m3::la {

using util::Result;
using util::Status;

Status CholeskyFactor(MatrixView a) {
  M3_CHECK(a.rows() == a.cols(), "Cholesky requires a square matrix");
  const size_t n = a.rows();
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) {
      diag -= a(j, k) * a(j, k);
    }
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (Cholesky pivot <= 0)");
    }
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double value = a(i, j);
      for (size_t k = 0; k < j; ++k) {
        value -= a(i, k) * a(j, k);
      }
      a(i, j) = value / ljj;
    }
  }
  return Status::OK();
}

void CholeskySolveInPlace(ConstMatrixView l, VectorView x) {
  M3_CHECK(l.rows() == l.cols() && l.rows() == x.size(),
           "Cholesky solve shape mismatch");
  const size_t n = l.rows();
  // Forward substitution: L y = b.
  for (size_t i = 0; i < n; ++i) {
    double value = x[i];
    for (size_t k = 0; k < i; ++k) {
      value -= l(i, k) * x[k];
    }
    x[i] = value / l(i, i);
  }
  // Back substitution: L^T x = y.
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double value = x[i];
    for (size_t k = i + 1; k < n; ++k) {
      value -= l(k, i) * x[k];
    }
    x[i] = value / l(i, i);
  }
}

Result<Vector> SolveSpd(ConstMatrixView a, ConstVectorView b) {
  M3_CHECK(a.rows() == a.cols() && a.rows() == b.size(),
           "SolveSpd shape mismatch");
  const size_t n = a.rows();
  Matrix factor(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      factor(i, j) = a(i, j);
    }
  }
  M3_RETURN_IF_ERROR(CholeskyFactor(factor));
  Vector x(n);
  Copy(b, x);
  CholeskySolveInPlace(factor, x);
  return x;
}

}  // namespace m3::la
