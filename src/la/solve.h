#ifndef M3_LA_SOLVE_H_
#define M3_LA_SOLVE_H_

#include "la/matrix.h"
#include "util/result.h"

namespace m3::la {

/// \brief In-place Cholesky factorization A = L L^T of a symmetric
/// positive-definite matrix (lower triangle of `a` is overwritten with L;
/// the strict upper triangle is left untouched).
///
/// Returns FailedPrecondition if a non-positive pivot is met (matrix not
/// SPD within numerical tolerance).
util::Status CholeskyFactor(MatrixView a);

/// \brief Solves A x = b given the Cholesky factor L in the lower triangle
/// of `l` (forward + back substitution). `x` may alias `b`.
void CholeskySolveInPlace(ConstMatrixView l, VectorView x);

/// \brief Convenience: solves the SPD system A x = b, returning x.
/// `a` is copied; callers keep their matrix.
util::Result<Vector> SolveSpd(ConstMatrixView a, ConstVectorView b);

}  // namespace m3::la

#endif  // M3_LA_SOLVE_H_
