#ifndef M3_CLUSTER_SIM_CLOCK_H_
#define M3_CLUSTER_SIM_CLOCK_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/partition.h"

namespace m3::cluster {

/// \brief Computes the simulated wall time of one distributed stage.
///
/// Scheduling model: each instance runs its tasks on `cores_per_instance`
/// parallel slots (near-equal tasks => busy time = work / cores, plus a
/// dispatch overhead per task wave). Disk reads overlap compute within an
/// instance (readahead) with `ClusterConfig::overlap_efficiency`, so
/// instance time = CombineOverlap(compute, io) — max(compute, io) at the
/// default perfect efficiency, compute + io when a measured calibration
/// says nothing overlapped. The stage finishes when the slowest instance
/// does (driver barrier), after which results flow back through a binary
/// aggregation tree.
class StageCostModel {
 public:
  explicit StageCostModel(const ClusterConfig& config) : config_(config) {}

  /// Simulated seconds of compute for `bytes` of data on one task slot:
  /// native per-core math cost scaled by the JVM factor, plus Spark's
  /// per-record pipeline overhead, at the instance's core speed.
  double TaskComputeSeconds(uint64_t bytes) const {
    const double per_byte =
        config_.local_cpu_seconds_per_byte * config_.jvm_slowdown +
        config_.record_overhead_seconds_per_byte;
    return static_cast<double>(bytes) * per_byte / config_.core_speed;
  }

  /// Stage cost for running one task per partition. `row_bytes` converts
  /// partition rows to bytes. `cold` forces every partition to be read
  /// from HDFS (first pass) regardless of cache flags.
  JobStats StageCost(const std::vector<Partition>& partitions,
                     uint64_t row_bytes, bool cold) const;

  /// Network cost of tree-aggregating `result_bytes` from all instances to
  /// the driver (ceil(log2(instances)) rounds).
  JobStats TreeAggregate(uint64_t result_bytes) const;

  /// Network cost of broadcasting `payload_bytes` driver -> all instances.
  JobStats Broadcast(uint64_t payload_bytes) const;

 private:
  const ClusterConfig& config_;
};

}  // namespace m3::cluster

#endif  // M3_CLUSTER_SIM_CLOCK_H_
