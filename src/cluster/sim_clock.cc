#include "cluster/sim_clock.h"

#include <algorithm>

#include "core/perf_model.h"

namespace m3::cluster {

JobStats StageCostModel::StageCost(const std::vector<Partition>& partitions,
                                   uint64_t row_bytes, bool cold) const {
  JobStats stats;
  stats.jobs = 1;
  stats.tasks = partitions.size();

  const size_t n = config_.num_instances;
  std::vector<double> compute(n, 0.0);
  std::vector<double> io(n, 0.0);
  std::vector<size_t> task_count(n, 0);

  for (const Partition& partition : partitions) {
    const uint64_t bytes = partition.rows() * row_bytes;
    compute[partition.instance] += TaskComputeSeconds(bytes);
    ++task_count[partition.instance];
    if (cold) {
      io[partition.instance] +=
          static_cast<double>(bytes) / config_.hdfs_read_bytes_per_sec;
      stats.bytes_read_from_disk += bytes;
    } else if (!partition.cached) {
      io[partition.instance] +=
          static_cast<double>(bytes) / config_.spill_read_bytes_per_sec;
      stats.bytes_read_from_disk += bytes;
    }
  }

  double slowest = 0.0;
  double total_compute = 0.0;
  double total_io = 0.0;
  double total_overhead = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double cores = static_cast<double>(config_.cores_per_instance);
    const double busy = compute[i] / cores;
    // One dispatch overhead per task, amortized across core slots.
    const double dispatch = config_.task_overhead_seconds *
                            std::ceil(static_cast<double>(task_count[i]) /
                                      cores);
    // Disk reads overlap compute (readahead) with the configured
    // efficiency — 1.0 is the historical perfect max(compute, io)
    // assumption, a measured calibration fits it lower. Overheads never
    // overlap.
    const double instance_time =
        CombineOverlap(busy, io[i], config_.overlap_efficiency) + dispatch;
    slowest = std::max(slowest, instance_time);
    total_compute += compute[i];
    total_io += io[i];
    total_overhead += dispatch;
  }
  stats.compute_seconds = total_compute;
  stats.io_seconds = total_io;
  stats.overhead_seconds = total_overhead + config_.job_overhead_seconds;
  stats.simulated_seconds = slowest + config_.job_overhead_seconds;
  return stats;
}

JobStats StageCostModel::TreeAggregate(uint64_t result_bytes) const {
  JobStats stats;
  const double rounds =
      std::ceil(std::log2(std::max<size_t>(2, config_.num_instances)));
  const double per_round =
      config_.network_latency +
      static_cast<double>(result_bytes) / config_.network_bandwidth;
  stats.network_seconds = rounds * per_round;
  stats.simulated_seconds = stats.network_seconds;
  stats.bytes_over_network =
      result_bytes * static_cast<uint64_t>(rounds);
  return stats;
}

JobStats StageCostModel::Broadcast(uint64_t payload_bytes) const {
  // BitTorrent-ish broadcast: log2 rounds to reach every instance.
  return TreeAggregate(payload_bytes);
}

}  // namespace m3::cluster
