#include "cluster/cluster_config.h"

#include <algorithm>
#include <limits>

#include "core/model_fit.h"
#include "core/perf_model.h"
#include "util/format.h"

namespace m3::cluster {

uint64_t ClusterConfig::CacheCapacityBytes() const {
  const double capacity = static_cast<double>(instance_ram_bytes) *
                          static_cast<double>(num_instances) *
                          cache_fraction;
  // Narrowing a double at or above 2^64 back to uint64_t is UB; saturate.
  if (capacity >=
      static_cast<double>(std::numeric_limits<uint64_t>::max())) {
    return std::numeric_limits<uint64_t>::max();
  }
  return static_cast<uint64_t>(capacity);
}

util::Status ClusterConfig::CalibrateFromMeasured(const JobStats& measured) {
  exec::PipelineStats cached;
  exec::PipelineStats spilled;
  for (const InstanceExecStats& instance : measured.instance_exec) {
    cached += instance.cached;
    spilled += instance.spilled;
  }
  const exec::PipelineStats total = cached + spilled;
  if (total.passes == 0 || total.drive_seconds <= 0) {
    return util::Status::InvalidArgument(
        "no measured pipeline execution to calibrate from (run with "
        "exec.use_pipelines and a bound mapping first)");
  }
  const double compute = total.compute_seconds + total.retire_seconds;
  if (total.prefetch_bytes == 0 || compute <= 0) {
    return util::Status::InvalidArgument(
        "measured stats carry no scanned bytes or compute time "
        "(readahead disabled?)");
  }

  // Native compute cost measured on this machine — the same scale the
  // simulated instances are derated from (core_speed, jvm_slowdown).
  // Prefer the cached class: its pages stay resident between jobs, so
  // its compute seconds are not inflated by the storage faults spilled
  // chunks serve inside the map functor (core/model_fit's "calibrate the
  // CPU term on a warm run" precondition — fitting from the spilled
  // class would charge that fault time again as spill I/O). Fall back to
  // the full aggregate when the run had no cached execution.
  const double cached_compute =
      cached.compute_seconds + cached.retire_seconds;
  const bool cached_usable =
      cached.prefetch_bytes > 0 && cached_compute > 0;
  local_cpu_seconds_per_byte =
      cached_usable
          ? cached_compute / static_cast<double>(cached.prefetch_bytes)
          : compute / static_cast<double>(total.prefetch_bytes);

  // Spill re-read bandwidth: the spilled class is force-evicted before
  // every job, so its prefetch stage measures raw storage re-read speed.
  double spill_bw = MeasuredReadBandwidth(spilled, /*fallback=*/0.0);
  if (spill_bw <= 0 && spilled.prefetch_bytes > 0 &&
      spilled.drive_seconds > 0) {
    // The disk always won the race: the run only bounds bandwidth from
    // below. Charge the optimistic bound rather than keeping the
    // analytic constant on a calibrated config.
    spill_bw = static_cast<double>(spilled.prefetch_bytes) /
               spilled.drive_seconds;
  }
  if (spill_bw > 0) {
    spill_read_bytes_per_sec = spill_bw;
  }

  // Overlap assumption from the measured hit/stall ratio: a hit is a
  // chunk whose I/O the prefetch stage fully hid, so the hit fraction is
  // the fraction of min(compute, io) pipelining can be trusted to hide.
  const uint64_t classified = total.prefetch_hits + total.stalls;
  overlap_efficiency =
      classified > 0 ? static_cast<double>(total.prefetch_hits) /
                           static_cast<double>(classified)
                     : 1.0;

  calibrated_from_measurement = true;
  return util::Status::OK();
}

util::Status ClusterConfig::Validate() const {
  if (num_instances == 0 || cores_per_instance == 0) {
    return util::Status::InvalidArgument(
        "cluster needs at least one instance and one core");
  }
  // The TotalPartitions product must stay exact in size_t — the same
  // integer-multiply overflow pattern CacheCapacityBytes had.
  const size_t max = std::numeric_limits<size_t>::max();
  if (cores_per_instance > max / num_instances ||
      partitions_per_core > max / (num_instances * cores_per_instance)) {
    return util::Status::InvalidArgument(
        "instances x cores x partitions_per_core overflows size_t");
  }
  if (cache_fraction <= 0 || cache_fraction > 1) {
    return util::Status::InvalidArgument("cache_fraction must be in (0, 1]");
  }
  if (core_speed <= 0 || jvm_slowdown <= 0) {
    return util::Status::InvalidArgument(
        "core_speed and jvm_slowdown must be positive");
  }
  if (network_bandwidth <= 0 || hdfs_read_bytes_per_sec <= 0 ||
      spill_read_bytes_per_sec <= 0) {
    return util::Status::InvalidArgument("bandwidths must be positive");
  }
  if (overlap_efficiency < 0 || overlap_efficiency > 1) {
    return util::Status::InvalidArgument(
        "overlap_efficiency must be in [0, 1]");
  }
  if (local_cpu_seconds_per_byte <= 0) {
    return util::Status::InvalidArgument(
        "local_cpu_seconds_per_byte must be calibrated (> 0)");
  }
  if (record_overhead_seconds_per_byte < 0) {
    return util::Status::InvalidArgument(
        "record_overhead_seconds_per_byte must be >= 0");
  }
  if (partitions_per_core == 0) {
    return util::Status::InvalidArgument("partitions_per_core must be >= 1");
  }
  return util::Status::OK();
}

std::string ClusterConfig::ToString() const {
  return util::StrFormat(
      "%zu instances x %zu cores, ram=%s/instance (cache %s total), "
      "jvm_slowdown=%.1f, task_ovh=%.0fms, job_ovh=%.0fms, net=%s/s",
      num_instances, cores_per_instance,
      util::HumanBytes(instance_ram_bytes).c_str(),
      util::HumanBytes(CacheCapacityBytes()).c_str(), jvm_slowdown,
      task_overhead_seconds * 1e3, job_overhead_seconds * 1e3,
      util::HumanBytes(static_cast<uint64_t>(network_bandwidth)).c_str());
}

void InstanceExecStats::Accumulate(const InstanceExecStats& other) {
  cached += other.cached;
  spilled += other.spilled;
  spill_refaults += other.spill_refaults;
  spill_refault_bytes += other.spill_refault_bytes;
  incomplete |= other.incomplete;
}

std::string InstanceExecStats::ToString() const {
  std::string out = util::StrFormat(
      "cached[hits=%llu stalls=%llu evict=%s] spilled[hits=%llu stalls=%llu "
      "refaults=%llu (%s)]",
      static_cast<unsigned long long>(cached.prefetch_hits),
      static_cast<unsigned long long>(cached.stalls),
      util::HumanBytes(cached.bytes_evicted).c_str(),
      static_cast<unsigned long long>(spilled.prefetch_hits),
      static_cast<unsigned long long>(spilled.stalls),
      static_cast<unsigned long long>(spill_refaults),
      util::HumanBytes(spill_refault_bytes).c_str());
  if (incomplete) {
    out += " INCOMPLETE";
  }
  return out;
}

void JobStats::Accumulate(const JobStats& other) {
  simulated_seconds += other.simulated_seconds;
  compute_seconds += other.compute_seconds;
  io_seconds += other.io_seconds;
  network_seconds += other.network_seconds;
  overhead_seconds += other.overhead_seconds;
  jobs += other.jobs;
  tasks += other.tasks;
  bytes_read_from_disk += other.bytes_read_from_disk;
  bytes_over_network += other.bytes_over_network;
  measured_exec_seconds += other.measured_exec_seconds;
  predicted_exec_seconds += other.predicted_exec_seconds;
  incomplete |= other.incomplete;
  if (instance_exec.size() < other.instance_exec.size()) {
    instance_exec.resize(other.instance_exec.size());
  }
  for (size_t i = 0; i < other.instance_exec.size(); ++i) {
    instance_exec[i].Accumulate(other.instance_exec[i]);
  }
}

std::string JobStats::ToString() const {
  std::string out = util::StrFormat(
      "simulated=%s (compute=%s io=%s net=%s ovh=%s) jobs=%zu tasks=%zu "
      "disk=%s net_bytes=%s",
      util::HumanDuration(simulated_seconds).c_str(),
      util::HumanDuration(compute_seconds).c_str(),
      util::HumanDuration(io_seconds).c_str(),
      util::HumanDuration(network_seconds).c_str(),
      util::HumanDuration(overhead_seconds).c_str(), jobs, tasks,
      util::HumanBytes(bytes_read_from_disk).c_str(),
      util::HumanBytes(bytes_over_network).c_str());
  if (incomplete) {
    out += " INCOMPLETE";
  }
  if (predicted_exec_seconds > 0) {
    out += util::StrFormat(
        "\n  measured exec %.3fs vs calibrated prediction %.3fs "
        "(residual %+.3fs)",
        measured_exec_seconds, predicted_exec_seconds,
        predicted_exec_seconds - measured_exec_seconds);
  }
  for (size_t i = 0; i < instance_exec.size(); ++i) {
    out += util::StrFormat("\n  measured instance %zu: %s", i,
                           instance_exec[i].ToString().c_str());
  }
  return out;
}

}  // namespace m3::cluster
