#include "cluster/cluster_config.h"

#include "util/format.h"

namespace m3::cluster {

util::Status ClusterConfig::Validate() const {
  if (num_instances == 0 || cores_per_instance == 0) {
    return util::Status::InvalidArgument(
        "cluster needs at least one instance and one core");
  }
  if (cache_fraction <= 0 || cache_fraction > 1) {
    return util::Status::InvalidArgument("cache_fraction must be in (0, 1]");
  }
  if (core_speed <= 0 || jvm_slowdown <= 0) {
    return util::Status::InvalidArgument(
        "core_speed and jvm_slowdown must be positive");
  }
  if (network_bandwidth <= 0 || hdfs_read_bytes_per_sec <= 0 ||
      spill_read_bytes_per_sec <= 0) {
    return util::Status::InvalidArgument("bandwidths must be positive");
  }
  if (local_cpu_seconds_per_byte <= 0) {
    return util::Status::InvalidArgument(
        "local_cpu_seconds_per_byte must be calibrated (> 0)");
  }
  if (record_overhead_seconds_per_byte < 0) {
    return util::Status::InvalidArgument(
        "record_overhead_seconds_per_byte must be >= 0");
  }
  if (partitions_per_core == 0) {
    return util::Status::InvalidArgument("partitions_per_core must be >= 1");
  }
  return util::Status::OK();
}

std::string ClusterConfig::ToString() const {
  return util::StrFormat(
      "%zu instances x %zu cores, ram=%s/instance (cache %s total), "
      "jvm_slowdown=%.1f, task_ovh=%.0fms, job_ovh=%.0fms, net=%s/s",
      num_instances, cores_per_instance,
      util::HumanBytes(instance_ram_bytes).c_str(),
      util::HumanBytes(CacheCapacityBytes()).c_str(), jvm_slowdown,
      task_overhead_seconds * 1e3, job_overhead_seconds * 1e3,
      util::HumanBytes(static_cast<uint64_t>(network_bandwidth)).c_str());
}

void InstanceExecStats::Accumulate(const InstanceExecStats& other) {
  cached += other.cached;
  spilled += other.spilled;
  spill_refaults += other.spill_refaults;
  spill_refault_bytes += other.spill_refault_bytes;
}

std::string InstanceExecStats::ToString() const {
  return util::StrFormat(
      "cached[hits=%llu stalls=%llu evict=%s] spilled[hits=%llu stalls=%llu "
      "refaults=%llu (%s)]",
      static_cast<unsigned long long>(cached.prefetch_hits),
      static_cast<unsigned long long>(cached.stalls),
      util::HumanBytes(cached.bytes_evicted).c_str(),
      static_cast<unsigned long long>(spilled.prefetch_hits),
      static_cast<unsigned long long>(spilled.stalls),
      static_cast<unsigned long long>(spill_refaults),
      util::HumanBytes(spill_refault_bytes).c_str());
}

void JobStats::Accumulate(const JobStats& other) {
  simulated_seconds += other.simulated_seconds;
  compute_seconds += other.compute_seconds;
  io_seconds += other.io_seconds;
  network_seconds += other.network_seconds;
  overhead_seconds += other.overhead_seconds;
  jobs += other.jobs;
  tasks += other.tasks;
  bytes_read_from_disk += other.bytes_read_from_disk;
  bytes_over_network += other.bytes_over_network;
  if (instance_exec.size() < other.instance_exec.size()) {
    instance_exec.resize(other.instance_exec.size());
  }
  for (size_t i = 0; i < other.instance_exec.size(); ++i) {
    instance_exec[i].Accumulate(other.instance_exec[i]);
  }
}

std::string JobStats::ToString() const {
  std::string out = util::StrFormat(
      "simulated=%s (compute=%s io=%s net=%s ovh=%s) jobs=%zu tasks=%zu "
      "disk=%s net_bytes=%s",
      util::HumanDuration(simulated_seconds).c_str(),
      util::HumanDuration(compute_seconds).c_str(),
      util::HumanDuration(io_seconds).c_str(),
      util::HumanDuration(network_seconds).c_str(),
      util::HumanDuration(overhead_seconds).c_str(), jobs, tasks,
      util::HumanBytes(bytes_read_from_disk).c_str(),
      util::HumanBytes(bytes_over_network).c_str());
  for (size_t i = 0; i < instance_exec.size(); ++i) {
    out += util::StrFormat("\n  measured instance %zu: %s", i,
                           instance_exec[i].ToString().c_str());
  }
  return out;
}

}  // namespace m3::cluster
