#ifndef M3_CLUSTER_PARTITION_EXECUTOR_H_
#define M3_CLUSTER_PARTITION_EXECUTOR_H_

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/partition.h"
#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "exec/chunk_schedule.h"
#include "io/prefetch_backend.h"
#include "la/chunker.h"
#include "obs/trace_recorder.h"
#include "util/thread_pool.h"

namespace m3::cluster {

/// \brief Runs simulated partition tasks through real per-partition
/// execution pipelines.
///
/// One executor lives for one distributed run (all of its jobs). Tasks are
/// visited in a `ChunkSchedule::Strided(partitions, num_instances)`
/// interleaving of the partition indices: with the round-robin assignment
/// of MakePartitions, lane k is exactly instance k's partition list, so a
/// job walks instance 0's partitions, then instance 1's, ... — each
/// instance scanning its own shard starting at its own offset (stride =
/// instance count, offset = instance id).
///
/// With `ClusterExecOptions::use_pipelines` on, each partition owns an
/// `exec::ChunkPipeline` (created lazily, persisting across jobs):
///   - bound to the partition's byte range of the dataset mapping when the
///     run is mmap-backed, so prefetch readahead and trailing eviction are
///     real madvise calls on real pages;
///   - cached partitions keep their trailing residency window across jobs
///     under a pro-rata share of the instance's RAM budget — later jobs
///     find their pages resident (prefetch hits);
///   - spilled partitions are force-evicted before every pass, so every
///     job re-faults them from storage (Spark's per-iteration spill
///     re-read, measured instead of only modeled).
///
/// Determinism: `map` computes one partial per chunk (possibly on pipeline
/// workers, in any order); `reduce` folds partials on the calling thread
/// in ascending chunk order within each partition, partitions in the fixed
/// strided task order. The fold sequence is therefore identical with
/// pipelines off, on, and at any worker count — results are bitwise
/// reproducible across all engine configurations.
class PartitionExecutor {
 public:
  /// `data.mapping == nullptr` means in-memory execution (pipelines, when
  /// enabled, only orchestrate compute). When bound, `data.base_offset` is
  /// the byte offset of feature row 0 and `data.row_bytes` the stride of
  /// one row.
  PartitionExecutor(std::vector<Partition> partitions,
                    const ClusterConfig& config,
                    const exec::MappedRegion& data);

  PartitionExecutor(const PartitionExecutor&) = delete;
  PartitionExecutor& operator=(const PartitionExecutor&) = delete;

  const std::vector<Partition>& partitions() const { return partitions_; }

  /// The strided task visit order shared by every job of this run.
  const exec::ChunkSchedule& task_order() const { return task_order_; }

  bool pipelined() const { return config_.exec.use_pipelines; }
  bool bound() const { return data_.mapping != nullptr; }

  /// Runs one distributed job: every partition task, in task_order().
  /// `map(partition, row_begin, row_end) -> T` computes a chunk partial
  /// over global row coordinates; `reduce(partition, T&&)` folds it on the
  /// calling thread in deterministic order. When `job` is non-null and
  /// pipelines are on, the job's measured per-instance stats are recorded
  /// into `job->instance_exec`.
  template <typename T, typename MapFn, typename ReduceFn>
  void RunJob(MapFn&& map, ReduceFn&& reduce, JobStats* job) {
    obs::ScopedSpan job_span("cluster", "run_job");
    if (job_span.armed()) {
      job_span.AddArg("tasks",
                      static_cast<uint64_t>(task_order_.num_chunks()));
    }
    if (job != nullptr && pipelined()) {
      job->instance_exec.resize(config_.num_instances);
    }
    for (size_t pos = 0; pos < task_order_.num_chunks(); ++pos) {
      const size_t index = task_order_.At(pos);
      const Partition& partition = partitions_[index];
      obs::ScopedSpan task_span("cluster", "partition_task");
      if (task_span.armed()) {
        task_span.AddArg("partition", static_cast<uint64_t>(index));
        task_span.AddArg("instance",
                         static_cast<uint64_t>(partition.instance));
        task_span.AddArg("cached", partition.cached ? "true" : "false");
      }
      exec::ChunkPipeline* pipeline = PreparePartition(index, job);
      const la::RowChunker chunker(partition.rows(), ChunkRowsFor(partition));
      exec::MapReduceChunks<T>(
          pipeline, chunker,
          exec::ChunkSchedule::Sequential(chunker.NumChunks()),
          [&](size_t, size_t row_begin, size_t row_end) {
            return map(partition, partition.row_begin + row_begin,
                       partition.row_begin + row_end);
          },
          [&](size_t, T&& partial) { reduce(partition, std::move(partial)); });
      CollectStats(index, pipeline, job);
    }
    if (job != nullptr && pipelined()) {
      // The job's measured execution wall time: the drive seconds its
      // partition passes just recorded (this JobStats is per job — the
      // instance_exec entries hold exactly this job's deltas).
      for (const InstanceExecStats& instance : job->instance_exec) {
        job->measured_exec_seconds += instance.cached.drive_seconds +
                                      instance.spilled.drive_seconds;
      }
    }
  }

  /// Runs the slice of one job owned by `instance`: that instance's
  /// partitions only, visited in the position they occupy in the global
  /// task_order() (lane `instance` of the strided schedule — ascending
  /// partition index). `map` is exactly RunJob's map; instead of folding,
  /// every chunk partial is handed to
  /// `emit(partition_index, chunk_index, T&&)` in ascending chunk order
  /// within each partition. This is the worker half of the
  /// cluster::ProcessFleet split: each worker emits its raw per-chunk
  /// partials (never pre-folded — FP addition is not associative) and the
  /// parent folds ALL instances' partials in the full task_order()
  /// sequence, reproducing RunJob's fold bitwise at any fleet size. Stats
  /// recording matches RunJob, but only `instance`'s slot is populated.
  template <typename T, typename MapFn, typename EmitFn>
  void RunInstanceJob(size_t instance, MapFn&& map, EmitFn&& emit,
                      JobStats* job) {
    obs::ScopedSpan job_span("cluster", "run_instance_job");
    if (job_span.armed()) {
      job_span.AddArg("instance", static_cast<uint64_t>(instance));
    }
    if (job != nullptr && pipelined()) {
      job->instance_exec.resize(config_.num_instances);
    }
    for (size_t pos = 0; pos < task_order_.num_chunks(); ++pos) {
      const size_t index = task_order_.At(pos);
      const Partition& partition = partitions_[index];
      if (partition.instance != instance) {
        continue;
      }
      obs::ScopedSpan task_span("cluster", "partition_task");
      if (task_span.armed()) {
        task_span.AddArg("partition", static_cast<uint64_t>(index));
        task_span.AddArg("instance",
                         static_cast<uint64_t>(partition.instance));
        task_span.AddArg("cached", partition.cached ? "true" : "false");
      }
      exec::ChunkPipeline* pipeline = PreparePartition(index, job);
      const la::RowChunker chunker(partition.rows(), ChunkRowsFor(partition));
      exec::MapReduceChunks<T>(
          pipeline, chunker,
          exec::ChunkSchedule::Sequential(chunker.NumChunks()),
          [&](size_t, size_t row_begin, size_t row_end) {
            return map(partition, partition.row_begin + row_begin,
                       partition.row_begin + row_end);
          },
          [&](size_t chunk, T&& partial) {
            emit(index, chunk, std::move(partial));
          });
      CollectStats(index, pipeline, job);
    }
    if (job != nullptr && pipelined()) {
      // This worker's measured execution wall time (only `instance`'s
      // entry is non-zero here).
      for (const InstanceExecStats& stats : job->instance_exec) {
        job->measured_exec_seconds +=
            stats.cached.drive_seconds + stats.spilled.drive_seconds;
      }
    }
  }

  /// The measured-calibrated model's prediction of one job's pipeline
  /// execution wall seconds on THIS machine (the counterpart of
  /// JobStats::measured_exec_seconds): fitted local CPU cost over every
  /// partition's bytes, fitted re-read bandwidth over the bytes that come
  /// from storage (all of them when `cold`, the spilled partitions
  /// otherwise), combined under the fitted overlap efficiency. Returns 0
  /// unless the run is pipelined, mmap-bound, and the config carries a
  /// measured calibration (ClusterConfig::CalibrateFromMeasured).
  double PredictJobExecSeconds(uint64_t row_bytes, bool cold) const;

 private:
  /// Returns the partition's pipeline (lazily created) or nullptr when
  /// pipelines are off. For bound spilled partitions, force-evicts the
  /// partition's pages first and counts the re-fault into `job`.
  exec::ChunkPipeline* PreparePartition(size_t index, JobStats* job);

  /// Moves the pipeline's per-pass stats into the owning instance's slot.
  void CollectStats(size_t index, exec::ChunkPipeline* pipeline,
                    JobStats* job);

  /// Rows per pipeline chunk for `partition` (config override or the whole
  /// partition as one chunk).
  size_t ChunkRowsFor(const Partition& partition) const;

  /// The partition's share of its instance's measured RAM budget: cached
  /// partitions split the budget pro rata by rows (the pinned RDD cache);
  /// spilled partitions get whatever the cached set leaves over (transient
  /// scan working memory). Only meaningful when the run is mmap-backed.
  uint64_t BudgetFor(const Partition& partition) const;

  std::vector<Partition> partitions_;
  ClusterConfig config_;  ///< by value: the executor may outlive callers' copies
  exec::MappedRegion data_;
  exec::ChunkSchedule task_order_;
  /// Cached rows per instance (budget proration denominator).
  std::vector<size_t> instance_cached_rows_;
  /// Pools shared by every partition pipeline: RunJob drives one partition
  /// at a time, so per-partition pools would only multiply idle threads
  /// (partitions x workers of them) without adding parallelism.
  std::unique_ptr<util::ThreadPool> io_pool_;
  std::unique_ptr<util::ThreadPool> compute_pool_;
  /// One prefetch backend shared by every partition pipeline, for the same
  /// reason (ClusterExecOptions::prefetch_backend picks the kind).
  std::unique_ptr<io::PrefetchBackend> prefetch_backend_;
  std::vector<std::unique_ptr<exec::ChunkPipeline>> pipelines_;
};

/// \brief The calibrated-model execution prediction behind
/// PartitionExecutor::PredictJobExecSeconds, callable without an executor
/// (cluster::ProcessFleet's parent predicts while the pipelines live in
/// worker processes). Returns 0 unless `config` carries a measured
/// calibration.
double PredictExecSeconds(const std::vector<Partition>& partitions,
                          const ClusterConfig& config, uint64_t row_bytes,
                          bool cold);

}  // namespace m3::cluster

#endif  // M3_CLUSTER_PARTITION_EXECUTOR_H_
