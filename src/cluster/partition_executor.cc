#include "cluster/partition_executor.h"

#include <algorithm>

#include "core/perf_model.h"
#include "util/sys_info.h"

namespace m3::cluster {

PartitionExecutor::PartitionExecutor(std::vector<Partition> partitions,
                                     const ClusterConfig& config,
                                     const exec::MappedRegion& data)
    : partitions_(std::move(partitions)),
      config_(config),
      data_(data),
      task_order_(exec::ChunkSchedule::Strided(partitions_.size(),
                                               config.num_instances)),
      pipelines_(partitions_.size()) {
  instance_cached_rows_.reserve(config_.num_instances);
  for (size_t i = 0; i < config_.num_instances; ++i) {
    instance_cached_rows_.push_back(
        InstanceRows(partitions_, i, /*cached_only=*/true));
  }
  if (pipelined()) {
    if (bound()) {
      io_pool_ = std::make_unique<util::ThreadPool>(1);
      // kAuto probes against the dataset mapping the partitions will
      // actually fault from; the verdict is cached process-wide.
      prefetch_backend_ = io::MakePrefetchBackend(
          config_.exec.prefetch_backend, io::PrefetchBackendOptions(),
          data_.mapping);
    }
    if (config_.exec.pipeline_workers >= 2) {
      compute_pool_ =
          std::make_unique<util::ThreadPool>(config_.exec.pipeline_workers);
    }
  }
}

size_t PartitionExecutor::ChunkRowsFor(const Partition& partition) const {
  return PartitionChunkRows(partition, config_.exec.chunk_rows);
}

uint64_t PartitionExecutor::BudgetFor(const Partition& partition) const {
  uint64_t instance_budget = config_.exec.instance_ram_budget_bytes;
  if (instance_budget == 0) {
    instance_budget = config_.InstanceCacheBytes();
  }
  const size_t cached_rows = partition.instance < instance_cached_rows_.size()
                                 ? instance_cached_rows_[partition.instance]
                                 : 0;
  // The RDD cache pins the cached partitions: they split the budget among
  // themselves (pro rata by rows), so a partition the simulated cache says
  // is resident really keeps its pages between jobs. Spilled scans are
  // transient and only get whatever the cached set leaves over.
  uint64_t share;
  if (partition.cached) {
    share = cached_rows == 0
                ? instance_budget
                : static_cast<uint64_t>(
                      static_cast<double>(instance_budget) *
                      (static_cast<double>(partition.rows()) /
                       static_cast<double>(cached_rows)));
  } else {
    const uint64_t cached_bytes = cached_rows * data_.row_bytes;
    share = instance_budget > cached_bytes ? instance_budget - cached_bytes
                                           : 0;
  }
  // A zero share would disable engine eviction entirely (the opposite of a
  // tight budget); keep at least one byte so the trailing window evicts.
  return std::max<uint64_t>(1, share);
}

exec::ChunkPipeline* PartitionExecutor::PreparePartition(size_t index,
                                                         JobStats* job) {
  if (!pipelined()) {
    return nullptr;
  }
  const Partition& partition = partitions_[index];
  std::unique_ptr<exec::ChunkPipeline>& slot = pipelines_[index];
  if (slot == nullptr) {
    exec::MappedRegion region;  // unbound unless the run is mmap-backed
    if (bound()) {
      region.mapping = data_.mapping;
      region.base_offset =
          data_.base_offset + partition.byte_begin(data_.row_bytes);
      region.row_bytes = data_.row_bytes;
    }
    exec::PipelineOptions options;
    options.readahead_chunks = config_.exec.readahead_chunks;
    options.num_workers = config_.exec.pipeline_workers;
    options.shared_io_pool = io_pool_.get();
    options.shared_compute_pool = compute_pool_.get();
    options.shared_prefetch_backend = prefetch_backend_.get();
    options.ram_budget_bytes = bound() ? BudgetFor(partition) : 0;
    // The instance interleaves many small partition scans; kernel-level
    // sequential readahead would race past the partition boundary, so let
    // the explicit WILLNEED stage own the readahead.
    options.advice = io::Advice::kNormal;
    slot = std::make_unique<exec::ChunkPipeline>(region, options);
  }
  if (bound() && !partition.cached) {
    // Spark does not admit spilled blocks to the RDD cache: drop the
    // partition's pages so this job's pass re-faults from storage. The
    // range is clamped *inward* to page boundaries — partitions are
    // row-aligned, not page-aligned, and an outward-rounding DONTNEED
    // would also drop the neighboring cached partition's edge page every
    // job, perturbing the cached-pages-survive-between-jobs measurement.
    // The sub-page edges that stay resident are noise, not signal.
    const uint64_t page = util::PageSize();
    const uint64_t begin =
        data_.base_offset + partition.byte_begin(data_.row_bytes);
    const uint64_t end = begin + partition.byte_size(data_.row_bytes);
    const uint64_t evict_begin = (begin + page - 1) / page * page;
    const uint64_t evict_end = end / page * page;
    if (evict_end > evict_begin) {
      data_.mapping->Evict(evict_begin, evict_end - evict_begin)
          .IgnoreError();
      if (job != nullptr && partition.instance < job->instance_exec.size()) {
        InstanceExecStats& instance = job->instance_exec[partition.instance];
        ++instance.spill_refaults;
        instance.spill_refault_bytes += evict_end - evict_begin;
      }
    }
  }
  return slot.get();
}

double PredictExecSeconds(const std::vector<Partition>& partitions,
                          const ClusterConfig& config, uint64_t row_bytes,
                          bool cold) {
  if (!config.calibrated_from_measurement ||
      config.spill_read_bytes_per_sec <= 0) {
    return 0;
  }
  uint64_t total_bytes = 0;
  uint64_t storage_bytes = 0;
  for (const Partition& partition : partitions) {
    const uint64_t bytes = partition.rows() * row_bytes;
    total_bytes += bytes;
    // Cached partitions keep residency between jobs; spilled ones are
    // force-evicted before every job, so their bytes re-fault from
    // storage each time. A cold job faults everything.
    if (cold || !partition.cached) {
      storage_bytes += bytes;
    }
  }
  const double cpu =
      config.local_cpu_seconds_per_byte * static_cast<double>(total_bytes);
  const double io =
      static_cast<double>(storage_bytes) / config.spill_read_bytes_per_sec;
  return CombineOverlap(cpu, io, config.overlap_efficiency);
}

double PartitionExecutor::PredictJobExecSeconds(uint64_t row_bytes,
                                                bool cold) const {
  if (!pipelined() || !bound()) {
    return 0;
  }
  return PredictExecSeconds(partitions_, config_, row_bytes, cold);
}

void PartitionExecutor::CollectStats(size_t index,
                                     exec::ChunkPipeline* pipeline,
                                     JobStats* job) {
  if (pipeline == nullptr) {
    return;
  }
  const exec::PipelineStats stats = pipeline->ConsumeStats();
  const Partition& partition = partitions_[index];
  if (job == nullptr || partition.instance >= job->instance_exec.size()) {
    return;
  }
  InstanceExecStats& instance = job->instance_exec[partition.instance];
  (partition.cached ? instance.cached : instance.spilled) += stats;
}

}  // namespace m3::cluster
