#include "cluster/partition.h"

#include <algorithm>

namespace m3::cluster {

std::vector<Partition> MakePartitions(size_t total_rows,
                                      size_t num_partitions,
                                      size_t num_instances,
                                      size_t cache_capacity_rows) {
  std::vector<Partition> partitions;
  if (total_rows == 0 || num_partitions == 0 || num_instances == 0) {
    return partitions;
  }
  num_partitions = std::min(num_partitions, total_rows);
  partitions.reserve(num_partitions);
  // Near-equal split: the first (total % n) partitions get one extra row.
  const size_t base = total_rows / num_partitions;
  const size_t extra = total_rows % num_partitions;
  size_t cursor = 0;
  size_t cached_rows = 0;
  for (size_t p = 0; p < num_partitions; ++p) {
    Partition partition;
    partition.row_begin = cursor;
    partition.row_end = cursor + base + (p < extra ? 1 : 0);
    partition.instance = p % num_instances;
    cursor = partition.row_end;
    // Cache fills in load order; later partitions spill.
    if (cached_rows + partition.rows() <= cache_capacity_rows) {
      cached_rows += partition.rows();
      partition.cached = true;
    } else {
      partition.cached = false;
    }
    partitions.push_back(partition);
  }
  return partitions;
}

size_t InstanceRows(const std::vector<Partition>& partitions,
                    size_t instance, bool cached_only) {
  size_t rows = 0;
  for (const Partition& partition : partitions) {
    if (partition.instance == instance &&
        (!cached_only || partition.cached)) {
      rows += partition.rows();
    }
  }
  return rows;
}

size_t PartitionChunkRows(const Partition& partition, uint64_t requested) {
  if (requested == 0) {
    return partition.rows();
  }
  return static_cast<size_t>(std::min<uint64_t>(
      requested, std::max<size_t>(1, partition.rows())));
}

size_t CountSpilled(const std::vector<Partition>& partitions) {
  size_t spilled = 0;
  for (const Partition& partition : partitions) {
    if (!partition.cached) {
      ++spilled;
    }
  }
  return spilled;
}

}  // namespace m3::cluster
