#include "cluster/process_fleet.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <string_view>
#include <utility>

#include "cluster/partition_executor.h"
#include "cluster/sim_clock.h"
#include "la/blas.h"
#include "la/chunker.h"
#include "ml/logistic_regression.h"
#include "obs/trace_recorder.h"
#include "obs/trace_session.h"
#include "util/format.h"
#include "util/json.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace m3::cluster {

using util::Result;
using util::Status;

namespace {

/// Fixed tail of every result slot reserved for the worker's
/// length-prefixed stats JSON (two PipelineStats::ToJson objects plus
/// refault counters — comfortably under 4 KiB; the slack absorbs
/// append-only schema growth).
constexpr size_t kStatsBytes = 32 << 10;

/// Worker exit codes (surface in the parent's error message via waitpid).
constexpr int kWorkerExitDatasetFailed = 3;

std::string DescribeExit(int status) {
  if (WIFEXITED(status)) {
    return util::StrFormat("exit code %d", WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return util::StrFormat("killed by signal %d", WTERMSIG(status));
  }
  return "unknown wait status";
}

}  // namespace

/// The parent-side L-BFGS objective: every gradient evaluation is one
/// fleet-wide job. ml::DifferentiableFunction cannot return a Status, so a
/// worker failure latches into `failure_` (checked by RunLogisticRegression
/// after Minimize) and later evaluations short-circuit to zero — the
/// optimizer then converges immediately on the zero gradient instead of
/// driving a dead fleet.
class FleetLrObjective final : public ml::DifferentiableFunction {
 public:
  FleetLrObjective(ProcessFleet* fleet, size_t dimension, double l2,
                   JobStats* stats)
      : fleet_(fleet), dimension_(dimension), l2_(l2), stats_(stats) {}

  size_t Dimension() const override { return dimension_; }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    obs::ScopedSpan job_span("cluster", "lr_gradient_job");
    grad.SetZero();
    if (!failure_.ok()) {
      return 0;
    }
    double loss = 0;
    JobStats job;
    failure_ = fleet_->RunLrGradient(w, grad, &loss, first_pass_, &job);
    if (!failure_.ok()) {
      grad.SetZero();
      return 0;
    }
    // Driver adds the ridge term (as MLlib's updater does) — identical to
    // DistributedLrObjective.
    const size_t d = dimension_ - 1;
    if (l2_ > 0) {
      la::ConstVectorView weights = w.Slice(0, d);
      loss += 0.5 * l2_ * la::Dot(weights, weights);
      la::Axpy(l2_, weights, grad.Slice(0, d));
    }
    job.jobs = 1;
    stats_->Accumulate(job);
    first_pass_ = false;
    return loss;
  }

  const Status& failure() const { return failure_; }

 private:
  ProcessFleet* fleet_;
  size_t dimension_;
  double l2_;
  JobStats* stats_;
  Status failure_ = Status::OK();
  bool first_pass_ = true;
};

Result<std::unique_ptr<ProcessFleet>> ProcessFleet::Spawn(
    const std::string& dataset_path, const FleetOptions& options) {
  M3_RETURN_IF_ERROR(options.config.Validate());
  if (options.phase_deadline_seconds <= 0) {
    return Status::InvalidArgument("phase_deadline_seconds must be positive");
  }
  if (options.max_kmeans_k == 0) {
    return Status::InvalidArgument("max_kmeans_k must be positive");
  }
  M3_ASSIGN_OR_RETURN(MappedDataset dataset, MappedDataset::Open(dataset_path));
  if (dataset.rows() == 0 || dataset.cols() == 0) {
    return Status::InvalidArgument("empty dataset");
  }
  std::unique_ptr<ProcessFleet> fleet(
      new ProcessFleet(std::move(dataset), dataset_path, options));
  M3_RETURN_IF_ERROR(fleet->Start());
  return fleet;
}

ProcessFleet::ProcessFleet(MappedDataset dataset, std::string dataset_path,
                           const FleetOptions& options)
    : options_(options),
      dataset_path_(std::move(dataset_path)),
      dataset_(std::move(dataset)),
      partitions_(SparkCluster(options.config)
                      .PlanPartitions(dataset_.rows(),
                                      dataset_.cols() * sizeof(double))),
      fold_order_(exec::ChunkSchedule::Strided(partitions_.size(),
                                               options.config.num_instances)) {
  const size_t workers = options_.config.num_instances;
  partition_chunks_.resize(partitions_.size());
  partition_chunk_base_.resize(partitions_.size());
  worker_chunks_.assign(workers, 0);
  // Ascending partition index IS each worker's emission order (lane k of
  // the strided schedule visits instance k's partitions in ascending
  // index), so a running per-worker count doubles as the chunk-slot base.
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition& partition = partitions_[p];
    const la::RowChunker chunker(
        partition.rows(),
        PartitionChunkRows(partition, options_.config.exec.chunk_rows));
    partition_chunks_[p] = chunker.NumChunks();
    partition_chunk_base_[p] = worker_chunks_[partition.instance];
    worker_chunks_[partition.instance] += chunker.NumChunks();
  }
  const size_t d = dataset_.cols();
  const size_t k = options_.max_kmeans_k;
  // LR chunk partial: loss + (d+1)-gradient. k-means chunk partial:
  // inertia + k*d center sums + k counts.
  const size_t lr_partial = (d + 2) * sizeof(double);
  const size_t km_partial =
      sizeof(double) * (1 + k * d) + sizeof(uint64_t) * k;
  max_partial_bytes_ = std::max(lr_partial, km_partial);
}

ProcessFleet::~ProcessFleet() { Shutdown().IgnoreError(); }

Status ProcessFleet::Start() {
  const size_t workers = options_.config.num_instances;
  const size_t d = dataset_.cols();
  io::ShmChannel::Options channel_options;
  channel_options.num_workers = workers;
  // Broadcast payloads: LR = [u64 n][n doubles]; k-means =
  // [u64 k][u64 d][k*d doubles].
  channel_options.broadcast_bytes =
      std::max(sizeof(uint64_t) + (d + 1) * sizeof(double),
               2 * sizeof(uint64_t) +
                   options_.max_kmeans_k * d * sizeof(double));
  channel_options.slot_bytes.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    channel_options.slot_bytes.push_back(
        worker_chunks_[w] * max_partial_bytes_ + kStatsBytes);
  }
  M3_ASSIGN_OR_RETURN(io::ShmChannel channel,
                      io::ShmChannel::Create(channel_options));
  channel_ = std::make_unique<io::ShmChannel>(std::move(channel));

  pids_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int fork_errno = errno;
      alive_ = true;  // KillAll() reaps the already-forked workers
      KillAll();
      return Status::IoErrorFromErrno("fork fleet worker", fork_errno);
    }
    if (pid == 0) {
      WorkerMain(w);  // never returns
    }
    pids_.push_back(pid);
    channel_->OnParentAfterFork(w);
  }
  alive_ = true;

  // Startup barrier: every worker acks sequence 1 after opening its own
  // mapping and building its executor — so a worker that cannot even
  // start (bad path, mmap failure) surfaces here, not mid-run.
  util::Stopwatch stopwatch;
  for (size_t w = 0; w < workers; ++w) {
    const double remaining = std::max(
        0.01, options_.phase_deadline_seconds - stopwatch.ElapsedSeconds());
    const io::ShmChannel::Wait wait = channel_->WaitWorker(w, 1, remaining);
    if (wait == io::ShmChannel::Wait::kDone) {
      continue;
    }
    const char* why = wait == io::ShmChannel::Wait::kDead
                          ? "died during startup"
                          : "missed the startup deadline";
    const std::string what = util::StrFormat("fleet worker %zu %s", w, why);
    const std::string detail = KillAll();
    return Status::Internal(what + " (" + detail + ")");
  }
  return Status::OK();
}

std::string ProcessFleet::KillAll() {
  std::string detail;
  for (size_t w = 0; w < pids_.size(); ++w) {
    if (pids_[w] < 0) {
      continue;
    }
    ::kill(pids_[w], SIGKILL);
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pids_[w], &status, 0);
    } while (reaped < 0 && errno == EINTR);
    // A worker that died before our SIGKILL was already a zombie: waitpid
    // reports its ORIGINAL death cause (e.g. SIGSEGV), not our kill.
    detail += util::StrFormat("%sworker %zu: %s", detail.empty() ? "" : ", ",
                              w, DescribeExit(status).c_str());
    pids_[w] = -1;
  }
  pids_.clear();
  alive_ = false;
  return detail;
}

Status ProcessFleet::ParseWorkerStats(size_t worker, JobStats* job) {
  if (job == nullptr || !options_.config.exec.use_pipelines) {
    return Status::OK();
  }
  const uint8_t* base =
      channel_->slot(worker) + worker_chunks_[worker] * max_partial_bytes_;
  uint64_t len = 0;
  std::memcpy(&len, base, sizeof(len));
  if (len == 0) {
    return Status::OK();  // worker had nothing to report
  }
  if (len > kStatsBytes - sizeof(uint64_t)) {
    return Status::Internal("fleet worker stats overran the stats region");
  }
  const std::string_view json(reinterpret_cast<const char*>(base + 8),
                              static_cast<size_t>(len));
  M3_ASSIGN_OR_RETURN(util::JsonValue value, util::JsonParse(json));
  const util::JsonValue* cached = value.Find("cached");
  const util::JsonValue* spilled = value.Find("spilled");
  if (cached == nullptr || spilled == nullptr) {
    return Status::Internal("fleet worker stats JSON missing cached/spilled");
  }
  if (job->instance_exec.size() < options_.config.num_instances) {
    job->instance_exec.resize(options_.config.num_instances);
  }
  InstanceExecStats& instance = job->instance_exec[worker];
  M3_ASSIGN_OR_RETURN(instance.cached, exec::PipelineStats::FromJson(*cached));
  M3_ASSIGN_OR_RETURN(instance.spilled,
                      exec::PipelineStats::FromJson(*spilled));
  instance.spill_refaults =
      static_cast<uint64_t>(value.NumberOr("spill_refaults", 0));
  instance.spill_refault_bytes =
      static_cast<uint64_t>(value.NumberOr("spill_refault_bytes", 0));
  // The same measured-wall-time definition as RunJob: the drive seconds
  // this job's partition passes recorded.
  job->measured_exec_seconds +=
      instance.cached.drive_seconds + instance.spilled.drive_seconds;
  return Status::OK();
}

Status ProcessFleet::RunPhase(uint64_t kind, uint64_t payload_len,
                              JobStats* job) {
  if (!alive_) {
    return Status::FailedPrecondition(
        "process fleet is not running (crashed or shut down)");
  }
  const uint64_t seq = channel_->PublishJob(kind, payload_len);
  // One shared deadline across the fleet: workers run concurrently, so
  // waiting for worker 0 also buys workers 1..N-1 time. A dead worker is
  // reported the moment its pipe closes; a hung worker costs at most the
  // remaining budget.
  util::Stopwatch stopwatch;
  std::vector<size_t> dead;
  std::vector<size_t> hung;
  for (size_t w = 0; w < num_workers(); ++w) {
    const double remaining = std::max(
        0.01, options_.phase_deadline_seconds - stopwatch.ElapsedSeconds());
    switch (channel_->WaitWorker(w, seq, remaining)) {
      case io::ShmChannel::Wait::kDone:
        break;
      case io::ShmChannel::Wait::kDead:
        dead.push_back(w);
        break;
      case io::ShmChannel::Wait::kTimeout:
        hung.push_back(w);
        break;
    }
  }
  if (dead.empty() && hung.empty()) {
    for (size_t w = 0; w < num_workers(); ++w) {
      M3_RETURN_IF_ERROR(ParseWorkerStats(w, job));
    }
    return Status::OK();
  }

  // Failure: record what is known, then tear the whole fleet down — a
  // half-dead fleet cannot produce a deterministic fold.
  std::string what;
  if (job != nullptr) {
    job->incomplete = true;
    if (job->instance_exec.size() < num_workers()) {
      job->instance_exec.resize(num_workers());
    }
  }
  for (const size_t w : dead) {
    what += util::StrFormat("worker %zu died mid-job; ", w);
    if (job != nullptr) {
      job->instance_exec[w].incomplete = true;
    }
  }
  for (const size_t w : hung) {
    what += util::StrFormat("worker %zu missed the %.1fs phase deadline; ", w,
                            options_.phase_deadline_seconds);
    if (job != nullptr) {
      job->instance_exec[w].incomplete = true;
    }
  }
  if (job != nullptr) {
    last_run_stats_ = *job;
  }
  const std::string detail = KillAll();
  return Status::Internal("process fleet job failed: " + what + "(" + detail +
                          ")");
}

Status ProcessFleet::RunLrGradient(la::ConstVectorView w, la::VectorView grad,
                                   double* loss, bool first_pass,
                                   JobStats* job) {
  const uint64_t n = w.size();
  uint8_t* broadcast = channel_->broadcast();
  std::memcpy(broadcast, &n, sizeof(n));
  // m3-aligned: broadcast() is page-aligned; sizeof(n) == 8.
  double* payload = reinterpret_cast<double*>(broadcast + sizeof(n));
  for (size_t i = 0; i < n; ++i) {
    payload[i] = w[i];
  }
  M3_RETURN_IF_ERROR(RunPhase(io::ShmChannel::kJobLrGradient,
                              sizeof(n) + n * sizeof(double), job));

  // Fold every chunk partial in the simulator's order: partitions in the
  // strided task order, chunks ascending within each — the byte-for-byte
  // reduce sequence of PartitionExecutor::RunJob.
  const size_t stride = (static_cast<size_t>(n) + 1) * sizeof(double);
  for (size_t pos = 0; pos < fold_order_.num_chunks(); ++pos) {
    const size_t p = fold_order_.At(pos);
    const Partition& partition = partitions_[p];
    const uint8_t* slot = channel_->slot(partition.instance);
    for (size_t c = 0; c < partition_chunks_[p]; ++c) {
      // m3-aligned: slot() is page-aligned; stride is a multiple of 8.
      const double* partial = reinterpret_cast<const double*>(
          slot + (partition_chunk_base_[p] + c) * stride);
      *loss += partial[0];
      la::Axpy(1.0, la::ConstVectorView(partial + 1, n), grad);
    }
  }

  const uint64_t row_bytes = dataset_.cols() * sizeof(double);
  const uint64_t result_bytes = (n + 1) * sizeof(double);
  if (options_.config.exec.use_pipelines) {
    job->predicted_exec_seconds =
        PredictExecSeconds(partitions_, options_.config, row_bytes,
                           first_pass);
  }
  StageCostModel model(options_.config);
  job->Accumulate(model.Broadcast(result_bytes));
  job->Accumulate(model.StageCost(partitions_, row_bytes, first_pass));
  job->Accumulate(model.TreeAggregate(result_bytes));
  return Status::OK();
}

Result<DistributedLrResult> ProcessFleet::RunLogisticRegression(
    double l2, ml::LbfgsOptions optimizer_options) {
  if (!alive_) {
    return Status::FailedPrecondition(
        "process fleet is not running (crashed or shut down)");
  }
  if (!options_.config.exec.trace_path.empty()) {
    obs::StartGlobalTrace(options_.config.exec.trace_path);
  }
  obs::ScopedSpan run_span("cluster", "logistic_regression");
  if (run_span.armed()) {
    run_span.AddArg("rows", static_cast<uint64_t>(dataset_.rows()));
    run_span.AddArg("instances",
                    static_cast<uint64_t>(options_.config.num_instances));
  }
  DistributedLrResult result;
  const size_t d = dataset_.cols();
  FleetLrObjective objective(this, d + 1, l2, &result.stats);
  la::Vector params(d + 1);
  ml::Lbfgs optimizer(optimizer_options);
  Result<ml::OptimizationResult> optimization =
      optimizer.Minimize(&objective, params.View());
  if (!objective.failure().ok()) {
    return objective.failure();
  }
  M3_RETURN_IF_ERROR(optimization.status());
  result.optimization = std::move(optimization).value();
  result.model.weights = la::Vector(d);
  la::Copy(params.View().Slice(0, d), result.model.weights);
  result.model.intercept = params[d];
  return result;
}

Result<DistributedKMeansResult> ProcessFleet::RunKMeans(
    ml::KMeansOptions options) {
  if (!alive_) {
    return Status::FailedPrecondition(
        "process fleet is not running (crashed or shut down)");
  }
  const size_t n = dataset_.rows();
  const size_t d = dataset_.cols();
  const size_t k = options.k;
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, rows]");
  }
  if (k > options_.max_kmeans_k) {
    return Status::InvalidArgument(
        "k exceeds FleetOptions::max_kmeans_k (result slots were sized at "
        "Spawn)");
  }
  if (!options_.config.exec.trace_path.empty()) {
    obs::StartGlobalTrace(options_.config.exec.trace_path);
  }
  obs::ScopedSpan run_span("cluster", "kmeans");
  if (run_span.armed()) {
    run_span.AddArg("rows", static_cast<uint64_t>(n));
    run_span.AddArg("k", static_cast<uint64_t>(k));
  }
  DistributedKMeansResult result;
  const la::ConstMatrixView x = dataset_.features();
  const uint64_t row_bytes = d * sizeof(double);
  StageCostModel model(options_.config);

  // Identical seeding to SparkCluster (which itself matches the
  // single-machine implementation): the parent's mapping serves the
  // bounded init sample.
  M3_ASSIGN_OR_RETURN(la::Matrix centers, ml::KMeans::SeedCenters(x, options));

  const uint64_t centers_bytes = k * d * sizeof(double);
  const uint64_t result_bytes = centers_bytes + k * sizeof(uint64_t);
  const size_t stride =
      sizeof(double) * (1 + k * d) + sizeof(uint64_t) * k;

  la::Matrix sums(k, d);
  std::vector<uint64_t> counts(k);
  util::Rng rng(options.seed);
  double previous_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    obs::ScopedSpan iter_span("cluster", "kmeans_iteration");
    if (iter_span.armed()) {
      iter_span.AddArg("iteration", static_cast<uint64_t>(iter));
    }
    sums.SetZero();
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0;
    JobStats job;

    // Broadcast this iteration's centers: [u64 k][u64 d][k*d doubles].
    uint8_t* broadcast = channel_->broadcast();
    const uint64_t k64 = k;
    const uint64_t d64 = d;
    std::memcpy(broadcast, &k64, sizeof(k64));
    std::memcpy(broadcast + 8, &d64, sizeof(d64));
    // m3-aligned: broadcast() is page-aligned; 16 is a multiple of 8.
    double* payload = reinterpret_cast<double*>(broadcast + 16);
    for (size_t c = 0; c < k; ++c) {
      const la::ConstVectorView row = centers.Row(c);
      for (size_t j = 0; j < d; ++j) {
        payload[c * d + j] = row[j];
      }
    }
    Status phase = RunPhase(io::ShmChannel::kJobKMeansIteration,
                            16 + centers_bytes, &job);
    if (!phase.ok()) {
      return phase;
    }

    // Fold in simulator order (see RunLrGradient).
    for (size_t pos = 0; pos < fold_order_.num_chunks(); ++pos) {
      const size_t p = fold_order_.At(pos);
      const Partition& partition = partitions_[p];
      const uint8_t* slot = channel_->slot(partition.instance);
      for (size_t chunk = 0; chunk < partition_chunks_[p]; ++chunk) {
        const uint8_t* partial =
            slot + (partition_chunk_base_[p] + chunk) * stride;
        // m3-aligned: slot() is page-aligned; stride is a multiple of 8.
        const double* values = reinterpret_cast<const double*>(partial);
        // m3-aligned: the counts offset is a multiple of sizeof(double).
        const uint64_t* chunk_counts = reinterpret_cast<const uint64_t*>(
            partial + sizeof(double) * (1 + k * d));
        inertia += values[0];
        for (size_t c = 0; c < k; ++c) {
          la::Axpy(1.0, la::ConstVectorView(values + 1 + c * d, d),
                   sums.Row(c));
          counts[c] += chunk_counts[c];
        }
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        la::Copy(sums.Row(c), centers.Row(c));
        la::Scal(1.0 / static_cast<double>(counts[c]), centers.Row(c));
      } else {
        const size_t row = static_cast<size_t>(rng.UniformInt(uint64_t{n}));
        la::Copy(x.Row(row), centers.Row(c));
      }
    }

    if (options_.config.exec.use_pipelines) {
      job.predicted_exec_seconds = PredictExecSeconds(
          partitions_, options_.config, row_bytes, iter == 0);
    }
    job.Accumulate(model.Broadcast(centers_bytes));
    job.Accumulate(model.StageCost(partitions_, row_bytes, iter == 0));
    job.Accumulate(model.TreeAggregate(result_bytes));
    job.jobs = 1;
    result.stats.Accumulate(job);

    result.clustering.inertia = inertia;
    result.clustering.inertia_history.push_back(inertia);
    ++result.clustering.iterations;
    const double improvement =
        (previous_inertia - inertia) / std::max(1.0, previous_inertia);
    if (iter > 0 && improvement >= 0 && improvement < options.tolerance) {
      result.clustering.converged = true;
      break;
    }
    previous_inertia = inertia;
  }
  result.clustering.centers = std::move(centers);
  return result;
}

Status ProcessFleet::Shutdown() {
  if (!alive_) {
    return Status::OK();
  }
  alive_ = false;
  channel_->PublishJob(io::ShmChannel::kJobShutdown, 0);
  bool forced = false;
  util::Stopwatch stopwatch;
  for (size_t w = 0; w < pids_.size(); ++w) {
    if (pids_[w] < 0) {
      continue;
    }
    for (;;) {
      int status = 0;
      pid_t reaped;
      do {
        reaped = ::waitpid(pids_[w], &status, WNOHANG);
      } while (reaped < 0 && errno == EINTR);
      if (reaped == pids_[w]) {
        pids_[w] = -1;
        break;
      }
      if (stopwatch.ElapsedSeconds() > options_.phase_deadline_seconds) {
        ::kill(pids_[w], SIGKILL);
        do {
          reaped = ::waitpid(pids_[w], &status, 0);
        } while (reaped < 0 && errno == EINTR);
        pids_[w] = -1;
        forced = true;
        break;
      }
      ::usleep(1000);
    }
  }
  pids_.clear();
  if (forced) {
    return Status::Internal("fleet shutdown had to SIGKILL stragglers");
  }
  return Status::OK();
}

void ProcessFleet::WorkerMain(size_t worker) {
  channel_->OnWorkerAfterFork(worker);
  bool tracing = false;
  if (!options_.worker_trace_dir.empty()) {
    tracing = obs::StartGlobalTrace(util::StrFormat(
        "%s/worker_%zu.json", options_.worker_trace_dir.c_str(), worker));
  }
  // The worker's OWN mapping of the shard: separate virtual mappings that
  // share the one OS page cache — the contention the fleet measures.
  auto dataset_or = MappedDataset::Open(dataset_path_);
  if (!dataset_or.ok()) {
    ::_exit(kWorkerExitDatasetFailed);
  }
  MappedDataset dataset = std::move(dataset_or).value();
  const std::vector<double> labels = dataset.CopyLabels();
  exec::MappedRegion region;
  region.mapping = &dataset.mapping();
  region.base_offset = dataset.meta().features_offset;
  region.row_bytes = dataset.cols() * sizeof(double);
  PartitionExecutor executor(partitions_, options_.config, region);
  const la::ConstMatrixView x = dataset.features();
  const la::ConstVectorView y(labels.data(), labels.size());
  const size_t stats_offset = worker_chunks_[worker] * max_partial_bytes_;

  // Serializes this job's InstanceExecStats into the slot's stats region
  // (length-prefixed JSON); len 0 = nothing to report (pipelines off).
  const auto write_stats = [&](const JobStats& job) {
    uint8_t* base = channel_->slot(worker) + stats_offset;
    uint64_t len = 0;
    if (worker < job.instance_exec.size()) {
      const InstanceExecStats& stats = job.instance_exec[worker];
      const std::string json = util::StrFormat(
          "{\"cached\": %s, \"spilled\": %s, \"spill_refaults\": %llu, "
          "\"spill_refault_bytes\": %llu}",
          stats.cached.ToJson().c_str(), stats.spilled.ToJson().c_str(),
          static_cast<unsigned long long>(stats.spill_refaults),
          static_cast<unsigned long long>(stats.spill_refault_bytes));
      if (json.size() <= kStatsBytes - sizeof(uint64_t)) {
        len = json.size();
        std::memcpy(base + sizeof(uint64_t), json.data(), json.size());
      }
    }
    std::memcpy(base, &len, sizeof(len));
  };

  channel_->CompleteJob(worker, 1, 0);  // startup ack
  uint64_t last_seen = 1;
  for (;;) {
    uint64_t seq = 0;
    uint64_t kind = 0;
    uint64_t payload_len = 0;
    if (!channel_->AwaitJob(worker, last_seen, &seq, &kind, &payload_len)) {
      break;  // parent died: orphan cleanup
    }
    last_seen = seq;
    if (kind == io::ShmChannel::kJobShutdown) {
      if (tracing) {
        obs::StopGlobalTraceAndWrite().IgnoreError();
      }
      channel_->CompleteJob(worker, seq, 0);
      ::_exit(0);
    }
    if (options_.hang_worker == static_cast<int>(worker)) {
      for (;;) {
        ::usleep(100000);  // fault injection: never complete
      }
    }
    uint64_t used = 0;
    const uint8_t* broadcast = channel_->broadcast();
    uint8_t* slot = channel_->slot(worker);
    if (kind == io::ShmChannel::kJobLrGradient) {
      uint64_t weights = 0;
      std::memcpy(&weights, broadcast, sizeof(weights));
      la::Vector w(static_cast<size_t>(weights));
      // m3-aligned: broadcast() is page-aligned; sizeof(weights) == 8.
      const double* payload =
          reinterpret_cast<const double*>(broadcast + sizeof(weights));
      for (size_t i = 0; i < weights; ++i) {
        w[i] = payload[i];
      }
      ml::LogisticRegressionObjective objective(x, y, /*l2=*/0.0);
      struct Partial {
        double loss = 0;
        la::Vector grad;
      };
      const size_t stride = (weights + 1) * sizeof(double);
      JobStats job;
      executor.RunInstanceJob<Partial>(
          worker,
          [&](const Partition&, size_t row_begin, size_t row_end) {
            Partial partial;
            partial.grad = la::Vector(static_cast<size_t>(weights));
            partial.loss = objective.EvaluateChunk(row_begin, row_end, w,
                                                   partial.grad.View());
            return partial;
          },
          [&](size_t, size_t, Partial&& partial) {
            // m3-aligned: slot() is page-aligned; used advances by
            // stride, a multiple of 8.
            double* out = reinterpret_cast<double*>(slot + used);
            out[0] = partial.loss;
            for (size_t i = 0; i < weights; ++i) {
              out[1 + i] = partial.grad[i];
            }
            used += stride;
          },
          &job);
      write_stats(job);
    } else if (kind == io::ShmChannel::kJobKMeansIteration) {
      uint64_t k = 0;
      uint64_t dims = 0;
      std::memcpy(&k, broadcast, sizeof(k));
      std::memcpy(&dims, broadcast + 8, sizeof(dims));
      la::Matrix centers(k, dims);
      // m3-aligned: broadcast() is page-aligned; 16 is a multiple of 8.
      const double* payload =
          reinterpret_cast<const double*>(broadcast + 16);
      for (size_t c = 0; c < k; ++c) {
        la::VectorView row = centers.Row(c);
        for (size_t j = 0; j < dims; ++j) {
          row[j] = payload[c * dims + j];
        }
      }
      struct Partial {
        la::Matrix sums;
        std::vector<uint64_t> counts;
        double inertia = 0;
      };
      const size_t stride =
          sizeof(double) * (1 + k * dims) + sizeof(uint64_t) * k;
      JobStats job;
      executor.RunInstanceJob<Partial>(
          worker,
          [&](const Partition&, size_t row_begin, size_t row_end) {
            Partial partial;
            partial.sums = la::Matrix(k, dims);
            partial.counts.assign(k, 0);
            for (size_t r = row_begin; r < row_end; ++r) {
              size_t best = 0;
              double best_dist2 =
                  la::SquaredDistance(x.Row(r), centers.Row(0));
              for (size_t c = 1; c < k; ++c) {
                const double dist2 =
                    la::SquaredDistance(x.Row(r), centers.Row(c));
                if (dist2 < best_dist2) {
                  best_dist2 = dist2;
                  best = c;
                }
              }
              partial.inertia += best_dist2;
              la::Axpy(1.0, x.Row(r), partial.sums.Row(best));
              ++partial.counts[best];
            }
            return partial;
          },
          [&](size_t, size_t, Partial&& partial) {
            // m3-aligned: slot() is page-aligned; used advances by
            // stride, a multiple of 8.
            uint8_t* out = slot + used;
            double* values = reinterpret_cast<double*>(out);
            values[0] = partial.inertia;
            for (size_t c = 0; c < k; ++c) {
              const la::ConstVectorView row = partial.sums.Row(c);
              for (size_t j = 0; j < dims; ++j) {
                values[1 + c * dims + j] = row[j];
              }
            }
            // m3-aligned: out is 8-aligned; the counts offset is a
            // multiple of sizeof(double).
            uint64_t* out_counts = reinterpret_cast<uint64_t*>(
                out + sizeof(double) * (1 + k * dims));
            for (size_t c = 0; c < k; ++c) {
              out_counts[c] = partial.counts[c];
            }
            used += stride;
          },
          &job);
      write_stats(job);
    }
    channel_->CompleteJob(worker, seq, used);
  }
  if (tracing) {
    obs::StopGlobalTraceAndWrite().IgnoreError();
  }
  ::_exit(0);
}

}  // namespace m3::cluster
