#ifndef M3_CLUSTER_CLUSTER_CONFIG_H_
#define M3_CLUSTER_CLUSTER_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/pipeline_stats.h"
#include "io/prefetch_backend.h"
#include "util/status.h"

namespace m3::cluster {

/// \brief Measured-execution knobs for the simulated cluster.
///
/// With `use_pipelines` set, every simulated partition task runs through a
/// real per-partition `exec::ChunkPipeline` bound to the dataset mapping
/// (when one is provided): cached partitions scan with MADV_WILLNEED
/// readahead and trailing eviction under the instance's RAM budget, and
/// spilled partitions are force-evicted before every job so each use
/// re-faults from storage — the measured analogue of Spark re-reading
/// spilled RDD blocks. Results are bitwise identical with pipelines off,
/// on, and at any `pipeline_workers` count: chunk partials always merge on
/// the driving thread in the same schedule order.
struct ClusterExecOptions {
  ClusterExecOptions() {}  // NOLINT: allows `= ClusterExecOptions()` defaults

  /// Drive partition tasks through per-partition ChunkPipelines. Off runs
  /// the identical chunk loop inline (the serial reference semantics).
  bool use_pipelines = false;

  /// MADV_WILLNEED readahead chunks each partition pipeline keeps ahead of
  /// compute. 0 disables the prefetch stage.
  size_t readahead_chunks = 2;

  /// Compute-stage fan-out per partition pipeline (0 or 1 = serial).
  size_t pipeline_workers = 0;

  /// Rows per pipeline chunk inside a partition (0 = the whole partition
  /// as a single chunk). Both the pipelined and the non-pipelined path use
  /// the same chunking, so results stay bitwise comparable.
  uint64_t chunk_rows = 0;

  /// Measured RAM budget per instance, bytes. The instance's cached
  /// partitions split it pro rata by rows (the pinned RDD cache — their
  /// pages survive between jobs); spilled scans get whatever the cached
  /// set leaves over. 0 derives the budget from the simulated cache
  /// (`instance_ram_bytes * cache_fraction`), which keeps the measured
  /// residency regime consistent with the cached/spilled flags.
  uint64_t instance_ram_budget_bytes = 0;

  /// Prefetch backend every partition pipeline drives (one shared
  /// io::PrefetchBackend per run — partitions scan one at a time, so a
  /// shared backend only pools descriptors/buffers, like the shared
  /// thread pools). Results stay bitwise identical under every backend.
  io::PrefetchBackendKind prefetch_backend = io::PrefetchBackendKind::kMadvise;

  /// When non-empty, SparkCluster runs start the process-global trace
  /// session (obs::StartGlobalTrace) and bracket jobs and partition tasks
  /// with "cluster"-category spans alongside the per-partition pipelines'
  /// "exec" spans. Same global-session semantics as M3Options::trace_path.
  std::string trace_path;
};

struct JobStats;  // defined below (CalibrateFromMeasured consumes it)

/// \brief Parameters of the simulated Spark cluster.
///
/// SUBSTITUTION NOTE (see DESIGN.md §3): the paper benchmarks Amazon EMR
/// Spark on m3.2xlarge instances. We cannot run EC2, so this simulator
/// executes the *real* distributed algorithms (per-partition math on real
/// data, driver-side aggregation) while *charging* wall time from a cost
/// model with the overhead classes that drive the paper's comparison:
///
///   - JVM/serialization compute slowdown vs native C++,
///   - per-task scheduling/dispatch overhead,
///   - per-job driver barrier overhead,
///   - cold HDFS loads and, when the cached RDD exceeds the cluster's
///     aggregate cache capacity, per-iteration spill re-reads,
///   - tree-aggregation and broadcast network rounds.
///
/// Defaults approximate the paper's m3.2xlarge instances (8 vCPUs, 30 GB
/// RAM, 2x80 GB SSD, 1 GbE). The decisive regime effect in Fig. 1b is
/// aggregate cache capacity: 4 instances cannot cache the paper's dataset
/// (so every iteration re-reads spilled partitions), 8 instances can.
struct ClusterConfig {
  ClusterConfig() {}  // NOLINT: allows `= ClusterConfig()` default args

  size_t num_instances = 4;
  size_t cores_per_instance = 8;  ///< m3.2xlarge: 8 vCPUs

  /// RAM per instance (m3.2xlarge: 30 GB).
  uint64_t instance_ram_bytes = 30ull << 30;
  /// Fraction of instance RAM usable for RDD caching (spark.memory).
  double cache_fraction = 0.6;

  /// EC2 vCPU speed relative to a local core (Xeon 2.5 GHz HT vs the
  /// paper's i7 3.5 GHz).
  double core_speed = 0.7;
  /// JVM JIT'd arithmetic multiplier vs native C++ (small).
  double jvm_slowdown = 2.0;
  /// Per-byte cost of Spark's row pipeline per vCPU (iterator chain,
  /// boxing, closure dispatch), largely independent of the math done per
  /// record. ~11 MB/s/vCPU matches both the paper's Fig. 1b Spark
  /// throughputs and the COST paper's [McSherry et al., HotOS'15]
  /// observation that distributed frameworks pay orders of magnitude per
  /// record over native code. Dominates for cheap kernels.
  double record_overhead_seconds_per_byte = 5e-8;

  /// Scheduler dispatch + task deserialization per task, seconds.
  double task_overhead_seconds = 0.015;
  /// Driver-side job submission/barrier per job (stage), seconds.
  double job_overhead_seconds = 0.15;

  /// Network bandwidth between any two nodes, bytes/sec (1 GbE).
  double network_bandwidth = 120e6;
  /// One-way network latency, seconds.
  double network_latency = 1e-3;

  /// Cold read bandwidth from HDFS per instance, bytes/sec.
  double hdfs_read_bytes_per_sec = 250e6;
  /// Spilled-partition re-read bandwidth per instance. Dominated by
  /// DESERIALIZATION, not the SSD: Spark stores spilled RDD blocks
  /// serialized, so re-reading them costs ~tens of MB/s per instance.
  /// CalibrateFromMeasured replaces this analytic constant with the
  /// re-read bandwidth the spilled partitions actually measured.
  double spill_read_bytes_per_sec = 40e6;

  /// How much of the smaller of (compute, io) an instance's pipelining
  /// hides, in [0, 1]. 1.0 is the historical perfect-overlap
  /// max(compute, io) assumption; CalibrateFromMeasured fits it from the
  /// measured per-instance hit/stall ratios (a hit is a chunk whose I/O
  /// the pipeline fully hid).
  double overlap_efficiency = 1.0;

  /// True once CalibrateFromMeasured replaced the analytic spill/overlap
  /// constants with values fitted from a measured run — the flag that
  /// arms the predicted-vs-measured residual reporting in JobStats.
  bool calibrated_from_measurement = false;

  /// Tasks per core per stage (Spark convention: 2-3x cores).
  size_t partitions_per_core = 2;

  /// Calibrated native compute cost, seconds per byte per local core.
  /// Benches fit this from a measured single-machine run so that simulated
  /// instances and the local M3 run share one compute scale.
  double local_cpu_seconds_per_byte = 1e-10;

  /// Measured-execution engine knobs (see ClusterExecOptions).
  ClusterExecOptions exec;

  /// Total partitions in a stage. Validate() rejects configs whose
  /// product would overflow size_t, so the plain multiply here is exact.
  size_t TotalPartitions() const {
    return num_instances * cores_per_instance * partitions_per_core;
  }

  /// Aggregate RDD cache capacity across the cluster, bytes. Each factor
  /// is widened to double *before* multiplying — `instance_ram_bytes *
  /// num_instances` in integer arithmetic overflows uint64_t for large
  /// fleets — and the result saturates at uint64_t max (a double above
  /// that range must not be narrowed back; the cast would be UB).
  uint64_t CacheCapacityBytes() const;

  /// RDD cache capacity of one instance, bytes — also the default measured
  /// RAM budget of its partition pipelines.
  uint64_t InstanceCacheBytes() const {
    return static_cast<uint64_t>(static_cast<double>(instance_ram_bytes) *
                                 cache_fraction);
  }

  /// Replaces the analytic spill-bandwidth and overlap constants (and the
  /// local CPU cost) with values fitted from a measured run's
  /// per-instance pipeline stats:
  ///
  ///   - `local_cpu_seconds_per_byte` — measured compute + retire seconds
  ///     over the bytes the partition pipelines scanned;
  ///   - `spill_read_bytes_per_sec` — the re-read bandwidth the (force-
  ///     evicted) spilled partitions measured; when the disk always won
  ///     the prefetch race the run only bounds bandwidth from below, and
  ///     that optimistic bound (bytes over drive time) is charged instead
  ///     of keeping the analytic constant;
  ///   - `overlap_efficiency` — the fraction of classified chunks whose
  ///     prefetch fully hid the I/O (hits over hits + stalls).
  ///
  /// Returns InvalidArgument when `measured` carries no pipeline
  /// execution to fit from (run with exec.use_pipelines and a bound
  /// mapping first). On success sets `calibrated_from_measurement`.
  util::Status CalibrateFromMeasured(const JobStats& measured);

  /// Validates ranges; returns InvalidArgument on nonsense.
  util::Status Validate() const;

  std::string ToString() const;
};

/// \brief Measured execution counters of one simulated instance.
///
/// Populated only when `ClusterExecOptions::use_pipelines` is on: the
/// instance's partition pipelines report real `exec::PipelineStats` —
/// prefetch hits/stalls, evictions, per-stage seconds — split by the
/// partition's cache state, plus the forced re-faults of its spilled
/// partitions. These are *measured on this machine*, not simulated: they
/// sit alongside the cost-model seconds so overlap behavior (does
/// readahead hide the re-read?) can be observed instead of assumed.
struct InstanceExecStats {
  exec::PipelineStats cached;   ///< passes over cached partitions
  exec::PipelineStats spilled;  ///< passes over spilled partitions
  /// Forced pre-pass evictions of spilled partitions (one per spilled
  /// partition per job, counted only when the page-clamped range was
  /// non-empty): every use re-faults from storage.
  uint64_t spill_refaults = 0;
  uint64_t spill_refault_bytes = 0;  ///< bytes covered by forced evictions
  /// True when the instance did not report (its fleet worker died or missed
  /// a phase deadline) — the counters above are a partial view, not a
  /// measurement. Sticky under Accumulate.
  bool incomplete = false;

  void Accumulate(const InstanceExecStats& other);
  std::string ToString() const;
};

/// \brief Simulated-time breakdown of a distributed job or run.
///
/// Two kinds of numbers live here, deliberately side by side:
///   - the *cost model* fields (`simulated_seconds` and its components)
///     charge modeled EC2/Spark wall time from ClusterConfig, and
///   - `instance_exec` holds the *measured* per-instance pipeline counters
///     when partition tasks run through real ChunkPipelines.
/// The simulated seconds answer "what would the paper's cluster bill";
/// the measured counters answer "did the simulated instances actually
/// overlap paging with compute on this machine".
struct JobStats {
  double simulated_seconds = 0;   ///< modeled cluster wall time
  double compute_seconds = 0;     ///< simulated busy CPU component
  double io_seconds = 0;          ///< HDFS/spill read component
  double network_seconds = 0;     ///< broadcast + aggregation component
  double overhead_seconds = 0;    ///< scheduler/task dispatch component
  size_t jobs = 0;                ///< driver jobs (stages) executed
  size_t tasks = 0;               ///< tasks executed
  uint64_t bytes_read_from_disk = 0;
  uint64_t bytes_over_network = 0;
  /// Measured per-instance pipeline stats, indexed by instance id. Empty
  /// unless the run drove partition tasks through ChunkPipelines.
  std::vector<InstanceExecStats> instance_exec;
  /// \name Predicted-vs-measured execution residual (the calibration
  /// loop's report card). `measured_exec_seconds` is the wall time this
  /// job's partition pipelines actually spent driving passes on this
  /// machine (drive seconds summed over instances and cache classes);
  /// `predicted_exec_seconds` is what the measured-calibrated model
  /// (ClusterConfig::CalibrateFromMeasured) predicted for the same work —
  /// zero until a calibration is installed. Their difference per job is
  /// the model's residual on real execution; bench_cluster_overlap emits
  /// it into BENCH_cluster_overlap.json.
  /// @{
  double measured_exec_seconds = 0;
  double predicted_exec_seconds = 0;
  /// @}

  /// True when any contributing instance's stats are incomplete (a
  /// ProcessFleet worker crashed or timed out mid-job): totals and
  /// residuals then under-count the job. Sticky under Accumulate.
  bool incomplete = false;

  void Accumulate(const JobStats& other);
  std::string ToString() const;
};

}  // namespace m3::cluster

#endif  // M3_CLUSTER_CLUSTER_CONFIG_H_
