#ifndef M3_CLUSTER_PARTITION_H_
#define M3_CLUSTER_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m3::cluster {

/// \brief A contiguous row range of the dataset assigned to an instance —
/// the simulated analogue of one cached RDD partition.
struct Partition {
  size_t row_begin = 0;
  size_t row_end = 0;
  size_t instance = 0;   ///< owning instance (data locality)
  bool cached = true;    ///< false = spilled; re-read from disk every use

  size_t rows() const { return row_end - row_begin; }
};

/// \brief Splits `total_rows` into `num_partitions` near-equal contiguous
/// partitions assigned round-robin to `num_instances`, then marks the
/// overflow beyond `cache_capacity_rows` as spilled (LRU-style: the last
/// partitions loaded lose the cache race).
std::vector<Partition> MakePartitions(size_t total_rows,
                                      size_t num_partitions,
                                      size_t num_instances,
                                      size_t cache_capacity_rows);

}  // namespace m3::cluster

#endif  // M3_CLUSTER_PARTITION_H_
