#ifndef M3_CLUSTER_PARTITION_H_
#define M3_CLUSTER_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace m3::cluster {

/// \brief A contiguous row range of the dataset assigned to an instance —
/// the simulated analogue of one cached RDD partition.
struct Partition {
  size_t row_begin = 0;
  size_t row_end = 0;
  size_t instance = 0;   ///< owning instance (data locality)
  bool cached = true;    ///< false = spilled; re-read from disk every use

  size_t rows() const { return row_end - row_begin; }

  /// Byte offset of the partition's first row within the feature block,
  /// for rows of `row_bytes` bytes.
  uint64_t byte_begin(uint64_t row_bytes) const {
    return static_cast<uint64_t>(row_begin) * row_bytes;
  }

  /// Size of the partition in bytes for rows of `row_bytes` bytes.
  uint64_t byte_size(uint64_t row_bytes) const {
    return static_cast<uint64_t>(rows()) * row_bytes;
  }
};

/// \brief Splits `total_rows` into `num_partitions` near-equal contiguous
/// partitions assigned round-robin to `num_instances`, then marks the
/// overflow beyond `cache_capacity_rows` as spilled (LRU-style: the last
/// partitions loaded lose the cache race).
std::vector<Partition> MakePartitions(size_t total_rows,
                                      size_t num_partitions,
                                      size_t num_instances,
                                      size_t cache_capacity_rows);

/// \brief Total rows assigned to `instance` across `partitions`;
/// `cached_only` restricts the sum to cached partitions (the denominator
/// for prorating an instance's RAM budget over its resident set).
size_t InstanceRows(const std::vector<Partition>& partitions,
                    size_t instance, bool cached_only = false);

/// \brief Partitions of `partitions` that are marked spilled.
size_t CountSpilled(const std::vector<Partition>& partitions);

/// \brief Rows per pipeline chunk for `partition` under a requested
/// chunk-row override (0 = the whole partition as one chunk).
///
/// This is THE chunking rule of the measured engine —
/// `PartitionExecutor` delegates here, and `cluster::ProcessFleet` uses
/// the same function to size shm result slots and compute fold offsets,
/// so parent and workers always agree on how many partials a partition
/// produces.
size_t PartitionChunkRows(const Partition& partition, uint64_t requested);

}  // namespace m3::cluster

#endif  // M3_CLUSTER_PARTITION_H_
