#include "cluster/spark_cluster.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "cluster/partition_executor.h"
#include "cluster/sim_clock.h"
#include "la/blas.h"
#include "obs/trace_recorder.h"
#include "obs/trace_session.h"
#include "util/random.h"

namespace m3::cluster {

using util::Result;
using util::Status;

namespace {

/// Driver-side objective that evaluates the data term partition by
/// partition (real math through the partition executor's pipelines) and
/// charges simulated cluster time per job.
class DistributedLrObjective final : public ml::DifferentiableFunction {
 public:
  DistributedLrObjective(la::ConstMatrixView x, la::ConstVectorView y,
                         double l2, PartitionExecutor* executor,
                         const ClusterConfig& config, JobStats* stats)
      : data_objective_(x, y, /*l2=*/0.0),
        x_(x),
        l2_(l2),
        executor_(executor),
        config_(config),
        model_(config),
        stats_(stats) {}

  size_t Dimension() const override { return x_.cols() + 1; }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    // One gradient evaluation == one driver job (stage boundary).
    obs::ScopedSpan job_span("cluster", "lr_gradient_job");
    grad.SetZero();
    // Real per-partition gradient tasks: chunk partials computed (possibly
    // on pipeline workers), folded on this thread in the executor's fixed
    // strided task order — the deterministic reduce order. The pipelines
    // only accelerate/measure the simulation's execution; simulated time
    // still comes from the cost model.
    struct Partial {
      double loss = 0;
      la::Vector grad;
    };
    double loss = 0;
    JobStats job;
    executor_->RunJob<Partial>(
        [&](const Partition&, size_t row_begin, size_t row_end) {
          Partial partial;
          partial.grad = la::Vector(w.size());
          partial.loss = data_objective_.EvaluateChunk(row_begin, row_end, w,
                                                       partial.grad.View());
          return partial;
        },
        [&](const Partition&, Partial&& partial) {
          loss += partial.loss;
          la::Axpy(1.0, partial.grad, grad);
        },
        &job);
    // Driver adds the ridge term (as MLlib's updater does).
    const size_t d = x_.cols();
    if (l2_ > 0) {
      la::ConstVectorView weights = w.Slice(0, d);
      loss += 0.5 * l2_ * la::Dot(weights, weights);
      la::Axpy(l2_, weights, grad.Slice(0, d));
    }

    // Charge simulated time: broadcast w, run the stage, tree-aggregate
    // the (d+1)-gradient + loss.
    const uint64_t row_bytes = x_.cols() * sizeof(double);
    const uint64_t result_bytes = (Dimension() + 1) * sizeof(double);
    // Calibration report card: what the measured-calibrated model
    // predicts this job's pipeline execution cost on this machine, next
    // to what RunJob just measured (0 until a calibration is installed).
    job.predicted_exec_seconds =
        executor_->PredictJobExecSeconds(row_bytes, first_pass_);
    job.Accumulate(model_.Broadcast(result_bytes));
    job.Accumulate(model_.StageCost(executor_->partitions(), row_bytes,
                                    first_pass_));
    job.Accumulate(model_.TreeAggregate(result_bytes));
    // Accumulate() sums `jobs` from parts; a gradient evaluation is one job.
    job.jobs = 1;
    stats_->Accumulate(job);
    first_pass_ = false;
    return loss;
  }

 private:
  ml::LogisticRegressionObjective data_objective_;
  la::ConstMatrixView x_;
  double l2_;
  PartitionExecutor* executor_;
  const ClusterConfig& config_;
  StageCostModel model_;
  JobStats* stats_;
  bool first_pass_ = true;
};

/// A bound region must describe the same rows the matrix view exposes —
/// otherwise the measured path silently prefetches and evicts the wrong
/// pages while the (view-driven) math still comes out right.
Status ValidateRegion(const exec::MappedRegion& data, size_t rows,
                      size_t cols) {
  if (data.mapping == nullptr) {
    return Status::OK();
  }
  if (data.row_bytes != cols * sizeof(double)) {
    return Status::InvalidArgument(
        "mapped region row_bytes does not match the feature matrix");
  }
  if (data.base_offset + rows * data.row_bytes > data.mapping->size()) {
    return Status::InvalidArgument(
        "mapped region does not cover the feature rows (offset + rows * "
        "row_bytes exceeds the mapping)");
  }
  return Status::OK();
}

}  // namespace

SparkCluster::SparkCluster(ClusterConfig config) : config_(config) {}

std::vector<Partition> SparkCluster::PlanPartitions(size_t rows,
                                                    uint64_t row_bytes) const {
  const uint64_t cache_rows =
      row_bytes == 0 ? rows : config_.CacheCapacityBytes() / row_bytes;
  return MakePartitions(rows, config_.TotalPartitions(),
                        config_.num_instances,
                        static_cast<size_t>(std::min<uint64_t>(
                            cache_rows, rows)));
}

Result<DistributedLrResult> SparkCluster::RunLogisticRegression(
    la::ConstMatrixView x, la::ConstVectorView y, double l2,
    ml::LbfgsOptions optimizer_options,
    const exec::MappedRegion& data) const {
  M3_RETURN_IF_ERROR(config_.Validate());
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("labels size does not match rows");
  }
  M3_RETURN_IF_ERROR(ValidateRegion(data, x.rows(), x.cols()));

  if (!config_.exec.trace_path.empty()) {
    obs::StartGlobalTrace(config_.exec.trace_path);
  }
  obs::ScopedSpan run_span("cluster", "logistic_regression");
  if (run_span.armed()) {
    run_span.AddArg("rows", static_cast<uint64_t>(x.rows()));
    run_span.AddArg("instances",
                    static_cast<uint64_t>(config_.num_instances));
  }
  DistributedLrResult result;
  const uint64_t row_bytes = x.cols() * sizeof(double);
  PartitionExecutor executor(PlanPartitions(x.rows(), row_bytes), config_,
                             data);
  DistributedLrObjective objective(x, y, l2, &executor, config_,
                                   &result.stats);
  la::Vector params(x.cols() + 1);
  ml::Lbfgs optimizer(optimizer_options);
  M3_ASSIGN_OR_RETURN(result.optimization,
                      optimizer.Minimize(&objective, params));
  result.model.weights = la::Vector(x.cols());
  la::Copy(params.View().Slice(0, x.cols()), result.model.weights);
  result.model.intercept = params[x.cols()];
  return result;
}

Result<DistributedKMeansResult> SparkCluster::RunKMeans(
    la::ConstMatrixView x, ml::KMeansOptions options,
    const exec::MappedRegion& data) const {
  M3_RETURN_IF_ERROR(config_.Validate());
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = options.k;
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, rows]");
  }
  M3_RETURN_IF_ERROR(ValidateRegion(data, n, d));

  if (!config_.exec.trace_path.empty()) {
    obs::StartGlobalTrace(config_.exec.trace_path);
  }
  obs::ScopedSpan run_span("cluster", "kmeans");
  if (run_span.armed()) {
    run_span.AddArg("rows", static_cast<uint64_t>(n));
    run_span.AddArg("k", static_cast<uint64_t>(k));
  }
  DistributedKMeansResult result;
  const uint64_t row_bytes = d * sizeof(double);
  PartitionExecutor executor(PlanPartitions(n, row_bytes), config_, data);
  StageCostModel model(config_);

  // Initialization: reuse the single-machine seeding (it touches a bounded
  // sample; MLlib similarly samples for kmeans||). Simulated cost: one
  // bounded-sample stage.
  // Identical seeding to the single-machine implementation: both sides of
  // the Fig. 1b comparison start from the same centers.
  M3_ASSIGN_OR_RETURN(la::Matrix centers, ml::KMeans::SeedCenters(x, options));

  const uint64_t centers_bytes = k * d * sizeof(double);
  const uint64_t result_bytes = centers_bytes + k * sizeof(uint64_t);

  la::Matrix sums(k, d);
  std::vector<uint64_t> counts(k);
  util::Rng rng(options.seed);
  double previous_inertia = std::numeric_limits<double>::max();

  // Per-chunk assignment + accumulation partial (the task result a real
  // executor would send back to the driver for its rows).
  struct Partial {
    la::Matrix sums;
    std::vector<uint64_t> counts;
    double inertia = 0;
  };

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    obs::ScopedSpan iter_span("cluster", "kmeans_iteration");
    if (iter_span.armed()) {
      iter_span.AddArg("iteration", static_cast<uint64_t>(iter));
    }
    sums.SetZero();
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0;
    JobStats job;
    // Real per-partition assignment + accumulation tasks; centers are
    // read-only for the whole job, partials fold in task order.
    executor.RunJob<Partial>(
        [&](const Partition&, size_t row_begin, size_t row_end) {
          Partial partial;
          partial.sums = la::Matrix(k, d);
          partial.counts.assign(k, 0);
          for (size_t r = row_begin; r < row_end; ++r) {
            size_t best = 0;
            double best_dist2 =
                la::SquaredDistance(x.Row(r), centers.Row(0));
            for (size_t c = 1; c < k; ++c) {
              const double dist2 =
                  la::SquaredDistance(x.Row(r), centers.Row(c));
              if (dist2 < best_dist2) {
                best_dist2 = dist2;
                best = c;
              }
            }
            partial.inertia += best_dist2;
            la::Axpy(1.0, x.Row(r), partial.sums.Row(best));
            ++partial.counts[best];
          }
          return partial;
        },
        [&](const Partition&, Partial&& partial) {
          inertia += partial.inertia;
          for (size_t c = 0; c < k; ++c) {
            la::Axpy(1.0, partial.sums.Row(c), sums.Row(c));
            counts[c] += partial.counts[c];
          }
        },
        &job);
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        la::Copy(sums.Row(c), centers.Row(c));
        la::Scal(1.0 / static_cast<double>(counts[c]), centers.Row(c));
      } else {
        const size_t row = static_cast<size_t>(rng.UniformInt(uint64_t{n}));
        la::Copy(x.Row(row), centers.Row(c));
      }
    }

    // Simulated time: broadcast centers, stage, aggregate partials —
    // plus the calibrated model's prediction of the job's measured
    // pipeline execution (0 until a calibration is installed).
    job.predicted_exec_seconds =
        executor.PredictJobExecSeconds(row_bytes, iter == 0);
    job.Accumulate(model.Broadcast(centers_bytes));
    job.Accumulate(model.StageCost(executor.partitions(), row_bytes,
                                   iter == 0));
    job.Accumulate(model.TreeAggregate(result_bytes));
    job.jobs = 1;
    result.stats.Accumulate(job);

    result.clustering.inertia = inertia;
    result.clustering.inertia_history.push_back(inertia);
    ++result.clustering.iterations;
    const double improvement =
        (previous_inertia - inertia) / std::max(1.0, previous_inertia);
    if (iter > 0 && improvement >= 0 && improvement < options.tolerance) {
      result.clustering.converged = true;
      break;
    }
    previous_inertia = inertia;
  }
  result.clustering.centers = std::move(centers);
  return result;
}

}  // namespace m3::cluster
