#include "cluster/spark_cluster.h"

#include <algorithm>
#include <cmath>

#include "cluster/sim_clock.h"
#include "la/blas.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace m3::cluster {

using util::Result;
using util::Status;

namespace {

/// Driver-side objective that evaluates the data term partition by
/// partition (real math) and charges simulated cluster time per job.
class DistributedLrObjective final : public ml::DifferentiableFunction {
 public:
  DistributedLrObjective(la::ConstMatrixView x, la::ConstVectorView y,
                         double l2, std::vector<Partition> partitions,
                         const ClusterConfig& config, JobStats* stats)
      : data_objective_(x, y, /*l2=*/0.0),
        x_(x),
        l2_(l2),
        partitions_(std::move(partitions)),
        config_(config),
        model_(config),
        stats_(stats) {}

  size_t Dimension() const override { return x_.cols() + 1; }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    grad.SetZero();
    // Real per-partition gradient tasks. Partition order is the reduce
    // order (deterministic). The local thread pool only accelerates the
    // simulation's execution; simulated time comes from the cost model.
    double loss = 0;
    for (const Partition& partition : partitions_) {
      loss += data_objective_.EvaluateChunk(partition.row_begin,
                                            partition.row_end, w, grad);
    }
    // Driver adds the ridge term (as MLlib's updater does).
    const size_t d = x_.cols();
    if (l2_ > 0) {
      la::ConstVectorView weights = w.Slice(0, d);
      loss += 0.5 * l2_ * la::Dot(weights, weights);
      la::Axpy(l2_, weights, grad.Slice(0, d));
    }

    // Charge simulated time: broadcast w, run the stage, tree-aggregate
    // the (d+1)-gradient + loss.
    const uint64_t row_bytes = x_.cols() * sizeof(double);
    const uint64_t result_bytes = (Dimension() + 1) * sizeof(double);
    JobStats job;
    job.Accumulate(model_.Broadcast(result_bytes));
    job.Accumulate(model_.StageCost(partitions_, row_bytes, first_pass_));
    job.Accumulate(model_.TreeAggregate(result_bytes));
    // Accumulate() sums `jobs` from parts; a gradient evaluation is one job.
    job.jobs = 1;
    stats_->Accumulate(job);
    first_pass_ = false;
    return loss;
  }

 private:
  ml::LogisticRegressionObjective data_objective_;
  la::ConstMatrixView x_;
  double l2_;
  std::vector<Partition> partitions_;
  const ClusterConfig& config_;
  StageCostModel model_;
  JobStats* stats_;
  bool first_pass_ = true;
};

}  // namespace

SparkCluster::SparkCluster(ClusterConfig config) : config_(config) {}

std::vector<Partition> SparkCluster::PlanPartitions(size_t rows,
                                                    uint64_t row_bytes) const {
  const uint64_t cache_rows =
      row_bytes == 0 ? rows : config_.CacheCapacityBytes() / row_bytes;
  return MakePartitions(rows, config_.TotalPartitions(),
                        config_.num_instances,
                        static_cast<size_t>(std::min<uint64_t>(
                            cache_rows, rows)));
}

Result<DistributedLrResult> SparkCluster::RunLogisticRegression(
    la::ConstMatrixView x, la::ConstVectorView y, double l2,
    ml::LbfgsOptions optimizer_options) const {
  M3_RETURN_IF_ERROR(config_.Validate());
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("labels size does not match rows");
  }

  DistributedLrResult result;
  const uint64_t row_bytes = x.cols() * sizeof(double);
  std::vector<Partition> partitions = PlanPartitions(x.rows(), row_bytes);
  DistributedLrObjective objective(x, y, l2, partitions, config_,
                                   &result.stats);
  la::Vector params(x.cols() + 1);
  ml::Lbfgs optimizer(optimizer_options);
  M3_ASSIGN_OR_RETURN(result.optimization,
                      optimizer.Minimize(&objective, params));
  result.model.weights = la::Vector(x.cols());
  la::Copy(params.View().Slice(0, x.cols()), result.model.weights);
  result.model.intercept = params[x.cols()];
  return result;
}

Result<DistributedKMeansResult> SparkCluster::RunKMeans(
    la::ConstMatrixView x, ml::KMeansOptions options) const {
  M3_RETURN_IF_ERROR(config_.Validate());
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = options.k;
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, rows]");
  }

  DistributedKMeansResult result;
  const uint64_t row_bytes = d * sizeof(double);
  std::vector<Partition> partitions = PlanPartitions(n, row_bytes);
  StageCostModel model(config_);

  // Initialization: reuse the single-machine seeding (it touches a bounded
  // sample; MLlib similarly samples for kmeans||). Simulated cost: one
  // bounded-sample stage.
  // Identical seeding to the single-machine implementation: both sides of
  // the Fig. 1b comparison start from the same centers.
  M3_ASSIGN_OR_RETURN(la::Matrix centers, ml::KMeans::SeedCenters(x, options));

  const uint64_t centers_bytes = k * d * sizeof(double);
  const uint64_t result_bytes = centers_bytes + k * sizeof(uint64_t);

  la::Matrix sums(k, d);
  std::vector<uint64_t> counts(k);
  util::Rng rng(options.seed);
  double previous_inertia = std::numeric_limits<double>::max();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    sums.SetZero();
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0;
    // Real per-partition assignment + accumulation tasks.
    for (const Partition& partition : partitions) {
      for (size_t r = partition.row_begin; r < partition.row_end; ++r) {
        size_t best = 0;
        double best_dist2 = la::SquaredDistance(x.Row(r), centers.Row(0));
        for (size_t c = 1; c < k; ++c) {
          const double dist2 = la::SquaredDistance(x.Row(r), centers.Row(c));
          if (dist2 < best_dist2) {
            best_dist2 = dist2;
            best = c;
          }
        }
        inertia += best_dist2;
        la::Axpy(1.0, x.Row(r), sums.Row(best));
        ++counts[best];
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        la::Copy(sums.Row(c), centers.Row(c));
        la::Scal(1.0 / static_cast<double>(counts[c]), centers.Row(c));
      } else {
        const size_t row = static_cast<size_t>(rng.UniformInt(uint64_t{n}));
        la::Copy(x.Row(row), centers.Row(c));
      }
    }

    // Simulated time: broadcast centers, stage, aggregate partials.
    JobStats job;
    job.Accumulate(model.Broadcast(centers_bytes));
    job.Accumulate(model.StageCost(partitions, row_bytes, iter == 0));
    job.Accumulate(model.TreeAggregate(result_bytes));
    job.jobs = 1;
    result.stats.Accumulate(job);

    result.clustering.inertia = inertia;
    result.clustering.inertia_history.push_back(inertia);
    ++result.clustering.iterations;
    const double improvement =
        (previous_inertia - inertia) / std::max(1.0, previous_inertia);
    if (iter > 0 && improvement >= 0 && improvement < options.tolerance) {
      result.clustering.converged = true;
      break;
    }
    previous_inertia = inertia;
  }
  result.clustering.centers = std::move(centers);
  return result;
}

}  // namespace m3::cluster
