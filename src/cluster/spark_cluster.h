#ifndef M3_CLUSTER_SPARK_CLUSTER_H_
#define M3_CLUSTER_SPARK_CLUSTER_H_

#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/partition.h"
#include "la/matrix.h"
#include "ml/kmeans.h"
#include "ml/lbfgs.h"
#include "ml/logistic_regression.h"
#include "util/result.h"

namespace m3::cluster {

/// \brief Result of a distributed logistic-regression run.
struct DistributedLrResult {
  ml::LogisticRegressionModel model;
  ml::OptimizationResult optimization;
  JobStats stats;  ///< simulated cluster time breakdown
};

/// \brief Result of a distributed k-means run.
struct DistributedKMeansResult {
  ml::KMeansResult clustering;
  JobStats stats;
};

/// \brief The simulated Spark cluster (MLlib-style driver programs).
///
/// Executes the real distributed algorithms over real data — per-partition
/// tasks compute actual gradients/assignments, the driver actually reduces
/// them — while charging wall time from the calibrated ClusterConfig cost
/// model instead of EC2 (see the substitution note in cluster_config.h and
/// DESIGN.md §3). Numerical results therefore agree with the
/// single-machine implementations, and `stats.simulated_seconds` plays the
/// role of the paper's measured Spark runtimes.
class SparkCluster {
 public:
  explicit SparkCluster(ClusterConfig config);

  /// MLlib-style logistic regression: L-BFGS on the driver, one gradient
  /// job per function evaluation, tree-aggregated (d+1)-vector results.
  /// A cold HDFS load precedes the first evaluation.
  util::Result<DistributedLrResult> RunLogisticRegression(
      la::ConstMatrixView x, la::ConstVectorView y, double l2,
      ml::LbfgsOptions optimizer_options) const;

  /// MLlib-style k-means: one assignment/accumulation job per iteration,
  /// centers broadcast before each job.
  util::Result<DistributedKMeansResult> RunKMeans(
      la::ConstMatrixView x, ml::KMeansOptions options) const;

  /// The partitioning the cluster would use for an n-row dataset of
  /// `row_bytes`-byte rows (exposed for tests and benches).
  std::vector<Partition> PlanPartitions(size_t rows,
                                        uint64_t row_bytes) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace m3::cluster

#endif  // M3_CLUSTER_SPARK_CLUSTER_H_
