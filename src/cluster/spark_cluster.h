#ifndef M3_CLUSTER_SPARK_CLUSTER_H_
#define M3_CLUSTER_SPARK_CLUSTER_H_

#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/partition.h"
#include "exec/chunk_pipeline.h"
#include "la/matrix.h"
#include "ml/kmeans.h"
#include "ml/lbfgs.h"
#include "ml/logistic_regression.h"
#include "util/result.h"

namespace m3::cluster {

/// \brief Result of a distributed logistic-regression run.
struct DistributedLrResult {
  ml::LogisticRegressionModel model;
  ml::OptimizationResult optimization;
  JobStats stats;  ///< simulated cluster time breakdown
};

/// \brief Result of a distributed k-means run.
struct DistributedKMeansResult {
  ml::KMeansResult clustering;
  JobStats stats;
};

/// \brief The simulated Spark cluster (MLlib-style driver programs).
///
/// Executes the real distributed algorithms over real data — per-partition
/// tasks compute actual gradients/assignments, the driver actually reduces
/// them — while charging wall time from the calibrated ClusterConfig cost
/// model instead of EC2 (see the substitution note in cluster_config.h and
/// DESIGN.md §3). Numerical results therefore agree with the
/// single-machine implementations, and `stats.simulated_seconds` plays the
/// role of the paper's measured Spark runtimes.
///
/// TIME IN JobStats COMES FROM TWO PLACES — read them differently:
///
///   - `simulated_seconds` (and compute/io/network/overhead components) is
///     *modeled*: the StageCostModel's estimate of what the paper's EMR
///     cluster would have billed for the same jobs. It is unaffected by
///     how fast this machine executes the simulation.
///   - `instance_exec[k]` is *measured*: when `ClusterConfig::exec` turns
///     pipelines on, instance k's partition tasks run through real
///     `exec::ChunkPipeline`s (per-partition, persisting across jobs), and
///     their PipelineStats land here. `cached` counters come from passes
///     over cached partitions — with an mmap-backed run, prefetch hits
///     mean the partition's pages were still resident from earlier jobs
///     (the RDD cache working); `spilled` counters come from passes over
///     spilled partitions, which are force-evicted before every job, so
///     their `spill_refaults` grow each job and their stalls/hit-rate show
///     whether WILLNEED readahead hides the re-read. The invariant
///     `prefetches == prefetch_hits + stalls + prefetch_unclassified`
///     holds per instance and per cache class after every run.
///   - `measured_exec_seconds` / `predicted_exec_seconds` close the loop
///     between the two: once the config carries a measured calibration
///     (`ClusterConfig::CalibrateFromMeasured` — spill bandwidth, overlap
///     efficiency and CPU cost fitted from a previous run's
///     instance_exec), every job records the calibrated model's
///     prediction for its pipeline execution next to what was measured.
///     Their difference is the cost model's residual on real execution.
///
/// Passing a bound `exec::MappedRegion` (e.g. built from a MappedDataset)
/// makes the measured path page real memory; with in-memory matrices the
/// pipelines only orchestrate compute. Either way results are bitwise
/// identical with pipelines off, on, and at any worker count — partials
/// merge on the driving thread in a fixed strided task order (stride =
/// instance count, offset = instance id).
class SparkCluster {
 public:
  explicit SparkCluster(ClusterConfig config);

  /// MLlib-style logistic regression: L-BFGS on the driver, one gradient
  /// job per function evaluation, tree-aggregated (d+1)-vector results.
  /// A cold HDFS load precedes the first evaluation. `data` optionally
  /// binds the feature rows' mapping for measured pipelined execution
  /// (`data.base_offset` = byte offset of row 0 of `x`).
  util::Result<DistributedLrResult> RunLogisticRegression(
      la::ConstMatrixView x, la::ConstVectorView y, double l2,
      ml::LbfgsOptions optimizer_options,
      const exec::MappedRegion& data = exec::MappedRegion()) const;

  /// MLlib-style k-means: one assignment/accumulation job per iteration,
  /// centers broadcast before each job.
  util::Result<DistributedKMeansResult> RunKMeans(
      la::ConstMatrixView x, ml::KMeansOptions options,
      const exec::MappedRegion& data = exec::MappedRegion()) const;

  /// The partitioning the cluster would use for an n-row dataset of
  /// `row_bytes`-byte rows (exposed for tests and benches).
  std::vector<Partition> PlanPartitions(size_t rows,
                                        uint64_t row_bytes) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

}  // namespace m3::cluster

#endif  // M3_CLUSTER_SPARK_CLUSTER_H_
