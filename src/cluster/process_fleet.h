#ifndef M3_CLUSTER_PROCESS_FLEET_H_
#define M3_CLUSTER_PROCESS_FLEET_H_

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/partition.h"
#include "cluster/spark_cluster.h"
#include "core/mapped_dataset.h"
#include "exec/chunk_schedule.h"
#include "io/shm_channel.h"
#include "ml/kmeans.h"
#include "ml/lbfgs.h"
#include "util/result.h"

namespace m3::cluster {

/// \brief Knobs for a ProcessFleet run.
struct FleetOptions {
  FleetOptions() {}  // NOLINT: allows `= FleetOptions()` defaults

  /// Cluster shape + measured-execution knobs. `config.num_instances` is
  /// the fleet size (one worker process per simulated instance).
  ClusterConfig config;

  /// Per-phase deadline: the longest the parent waits for the whole fleet
  /// to finish one job (startup ack, gradient/assignment job, shutdown)
  /// before declaring the run failed and killing every worker.
  double phase_deadline_seconds = 30.0;

  /// When non-empty, each worker runs its own trace session and writes
  /// `<dir>/worker_<i>.json` at shutdown (a worker killed mid-run leaves
  /// no file). The parent's trace is `config.exec.trace_path`, as in
  /// SparkCluster.
  std::string worker_trace_dir;

  /// Fault injection for tests: this worker index ignores real jobs
  /// (sleeps forever), driving the parent's deadline path. -1 = off.
  int hang_worker = -1;

  /// Upper bound on ml::KMeansOptions::k accepted by RunKMeans — result
  /// slots are sized for this k at Spawn() time (shared memory cannot
  /// grow after the workers fork).
  size_t max_kmeans_k = 64;
};

/// \brief A real multi-process execution fleet: SparkCluster's driver
/// programs with partition tasks running in forked worker processes.
///
/// Where SparkCluster *simulates* N instances inside one process (the fast
/// tier-1 path), ProcessFleet forks one worker per instance. Each worker
/// mmaps the dataset itself and drives its instance's partitions through
/// its own per-partition `exec::ChunkPipeline`s
/// (PartitionExecutor::RunInstanceJob) — so the workers genuinely compete
/// for the machine's page cache, which is the contention the M3 paper's
/// memory-mapping argument is about. Coordination runs over an
/// `io::ShmChannel` (fork-shared control block + result slots + pipe
/// doorbells) created before the fork.
///
/// DETERMINISM: workers ship raw per-chunk partials — never pre-folded
/// sums — and the parent folds them in exactly the simulator's order
/// (partitions in the strided task order, chunks ascending within each
/// partition), using the same la:: kernels. LR weights and k-means
/// centers are therefore bitwise identical to SparkCluster's at every
/// fleet size.
///
/// CRASHES: a worker death (any cause — the write end of its result pipe
/// closes with it) or a phase-deadline miss fails the run with a Status
/// error; the parent SIGKILLs and reaps the whole fleet (no zombies, no
/// parent hang), marks the dead workers' stats `incomplete` in
/// last_run_stats(), and every later Run* returns FailedPrecondition.
/// Spawn a fresh fleet to retry.
///
/// FORK SAFETY: Spawn() forks; call it before the parent process creates
/// any threads (trace sessions, pipelines, thread pools). The parent's
/// own trace/pools start inside Run*, after the fork.
class ProcessFleet {
 public:
  /// Opens the dataset, plans partitions (identically to
  /// SparkCluster::PlanPartitions), sizes and maps the shm channel, forks
  /// `config.num_instances` workers, and waits for every worker's startup
  /// ack (each opens its own mapping and builds its executor first).
  static util::Result<std::unique_ptr<ProcessFleet>> Spawn(
      const std::string& dataset_path, const FleetOptions& options);

  ProcessFleet(const ProcessFleet&) = delete;
  ProcessFleet& operator=(const ProcessFleet&) = delete;
  ~ProcessFleet();

  /// The fleet analogue of SparkCluster::RunLogisticRegression: L-BFGS on
  /// the parent, one fleet-wide gradient job per function evaluation.
  util::Result<DistributedLrResult> RunLogisticRegression(
      double l2, ml::LbfgsOptions optimizer_options);

  /// The fleet analogue of SparkCluster::RunKMeans: seeding and center
  /// updates on the parent, one fleet-wide assignment job per iteration.
  /// `options.k` must not exceed FleetOptions::max_kmeans_k.
  util::Result<DistributedKMeansResult> RunKMeans(ml::KMeansOptions options);

  /// Asks every worker to exit, reaps them within the phase deadline, and
  /// SIGKILLs stragglers. Idempotent; the destructor calls it.
  util::Status Shutdown();

  /// Live worker pids, one per instance (for tests to SIGKILL). Empty
  /// after Shutdown() or a failed run.
  const std::vector<pid_t>& pids() const { return pids_; }

  const std::vector<Partition>& partitions() const { return partitions_; }
  size_t num_workers() const { return options_.config.num_instances; }
  bool alive() const { return alive_; }

  /// The partial JobStats of the most recent FAILED run (dead/hung
  /// workers' instance slots and the job marked `incomplete`).
  const JobStats& last_run_stats() const { return last_run_stats_; }

 private:
  friend class FleetLrObjective;

  ProcessFleet(MappedDataset dataset, std::string dataset_path,
               const FleetOptions& options);

  /// Creates the shm channel, forks the workers, and runs the startup
  /// barrier.
  util::Status Start();

  /// Publishes one job, waits for the whole fleet under the shared phase
  /// deadline, and parses worker stats into `job`. On any death/timeout:
  /// kills the fleet, records `last_run_stats_`, returns the error.
  util::Status RunPhase(uint64_t kind, uint64_t payload_len, JobStats* job);

  /// One LR gradient evaluation: broadcast `w`, RunPhase, fold partials
  /// into `grad`/`loss` in simulator order, charge simulated time.
  util::Status RunLrGradient(la::ConstVectorView w, la::VectorView grad,
                             double* loss, bool first_pass, JobStats* job);

  /// SIGKILLs and reaps every live worker; returns a per-worker exit
  /// description for error messages. Leaves the fleet not-alive.
  std::string KillAll();

  /// Parses worker `w`'s length-prefixed stats JSON into `job`.
  util::Status ParseWorkerStats(size_t worker, JobStats* job);

  /// The forked worker body; never returns.
  [[noreturn]] void WorkerMain(size_t worker);

  FleetOptions options_;
  std::string dataset_path_;
  MappedDataset dataset_;  ///< the parent's own mapping (seeding, folds)
  std::vector<Partition> partitions_;
  exec::ChunkSchedule fold_order_;  ///< the simulator's strided task order
  /// \name Result-slot layout, agreed by parent and workers by
  /// construction (computed before fork from the same partition plan).
  /// Worker w writes one partial per chunk, consecutively, in its lane
  /// order; partition p's first partial sits at chunk-slot
  /// `partition_chunk_base_[p]` of worker `partitions_[p].instance`.
  /// @{
  std::vector<size_t> partition_chunks_;      ///< chunks per partition
  std::vector<size_t> partition_chunk_base_;  ///< first chunk slot in lane
  std::vector<size_t> worker_chunks_;         ///< total chunk slots per worker
  size_t max_partial_bytes_ = 0;  ///< slot stride capacity (max over kinds)
  /// @}
  std::unique_ptr<io::ShmChannel> channel_;
  std::vector<pid_t> pids_;
  bool alive_ = false;
  JobStats last_run_stats_;
};

}  // namespace m3::cluster

#endif  // M3_CLUSTER_PROCESS_FLEET_H_
