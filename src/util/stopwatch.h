#ifndef M3_UTIL_STOPWATCH_H_
#define M3_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace m3::util {

/// \brief Monotonic wall-clock stopwatch.
///
/// Starts running on construction; `Restart()` resets the origin. All
/// elapsed accessors may be called repeatedly while the watch keeps running.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Restart().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates the lifetime of the scope into a double (in seconds).
///
/// Usage:
///   double gradient_seconds = 0;
///   { ScopedTimer t(&gradient_seconds); ComputeGradient(); }
class ScopedTimer {
 public:
  explicit ScopedTimer(double* accumulator_seconds)
      : accumulator_seconds_(accumulator_seconds) {}
  ~ScopedTimer() { *accumulator_seconds_ += watch_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* accumulator_seconds_;
  Stopwatch watch_;
};

}  // namespace m3::util

#endif  // M3_UTIL_STOPWATCH_H_
