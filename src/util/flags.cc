#include "util/flags.h"

#include <cstdio>

#include "util/format.h"
#include "util/result.h"

namespace m3::util {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::Register(const std::string& name, Type type, void* storage,
                          const std::string& help, std::string default_repr) {
  flags_[name] = Flag{type, storage, help, std::move(default_repr)};
}

void FlagParser::AddInt64(const std::string& name, int64_t* storage,
                          const std::string& help) {
  Register(name, Type::kInt64, storage, help,
           StrFormat("%lld", static_cast<long long>(*storage)));
}

void FlagParser::AddDouble(const std::string& name, double* storage,
                           const std::string& help) {
  Register(name, Type::kDouble, storage, help, StrFormat("%g", *storage));
}

void FlagParser::AddString(const std::string& name, std::string* storage,
                           const std::string& help) {
  Register(name, Type::kString, storage, help, *storage);
}

void FlagParser::AddBool(const std::string& name, bool* storage,
                         const std::string& help) {
  Register(name, Type::kBool, storage, help, *storage ? "true" : "false");
}

void FlagParser::AddSize(const std::string& name, uint64_t* storage,
                         const std::string& help) {
  Register(name, Type::kSize, storage, help, HumanBytes(*storage));
}

Status FlagParser::Apply(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  set_flags_.insert(name);
  switch (flag.type) {
    case Type::kInt64: {
      M3_ASSIGN_OR_RETURN(int64_t v, ParseInt64(value));
      *static_cast<int64_t*>(flag.storage) = v;
      return Status::OK();
    }
    case Type::kDouble: {
      M3_ASSIGN_OR_RETURN(double v, ParseDouble(value));
      *static_cast<double*>(flag.storage) = v;
      return Status::OK();
    }
    case Type::kString:
      *static_cast<std::string*>(flag.storage) = value;
      return Status::OK();
    case Type::kBool: {
      M3_ASSIGN_OR_RETURN(bool v, ParseBool(value));
      *static_cast<bool*>(flag.storage) = v;
      return Status::OK();
    }
    case Type::kSize: {
      M3_ASSIGN_OR_RETURN(uint64_t v, ParseSizeBytes(value));
      *static_cast<uint64_t*>(flag.storage) = v;
      return Status::OK();
    }
  }
  return Status::Internal("unhandled flag type");
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      std::fputs(Usage(argv[0]).c_str(), stdout);
      return Status::OK();
    }
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      M3_RETURN_IF_ERROR(Apply(body.substr(0, eq), body.substr(eq + 1)));
      continue;
    }
    // `--name value`, or bare `--name` for booleans.
    auto it = flags_.find(body);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + body);
    }
    if (it->second.type == Type::kBool) {
      *static_cast<bool*>(it->second.storage) = true;
      set_flags_.insert(body);
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + body + " expects a value");
    }
    M3_RETURN_IF_ERROR(Apply(body, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::Usage(const std::string& argv0) const {
  std::string out = description_ + "\n\nUsage: " + argv0 + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += StrFormat("  --%-24s %s (default: %s)\n", name.c_str(),
                     flag.help.c_str(), flag.default_repr.c_str());
  }
  return out;
}

}  // namespace m3::util
