#include "util/status.h"

#include <cstring>

namespace m3::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status Status::IoErrorFromErrno(std::string_view context, int errno_value) {
  std::string msg(context);
  msg += ": ";
  msg += std::strerror(errno_value);
  return Status::IoError(msg);
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, msg);
}

}  // namespace m3::util
