#ifndef M3_UTIL_FLAGS_H_
#define M3_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/status.h"

namespace m3::util {

/// \brief Minimal command-line flag parser for bench and example binaries.
///
/// Flags are registered with pointers to caller-owned storage holding the
/// default value. Accepted syntax: `--name=value`, `--name value`, and bare
/// `--name` for booleans (sets true). `--help` prints usage; positional
/// arguments are collected in order.
class FlagParser {
 public:
  /// \param program_description One-line description printed by --help.
  explicit FlagParser(std::string program_description);

  /// \name Flag registration. Storage must outlive Parse().
  /// @{
  void AddInt64(const std::string& name, int64_t* storage,
                const std::string& help);
  void AddDouble(const std::string& name, double* storage,
                 const std::string& help);
  void AddString(const std::string& name, std::string* storage,
                 const std::string& help);
  void AddBool(const std::string& name, bool* storage, const std::string& help);
  /// Size flag accepting k/m/g/t suffixes; stored in bytes.
  void AddSize(const std::string& name, uint64_t* storage,
               const std::string& help);
  /// @}

  /// Parses argv. On `--help`, prints usage and returns a NotSupported
  /// status that callers should treat as "exit 0".
  Status Parse(int argc, char** argv);

  /// True iff Parse consumed a --help flag.
  bool help_requested() const { return help_requested_; }

  /// True iff the flag was explicitly set on the command line (including a
  /// bare `--name` boolean). Lets callers distinguish an untouched default
  /// from an explicit-but-empty value (e.g. `--trace=`), which benches
  /// must reject instead of silently running untraced.
  bool was_set(const std::string& name) const {
    return set_flags_.count(name) > 0;
  }

  /// Arguments that were not flags, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage text.
  std::string Usage(const std::string& argv0) const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool, kSize };
  struct Flag {
    Type type;
    void* storage;
    std::string help;
    std::string default_repr;
  };

  void Register(const std::string& name, Type type, void* storage,
                const std::string& help, std::string default_repr);
  Status Apply(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  std::set<std::string> set_flags_;  ///< names Parse() explicitly applied
  bool help_requested_ = false;
};

}  // namespace m3::util

#endif  // M3_UTIL_FLAGS_H_
