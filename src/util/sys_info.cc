#include "util/sys_info.h"

#include <unistd.h>

#include "util/format.h"

namespace m3::util {

size_t PageSize() {
  static const size_t page = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return page;
}

uint64_t TotalRamBytes() {
  const long pages = sysconf(_SC_PHYS_PAGES);
  if (pages <= 0) {
    return 0;
  }
  return static_cast<uint64_t>(pages) * PageSize();
}

uint64_t AvailableRamBytes() {
  const long pages = sysconf(_SC_AVPHYS_PAGES);
  if (pages <= 0) {
    return 0;
  }
  return static_cast<uint64_t>(pages) * PageSize();
}

size_t NumCpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n <= 0 ? 1 : static_cast<size_t>(n);
}

size_t RoundUpToPageSize(size_t bytes) {
  const size_t page = PageSize();
  return (bytes + page - 1) / page * page;
}

std::string SysInfoString() {
  return StrFormat("cpus=%zu ram=%s page=%zuB", NumCpus(),
                   HumanBytes(TotalRamBytes()).c_str(), PageSize());
}

}  // namespace m3::util
