#ifndef M3_UTIL_HISTOGRAM_H_
#define M3_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace m3::util {

/// \brief Streaming summary statistics (count/mean/variance/min/max) using
/// Welford's online algorithm.
class RunningStats {
 public:
  void Add(double value);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Population variance (0 for fewer than 2 samples).
  double Variance() const;
  double StdDev() const;

  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Latency-style histogram with exponentially growing buckets.
///
/// Tracks non-negative samples (values are clamped at 0). Bucket upper
/// bounds grow by ~1.5x per bucket, covering roughly 12 orders of magnitude,
/// which matches the RocksDB histogram approach for timing data.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Clear();

  uint64_t count() const { return stats_.count(); }
  double mean() const { return stats_.mean(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double StdDev() const { return stats_.StdDev(); }

  /// Linear-interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// Multi-line summary: count/mean/stddev and P50/P95/P99/max.
  std::string ToString() const;

  /// Merges another histogram with identical bucket layout.
  void Merge(const Histogram& other);

 private:
  size_t BucketIndex(double value) const;

  std::vector<double> bucket_limits_;  // upper bounds, ascending
  std::vector<uint64_t> buckets_;
  RunningStats stats_;
};

}  // namespace m3::util

#endif  // M3_UTIL_HISTOGRAM_H_
