#ifndef M3_UTIL_RANDOM_H_
#define M3_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace m3::util {

/// \brief Deterministic PRNG (xoshiro256++) seeded via SplitMix64.
///
/// Every source of randomness in the library flows through a seeded Rng so
/// that datasets, initializations, and benchmarks are exactly reproducible
/// across runs and platforms. Not cryptographically secure.
class Rng {
 public:
  /// Seeds the four-word state from `seed` using SplitMix64 expansion.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). \pre n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi]. \pre lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller (caches the second deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) {
      return;
    }
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// Derives an independent child generator (for per-shard determinism).
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace m3::util

#endif  // M3_UTIL_RANDOM_H_
