#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

namespace m3::util {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

// Serializes interleaved writes from worker threads.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

// Relaxed: the level is an independent word; a racing reader seeing the
// old level logs (or skips) one extra message, which is acceptable.
void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) {
  if (level < GetLogLevel() && level != LogLevel::kFatal) {
    return;
  }
  char buffer[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);

  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s] %s:%d %s\n", LevelName(level), Basename(file),
                 line, buffer);
    std::fflush(stderr);
  }
  if (level == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace m3::util
