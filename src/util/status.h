#ifndef M3_UTIL_STATUS_H_
#define M3_UTIL_STATUS_H_

#include <string>
#include <string_view>

namespace m3::util {

/// \brief Coarse error category carried by a Status.
///
/// Mirrors the small set of categories used by storage-engine style C++
/// libraries (RocksDB, Arrow): library code never throws across its API
/// boundary; every fallible operation returns a Status (or a Result<T>).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kIoError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kNotSupported,
  kInternal,
};

/// \brief Returns a stable human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Value type describing the outcome of a fallible operation.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// message. Statuses are cheap to copy in the OK case (empty message).
///
/// [[nodiscard]] on the class makes every silently dropped return an
/// error under -Werror=unused-result (the build sets it tree-wide): a
/// close/unmap/publish failure nobody looks at is how out-of-core jobs
/// report success on corrupt output. Intentional discards must go
/// through M3_IGNORE_STATUS(expr, "why") below so the reason is
/// recorded; tools/m3_analyze (rule `unchecked-status`) flags bare
/// `(void)` casts that would silence the compiler without one.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// \name Factory functions, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status IoError(std::string_view msg) {
    return Status(StatusCode::kIoError, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  /// @}

  /// \brief Builds an IoError that appends strerror(errno_value).
  static Status IoErrorFromErrno(std::string_view context, int errno_value);

  /// True iff the status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// \brief Explicitly discards the status (best-effort call sites).
  void IgnoreError() const {}

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// \brief Returns this status with `context` prepended to the message.
  ///
  /// OK statuses are returned unchanged. Useful when propagating errors up
  /// a call chain: `return st.WithContext("opening dataset");`.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace m3::util

/// Explicitly discards a [[nodiscard]] Status (or Result<T>) with a
/// recorded reason. The `why` literal is for the reader and the
/// analyzer; it must be a non-empty string literal. Use only where the
/// error genuinely cannot matter (best-effort teardown, benchmark
/// scratch cleanup) — everywhere else, propagate or test the Status.
#define M3_IGNORE_STATUS(expr, why)                                  \
  do {                                                               \
    static_assert(sizeof(why) > 1,                                   \
                  "M3_IGNORE_STATUS needs a non-empty reason");      \
    (void)(expr);                                                    \
  } while (false)

/// Propagates an error Status out of the current function.
#define M3_RETURN_IF_ERROR(expr)                      \
  do {                                                \
    ::m3::util::Status m3_status_macro_tmp = (expr);  \
    if (!m3_status_macro_tmp.ok()) {                  \
      return m3_status_macro_tmp;                     \
    }                                                 \
  } while (false)

#endif  // M3_UTIL_STATUS_H_
