#ifndef M3_UTIL_LOGGING_H_
#define M3_UTIL_LOGGING_H_

#include <cstdarg>

namespace m3::util {

/// \brief Severity levels for the process-wide logger.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

/// \brief Sets the minimum severity that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// \brief Returns the current minimum severity.
LogLevel GetLogLevel();

/// \brief printf-style log sink; prefer the M3_LOG_* macros.
///
/// Writes `[LEVEL] file:line message` to stderr. kFatal messages abort the
/// process after logging.
void LogMessage(LogLevel level, const char* file, int line, const char* fmt,
                ...) __attribute__((format(printf, 4, 5)));

}  // namespace m3::util

#define M3_LOG_DEBUG(...)                                                \
  ::m3::util::LogMessage(::m3::util::LogLevel::kDebug, __FILE__, __LINE__, \
                         __VA_ARGS__)
#define M3_LOG_INFO(...)                                                \
  ::m3::util::LogMessage(::m3::util::LogLevel::kInfo, __FILE__, __LINE__, \
                         __VA_ARGS__)
#define M3_LOG_WARN(...)                                                \
  ::m3::util::LogMessage(::m3::util::LogLevel::kWarn, __FILE__, __LINE__, \
                         __VA_ARGS__)
#define M3_LOG_ERROR(...)                                                \
  ::m3::util::LogMessage(::m3::util::LogLevel::kError, __FILE__, __LINE__, \
                         __VA_ARGS__)
#define M3_LOG_FATAL(...)                                                \
  ::m3::util::LogMessage(::m3::util::LogLevel::kFatal, __FILE__, __LINE__, \
                         __VA_ARGS__)

/// Internal consistency check that stays enabled in release builds.
#define M3_CHECK(cond, ...)     \
  do {                          \
    if (!(cond)) {              \
      M3_LOG_FATAL(__VA_ARGS__); \
    }                           \
  } while (false)

#endif  // M3_UTIL_LOGGING_H_
