#ifndef M3_UTIL_JSON_H_
#define M3_UTIL_JSON_H_

#include <string>
#include <string_view>

#include "util/result.h"

namespace m3::util {

/// \brief Escapes `s` as the contents of a JSON string literal.
///
/// Quotes, backslashes, and control characters (U+0000..U+001F) become
/// escape sequences; everything else (including multi-byte UTF-8) passes
/// through unchanged. The result does NOT include the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// \brief Renders a finite double as a JSON number.
///
/// JSON has no NaN or Infinity; a reporter that interpolates them silently
/// produces a file no parser accepts, so they are rejected here with
/// InvalidArgument instead of discovered later in CI.
Result<std::string> JsonNumber(double value);

}  // namespace m3::util

#endif  // M3_UTIL_JSON_H_
