#ifndef M3_UTIL_JSON_H_
#define M3_UTIL_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"

namespace m3::util {

/// \brief Escapes `s` as the contents of a JSON string literal.
///
/// Quotes, backslashes, and control characters (U+0000..U+001F) become
/// escape sequences; everything else (including multi-byte UTF-8) passes
/// through unchanged. The result does NOT include the surrounding quotes.
std::string JsonEscape(std::string_view s);

/// \brief Renders a finite double as a JSON number.
///
/// JSON has no NaN or Infinity; a reporter that interpolates them silently
/// produces a file no parser accepts, so they are rejected here with
/// InvalidArgument instead of discovered later in CI.
Result<std::string> JsonNumber(double value);

/// \brief A parsed JSON value (the read side of this module).
///
/// Deliberately a plain tagged struct rather than a variant hierarchy: the
/// consumers (tools/trace_summarize, trace-validity tests, bench-JSON
/// checks) walk small documents once and want direct access, not visitor
/// machinery. Object members preserve insertion order; duplicate keys are
/// kept as written (Find returns the first).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// The member's number when present and numeric, else `fallback`.
  double NumberOr(std::string_view key, double fallback) const;

  /// The member's string when present and a string, else `fallback`.
  std::string_view StringOr(std::string_view key,
                            std::string_view fallback) const;
};

/// \brief Parses one complete JSON document (RFC 8259).
///
/// Strict: trailing garbage, unterminated structures, bad escapes, and
/// non-finite numbers are InvalidArgument with a byte offset in the
/// message. `\uXXXX` escapes are decoded to UTF-8 (surrogate pairs
/// included). Nesting is capped (shared limit for arrays and objects) so a
/// hostile input cannot overflow the parse stack.
Result<JsonValue> JsonParse(std::string_view text);

}  // namespace m3::util

#endif  // M3_UTIL_JSON_H_
