#ifndef M3_UTIL_RESULT_H_
#define M3_UTIL_RESULT_H_

#include <cstdlib>
#include <utility>
#include <variant>

#include "util/logging.h"
#include "util/status.h"

namespace m3::util {

/// \brief Either a value of type T or an error Status.
///
/// The library-wide return type for fallible functions that produce a value
/// (Arrow's `Result<T>` idiom). A Result is never "empty": it holds exactly
/// one of a T or a non-OK Status. Constructing a Result from an OK Status is
/// a programming error and is converted to an Internal error.
/// [[nodiscard]]: dropping a Result drops both the value and the error
/// (see util/status.h for the policy and M3_IGNORE_STATUS).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit to allow `return value;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status (implicit to allow `return status;`).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// \pre ok()
  const T& value() const& {
    CheckOk();
    return std::get<T>(payload_);
  }

  /// \pre ok()
  T& value() & {
    CheckOk();
    return std::get<T>(payload_);
  }

  /// \pre ok()
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value or aborts with the error message. Test/example use.
  T ValueOrDie() && {
    if (!ok()) {
      M3_LOG_FATAL("Result::ValueOrDie on error: %s",
                   status().ToString().c_str());
    }
    return std::get<T>(std::move(payload_));
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      M3_LOG_FATAL("Result::value on error: %s", status().ToString().c_str());
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace m3::util

/// Unwraps a Result into `lhs`, propagating an error Status outward.
/// Usage: `M3_ASSIGN_OR_RETURN(auto file, File::Open(path));`
#define M3_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) {                               \
    return tmp.status();                         \
  }                                              \
  lhs = std::move(tmp).value()

#define M3_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define M3_ASSIGN_OR_RETURN_NAME(a, b) M3_ASSIGN_OR_RETURN_CONCAT(a, b)
#define M3_ASSIGN_OR_RETURN(lhs, expr)                                    \
  M3_ASSIGN_OR_RETURN_IMPL(M3_ASSIGN_OR_RETURN_NAME(m3_result_, __LINE__), \
                           lhs, expr)

#endif  // M3_UTIL_RESULT_H_
