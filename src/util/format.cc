#include "util/format.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace m3::util {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    // vsnprintf writes the NUL one past the requested length, so format into
    // a buffer with room for it.
    std::vsnprintf(out.data(), static_cast<size_t>(needed) + 1, fmt,
                   args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  if (bytes < 1024) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string HumanDuration(double seconds) {
  if (seconds < 0) {
    std::string out = "-";
    out += HumanDuration(-seconds);
    return out;
  }
  if (seconds < 1e-3) {
    return StrFormat("%.1f us", seconds * 1e6);
  }
  if (seconds < 1.0) {
    return StrFormat("%.1f ms", seconds * 1e3);
  }
  if (seconds < 120.0) {
    return StrFormat("%.2f s", seconds);
  }
  const int64_t whole = static_cast<int64_t>(seconds);
  return StrFormat("%lldm%02llds", static_cast<long long>(whole / 60),
                   static_cast<long long>(whole % 60));
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StrTrim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

Result<int64_t> ParseInt64(std::string_view text) {
  std::string buf(StrTrim(text));
  if (buf.empty()) {
    return Status::InvalidArgument("empty integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view text) {
  std::string buf(StrTrim(text));
  if (buf.empty()) {
    return Status::InvalidArgument("empty number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("number out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: " + buf);
  }
  return value;
}

Result<bool> ParseBool(std::string_view text) {
  std::string buf(StrTrim(text));
  for (char& c : buf) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (buf == "true" || buf == "1" || buf == "yes" || buf == "on") {
    return true;
  }
  if (buf == "false" || buf == "0" || buf == "no" || buf == "off") {
    return false;
  }
  return Status::InvalidArgument("not a boolean: " + buf);
}

Result<uint64_t> ParseSizeBytes(std::string_view text) {
  std::string buf(StrTrim(text));
  if (buf.empty()) {
    return Status::InvalidArgument("empty size");
  }
  uint64_t multiplier = 1;
  char last = static_cast<char>(
      std::tolower(static_cast<unsigned char>(buf.back())));
  if (last == 'k' || last == 'm' || last == 'g' || last == 't') {
    switch (last) {
      case 'k':
        multiplier = 1ULL << 10;
        break;
      case 'm':
        multiplier = 1ULL << 20;
        break;
      case 'g':
        multiplier = 1ULL << 30;
        break;
      case 't':
        multiplier = 1ULL << 40;
        break;
    }
    buf.pop_back();
  }
  M3_ASSIGN_OR_RETURN(int64_t value, ParseInt64(buf));
  if (value < 0) {
    return Status::InvalidArgument("negative size: " + buf);
  }
  return static_cast<uint64_t>(value) * multiplier;
}

}  // namespace m3::util
