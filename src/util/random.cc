#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace m3::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  // xoshiro256++ (Blackman & Vigna).
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  M3_CHECK(n > 0, "UniformInt(n) requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t value;
  do {
    value = Next();
  } while (value >= limit);
  return value % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  M3_CHECK(lo <= hi, "UniformInt(lo, hi) requires lo <= hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller on (0, 1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace m3::util
