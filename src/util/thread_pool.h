#ifndef M3_UTIL_THREAD_POOL_H_
#define M3_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace m3::util {

/// \brief Fixed-size worker pool executing submitted closures FIFO.
///
/// Used by the parallel linear-algebra kernels and by the cluster simulator
/// (one pool per simulated instance). Destruction drains remaining work.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Blocks until all queued work has completed, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> fn);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutting_down_ = false;
};

/// \brief Process-wide pool sized to the hardware concurrency.
///
/// Lazily constructed on first use; shared by parallel kernels so that
/// nested parallel sections do not oversubscribe the machine.
ThreadPool& GlobalThreadPool();

/// \brief Runs fn(begin..end) partitioned across the pool in contiguous
/// blocks of at least `grain` iterations.
///
/// `fn` receives a half-open range [chunk_begin, chunk_end). Blocks until
/// every chunk has completed. Executes inline when the range is small or the
/// pool has a single worker.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 ThreadPool* pool = nullptr);

/// \brief Deterministic partition of [begin, end) into at most
/// `max_chunks` contiguous blocks of at least `grain` iterations.
///
/// ParallelFor uses exactly this partition, so callers that need
/// per-chunk state (e.g. floating-point reductions merged in a fixed
/// order) can size a slot array with it.
std::vector<std::pair<size_t, size_t>> PartitionRange(size_t begin,
                                                      size_t end,
                                                      size_t grain,
                                                      size_t max_chunks);

/// \brief ParallelFor variant passing the chunk index:
/// fn(chunk_index, chunk_begin, chunk_end).
///
/// Chunk indices are dense in [0, PartitionRange(...).size()). Reductions
/// that write per-chunk partials into slot `chunk_index` and merge slots
/// sequentially afterwards are bitwise deterministic for a fixed pool
/// size, regardless of worker scheduling.
void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn,
    ThreadPool* pool = nullptr);

}  // namespace m3::util

#endif  // M3_UTIL_THREAD_POOL_H_
