#ifndef M3_UTIL_TABLE_PRINTER_H_
#define M3_UTIL_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace m3::util {

/// \brief Accumulates rows and renders an aligned text table or CSV.
///
/// Used by the benchmark harnesses to print paper-style result rows. All
/// cells are strings; numeric formatting is the caller's responsibility
/// (see StrFormat).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with aligned columns and a header separator line.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing comma/quote are quoted).
  std::string ToCsv() const;

  /// Convenience: writes ToText() (or ToCsv() when `csv`) to `out`.
  void Print(FILE* out, bool csv = false) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m3::util

#endif  // M3_UTIL_TABLE_PRINTER_H_
