#include "util/json.h"

#include <cmath>

#include "util/format.h"
#include "util/status.h"

namespace m3::util {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<std::string> JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        StrFormat("non-finite value %f is not representable in JSON", value));
  }
  return StrFormat("%.6f", value);
}

}  // namespace m3::util
