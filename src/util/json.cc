#include "util/json.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "util/format.h"
#include "util/status.h"

namespace m3::util {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", static_cast<unsigned>(
                                          static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

Result<std::string> JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return Status::InvalidArgument(
        StrFormat("non-finite value %f is not representable in JSON", value));
  }
  return StrFormat("%.6f", value);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_number() ? value->number_value
                                                : fallback;
}

std::string_view JsonValue::StringOr(std::string_view key,
                                     std::string_view fallback) const {
  const JsonValue* value = Find(key);
  return value != nullptr && value->is_string()
             ? std::string_view(value->string_value)
             : fallback;
}

namespace {

/// Recursive-descent JSON reader over a string_view.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    M3_RETURN_IF_ERROR(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  // Deep enough for any document this repo emits, shallow enough that a
  // hostile "[[[[..." cannot overflow the call stack.
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(StrFormat("expected '%c'", c));
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        M3_RETURN_IF_ERROR(ExpectLiteral("true"));
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Status::OK();
      case 'f':
        M3_RETURN_IF_ERROR(ExpectLiteral("false"));
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Status::OK();
      case 'n':
        M3_RETURN_IF_ERROR(ExpectLiteral("null"));
        out->type = JsonValue::Type::kNull;
        return Status::OK();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          out->type = JsonValue::Type::kNumber;
          return ParseNumber(&out->number_value);
        }
        return Error(StrFormat("unexpected character '%c'", c));
    }
  }

  Status ExpectLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error(StrFormat("expected '%.*s'",
                             static_cast<int>(literal.size()),
                             literal.data()));
    }
    pos_ += literal.size();
    return Status::OK();
  }

  Status ParseObject(JsonValue* out, int depth) {
    M3_RETURN_IF_ERROR(Expect('{'));
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) {
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      M3_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      M3_RETURN_IF_ERROR(Expect(':'));
      JsonValue value;
      M3_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) {
        return Status::OK();
      }
      M3_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    M3_RETURN_IF_ERROR(Expect('['));
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) {
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      M3_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) {
        return Status::OK();
      }
      M3_RETURN_IF_ERROR(Expect(','));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t code_point, std::string* out) {
    if (code_point < 0x80) {
      out->push_back(static_cast<char>(code_point));
    } else if (code_point < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else if (code_point < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    M3_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::OK();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code_point = 0;
          M3_RETURN_IF_ERROR(ParseHex4(&code_point));
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            M3_RETURN_IF_ERROR(ParseHex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            code_point = 0x10000 + ((code_point - 0xD800) << 10) +
                         (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(code_point, out);
          break;
        }
        default:
          return Error(StrFormat("bad escape '\\%c'", esc));
      }
    }
  }

  Status ParseNumber(double* out) {
    const size_t begin = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Error("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("malformed fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("malformed exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The slice is a valid JSON number grammar-wise; strtod on a NUL-padded
    // copy converts it (string_view data is not NUL-terminated).
    const std::string slice(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double value = std::strtod(slice.c_str(), &end);
    if (end != slice.c_str() + slice.size()) {
      return Error("malformed number");
    }
    if (!std::isfinite(value)) {
      return Error("number out of double range");
    }
    *out = value;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> JsonParse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace m3::util
