#include "util/thread_pool.h"

#include <algorithm>

namespace m3::util {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
  return future;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutting_down_ and no work left.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

ThreadPool& GlobalThreadPool() {
  static ThreadPool* pool =
      new ThreadPool(std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

std::vector<std::pair<size_t, size_t>> PartitionRange(size_t begin,
                                                      size_t end,
                                                      size_t grain,
                                                      size_t max_chunks) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (begin >= end) {
    return ranges;
  }
  grain = std::max<size_t>(1, grain);
  max_chunks = std::max<size_t>(1, max_chunks);
  const size_t total = end - begin;
  const size_t grain_chunks = (total + grain - 1) / grain;
  const size_t num_chunks = std::min(grain_chunks, max_chunks);
  const size_t chunk = (total + num_chunks - 1) / num_chunks;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) {
      break;
    }
    ranges.emplace_back(lo, hi);
  }
  return ranges;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 ThreadPool* pool) {
  ParallelForIndexed(
      begin, end, grain,
      [&fn](size_t, size_t lo, size_t hi) { fn(lo, hi); }, pool);
}

void ParallelForIndexed(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn,
    ThreadPool* pool) {
  if (begin >= end) {
    return;
  }
  if (pool == nullptr) {
    pool = &GlobalThreadPool();
  }
  const auto ranges = PartitionRange(begin, end, grain, pool->num_threads());
  if (ranges.size() == 1) {
    fn(0, ranges[0].first, ranges[0].second);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  for (size_t c = 0; c < ranges.size(); ++c) {
    const auto [lo, hi] = ranges[c];
    futures.push_back(pool->Submit([&fn, c, lo, hi] { fn(c, lo, hi); }));
  }
  for (auto& future : futures) {
    future.get();
  }
}

}  // namespace m3::util
