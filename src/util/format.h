#ifndef M3_UTIL_FORMAT_H_
#define M3_UTIL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace m3::util {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief "1.50 GiB", "640.00 KiB", "17 B" — binary units.
std::string HumanBytes(uint64_t bytes);

/// \brief "1.2 us", "35.0 ms", "2.50 s", "4m12s" — adaptive units.
std::string HumanDuration(double seconds);

/// \brief Splits on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// \brief True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// \brief Strict integer parse of the full string (base 10).
Result<int64_t> ParseInt64(std::string_view text);

/// \brief Strict floating-point parse of the full string.
Result<double> ParseDouble(std::string_view text);

/// \brief Parses "true/false/1/0/yes/no" (case-insensitive).
Result<bool> ParseBool(std::string_view text);

/// \brief Parses a size with optional suffix: "64", "64k", "8m", "2g"
/// (binary multipliers), returning bytes.
Result<uint64_t> ParseSizeBytes(std::string_view text);

}  // namespace m3::util

#endif  // M3_UTIL_FORMAT_H_
