#ifndef M3_UTIL_SYS_INFO_H_
#define M3_UTIL_SYS_INFO_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace m3::util {

/// \brief Size of a virtual-memory page in bytes (usually 4096).
size_t PageSize();

/// \brief Total physical RAM in bytes.
uint64_t TotalRamBytes();

/// \brief Physical RAM currently available (free + reclaimable), in bytes.
uint64_t AvailableRamBytes();

/// \brief Number of online logical CPUs.
size_t NumCpus();

/// \brief Rounds `bytes` up to a whole number of pages.
size_t RoundUpToPageSize(size_t bytes);

/// \brief One-line description: CPUs, RAM, page size. For bench headers.
std::string SysInfoString();

}  // namespace m3::util

#endif  // M3_UTIL_SYS_INFO_H_
