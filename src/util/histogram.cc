#include "util/histogram.h"

#include <algorithm>
#include <cmath>

#include "util/format.h"
#include "util/logging.h"

namespace m3::util {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

Histogram::Histogram() {
  // Bounds from 1e-9 growing by 1.5x; ~70 buckets spans > 1e12 range.
  double limit = 1e-9;
  while (limit < 1e3) {
    bucket_limits_.push_back(limit);
    limit *= 1.5;
  }
  bucket_limits_.push_back(std::numeric_limits<double>::infinity());
  buckets_.assign(bucket_limits_.size(), 0);
}

size_t Histogram::BucketIndex(double value) const {
  // First bucket whose upper bound exceeds the value.
  auto it =
      std::upper_bound(bucket_limits_.begin(), bucket_limits_.end(), value);
  if (it == bucket_limits_.end()) {
    return bucket_limits_.size() - 1;
  }
  return static_cast<size_t>(it - bucket_limits_.begin());
}

void Histogram::Add(double value) {
  value = std::max(0.0, value);
  ++buckets_[BucketIndex(value)];
  stats_.Add(value);
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  stats_ = RunningStats();
}

double Histogram::Percentile(double p) const {
  if (count() == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count());
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : bucket_limits_[i - 1];
      double upper = bucket_limits_[i];
      if (!std::isfinite(upper)) {
        upper = max();
      }
      // Interpolate within the bucket.
      const uint64_t in_bucket = buckets_[i];
      const double before = static_cast<double>(cumulative - in_bucket);
      const double frac =
          in_bucket == 0
              ? 0.0
              : (rank - before) / static_cast<double>(in_bucket);
      return std::clamp(lower + frac * (upper - lower), min(), max());
    }
  }
  return max();
}

std::string Histogram::ToString() const {
  return StrFormat(
      "count=%llu mean=%.6g stddev=%.6g min=%.6g p50=%.6g p95=%.6g p99=%.6g "
      "max=%.6g",
      static_cast<unsigned long long>(count()), mean(), StdDev(), min(),
      Percentile(50), Percentile(95), Percentile(99), max());
}

void Histogram::Merge(const Histogram& other) {
  M3_CHECK(buckets_.size() == other.buckets_.size(),
           "histogram layout mismatch");
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  stats_.Merge(other.stats_);
}

}  // namespace m3::util
