#include "io/platform.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "io/io_stats.h"
#include "util/format.h"
#include "util/sys_info.h"

namespace m3::io {

namespace {

bool ProbeMincore() {
  const size_t bytes = 1 << 20;
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return false;
  }
  std::memset(addr, 1, bytes);
  const size_t pages = bytes / util::PageSize();
  std::vector<unsigned char> residency(pages);
  bool verdict = false;
  if (::mincore(addr, bytes, residency.data()) == 0) {
    size_t before = 0;
    for (unsigned char r : residency) {
      before += r & 1u;
    }
    ::madvise(addr, bytes, MADV_DONTNEED);
    if (::mincore(addr, bytes, residency.data()) == 0) {
      size_t after = 0;
      for (unsigned char r : residency) {
        after += r & 1u;
      }
      verdict = after < before;
    }
  }
  ::munmap(addr, bytes);
  return verdict;
}

bool ProbeRusageFaults() {
  const FaultCounters before = ReadFaultCounters();
  const size_t bytes = 4 << 20;
  void* addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return false;
  }
  volatile char* p = static_cast<char*>(addr);
  for (size_t off = 0; off < bytes; off += util::PageSize()) {
    p[off] = 1;
  }
  ::munmap(addr, bytes);
  const FaultCounters after = ReadFaultCounters();
  return after.minor > before.minor;
}

bool ProbeProcIo() {
  auto before = ReadIoCounters();
  if (!before.ok()) {
    return false;
  }
  // /proc reads are themselves read syscalls; a handful must move syscr.
  for (int i = 0; i < 4; ++i) {
    auto ignored = ReadIoCounters();
    (void)ignored;
  }
  auto after = ReadIoCounters();
  if (!after.ok()) {
    return false;
  }
  return after.value().syscr > before.value().syscr;
}

}  // namespace

std::string PlatformCapabilities::ToString() const {
  return util::StrFormat(
      "mincore_tracks_eviction=%d rusage_tracks_faults=%d "
      "proc_io_counters_live=%d",
      mincore_tracks_eviction ? 1 : 0, rusage_tracks_faults ? 1 : 0,
      proc_io_counters_live ? 1 : 0);
}

const PlatformCapabilities& GetPlatformCapabilities() {
  static const PlatformCapabilities capabilities = [] {
    PlatformCapabilities caps;
    caps.mincore_tracks_eviction = ProbeMincore();
    caps.rusage_tracks_faults = ProbeRusageFaults();
    caps.proc_io_counters_live = ProbeProcIo();
    return caps;
  }();
  return capabilities;
}

}  // namespace m3::io
