#include "io/prefetch_backend.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "io/io_stats.h"
#include "io/syscall_injection.h"
#include "util/format.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/sys_info.h"
#include "util/thread_pool.h"

#if defined(M3_HAVE_IOURING)
#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#elif __has_include(<liburing/io_uring.h>)
#include <liburing/io_uring.h>
#else
#undef M3_HAVE_IOURING
#endif
#endif

#if defined(M3_HAVE_IOURING)
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace m3::io {

using util::Result;
using util::Status;

std::string_view PrefetchBackendKindToString(PrefetchBackendKind kind) {
  switch (kind) {
    case PrefetchBackendKind::kAuto:
      return "auto";
    case PrefetchBackendKind::kMadvise:
      return "madvise";
    case PrefetchBackendKind::kPread:
      return "pread";
    case PrefetchBackendKind::kUring:
      return "uring";
  }
  return "unknown";
}

Result<PrefetchBackendKind> ParsePrefetchBackendKind(std::string_view name) {
  if (name == "auto") {
    return PrefetchBackendKind::kAuto;
  }
  if (name == "madvise") {
    return PrefetchBackendKind::kMadvise;
  }
  if (name == "pread") {
    return PrefetchBackendKind::kPread;
  }
  if (name == "uring" || name == "io_uring") {
    return PrefetchBackendKind::kUring;
  }
  return Status::InvalidArgument("unknown prefetch backend '" +
                                 std::string(name) +
                                 "' (want auto|madvise|pread|uring)");
}

PrefetchOutcome& PrefetchOutcome::operator+=(const PrefetchOutcome& rhs) {
  submits += rhs.submits;
  completions += rhs.completions;
  fallbacks += rhs.fallbacks;
  return *this;
}

PrefetchBackend::~PrefetchBackend() = default;

Result<PrefetchOutcome> PrefetchBackend::Prefetch(
    const MemoryMappedFile& mapping, uint64_t offset, uint64_t length) {
  if (!mapping.is_mapped()) {
    return Status::FailedPrecondition("prefetch on unmapped region");
  }
  if (offset >= mapping.size() || length == 0) {
    return PrefetchOutcome();  // nothing to bring in
  }
  M3_ASSIGN_OR_RETURN(PrefetchOutcome outcome,
                      DoPrefetch(mapping, offset, length));
  std::lock_guard<std::mutex> lock(mu_);
  totals_ += outcome;
  return outcome;
}

PrefetchOutcome PrefetchBackend::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

namespace {

/// Faults [offset, offset+length) of the mapping in by reading one byte
/// per page. Returns a checksum so the reads cannot be elided.
uint64_t TouchRange(const MemoryMappedFile& mapping, uint64_t offset,
                    uint64_t length) {
  const uint64_t page = util::PageSize();
  const volatile char* bytes = static_cast<const char*>(mapping.data());
  const uint64_t end = std::min(offset + length, mapping.size());
  uint64_t checksum = 0;
  for (uint64_t off = offset; off < end; off += page) {
    checksum += static_cast<uint64_t>(bytes[off]);
  }
  return checksum;
}

// ---------------------------------------------------------------------------
// MadviseBackend
// ---------------------------------------------------------------------------

class MadviseBackend : public PrefetchBackend {
 public:
  PrefetchBackendKind kind() const override {
    return PrefetchBackendKind::kMadvise;
  }
  std::string_view name() const override { return "madvise"; }

 protected:
  Result<PrefetchOutcome> DoPrefetch(const MemoryMappedFile& mapping,
                                     uint64_t offset,
                                     uint64_t length) override {
    PrefetchOutcome outcome;
    outcome.submits = 1;
    // Best effort: a failed WILLNEED only loses overlap, never data.
    if (mapping.Prefetch(offset, length).ok()) {
      outcome.completions = 1;
    }
    return outcome;
  }
};

// ---------------------------------------------------------------------------
// PreadBackend
// ---------------------------------------------------------------------------

class PreadBackend : public PrefetchBackend {
 public:
  explicit PreadBackend(const PrefetchBackendOptions& options)
      : options_(options) {
    if (options_.block_bytes == 0) {
      options_.block_bytes = 1 << 20;
    }
    if (options_.pread_threads >= 2) {
      pool_ = std::make_unique<util::ThreadPool>(options_.pread_threads);
    }
  }

  PrefetchBackendKind kind() const override {
    return PrefetchBackendKind::kPread;
  }
  std::string_view name() const override { return "pread"; }

 protected:
  Result<PrefetchOutcome> DoPrefetch(const MemoryMappedFile& mapping,
                                     uint64_t offset,
                                     uint64_t length) override {
    PrefetchOutcome outcome;
    const uint64_t end = std::min(offset + length, mapping.size());
    if (!mapping.file_backed()) {
      // No descriptor to read from: fault the pages in directly. For
      // anonymous regions this is zero-fill, effectively free.
      TouchRange(mapping, offset, end - offset);
      outcome.submits = outcome.completions = outcome.fallbacks = 1;
      return outcome;
    }
    const int fd = mapping.backing_file().fd();
    std::vector<std::pair<uint64_t, uint64_t>> blocks;  // (offset, length)
    for (uint64_t off = offset; off < end; off += options_.block_bytes) {
      blocks.emplace_back(off, std::min<uint64_t>(options_.block_bytes,
                                                  end - off));
    }
    outcome.submits = blocks.size();
    if (pool_ != nullptr && blocks.size() > 1) {
      std::vector<std::future<void>> pending;
      std::atomic<uint64_t> completed{0};
      pending.reserve(blocks.size());
      // Relaxed: completed is a pure counter; future.get() below is the
      // synchronization point before it is read.
      for (const auto& [off, len] : blocks) {
        pending.push_back(pool_->Submit([fd, off = off, len = len,
                                         &completed] {
          if (ReadBlock(fd, off, len)) {
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        }));
      }
      for (auto& future : pending) {
        future.get();
      }
      // Relaxed: every writer was joined via future.get() above.
      outcome.completions = completed.load(std::memory_order_relaxed);
    } else {
      for (const auto& [off, len] : blocks) {
        if (ReadBlock(fd, off, len)) {
          ++outcome.completions;
        }
      }
    }
    return outcome;
  }

 private:
  /// One block-sized page-cache-warming read; true when fully read.
  static bool ReadBlock(int fd, uint64_t offset, uint64_t length) {
    // The data is discarded — the read's only job is to leave the pages in
    // the page cache so the mapping's later faults are minor. A modest
    // scratch keeps the working set cache-friendly.
    constexpr size_t kScratchBytes = 256 << 10;
    char scratch[8 << 10];
    std::vector<char> heap;
    char* buffer = scratch;
    size_t buffer_bytes = sizeof(scratch);
    if (length > sizeof(scratch)) {
      heap.resize(std::min<uint64_t>(length, kScratchBytes));
      buffer = heap.data();
      buffer_bytes = heap.size();
    }
    uint64_t done = 0;
    while (done < length) {
      const size_t want =
          static_cast<size_t>(std::min<uint64_t>(buffer_bytes, length - done));
      const ssize_t got = internal::Pread(fd, buffer, want,
                                          static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) {
          continue;  // interrupted before transferring anything: retry
        }
        return false;
      }
      if (got == 0) {
        return false;  // EOF mid-block
      }
      done += static_cast<uint64_t>(got);
    }
    return true;
  }

  PrefetchBackendOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
};

// ---------------------------------------------------------------------------
// UringBackend (raw io_uring syscalls; no liburing link dependency)
// ---------------------------------------------------------------------------

#if defined(M3_HAVE_IOURING)

int SysIoUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// A minimal single-issuer io_uring: SQ/CQ rings mapped once, submissions
/// in waves of at most `entries`, every wave fully reaped before the next.
class UringQueue {
 public:
  struct ReadRequest {
    int fd = -1;
    uint64_t offset = 0;
    void* buffer = nullptr;
    unsigned length = 0;
  };

  static std::unique_ptr<UringQueue> Create(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int ring_fd = SysIoUringSetup(entries, &params);
    if (ring_fd < 0) {
      return nullptr;  // ENOSYS/EPERM: kernel too old or uring disabled
    }
    auto queue = std::unique_ptr<UringQueue>(new UringQueue);
    queue->ring_fd_ = ring_fd;
    queue->sq_entries_ = params.sq_entries;
    size_t sq_bytes = params.sq_off.array + params.sq_entries * sizeof(unsigned);
    size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);
    }
    void* sq_ring = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, ring_fd,
                           IORING_OFF_SQ_RING);
    if (sq_ring == MAP_FAILED) {
      return nullptr;
    }
    queue->sq_ring_ptr_ = sq_ring;
    queue->sq_ring_bytes_ = sq_bytes;
    void* cq_ring = sq_ring;
    if (!single_mmap) {
      cq_ring = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (cq_ring == MAP_FAILED) {
        return nullptr;
      }
      queue->cq_ring_ptr_ = cq_ring;
      queue->cq_ring_bytes_ = cq_bytes;
    }
    const size_t sqe_bytes = params.sq_entries * sizeof(io_uring_sqe);
    void* sqe_mem = ::mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (sqe_mem == MAP_FAILED) {
      return nullptr;
    }
    queue->sqe_ptr_ = sqe_mem;
    queue->sqe_bytes_ = sqe_bytes;
    char* sq = static_cast<char*>(sq_ring);
    queue->sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    queue->sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    queue->sq_mask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    queue->sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    char* cq = static_cast<char*>(cq_ring);
    queue->cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    queue->cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    queue->cq_mask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    queue->cqes_ =
        reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    queue->sqes_ = static_cast<io_uring_sqe*>(sqe_mem);
    return queue;
  }

  ~UringQueue() {
    if (sqe_ptr_ != nullptr) {
      ::munmap(sqe_ptr_, sqe_bytes_);
    }
    if (cq_ring_ptr_ != nullptr) {
      ::munmap(cq_ring_ptr_, cq_ring_bytes_);
    }
    if (sq_ring_ptr_ != nullptr) {
      ::munmap(sq_ring_ptr_, sq_ring_bytes_);
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
    }
  }

  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  unsigned entries() const { return sq_entries_; }

  /// Submits `count` (<= entries()) READ SQEs and waits for all their
  /// CQEs. Returns the number of successful completions (res >= 0);
  /// `errno_out` receives the first per-request error, 0 if none, and a
  /// negative syscall failure aborts the wave with 0 completions.
  uint64_t SubmitAndWait(const ReadRequest* reads, unsigned count,
                         int* errno_out) {
    *errno_out = 0;
    unsigned tail = *sq_tail_;  // single issuer: plain read is safe
    const unsigned mask = *sq_mask_;
    for (unsigned i = 0; i < count; ++i) {
      const unsigned index = tail & mask;
      io_uring_sqe* sqe = &sqes_[index];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = IORING_OP_READ;
      sqe->fd = reads[i].fd;
      sqe->addr = reinterpret_cast<uint64_t>(reads[i].buffer);
      sqe->len = reads[i].length;
      sqe->off = reads[i].offset;
      sqe->user_data = i;
      sq_array_[index] = index;
      ++tail;
    }
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
    unsigned reaped = 0;
    uint64_t completed = 0;
    // One enter usually suffices (GETEVENTS waits for the wave), but the
    // kernel may deliver fewer than min_complete on interrupt.
    while (reaped < count) {
      const int rc = SysIoUringEnter(ring_fd_, reaped == 0 ? count : 0,
                                     count - reaped, IORING_ENTER_GETEVENTS);
      if (rc < 0) {
        if (errno == EINTR) {
          continue;
        }
        *errno_out = errno;
        return completed;
      }
      unsigned head = *cq_head_;
      const unsigned cq_mask = *cq_mask_;
      while (head != __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE)) {
        const io_uring_cqe& cqe = cqes_[head & cq_mask];
        if (cqe.res >= 0) {
          ++completed;
        } else if (*errno_out == 0) {
          *errno_out = -cqe.res;
        }
        ++head;
        ++reaped;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
    }
    return completed;
  }

 private:
  UringQueue() = default;

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned* sq_mask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned* cq_mask_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  void* sq_ring_ptr_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ptr_ = nullptr;
  size_t cq_ring_bytes_ = 0;
  void* sqe_ptr_ = nullptr;
  size_t sqe_bytes_ = 0;
};

#endif  // M3_HAVE_IOURING

/// io_uring readahead with graceful degradation: when the ring cannot be
/// created (compiled out, kernel probe fails, sysctl-disabled) or a wave
/// fails outright, every subsequent range is served by an internal
/// PreadBackend and counted as a fallback.
class UringBackend : public PrefetchBackend {
 public:
  explicit UringBackend(const PrefetchBackendOptions& options)
      : options_(options) {
    if (options_.block_bytes == 0) {
      options_.block_bytes = 1 << 20;
    }
    options_.uring_queue_depth = std::max<size_t>(1, options_.uring_queue_depth);
#if defined(M3_HAVE_IOURING)
    if (!options_.force_uring_unavailable) {
      queue_ = UringQueue::Create(
          static_cast<unsigned>(options_.uring_queue_depth));
    }
    if (queue_ != nullptr) {
      const uint64_t page = util::PageSize();
      const size_t block =
          (options_.block_bytes + page - 1) / page * page;  // O_DIRECT-safe
      options_.block_bytes = block;
      buffers_.resize(std::min<size_t>(options_.uring_queue_depth,
                                       queue_->entries()));
      for (auto& buffer : buffers_) {
        void* mem = nullptr;
        if (::posix_memalign(&mem, page, block) != 0) {
          queue_.reset();  // allocation failure: degrade to pread
          buffers_.clear();
          break;
        }
        buffer.reset(static_cast<char*>(mem));
      }
    }
#endif
  }

  ~UringBackend() override {
#if defined(M3_HAVE_IOURING)
    if (direct_fd_ >= 0) {
      ::close(direct_fd_);
    }
#endif
  }

  PrefetchBackendKind kind() const override {
    return PrefetchBackendKind::kUring;
  }
  std::string_view name() const override { return "uring"; }
  bool using_fallback() const override {
#if defined(M3_HAVE_IOURING)
    return queue_ == nullptr;
#else
    return true;
#endif
  }

 protected:
  Result<PrefetchOutcome> DoPrefetch(const MemoryMappedFile& mapping,
                                     uint64_t offset,
                                     uint64_t length) override {
#if defined(M3_HAVE_IOURING)
    if (queue_ != nullptr && mapping.file_backed()) {
      return UringPrefetch(mapping, offset, length);
    }
#endif
    return Fallback(mapping, offset, length);
  }

 private:
  Result<PrefetchOutcome> Fallback(const MemoryMappedFile& mapping,
                                   uint64_t offset, uint64_t length) {
    if (delegate_ == nullptr) {
      // Lazy: the delegate carries a thread pool, which the native uring
      // path never needs.
      delegate_ = std::make_unique<PreadBackend>(options_);
    }
    M3_ASSIGN_OR_RETURN(PrefetchOutcome outcome,
                        delegate_->Prefetch(mapping, offset, length));
    // Every submit of this call was served by the degraded path. Assign,
    // don't add: the delegate's own touch-fallback for anonymous regions
    // already set fallbacks, and double-counting would push fallbacks
    // above submits.
    outcome.fallbacks = outcome.submits;
    return outcome;
  }

#if defined(M3_HAVE_IOURING)
  Result<PrefetchOutcome> UringPrefetch(const MemoryMappedFile& mapping,
                                        uint64_t offset, uint64_t length) {
    PrefetchOutcome outcome;
    uint64_t end = std::min(offset + length, mapping.size());
    int fd = mapping.backing_file().fd();
    if (options_.use_o_direct) {
      const int direct = DirectFdFor(mapping);
      if (direct >= 0) {
        fd = direct;
        // O_DIRECT requires sector-aligned offsets, lengths, and buffers;
        // the buffers are page-aligned already, so align the range too.
        // The rounded-up end may reach past EOF — deliberately NOT clamped
        // back to mapping.size(), which would leave the tail read with an
        // unaligned length (EINVAL, misread as a dead ring). A short read
        // at EOF is legal and counts as a completion.
        const uint64_t page = util::PageSize();
        offset = offset / page * page;
        end = (end + page - 1) / page * page;
      }
    }
    std::vector<UringQueue::ReadRequest> wave;
    wave.reserve(buffers_.size());
    uint64_t next = offset;
    while (next < end) {
      wave.clear();
      for (size_t slot = 0; slot < buffers_.size() && next < end; ++slot) {
        UringQueue::ReadRequest read;
        read.fd = fd;
        read.offset = next;
        read.buffer = buffers_[slot].get();
        read.length = static_cast<unsigned>(
            std::min<uint64_t>(options_.block_bytes, end - next));
        wave.push_back(read);
        next += read.length;
      }
      int error = 0;
      const uint64_t completed = queue_->SubmitAndWait(
          wave.data(), static_cast<unsigned>(wave.size()), &error);
      outcome.submits += wave.size();
      outcome.completions += completed;
      if (completed == 0 && error != 0) {
        // The ring is not doing reads on this kernel/file (e.g. EINVAL for
        // an unsupported opcode, EBADF after a race): degrade permanently
        // and finish the range — and all future ranges — via pread.
        queue_.reset();
        buffers_.clear();
        const uint64_t resume = wave.front().offset;
        M3_ASSIGN_OR_RETURN(PrefetchOutcome rest,
                            Fallback(mapping, resume, end - resume));
        outcome += rest;
        return outcome;
      }
    }
    return outcome;
  }

  /// Opens (and caches) an O_DIRECT descriptor for the mapping's file.
  /// Returns -1 when the filesystem refuses O_DIRECT.
  int DirectFdFor(const MemoryMappedFile& mapping) {
    const std::string& path = mapping.path();
    if (direct_fd_ >= 0 && direct_path_ == path) {
      return direct_fd_;
    }
    if (direct_fd_ >= 0) {
      ::close(direct_fd_);
      direct_fd_ = -1;
    }
    do {
      direct_fd_ = ::open(path.c_str(), O_RDONLY | O_DIRECT | O_CLOEXEC);
    } while (direct_fd_ < 0 && errno == EINTR);
    direct_path_ = direct_fd_ >= 0 ? path : std::string();
    return direct_fd_;
  }

  std::unique_ptr<UringQueue> queue_;
  struct FreeDeleter {
    void operator()(char* p) const { std::free(p); }
  };
  std::vector<std::unique_ptr<char, FreeDeleter>> buffers_;
  int direct_fd_ = -1;
  std::string direct_path_;
#endif  // M3_HAVE_IOURING

  PrefetchBackendOptions options_;
  /// Created on first Fallback() call (single-threaded driver, see the
  /// interface's thread model); null while the native path serves.
  std::unique_ptr<PreadBackend> delegate_;
};

// ---------------------------------------------------------------------------
// Probe + auto resolution
// ---------------------------------------------------------------------------

std::mutex& ProbeMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::optional<PrefetchProbeResult>& ProbeCache() {
  static std::optional<PrefetchProbeResult>* cache =
      new std::optional<PrefetchProbeResult>;
  return *cache;
}

}  // namespace

bool UringCompiledIn() {
#if defined(M3_HAVE_IOURING)
  return true;
#else
  return false;
#endif
}

bool UringAvailable() {
#if defined(M3_HAVE_IOURING)
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(2, &params);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    return true;
  }();
  return available;
#else
  return false;
#endif
}

std::unique_ptr<PrefetchBackend> MakePrefetchBackend(
    PrefetchBackendKind kind, PrefetchBackendOptions options,
    const MemoryMappedFile* probe_mapping) {
  if (kind == PrefetchBackendKind::kAuto) {
    kind = ResolveAutoPrefetchBackend(probe_mapping);
  }
  switch (kind) {
    case PrefetchBackendKind::kMadvise:
      return std::make_unique<MadviseBackend>();
    case PrefetchBackendKind::kPread:
      return std::make_unique<PreadBackend>(options);
    case PrefetchBackendKind::kUring:
      return std::make_unique<UringBackend>(options);
    case PrefetchBackendKind::kAuto:
      break;  // unreachable: resolved above
  }
  return std::make_unique<MadviseBackend>();
}

std::string PrefetchProbeResult::ToString() const {
  return util::StrFormat(
      "willneed %s (advised read %.1f ms vs cold %.1f ms) -> %s",
      willneed_effective ? "effective" : "NO-OP",
      advised_read_seconds * 1e3, cold_read_seconds * 1e3,
      std::string(PrefetchBackendKindToString(recommended)).c_str());
}

PrefetchProbeResult ProbePrefetchEfficacy(const MemoryMappedFile& mapping) {
  {
    std::lock_guard<std::mutex> lock(ProbeMutex());
    if (ProbeCache().has_value()) {
      return *ProbeCache();
    }
  }
  PrefetchProbeResult result;
  // The probe's evictions and faulting reads are measurement plumbing, not
  // workload: restore the process-wide counters afterwards so bench JSON
  // reflects only the measured pass (RamBudgetEmulator evictions included).
  const ExecCounters saved = GlobalExecCounters();
  if (mapping.is_mapped() && mapping.file_backed() && mapping.size() > 0) {
    const uint64_t page = util::PageSize();
    const uint64_t window =
        std::max(page, std::min<uint64_t>(mapping.size(), 8ull << 20)) / page *
        page;
    // Cold reference: evict, then time the faulting read with readahead
    // suppressed so each page fault is honest.
    M3_IGNORE_STATUS(mapping.Advise(Advice::kRandom), "advisory madvise");
    M3_IGNORE_STATUS(mapping.Evict(0, window), "best-effort evict");
    util::Stopwatch cold;
    TouchRange(mapping, 0, window);
    result.cold_read_seconds = cold.ElapsedSeconds();
    // Advised: evict again, issue WILLNEED, give the kernel a moment to
    // start I/O, then time the same faulting read. If WILLNEED works the
    // pages arrive before (or while) the read walks them.
    M3_IGNORE_STATUS(mapping.Evict(0, window), "best-effort evict");
    M3_IGNORE_STATUS(mapping.Prefetch(0, window), "probe warm-up only");
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    uint64_t resident = 0;
    if (auto count = mapping.CountResidentPages(0, window); count.ok()) {
      resident = count.value();
    }
    util::Stopwatch advised;
    TouchRange(mapping, 0, window);
    result.advised_read_seconds = advised.ElapsedSeconds();
    M3_IGNORE_STATUS(mapping.Advise(Advice::kNormal), "advisory madvise");
    // Two independent signals: pages visibly resident after the advise, or
    // the advised read measurably outrunning the cold one. Either proves
    // WILLNEED moved bytes. (When eviction itself is a no-op — some
    // sandboxes — both reads are warm and the ratio test reports
    // "effective": correct, since prefetch cost is then irrelevant.)
    const uint64_t window_pages = window / page;
    const bool visibly_resident = resident >= window_pages / 2;
    const bool measurably_faster =
        result.cold_read_seconds > 0 &&
        result.advised_read_seconds < 0.6 * result.cold_read_seconds;
    result.willneed_effective = visibly_resident || measurably_faster;
  } else {
    // Nothing meaningful to probe (anonymous or unmapped region): WILLNEED
    // on anonymous memory has no disk to overlap, keep the default.
    result.willneed_effective = true;
  }
  result.recommended = result.willneed_effective
                           ? PrefetchBackendKind::kMadvise
                           : (UringAvailable() ? PrefetchBackendKind::kUring
                                               : PrefetchBackendKind::kPread);
  SetExecCounters(saved);
  std::lock_guard<std::mutex> lock(ProbeMutex());
  if (!ProbeCache().has_value()) {
    ProbeCache() = result;
  }
  return *ProbeCache();
}

PrefetchBackendKind ResolveAutoPrefetchBackend(
    const MemoryMappedFile* mapping) {
  {
    std::lock_guard<std::mutex> lock(ProbeMutex());
    if (ProbeCache().has_value()) {
      return ProbeCache()->recommended;
    }
  }
  if (mapping == nullptr) {
    return PrefetchBackendKind::kMadvise;  // nothing to probe against
  }
  return ProbePrefetchEfficacy(*mapping).recommended;
}

void ResetPrefetchProbeCacheForTesting() {
  std::lock_guard<std::mutex> lock(ProbeMutex());
  ProbeCache().reset();
}

}  // namespace m3::io
