#ifndef M3_IO_FILE_H_
#define M3_IO_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace m3::io {

/// \brief RAII wrapper around a POSIX file descriptor.
///
/// Move-only. All operations return Status/Result; no exceptions. Offsets
/// use pread/pwrite so a File can be shared across threads for positional
/// I/O.
class File {
 public:
  /// An empty File that owns nothing.
  File() = default;

  /// Opens an existing file for reading.
  static util::Result<File> OpenReadOnly(const std::string& path);

  /// Opens (or creates, truncating) a file for reading and writing.
  static util::Result<File> CreateTruncate(const std::string& path);

  /// Opens an existing file for reading and writing.
  static util::Result<File> OpenReadWrite(const std::string& path);

  ~File();
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  /// Size of the file in bytes (fstat).
  util::Result<uint64_t> Size() const;

  /// Reads exactly `length` bytes at `offset`; IoError on short read/EOF.
  util::Status ReadExactAt(uint64_t offset, void* buffer, size_t length) const;

  /// Writes exactly `length` bytes at `offset`.
  util::Status WriteExactAt(uint64_t offset, const void* buffer,
                            size_t length) const;

  /// Grows or shrinks the file to `size` bytes (ftruncate).
  util::Status Resize(uint64_t size) const;

  /// Flushes data and metadata to stable storage (fsync).
  util::Status Sync() const;

  /// Drops this file's clean pages from the OS page cache
  /// (posix_fadvise(POSIX_FADV_DONTNEED)). Used by cold-cache benchmarks.
  util::Status DropCache() const;

  /// Hints the kernel about the expected access pattern
  /// (posix_fadvise SEQUENTIAL/RANDOM/...).
  util::Status AdviseSequential() const;
  util::Status AdviseRandom() const;

  /// Closes the descriptor early; subsequent operations fail. Idempotent:
  /// the fd is forgotten before close(2)'s verdict is known, so a second
  /// Close() is a no-op (never a close on a possibly-reused descriptor),
  /// even after a failed close.
  util::Status Close();

 private:
  File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

/// \brief True if a filesystem entry exists at `path`.
bool FileExists(const std::string& path);

/// \brief Size of the file at `path` in bytes.
util::Result<uint64_t> FileSize(const std::string& path);

/// \brief Deletes the file at `path` (OK if absent is false -> NotFound).
util::Status RemoveFile(const std::string& path);

/// \brief Creates directory `path` (and parents). OK if it already exists.
util::Status MakeDirs(const std::string& path);

/// \brief Writes `contents` to `path` atomically enough for tests/tools.
util::Status WriteStringToFile(const std::string& path,
                               const std::string& contents);

/// \brief Reads the whole file at `path` into a string.
util::Result<std::string> ReadFileToString(const std::string& path);

}  // namespace m3::io

#endif  // M3_IO_FILE_H_
