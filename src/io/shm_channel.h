#ifndef M3_IO_SHM_CHANNEL_H_
#define M3_IO_SHM_CHANNEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace m3::io {

/// \brief Fork-shared control block + result slots for a one-parent,
/// N-worker process fleet (cluster::ProcessFleet).
///
/// Layout: one anonymous MAP_SHARED mapping created BEFORE fork, so parent
/// and every worker address the same physical pages:
///
///   [ control block: job_seq, job_kind, payload_len, per-worker done ]
///   [ broadcast region (parent -> all workers): job payload          ]
///   [ worker 0 slot: result_len, result bytes ... stats bytes        ]
///   [ worker 1 slot: ... ]                                (page-aligned)
///
/// Protocol (single outstanding job, strictly sequenced):
///   - The parent writes the broadcast payload, then PublishJob() stores
///     kind/len and release-increments `job_seq`, then writes one doorbell
///     byte down each worker's command pipe.
///   - A worker blocks in AwaitJob() on its command pipe (EOF = parent
///     died -> exit), acquire-loads the sequence, runs the job, writes its
///     result into its slot, and CompleteJob() release-stores the sequence
///     into its `done` word and writes one byte up its result pipe.
///   - The parent's WaitWorker() polls the worker's result pipe with a
///     deadline: readable -> check done word; POLLHUP/EOF -> the worker
///     died (its pipe write end closed with it); timeout -> the worker
///     hung. Worker death is detected by the kernel closing the pipe — no
///     signal handling, no polling of /proc.
///
/// The parent keeps BOTH ends of every command pipe open, so publishing to
/// a dead worker can never raise SIGPIPE; death is discovered on the wait
/// side. Workers are the only writers of result pipes; the parent closes
/// the write ends it would otherwise hold so a worker's exit produces EOF.
///
/// Sequencing starts at `job_seq == 1`, which doubles as the startup
/// barrier: each worker acks readiness with CompleteJob(seq=1, len=0)
/// before the first real job (seq 2) is published.
///
/// Atomics in the shared mapping are std::atomic<uint64_t>; the layout is
/// process-shared, which these are on every platform this project targets
/// (lock-free 64-bit atomics — asserted at Create()).
class ShmChannel {
 public:
  struct Options {
    size_t num_workers = 0;
    /// Bytes of the parent->worker broadcast region (job payload).
    size_t broadcast_bytes = 0;
    /// Result-slot capacity per worker, bytes (worker i gets
    /// slot_bytes[i]). Sized by the caller for the worst-case job.
    std::vector<size_t> slot_bytes;
  };

  /// Outcome of waiting for one worker's completion.
  enum class Wait {
    kDone,     ///< worker completed the awaited sequence
    kDead,     ///< worker's result pipe hit EOF without completion
    kTimeout,  ///< deadline expired with the worker still running
  };

  /// Job kinds published through the control block. Kind numbers are part
  /// of the parent<->worker protocol, not persisted anywhere.
  static constexpr uint64_t kJobLrGradient = 1;
  static constexpr uint64_t kJobKMeansIteration = 2;
  static constexpr uint64_t kJobShutdown = 3;

  /// Maps the shared block and opens the per-worker pipe pairs. Must be
  /// called before fork(); the object is then shared by inheritance.
  static util::Result<ShmChannel> Create(const Options& options);

  ShmChannel(ShmChannel&& other) noexcept;
  ShmChannel& operator=(ShmChannel&& other) noexcept;
  ShmChannel(const ShmChannel&) = delete;
  ShmChannel& operator=(const ShmChannel&) = delete;
  ~ShmChannel();

  size_t num_workers() const { return num_workers_; }
  size_t broadcast_capacity() const { return broadcast_bytes_; }
  size_t slot_capacity(size_t worker) const { return slot_bytes_[worker]; }

  /// The parent->worker payload region (both sides see the same bytes).
  uint8_t* broadcast() { return broadcast_; }
  const uint8_t* broadcast() const { return broadcast_; }

  /// Worker `worker`'s result region (past its length word).
  uint8_t* slot(size_t worker) { return slots_[worker]; }
  const uint8_t* slot(size_t worker) const { return slots_[worker]; }

  /// \name Parent side.
  /// @{

  /// Publishes a job: stores `kind` and `payload_len` (payload already
  /// written into broadcast()), release-increments the sequence, and rings
  /// every worker's doorbell. Returns the new sequence to wait on.
  uint64_t PublishJob(uint64_t kind, uint64_t payload_len);

  /// Waits until `worker` completes sequence `seq`, dies, or
  /// `deadline_seconds` elapses. Draining the result pipe keeps completion
  /// bytes from accumulating across jobs. A POLLHUP with the completion
  /// already stored still returns kDone (the worker finished, then exited
  /// — e.g. the shutdown ack).
  Wait WaitWorker(size_t worker, uint64_t seq, double deadline_seconds);

  /// Bytes worker `worker` stored for its last completed job.
  uint64_t SlotLen(size_t worker) const;

  /// Closes the parent-held write end of `worker`'s result pipe (call once
  /// per worker after fork, so only the worker holds it and its death
  /// produces EOF).
  void OnParentAfterFork(size_t worker);
  /// @}

  /// \name Worker side (call only in the forked child).
  /// @{

  /// Drops every descriptor worker `worker` must not hold: other workers'
  /// pipes entirely, plus the parent-only ends of its own pair. After
  /// this, the worker owns exactly {its cmd read end, its res write end}.
  void OnWorkerAfterFork(size_t worker);

  /// Blocks until the parent publishes a sequence newer than `last_seen`.
  /// Returns false when the parent died (command pipe EOF) — the worker
  /// should exit. On true, `*seq`, `*kind`, `*payload_len` describe the
  /// published job.
  bool AwaitJob(size_t worker, uint64_t last_seen, uint64_t* seq,
                uint64_t* kind, uint64_t* payload_len);

  /// Stores `result_len`, release-publishes `seq` into the worker's done
  /// word, and rings the parent's result pipe.
  void CompleteJob(size_t worker, uint64_t seq, uint64_t result_len);
  /// @}

 private:
  ShmChannel() = default;

  struct Control;  // shared-page control block (defined in .cc)

  Control* control_ = nullptr;  ///< start of the shared mapping
  void* base_ = nullptr;
  size_t mapped_bytes_ = 0;
  size_t num_workers_ = 0;
  size_t broadcast_bytes_ = 0;
  std::vector<size_t> slot_bytes_;
  uint8_t* broadcast_ = nullptr;
  std::vector<uint8_t*> slots_;
  /// Per-worker descriptor quads: cmd pipe (parent writes, worker reads)
  /// and res pipe (worker writes, parent reads). -1 once closed.
  std::vector<int> cmd_read_, cmd_write_, res_read_, res_write_;

  void CloseAll();
};

}  // namespace m3::io

#endif  // M3_IO_SHM_CHANNEL_H_
