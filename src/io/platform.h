#ifndef M3_IO_PLATFORM_H_
#define M3_IO_PLATFORM_H_

#include <string>

namespace m3::io {

/// \brief What the running kernel actually implements.
///
/// M3 leans on kernel facilities (mincore residency, rusage fault counters,
/// /proc/self/io traffic counters, madvise eviction). Sandboxed or emulated
/// kernels (gVisor, some containers) accept these syscalls but return
/// synthetic data. Each probe below performs a small real experiment once
/// and caches the verdict; callers (tests, the resource monitor, the Fig. 1a
/// harness) degrade to model-based accounting when a facility is faked.
struct PlatformCapabilities {
  /// mincore() reflects page eviction (MADV_DONTNEED drops residency bits).
  bool mincore_tracks_eviction = false;
  /// getrusage() minor-fault counter advances when touching fresh pages.
  bool rusage_tracks_faults = false;
  /// /proc/self/io syscr advances across read syscalls.
  bool proc_io_counters_live = false;

  std::string ToString() const;
};

/// \brief Probes (once, cached) and returns the platform capabilities.
const PlatformCapabilities& GetPlatformCapabilities();

}  // namespace m3::io

#endif  // M3_IO_PLATFORM_H_
