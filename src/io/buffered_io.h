#ifndef M3_IO_BUFFERED_IO_H_
#define M3_IO_BUFFERED_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/file.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::io {

/// \brief Sequential writer with an in-process buffer.
///
/// Used by the dataset generators to stream multi-hundred-MB matrices to
/// disk without one syscall per row. Call Flush()/Close() before relying on
/// file contents.
class BufferedWriter {
 public:
  /// Creates (truncating) `path` with the given buffer capacity.
  static util::Result<BufferedWriter> Create(const std::string& path,
                                             size_t buffer_bytes = 1 << 20);

  BufferedWriter(BufferedWriter&&) = default;
  BufferedWriter& operator=(BufferedWriter&&) = default;
  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  /// Appends `length` bytes.
  util::Status Append(const void* data, size_t length);

  /// Appends a trivially-copyable value.
  template <typename T>
  util::Status AppendValue(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Append(&value, sizeof(T));
  }

  /// Bytes appended so far (buffered + written).
  uint64_t bytes_written() const { return offset_ + buffer_.size(); }

  /// Writes out any buffered bytes.
  util::Status Flush();

  /// Flush + fsync + close. The writer is unusable afterwards.
  /// Flushes, fsyncs, and closes. Idempotent: once the file is closed a
  /// second Close() returns OK instead of failing the flush precondition.
  util::Status Close();

 private:
  BufferedWriter(File file, size_t buffer_bytes) : file_(std::move(file)) {
    buffer_.reserve(buffer_bytes);
    capacity_ = buffer_bytes;
  }

  File file_;
  std::vector<char> buffer_;
  size_t capacity_ = 0;
  uint64_t offset_ = 0;
};

/// \brief Sequential reader with an in-process buffer.
///
/// The streaming (non-mmap) access path: the conventional way to process
/// out-of-core data that M3 replaces. Also used by format parsers.
class BufferedReader {
 public:
  /// Opens `path` with the given buffer capacity.
  static util::Result<BufferedReader> Open(const std::string& path,
                                           size_t buffer_bytes = 1 << 20);

  BufferedReader(BufferedReader&&) = default;
  BufferedReader& operator=(BufferedReader&&) = default;
  BufferedReader(const BufferedReader&) = delete;
  BufferedReader& operator=(const BufferedReader&) = delete;

  /// Reads exactly `length` bytes; IoError on premature EOF.
  util::Status ReadExact(void* out, size_t length);

  /// Reads a trivially-copyable value.
  template <typename T>
  util::Result<T> ReadValue() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    M3_RETURN_IF_ERROR(ReadExact(&value, sizeof(T)));
    return value;
  }

  /// Skips `length` bytes forward.
  util::Status Skip(uint64_t length);

  /// Current read position from the start of the file.
  uint64_t position() const { return consumed_; }

  /// Total file size.
  uint64_t file_size() const { return file_size_; }

  /// True once position() == file_size().
  bool AtEof() const { return consumed_ >= file_size_; }

 private:
  BufferedReader(File file, uint64_t file_size, size_t buffer_bytes)
      : file_(std::move(file)), file_size_(file_size), capacity_(buffer_bytes) {
    buffer_.resize(capacity_);
  }

  // Refills the buffer from the current file offset. Returns bytes now
  // available (0 at EOF).
  util::Result<size_t> Refill();

  File file_;
  uint64_t file_size_ = 0;
  size_t capacity_ = 0;
  std::vector<char> buffer_;
  size_t buffer_pos_ = 0;   // next unread byte in buffer_
  size_t buffer_len_ = 0;   // valid bytes in buffer_
  uint64_t consumed_ = 0;   // total bytes consumed from the file
};

}  // namespace m3::io

#endif  // M3_IO_BUFFERED_IO_H_
