#include "io/buffered_io.h"

#include <algorithm>
#include <cstring>

namespace m3::io {

using util::Result;
using util::Status;

Result<BufferedWriter> BufferedWriter::Create(const std::string& path,
                                              size_t buffer_bytes) {
  if (buffer_bytes == 0) {
    return Status::InvalidArgument("buffer_bytes must be positive");
  }
  M3_ASSIGN_OR_RETURN(File file, File::CreateTruncate(path));
  return BufferedWriter(std::move(file), buffer_bytes);
}

Status BufferedWriter::Append(const void* data, size_t length) {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("append to closed writer");
  }
  const char* src = static_cast<const char*>(data);
  while (length > 0) {
    const size_t room = capacity_ - buffer_.size();
    const size_t take = std::min(room, length);
    buffer_.insert(buffer_.end(), src, src + take);
    src += take;
    length -= take;
    if (buffer_.size() == capacity_) {
      M3_RETURN_IF_ERROR(Flush());
    }
  }
  return Status::OK();
}

Status BufferedWriter::Flush() {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("flush on closed writer");
  }
  if (!buffer_.empty()) {
    M3_RETURN_IF_ERROR(file_.WriteExactAt(offset_, buffer_.data(),
                                          buffer_.size()));
    offset_ += buffer_.size();
    buffer_.clear();
  }
  return Status::OK();
}

Status BufferedWriter::Close() {
  if (!file_.is_open()) {
    // Idempotent: a successful Close released the fd; calling again is a
    // no-op, never a second close(2) on a possibly-reused descriptor.
    return Status::OK();
  }
  M3_RETURN_IF_ERROR(Flush());
  M3_RETURN_IF_ERROR(file_.Sync());
  return file_.Close();
}

Result<BufferedReader> BufferedReader::Open(const std::string& path,
                                            size_t buffer_bytes) {
  if (buffer_bytes == 0) {
    return Status::InvalidArgument("buffer_bytes must be positive");
  }
  M3_ASSIGN_OR_RETURN(File file, File::OpenReadOnly(path));
  M3_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  return BufferedReader(std::move(file), size, buffer_bytes);
}

Result<size_t> BufferedReader::Refill() {
  buffer_pos_ = 0;
  buffer_len_ = 0;
  if (consumed_ >= file_size_) {
    return size_t{0};
  }
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(capacity_, file_size_ - consumed_));
  M3_RETURN_IF_ERROR(file_.ReadExactAt(consumed_, buffer_.data(), want));
  buffer_len_ = want;
  return want;
}

Status BufferedReader::ReadExact(void* out, size_t length) {
  char* dst = static_cast<char*>(out);
  while (length > 0) {
    if (buffer_pos_ == buffer_len_) {
      M3_ASSIGN_OR_RETURN(size_t available, Refill());
      if (available == 0) {
        return Status::IoError("unexpected EOF in " + file_.path());
      }
    }
    const size_t take = std::min(length, buffer_len_ - buffer_pos_);
    std::memcpy(dst, buffer_.data() + buffer_pos_, take);
    buffer_pos_ += take;
    consumed_ += take;
    dst += take;
    length -= take;
  }
  return Status::OK();
}

Status BufferedReader::Skip(uint64_t length) {
  while (length > 0) {
    if (buffer_pos_ == buffer_len_) {
      // Skip whole buffers without reading when possible.
      if (consumed_ + length > file_size_) {
        return Status::OutOfRange("skip beyond EOF in " + file_.path());
      }
      consumed_ += length;
      buffer_pos_ = buffer_len_ = 0;
      return Status::OK();
    }
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(length, buffer_len_ - buffer_pos_));
    buffer_pos_ += take;
    consumed_ += take;
    length -= take;
  }
  return Status::OK();
}

}  // namespace m3::io
