#ifndef M3_IO_SYSCALL_INJECTION_H_
#define M3_IO_SYSCALL_INJECTION_H_

#include <sys/types.h>

/// \file
/// \brief Test seam for the raw syscalls behind the full-transfer loops.
///
/// The EINTR/short-transfer retry loops in io::File and the pread prefetch
/// backend cannot be regression-tested against the real kernel (it will not
/// interrupt a pread on cue), so the loops issue their syscalls through the
/// indirection below. Production behavior is byte-identical to calling the
/// syscall directly; tests install an override that fakes EINTR, short
/// reads, or a failing munmap, then restore the default.
///
/// Overrides are process-global and not thread-safe: install them only from
/// single-threaded test fixtures, and always reset to nullptr before the
/// test ends.

namespace m3::io {

namespace testing {

using PreadFn = ssize_t (*)(int fd, void* buf, size_t count, off_t offset);
using PwriteFn = ssize_t (*)(int fd, const void* buf, size_t count,
                             off_t offset);
using MunmapFn = int (*)(void* addr, size_t length);

/// Installs an override for the pread(2)/pwrite(2)/munmap(2) the io layer's
/// transfer loops issue. nullptr restores the real syscall.
void SetPreadOverride(PreadFn fn);
void SetPwriteOverride(PwriteFn fn);
void SetMunmapOverride(MunmapFn fn);

}  // namespace testing

namespace internal {

/// The syscall (or its installed override). Semantics match the syscall:
/// return count on success, -1 with errno set on failure.
ssize_t Pread(int fd, void* buf, size_t count, off_t offset);
ssize_t Pwrite(int fd, const void* buf, size_t count, off_t offset);
int Munmap(void* addr, size_t length);

}  // namespace internal

}  // namespace m3::io

#endif  // M3_IO_SYSCALL_INJECTION_H_
