#include "io/io_stats.h"

#include <sys/resource.h>
#include <sys/time.h>

#include <atomic>
#include <chrono>
#include <mutex>

#include "io/file.h"
#include "util/format.h"
#include "util/logging.h"

namespace m3::io {

using util::Result;
using util::Status;

IoCounters IoCounters::operator-(const IoCounters& rhs) const {
  IoCounters out;
  out.rchar = rchar - rhs.rchar;
  out.wchar = wchar - rhs.wchar;
  out.syscr = syscr - rhs.syscr;
  out.syscw = syscw - rhs.syscw;
  out.read_bytes = read_bytes - rhs.read_bytes;
  out.write_bytes = write_bytes - rhs.write_bytes;
  return out;
}

std::string IoCounters::ToString() const {
  return util::StrFormat(
      "read=%s write=%s (cached reads=%s) syscalls r/w=%llu/%llu",
      util::HumanBytes(read_bytes).c_str(),
      util::HumanBytes(write_bytes).c_str(), util::HumanBytes(rchar).c_str(),
      static_cast<unsigned long long>(syscr),
      static_cast<unsigned long long>(syscw));
}

Result<IoCounters> ReadIoCounters() {
  M3_ASSIGN_OR_RETURN(std::string text, ReadFileToString("/proc/self/io"));
  IoCounters counters;
  for (const std::string& line : util::StrSplit(text, '\n')) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string key = line.substr(0, colon);
    auto value = util::ParseInt64(line.substr(colon + 1));
    if (!value.ok()) {
      continue;
    }
    const uint64_t v = static_cast<uint64_t>(value.value());
    if (key == "rchar") {
      counters.rchar = v;
    } else if (key == "wchar") {
      counters.wchar = v;
    } else if (key == "syscr") {
      counters.syscr = v;
    } else if (key == "syscw") {
      counters.syscw = v;
    } else if (key == "read_bytes") {
      counters.read_bytes = v;
    } else if (key == "write_bytes") {
      counters.write_bytes = v;
    }
  }
  return counters;
}

ExecCounters ExecCounters::operator-(const ExecCounters& rhs) const {
  ExecCounters out;
  out.passes = passes - rhs.passes;
  out.chunks = chunks - rhs.chunks;
  out.prefetches = prefetches - rhs.prefetches;
  out.prefetch_bytes = prefetch_bytes - rhs.prefetch_bytes;
  out.evictions = evictions - rhs.evictions;
  out.bytes_evicted = bytes_evicted - rhs.bytes_evicted;
  out.prefetch_hits = prefetch_hits - rhs.prefetch_hits;
  out.stalls = stalls - rhs.stalls;
  out.stall_bytes = stall_bytes - rhs.stall_bytes;
  out.prefetch_unclassified = prefetch_unclassified - rhs.prefetch_unclassified;
  out.backend_submits = backend_submits - rhs.backend_submits;
  out.backend_completions = backend_completions - rhs.backend_completions;
  out.backend_fallbacks = backend_fallbacks - rhs.backend_fallbacks;
  return out;
}

std::string ExecCounters::ToString() const {
  return util::StrFormat(
      "passes=%llu chunks=%llu prefetches=%llu (%s) evictions=%llu (%s) "
      "hits=%llu stalls=%llu (%s) warmup=%llu backend s/c/f=%llu/%llu/%llu",
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(prefetches),
      util::HumanBytes(prefetch_bytes).c_str(),
      static_cast<unsigned long long>(evictions),
      util::HumanBytes(bytes_evicted).c_str(),
      static_cast<unsigned long long>(prefetch_hits),
      static_cast<unsigned long long>(stalls),
      util::HumanBytes(stall_bytes).c_str(),
      static_cast<unsigned long long>(prefetch_unclassified),
      static_cast<unsigned long long>(backend_submits),
      static_cast<unsigned long long>(backend_completions),
      static_cast<unsigned long long>(backend_fallbacks));
}

namespace {

std::mutex& ExecCountersMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

ExecCounters& ExecCountersStorage() {
  static ExecCounters* counters = new ExecCounters;
  return *counters;
}

/// In-flight pipeline passes; the epoch guard behind the Reset/Set
/// quiescence contract (io_stats.h).
std::atomic<uint64_t>& ActivePassCount() {
  static std::atomic<uint64_t>* count = new std::atomic<uint64_t>{0};
  return *count;
}

}  // namespace

// Intentionally relaxed: the pass count is a pure occupancy counter — no
// other memory is published through it, and the data it guards against
// (the counter totals) is already ordered by ExecCountersMutex(). Atomic
// RMWs are coherent at every ordering, so the count itself can never tear
// or lose increments; relaxed only forgoes ordering unrelated writes,
// which the quiescence CHECK does not rely on.
ScopedExecCountersPass::ScopedExecCountersPass() {
  ActivePassCount().fetch_add(1, std::memory_order_relaxed);
}

ScopedExecCountersPass::~ScopedExecCountersPass() {
  ActivePassCount().fetch_sub(1, std::memory_order_relaxed);
}

uint64_t ActiveExecCountersPasses() {
  return ActivePassCount().load(std::memory_order_relaxed);
}

void AddExecCounters(const ExecCounters& delta) {
  std::lock_guard<std::mutex> lock(ExecCountersMutex());
  ExecCounters& total = ExecCountersStorage();
  total.passes += delta.passes;
  total.chunks += delta.chunks;
  total.prefetches += delta.prefetches;
  total.prefetch_bytes += delta.prefetch_bytes;
  total.evictions += delta.evictions;
  total.bytes_evicted += delta.bytes_evicted;
  total.prefetch_hits += delta.prefetch_hits;
  total.stalls += delta.stalls;
  total.stall_bytes += delta.stall_bytes;
  total.prefetch_unclassified += delta.prefetch_unclassified;
  total.backend_submits += delta.backend_submits;
  total.backend_completions += delta.backend_completions;
  total.backend_fallbacks += delta.backend_fallbacks;
}

ExecCounters GlobalExecCounters() {
  std::lock_guard<std::mutex> lock(ExecCountersMutex());
  return ExecCountersStorage();
}

void ResetExecCounters() {
  M3_CHECK(ActiveExecCountersPasses() == 0,
           "ResetExecCounters while %llu pipeline pass(es) in flight — "
           "snapshots must wait for quiescence (see io/io_stats.h)",
           static_cast<unsigned long long>(ActiveExecCountersPasses()));
  std::lock_guard<std::mutex> lock(ExecCountersMutex());
  ExecCountersStorage() = ExecCounters();
}

void SetExecCounters(const ExecCounters& value) {
  M3_CHECK(ActiveExecCountersPasses() == 0,
           "SetExecCounters while %llu pipeline pass(es) in flight — "
           "snapshots must wait for quiescence (see io/io_stats.h)",
           static_cast<unsigned long long>(ActiveExecCountersPasses()));
  std::lock_guard<std::mutex> lock(ExecCountersMutex());
  ExecCountersStorage() = value;
}

FaultCounters FaultCounters::operator-(const FaultCounters& rhs) const {
  return FaultCounters{minor - rhs.minor, major - rhs.major};
}

std::string FaultCounters::ToString() const {
  return util::StrFormat("faults minor=%lld major=%lld",
                         static_cast<long long>(minor),
                         static_cast<long long>(major));
}

FaultCounters ReadFaultCounters() {
  struct rusage usage;
  ::getrusage(RUSAGE_SELF, &usage);
  return FaultCounters{usage.ru_minflt, usage.ru_majflt};
}

double ProcessCpuSeconds() {
  struct rusage usage;
  ::getrusage(RUSAGE_SELF, &usage);
  auto to_seconds = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_seconds(usage.ru_utime) + to_seconds(usage.ru_stime);
}

ResourceSample ResourceSample::Now() {
  ResourceSample sample;
  sample.wall_seconds =
      std::chrono::duration<double>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  sample.cpu_seconds = ProcessCpuSeconds();
  auto io = ReadIoCounters();
  if (io.ok()) {
    sample.io = io.value();
  }
  sample.faults = ReadFaultCounters();
  return sample;
}

ResourceSample ResourceSample::operator-(const ResourceSample& rhs) const {
  ResourceSample out;
  out.wall_seconds = wall_seconds - rhs.wall_seconds;
  out.cpu_seconds = cpu_seconds - rhs.cpu_seconds;
  out.io = io - rhs.io;
  out.faults = faults - rhs.faults;
  return out;
}

double ResourceSample::CpuUtilization(size_t num_cpus) const {
  if (wall_seconds <= 0 || num_cpus == 0) {
    return 0.0;
  }
  return cpu_seconds / (wall_seconds * static_cast<double>(num_cpus));
}

double ResourceSample::ReadBandwidth() const {
  if (wall_seconds <= 0) {
    return 0.0;
  }
  return static_cast<double>(io.read_bytes) / wall_seconds;
}

std::string ResourceSample::ToString() const {
  return util::StrFormat("wall=%s cpu=%s %s %s",
                         util::HumanDuration(wall_seconds).c_str(),
                         util::HumanDuration(cpu_seconds).c_str(),
                         io.ToString().c_str(), faults.ToString().c_str());
}

}  // namespace m3::io
