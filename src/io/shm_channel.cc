#include "io/shm_channel.h"

#include <poll.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <new>
#include <utility>

#include "util/stopwatch.h"
#include "util/sys_info.h"

namespace m3::io {

using util::Result;
using util::Status;

/// The shared-page control block. Per-worker words sit on their own cache
/// lines so one worker's completion store never false-shares with
/// another's. A fixed worker array keeps the struct a plain (offset-stable)
/// layout; kMaxWorkers bounds it at ~8 KiB of control pages.
struct ShmChannel::Control {
  static constexpr size_t kMaxWorkers = 64;

  struct PerWorker {
    alignas(64) std::atomic<uint64_t> done_seq{0};
    std::atomic<uint64_t> result_len{0};
  };

  /// Monotonic job sequence. Starts at 1 (the startup barrier each worker
  /// acks); the first published job is 2.
  std::atomic<uint64_t> job_seq{1};
  std::atomic<uint64_t> job_kind{0};
  std::atomic<uint64_t> payload_len{0};
  PerWorker workers[kMaxWorkers];
};

namespace {

size_t AlignUpTo(size_t value, size_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

void CloseFd(int* fd) {
  if (*fd >= 0) {
    ::close(*fd);
    *fd = -1;
  }
}

/// One-byte pipe write with EINTR retry. Other failures (EPIPE with
/// SIGPIPE ignored, a full pipe) are deliberately dropped: a doorbell is a
/// wakeup hint, never the data, and the peer's death is discovered on the
/// wait/await side.
void RingBell(int fd) {
  const char bell = 1;
  ssize_t n;
  do {
    n = ::write(fd, &bell, 1);
  } while (n < 0 && errno == EINTR);
}

/// Drains buffered doorbell bytes; returns false exactly on EOF (peer
/// gone and nothing buffered).
bool DrainBells(int fd) {
  char buf[64];
  ssize_t n;
  do {
    n = ::read(fd, buf, sizeof(buf));
  } while (n < 0 && errno == EINTR);
  return n != 0;
}

}  // namespace

Result<ShmChannel> ShmChannel::Create(const Options& options) {
  if (options.num_workers == 0 ||
      options.num_workers > Control::kMaxWorkers) {
    return Status::InvalidArgument("shm channel needs 1..64 workers");
  }
  if (options.slot_bytes.size() != options.num_workers) {
    return Status::InvalidArgument(
        "shm channel needs one slot size per worker");
  }
  const size_t page = util::PageSize();
  const size_t control_bytes = AlignUpTo(sizeof(Control), page);
  const size_t broadcast_bytes = AlignUpTo(options.broadcast_bytes, page);
  size_t total = control_bytes + broadcast_bytes;
  std::vector<size_t> slot_offsets;
  slot_offsets.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    slot_offsets.push_back(total);
    total += AlignUpTo(options.slot_bytes[w], page);
  }
  // MAP_SHARED is the whole point: MemoryMappedFile::MapAnonymous is
  // MAP_PRIVATE (copy-on-write), which would silently give every forked
  // worker its own detached copy of the control block.
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) {
    return Status::IoErrorFromErrno("mmap shm channel", errno);
  }

  ShmChannel channel;
  channel.base_ = base;
  channel.mapped_bytes_ = total;
  channel.num_workers_ = options.num_workers;
  channel.broadcast_bytes_ = options.broadcast_bytes;
  channel.slot_bytes_ = options.slot_bytes;
  channel.control_ = new (base) Control();
  if (!channel.control_->job_seq.is_lock_free()) {
    // A locking atomic would put a process-private mutex in shared pages.
    return Status::NotSupported("64-bit atomics are not lock-free");
  }
  channel.broadcast_ = static_cast<uint8_t*>(base) + control_bytes;
  channel.slots_.reserve(options.num_workers);
  for (size_t w = 0; w < options.num_workers; ++w) {
    channel.slots_.push_back(static_cast<uint8_t*>(base) + slot_offsets[w]);
  }

  channel.cmd_read_.assign(options.num_workers, -1);
  channel.cmd_write_.assign(options.num_workers, -1);
  channel.res_read_.assign(options.num_workers, -1);
  channel.res_write_.assign(options.num_workers, -1);
  for (size_t w = 0; w < options.num_workers; ++w) {
    int cmd[2];
    int res[2];
    if (::pipe(cmd) != 0) {
      return Status::IoErrorFromErrno("pipe (cmd)", errno);
    }
    channel.cmd_read_[w] = cmd[0];
    channel.cmd_write_[w] = cmd[1];
    if (::pipe(res) != 0) {
      return Status::IoErrorFromErrno("pipe (res)", errno);
    }
    channel.res_read_[w] = res[0];
    channel.res_write_[w] = res[1];
  }
  return channel;
}

ShmChannel::ShmChannel(ShmChannel&& other) noexcept { *this = std::move(other); }

ShmChannel& ShmChannel::operator=(ShmChannel&& other) noexcept {
  if (this != &other) {
    CloseAll();
    control_ = std::exchange(other.control_, nullptr);
    base_ = std::exchange(other.base_, nullptr);
    mapped_bytes_ = std::exchange(other.mapped_bytes_, 0);
    num_workers_ = std::exchange(other.num_workers_, 0);
    broadcast_bytes_ = std::exchange(other.broadcast_bytes_, 0);
    slot_bytes_ = std::move(other.slot_bytes_);
    broadcast_ = std::exchange(other.broadcast_, nullptr);
    slots_ = std::move(other.slots_);
    cmd_read_ = std::move(other.cmd_read_);
    cmd_write_ = std::move(other.cmd_write_);
    res_read_ = std::move(other.res_read_);
    res_write_ = std::move(other.res_write_);
    other.slot_bytes_.clear();
    other.slots_.clear();
    other.cmd_read_.clear();
    other.cmd_write_.clear();
    other.res_read_.clear();
    other.res_write_.clear();
  }
  return *this;
}

ShmChannel::~ShmChannel() { CloseAll(); }

void ShmChannel::CloseAll() {
  for (size_t w = 0; w < cmd_read_.size(); ++w) {
    CloseFd(&cmd_read_[w]);
    CloseFd(&cmd_write_[w]);
    CloseFd(&res_read_[w]);
    CloseFd(&res_write_[w]);
  }
  if (base_ != nullptr) {
    ::munmap(base_, mapped_bytes_);
    base_ = nullptr;
    control_ = nullptr;
    broadcast_ = nullptr;
    mapped_bytes_ = 0;
  }
}

uint64_t ShmChannel::PublishJob(uint64_t kind, uint64_t payload_len) {
  // Relaxed: the release fetch_add below publishes both stores.
  control_->job_kind.store(kind, std::memory_order_relaxed);
  control_->payload_len.store(payload_len, std::memory_order_relaxed);
  // The release increment orders the kind/len stores (and the caller's
  // broadcast-payload writes) before the sequence workers acquire.
  const uint64_t seq =
      control_->job_seq.fetch_add(1, std::memory_order_release) + 1;
  for (size_t w = 0; w < num_workers_; ++w) {
    if (cmd_write_[w] >= 0) {
      RingBell(cmd_write_[w]);
    }
  }
  return seq;
}

ShmChannel::Wait ShmChannel::WaitWorker(size_t worker, uint64_t seq,
                                        double deadline_seconds) {
  const int fd = res_read_[worker];
  std::atomic<uint64_t>& done = control_->workers[worker].done_seq;
  util::Stopwatch stopwatch;
  for (;;) {
    if (done.load(std::memory_order_acquire) >= seq) {
      return Wait::kDone;
    }
    const double remaining = deadline_seconds - stopwatch.ElapsedSeconds();
    if (remaining <= 0) {
      return Wait::kTimeout;
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int timeout_ms = static_cast<int>(remaining * 1000.0) + 1;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Wait::kDead;
    }
    if (rc == 0) {
      continue;  // re-check done, then report the timeout
    }
    // Readable or hung up. Drain first: the worker may have written its
    // completion byte and THEN exited (the shutdown ack), in which case
    // POLLHUP arrives with the byte still buffered and the done word set.
    const bool open = DrainBells(fd);
    if (done.load(std::memory_order_acquire) >= seq) {
      return Wait::kDone;
    }
    if (!open) {
      return Wait::kDead;
    }
  }
}

uint64_t ShmChannel::SlotLen(size_t worker) const {
  return control_->workers[worker].result_len.load(std::memory_order_acquire);
}

void ShmChannel::OnParentAfterFork(size_t worker) {
  // Only the worker may hold its result-pipe write end: the kernel then
  // turns the worker's death (any cause, SIGKILL included) into EOF. The
  // parent keeps both command-pipe ends so PublishJob to a dead worker can
  // never raise SIGPIPE.
  CloseFd(&res_write_[worker]);
}

void ShmChannel::OnWorkerAfterFork(size_t worker) {
  // The worker's CompleteJob may race a dying parent; with SIGPIPE ignored
  // the write fails with EPIPE (dropped) instead of killing the worker
  // before it can notice the command-pipe EOF and exit cleanly.
  ::signal(SIGPIPE, SIG_IGN);
  for (size_t w = 0; w < num_workers_; ++w) {
    if (w == worker) {
      continue;
    }
    CloseFd(&cmd_read_[w]);
    CloseFd(&cmd_write_[w]);
    CloseFd(&res_read_[w]);
    CloseFd(&res_write_[w]);
  }
  CloseFd(&cmd_write_[worker]);
  CloseFd(&res_read_[worker]);
}

bool ShmChannel::AwaitJob(size_t worker, uint64_t last_seen, uint64_t* seq,
                          uint64_t* kind, uint64_t* payload_len) {
  const int fd = cmd_read_[worker];
  for (;;) {
    const uint64_t current = control_->job_seq.load(std::memory_order_acquire);
    if (current > last_seen) {
      *seq = current;
      // Relaxed: the acquire load of job_seq above orders these reads
      // after the publisher's release increment.
      *kind = control_->job_kind.load(std::memory_order_relaxed);
      *payload_len = control_->payload_len.load(std::memory_order_relaxed);
      return true;
    }
    char bell;
    ssize_t n;
    do {
      n = ::read(fd, &bell, 1);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      return false;  // EOF: the parent is gone
    }
  }
}

void ShmChannel::CompleteJob(size_t worker, uint64_t seq,
                             uint64_t result_len) {
  Control::PerWorker& mine = control_->workers[worker];
  // Relaxed: the release done_seq store below publishes result_len.
  mine.result_len.store(result_len, std::memory_order_relaxed);
  // Release-orders the slot bytes and result_len before the done word the
  // parent acquires.
  mine.done_seq.store(seq, std::memory_order_release);
  if (res_write_[worker] >= 0) {
    RingBell(res_write_[worker]);
  }
}

}  // namespace m3::io
