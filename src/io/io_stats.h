#ifndef M3_IO_IO_STATS_H_
#define M3_IO_IO_STATS_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace m3::io {

/// \brief Process-wide I/O counters from /proc/self/io.
///
/// `read_bytes`/`write_bytes` count actual storage traffic (what the paper
/// observes saturating the SSD); `rchar`/`wchar` include page-cache hits.
struct IoCounters {
  uint64_t rchar = 0;
  uint64_t wchar = 0;
  uint64_t syscr = 0;
  uint64_t syscw = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;

  IoCounters operator-(const IoCounters& rhs) const;
  std::string ToString() const;
};

/// \brief Reads the current /proc/self/io counters.
util::Result<IoCounters> ReadIoCounters();

/// \brief Process-wide counters for the pipelined execution engine
/// (`exec::ChunkPipeline`) and the RAM-budget emulator.
///
/// `prefetches`/`prefetch_bytes` count MADV_WILLNEED ranges issued by the
/// prefetch stage; `evictions`/`bytes_evicted` count DONTNEED drops (from
/// the engine's evict stage and from core::RamBudgetEmulator hooks);
/// `prefetch_hits` counts chunks whose prefetch completed before compute
/// reached them (overlap succeeded), `stalls` counts chunks that entered
/// compute before their prefetch landed — hits below stalls mean the
/// disk, not the CPU, is the bottleneck.
struct ExecCounters {
  uint64_t passes = 0;
  uint64_t chunks = 0;
  uint64_t prefetches = 0;
  uint64_t prefetch_bytes = 0;
  uint64_t evictions = 0;
  uint64_t bytes_evicted = 0;
  uint64_t prefetch_hits = 0;
  uint64_t stalls = 0;
  /// Bytes of the chunks counted in `stalls` — the volume that actually
  /// waited on storage. core/model_fit requires this stall evidence
  /// before trusting a fitted disk bandwidth (the bandwidth itself is
  /// prefetch_bytes over the measured I/O wait) and reports it as the
  /// stall_byte_fraction diagnostic.
  uint64_t stall_bytes = 0;
  /// Chunks whose prefetch race was not classified (pass warm-up). For any
  /// complete pass, prefetches == prefetch_hits + stalls +
  /// prefetch_unclassified.
  uint64_t prefetch_unclassified = 0;
  /// I/O requests the prefetch backend handed to the kernel (one madvise
  /// range, one pread block, one io_uring SQE — see io/prefetch_backend.h).
  /// Orthogonal to `prefetches`, which counts pipeline-level chunk ranges:
  /// one prefetch fans out into >= 1 backend submits.
  uint64_t backend_submits = 0;
  /// Backend requests confirmed complete (pread returned, CQE reaped,
  /// madvise succeeded). submits > completions means lost overlap.
  uint64_t backend_completions = 0;
  /// Backend requests served by a degraded path (uring -> pread after a
  /// failed probe/submission, pread -> page touch for anonymous regions).
  uint64_t backend_fallbacks = 0;

  ExecCounters operator-(const ExecCounters& rhs) const;
  std::string ToString() const;
};

/// \brief Accumulates `delta` into the process-wide exec counters
/// (thread-safe; called by the engine at the end of every pass).
void AddExecCounters(const ExecCounters& delta);

/// \brief Snapshot of the process-wide exec counters.
///
/// Always safe to call: the engine publishes whole-pass deltas, so a
/// snapshot taken while passes are running sees every *completed* pass
/// and none of the running ones.
ExecCounters GlobalExecCounters();

/// \name Quiescence contract for Reset/SetExecCounters.
///
/// The process-wide counters are a single accumulator shared by every
/// pipeline. A Reset/Set that lands between a pass's execution and its
/// end-of-pass AddExecCounters() silently corrupts the totals: the pass's
/// delta is added on top of the overwritten value, so "reset then
/// measure" benches would start from a phantom baseline. The contract is
/// therefore: **Reset/SetExecCounters may only run while no pipeline pass
/// is in flight.**
///
/// The engine enforces it mechanically: every ChunkPipeline::Run()
/// brackets itself with a ScopedExecCountersPass, and Reset/Set CHECK
/// that the active-pass count is zero — a mid-pass snapshot-restore
/// aborts loudly instead of producing corrupt bench JSON.
/// @{

/// RAII marker for one in-flight pipeline pass (engine-internal; exposed
/// for any future executor that reports through AddExecCounters).
class ScopedExecCountersPass {
 public:
  ScopedExecCountersPass();
  ~ScopedExecCountersPass();

  ScopedExecCountersPass(const ScopedExecCountersPass&) = delete;
  ScopedExecCountersPass& operator=(const ScopedExecCountersPass&) = delete;
};

/// Number of passes currently in flight (0 = quiescent).
uint64_t ActiveExecCountersPasses();
/// @}

/// \brief Resets the process-wide exec counters (bench preambles).
/// \pre No pipeline pass in flight (CHECK-enforced; see the quiescence
/// contract above).
void ResetExecCounters();

/// \brief Overwrites the process-wide exec counters with `value`.
///
/// Exists for snapshot-and-restore around measurement plumbing that must
/// stay invisible to benchmarks — io::ProbePrefetchEfficacy() brackets its
/// own evictions and faulting reads with GlobalExecCounters() /
/// SetExecCounters() so bench JSON reflects only the measured pass.
/// \pre No pipeline pass in flight (CHECK-enforced; see the quiescence
/// contract above).
void SetExecCounters(const ExecCounters& value);

/// \brief Page-fault counters from getrusage(2).
///
/// Major faults required real I/O (the out-of-core signal); minor faults
/// were satisfied from the page cache or by zero-fill.
struct FaultCounters {
  int64_t minor = 0;
  int64_t major = 0;

  FaultCounters operator-(const FaultCounters& rhs) const;
  std::string ToString() const;
};

/// \brief Reads the current process fault counters.
FaultCounters ReadFaultCounters();

/// \brief CPU time consumed by this process (user + system), in seconds.
///
/// Comparing CPU-seconds against wall-seconds yields the utilization figure
/// behind the paper's "CPU was only utilized at around 13%" observation.
double ProcessCpuSeconds();

/// \brief Samples wall time, CPU time, I/O and fault counters together.
///
/// Typical use brackets a measured region:
///   auto before = ResourceSample::Now();
///   Work();
///   auto delta = ResourceSample::Now() - before;
///   delta.CpuUtilization(num_cpus);
struct ResourceSample {
  double wall_seconds = 0;
  double cpu_seconds = 0;
  IoCounters io;
  FaultCounters faults;

  static ResourceSample Now();
  ResourceSample operator-(const ResourceSample& rhs) const;

  /// CPU utilization in [0, 1] relative to `num_cpus` cores.
  double CpuUtilization(size_t num_cpus) const;

  /// Storage read throughput over the interval, bytes/second.
  double ReadBandwidth() const;

  std::string ToString() const;
};

}  // namespace m3::io

#endif  // M3_IO_IO_STATS_H_
