#ifndef M3_IO_DISK_PROBE_H_
#define M3_IO_DISK_PROBE_H_

#include <cstdint>
#include <string>

#include "util/result.h"

namespace m3::io {

/// \brief Measured characteristics of the storage backing a directory.
struct DiskProbeResult {
  double sequential_read_bytes_per_sec = 0;
  double sequential_write_bytes_per_sec = 0;
  /// Cold random 4 KiB page-read latency estimate, seconds.
  double random_read_latency_sec = 0;
};

/// \brief Benchmarks the storage under `directory` with a scratch file of
/// `probe_bytes` (default 64 MiB).
///
/// Writes a scratch file, fsyncs, drops its page cache, then times a cold
/// sequential read and a set of cold random 4 KiB reads. The scratch file is
/// removed afterwards. Feeds PerfModel calibration so paper-scale
/// projections use the bandwidth of *this* machine, mirroring the paper's
/// note that M3's ceiling is the disk (OCZ RevoDrive, ~1 GB/s).
util::Result<DiskProbeResult> ProbeDisk(const std::string& directory,
                                        uint64_t probe_bytes = 64ull << 20);

}  // namespace m3::io

#endif  // M3_IO_DISK_PROBE_H_
