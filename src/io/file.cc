#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "io/syscall_injection.h"

namespace m3::io {

using util::Result;
using util::Status;

namespace {

// Returns an fd (>= 0) or a Status describing the failure.
Result<int> OpenFd(const std::string& path, int flags, mode_t mode,
                   const char* what) {
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::IoErrorFromErrno(std::string(what) + " " + path, errno);
  }
  return fd;
}

}  // namespace

Result<File> File::OpenReadOnly(const std::string& path) {
  M3_ASSIGN_OR_RETURN(int fd, OpenFd(path, O_RDONLY | O_CLOEXEC, 0, "open"));
  return File(fd, path);
}

Result<File> File::CreateTruncate(const std::string& path) {
  M3_ASSIGN_OR_RETURN(
      int fd,
      OpenFd(path, O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644, "create"));
  return File(fd, path);
}

Result<File> File::OpenReadWrite(const std::string& path) {
  M3_ASSIGN_OR_RETURN(int fd,
                      OpenFd(path, O_RDWR | O_CLOEXEC, 0, "open(rw)"));
  return File(fd, path);
}

File::~File() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

Result<uint64_t> File::Size() const {
  if (!is_open()) {
    return Status::FailedPrecondition("Size on closed file");
  }
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    return Status::IoErrorFromErrno("fstat " + path_, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status File::ReadExactAt(uint64_t offset, void* buffer, size_t length) const {
  if (!is_open()) {
    return Status::FailedPrecondition("read on closed file");
  }
  char* dst = static_cast<char*>(buffer);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = internal::Pread(fd_, dst + done, length - done,
                                      static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoErrorFromErrno("pread " + path_, errno);
    }
    if (n == 0) {
      return Status::IoError("short read (EOF) in " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status File::WriteExactAt(uint64_t offset, const void* buffer,
                          size_t length) const {
  if (!is_open()) {
    return Status::FailedPrecondition("write on closed file");
  }
  const char* src = static_cast<const char*>(buffer);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = internal::Pwrite(fd_, src + done, length - done,
                                       static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::IoErrorFromErrno("pwrite " + path_, errno);
    }
    if (n == 0) {
      // POSIX allows a zero-byte pwrite result; retrying would spin
      // forever on the same offset.
      return Status::IoError("pwrite wrote 0 bytes in " + path_);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status File::Resize(uint64_t size) const {
  if (!is_open()) {
    return Status::FailedPrecondition("resize on closed file");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IoErrorFromErrno("ftruncate " + path_, errno);
  }
  return Status::OK();
}

Status File::Sync() const {
  if (!is_open()) {
    return Status::FailedPrecondition("sync on closed file");
  }
  if (::fsync(fd_) != 0) {
    return Status::IoErrorFromErrno("fsync " + path_, errno);
  }
  return Status::OK();
}

Status File::DropCache() const {
  if (!is_open()) {
    return Status::FailedPrecondition("DropCache on closed file");
  }
  const int rc = ::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
  if (rc != 0) {
    return Status::IoErrorFromErrno("posix_fadvise(DONTNEED) " + path_, rc);
  }
  return Status::OK();
}

Status File::AdviseSequential() const {
  if (!is_open()) {
    return Status::FailedPrecondition("advise on closed file");
  }
  const int rc = ::posix_fadvise(fd_, 0, 0, POSIX_FADV_SEQUENTIAL);
  if (rc != 0) {
    return Status::IoErrorFromErrno("posix_fadvise(SEQUENTIAL) " + path_, rc);
  }
  return Status::OK();
}

Status File::AdviseRandom() const {
  if (!is_open()) {
    return Status::FailedPrecondition("advise on closed file");
  }
  const int rc = ::posix_fadvise(fd_, 0, 0, POSIX_FADV_RANDOM);
  if (rc != 0) {
    return Status::IoErrorFromErrno("posix_fadvise(RANDOM) " + path_, rc);
  }
  return Status::OK();
}

Status File::Close() {
  if (fd_ < 0) {
    return Status::OK();
  }
  const int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IoErrorFromErrno("close " + path_, errno);
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IoErrorFromErrno("stat " + path, errno);
  }
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::IoErrorFromErrno("unlink " + path, errno);
  }
  return Status::OK();
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("empty path");
  }
  std::string partial;
  for (size_t i = 0; i < path.size(); ++i) {
    partial += path[i];
    if (path[i] == '/' || i + 1 == path.size()) {
      if (partial == "/" || partial.empty()) {
        continue;
      }
      if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
        return Status::IoErrorFromErrno("mkdir " + partial, errno);
      }
    }
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, const std::string& contents) {
  M3_ASSIGN_OR_RETURN(File file, File::CreateTruncate(path));
  M3_RETURN_IF_ERROR(file.WriteExactAt(0, contents.data(), contents.size()));
  return file.Close();
}

Result<std::string> ReadFileToString(const std::string& path) {
  M3_ASSIGN_OR_RETURN(File file, File::OpenReadOnly(path));
  M3_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  std::string contents(size, '\0');
  if (size > 0) {
    M3_RETURN_IF_ERROR(file.ReadExactAt(0, contents.data(), contents.size()));
  }
  return contents;
}

}  // namespace m3::io
