#include "io/disk_probe.h"

#include <algorithm>
#include <vector>

#include "io/buffered_io.h"
#include "io/file.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace m3::io {

using util::Result;
using util::Status;

Result<DiskProbeResult> ProbeDisk(const std::string& directory,
                                  uint64_t probe_bytes) {
  if (probe_bytes < (1 << 20)) {
    return Status::InvalidArgument("probe_bytes must be at least 1 MiB");
  }
  const std::string path = directory + "/.m3_disk_probe.tmp";
  DiskProbeResult result;

  // Sequential write.
  {
    util::Stopwatch watch;
    M3_ASSIGN_OR_RETURN(BufferedWriter writer,
                        BufferedWriter::Create(path, 4 << 20));
    std::vector<char> block(1 << 20);
    util::Rng rng(0xD15C);
    for (char& c : block) {
      c = static_cast<char>(rng.Next());
    }
    for (uint64_t written = 0; written < probe_bytes;
         written += block.size()) {
      M3_RETURN_IF_ERROR(writer.Append(block.data(), block.size()));
    }
    M3_RETURN_IF_ERROR(writer.Close());
    result.sequential_write_bytes_per_sec =
        static_cast<double>(probe_bytes) / watch.ElapsedSeconds();
  }

  // Cold sequential read.
  {
    M3_ASSIGN_OR_RETURN(File file, File::OpenReadOnly(path));
    M3_RETURN_IF_ERROR(file.DropCache());
    std::vector<char> block(1 << 20);
    util::Stopwatch watch;
    uint64_t offset = 0;
    while (offset < probe_bytes) {
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(block.size(), probe_bytes - offset));
      M3_RETURN_IF_ERROR(file.ReadExactAt(offset, block.data(), take));
      offset += take;
    }
    result.sequential_read_bytes_per_sec =
        static_cast<double>(probe_bytes) / watch.ElapsedSeconds();
  }

  // Cold random 4 KiB reads.
  {
    M3_ASSIGN_OR_RETURN(File file, File::OpenReadOnly(path));
    M3_RETURN_IF_ERROR(file.DropCache());
    M3_RETURN_IF_ERROR(file.AdviseRandom());
    constexpr int kProbes = 256;
    constexpr uint64_t kBlock = 4096;
    std::vector<char> block(kBlock);
    util::Rng rng(0x4EAD);
    util::Stopwatch watch;
    for (int i = 0; i < kProbes; ++i) {
      const uint64_t page_count = probe_bytes / kBlock;
      const uint64_t offset = rng.UniformInt(page_count) * kBlock;
      M3_RETURN_IF_ERROR(file.ReadExactAt(offset, block.data(), kBlock));
    }
    result.random_read_latency_sec = watch.ElapsedSeconds() / kProbes;
  }

  M3_RETURN_IF_ERROR(RemoveFile(path));
  return result;
}

}  // namespace m3::io
