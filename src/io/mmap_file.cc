#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <vector>

#include "io/syscall_injection.h"
#include "util/sys_info.h"

namespace m3::io {

using util::Result;
using util::Status;

int AdviceToMadvFlag(Advice advice) {
  switch (advice) {
    case Advice::kNormal:
      return MADV_NORMAL;
    case Advice::kRandom:
      return MADV_RANDOM;
    case Advice::kSequential:
      return MADV_SEQUENTIAL;
    case Advice::kWillNeed:
      return MADV_WILLNEED;
    case Advice::kDontNeed:
      return MADV_DONTNEED;
  }
  return MADV_NORMAL;
}

std::string_view AdviceToString(Advice advice) {
  switch (advice) {
    case Advice::kNormal:
      return "normal";
    case Advice::kRandom:
      return "random";
    case Advice::kSequential:
      return "sequential";
    case Advice::kWillNeed:
      return "willneed";
    case Advice::kDontNeed:
      return "dontneed";
  }
  return "unknown";
}

Result<MemoryMappedFile> MemoryMappedFile::Map(const std::string& path,
                                               Options options) {
  File file;
  if (options.mode == Mode::kReadOnly) {
    M3_ASSIGN_OR_RETURN(file, File::OpenReadOnly(path));
  } else {
    M3_ASSIGN_OR_RETURN(file, File::OpenReadWrite(path));
  }
  M3_ASSIGN_OR_RETURN(uint64_t size, file.Size());
  if (size == 0) {
    return Status::InvalidArgument("cannot map empty file: " + path);
  }

  int prot = PROT_READ;
  int flags = MAP_SHARED;
  switch (options.mode) {
    case Mode::kReadOnly:
      break;
    case Mode::kReadWrite:
      prot |= PROT_WRITE;
      break;
    case Mode::kPrivate:
      prot |= PROT_WRITE;
      flags = MAP_PRIVATE;
      break;
  }
  if (options.populate) {
    flags |= MAP_POPULATE;
  }
  void* addr = ::mmap(nullptr, size, prot, flags, file.fd(), 0);
  if (addr == MAP_FAILED) {
    return Status::IoErrorFromErrno("mmap " + path, errno);
  }
  MemoryMappedFile mapped(addr, size, std::move(file));
  if (options.advice != Advice::kNormal) {
    M3_RETURN_IF_ERROR(mapped.Advise(options.advice));
  }
  return mapped;
}

Result<MemoryMappedFile> MemoryMappedFile::CreateAndMap(
    const std::string& path, uint64_t size) {
  if (size == 0) {
    return Status::InvalidArgument("cannot create empty mapping: " + path);
  }
  M3_ASSIGN_OR_RETURN(File file, File::CreateTruncate(path));
  M3_RETURN_IF_ERROR(file.Resize(size));
  void* addr =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, file.fd(), 0);
  if (addr == MAP_FAILED) {
    return Status::IoErrorFromErrno("mmap(create) " + path, errno);
  }
  return MemoryMappedFile(addr, size, std::move(file));
}

Result<MemoryMappedFile> MemoryMappedFile::MapAnonymous(uint64_t size) {
  if (size == 0) {
    return Status::InvalidArgument("cannot map zero anonymous bytes");
  }
  void* addr = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) {
    return Status::IoErrorFromErrno("mmap(anonymous)", errno);
  }
  return MemoryMappedFile(addr, size, File());
}

MemoryMappedFile::~MemoryMappedFile() {
  if (addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
}

MemoryMappedFile::MemoryMappedFile(MemoryMappedFile&& other) noexcept
    : addr_(other.addr_), size_(other.size_), file_(std::move(other.file_)) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MemoryMappedFile& MemoryMappedFile::operator=(
    MemoryMappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) {
      ::munmap(addr_, size_);
    }
    addr_ = other.addr_;
    size_ = other.size_;
    file_ = std::move(other.file_);
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Status MemoryMappedFile::Advise(Advice advice) const {
  return AdviseRange(advice, 0, size_);
}

Status MemoryMappedFile::AdviseRange(Advice advice, uint64_t offset,
                                     uint64_t length) const {
  if (!is_mapped()) {
    return Status::FailedPrecondition("advise on unmapped region");
  }
  if (offset >= size_) {
    return Status::OutOfRange("advise offset beyond mapping");
  }
  length = std::min(length, size_ - offset);
  // madvise requires a page-aligned start address.
  const uint64_t page = util::PageSize();
  const uint64_t aligned_offset = offset / page * page;
  const uint64_t aligned_length = length + (offset - aligned_offset);
  char* start = static_cast<char*>(addr_) + aligned_offset;
  if (::madvise(start, aligned_length, AdviceToMadvFlag(advice)) != 0) {
    return Status::IoErrorFromErrno("madvise", errno);
  }
  return Status::OK();
}

Status MemoryMappedFile::Prefetch(uint64_t offset, uint64_t length) const {
  return AdviseRange(Advice::kWillNeed, offset, length);
}

Status MemoryMappedFile::Evict(uint64_t offset, uint64_t length) const {
  // Drop the pages from this mapping...
  M3_RETURN_IF_ERROR(AdviseRange(Advice::kDontNeed, offset, length));
  // ...and evict the backing file's page-cache copy so the next fault does
  // real I/O. Without this, MADV_DONTNEED alone re-faults from page cache.
  if (file_.is_open()) {
    length = std::min(length, size_ - offset);
    const int rc = ::posix_fadvise(file_.fd(), static_cast<off_t>(offset),
                                   static_cast<off_t>(length),
                                   POSIX_FADV_DONTNEED);
    if (rc != 0) {
      return Status::IoErrorFromErrno("posix_fadvise(DONTNEED)", rc);
    }
  }
  return Status::OK();
}

uint64_t MemoryMappedFile::TouchAllPages() const {
  const uint64_t page = util::PageSize();
  const volatile char* bytes = static_cast<const char*>(addr_);
  uint64_t checksum = 0;
  for (uint64_t off = 0; off < size_; off += page) {
    checksum += static_cast<uint64_t>(bytes[off]);
  }
  if (size_ > 0) {
    checksum += static_cast<uint64_t>(bytes[size_ - 1]);
  }
  return checksum;
}

Status MemoryMappedFile::Sync(bool asynchronous) {
  if (!is_mapped()) {
    return Status::FailedPrecondition("sync on unmapped region");
  }
  if (::msync(addr_, size_, asynchronous ? MS_ASYNC : MS_SYNC) != 0) {
    return Status::IoErrorFromErrno("msync", errno);
  }
  return Status::OK();
}

Result<uint64_t> MemoryMappedFile::CountResidentPages(uint64_t offset,
                                                      uint64_t length) const {
  if (!is_mapped()) {
    return Status::FailedPrecondition("mincore on unmapped region");
  }
  if (offset >= size_) {
    return Status::OutOfRange("mincore offset beyond mapping");
  }
  length = std::min(length, size_ - offset);
  const uint64_t page = util::PageSize();
  const uint64_t aligned_offset = offset / page * page;
  const uint64_t aligned_length = length + (offset - aligned_offset);
  const uint64_t num_pages = (aligned_length + page - 1) / page;
  std::vector<unsigned char> residency(num_pages);
  char* start = static_cast<char*>(addr_) + aligned_offset;
  if (::mincore(start, aligned_length, residency.data()) != 0) {
    return Status::IoErrorFromErrno("mincore", errno);
  }
  uint64_t resident = 0;
  for (unsigned char flag : residency) {
    resident += flag & 1u;
  }
  return resident;
}

Result<double> MemoryMappedFile::ResidentFraction() const {
  M3_ASSIGN_OR_RETURN(uint64_t resident, CountResidentPages(0, size_));
  const uint64_t page = util::PageSize();
  const uint64_t total = (size_ + page - 1) / page;
  return total == 0 ? 0.0
                    : static_cast<double>(resident) / static_cast<double>(total);
}

Status MemoryMappedFile::Unmap() {
  if (addr_ == nullptr) {
    // Idempotent: already unmapped (or never mapped) — the backing fd was
    // released on the first call, so there is nothing left to do.
    return Status::OK();
  }
  const int rc = internal::Munmap(addr_, size_);
  const int munmap_errno = errno;
  addr_ = nullptr;
  size_ = 0;
  // Close the backing fd even when munmap failed: addr_/size_ are already
  // reset (no dangling pointer survives the error path), so this is the
  // only chance to release the descriptor. The munmap error wins — it is
  // the first failure and the close error, if any, is secondary.
  const Status close_status = file_.Close();
  if (rc != 0) {
    return Status::IoErrorFromErrno("munmap", munmap_errno);
  }
  return close_status;
}

}  // namespace m3::io
