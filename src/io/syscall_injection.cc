#include "io/syscall_injection.h"

#include <sys/mman.h>
#include <unistd.h>

namespace m3::io {

namespace {
testing::PreadFn g_pread_override = nullptr;
testing::PwriteFn g_pwrite_override = nullptr;
testing::MunmapFn g_munmap_override = nullptr;
}  // namespace

namespace testing {

void SetPreadOverride(PreadFn fn) { g_pread_override = fn; }
void SetPwriteOverride(PwriteFn fn) { g_pwrite_override = fn; }
void SetMunmapOverride(MunmapFn fn) { g_munmap_override = fn; }

}  // namespace testing

namespace internal {

ssize_t Pread(int fd, void* buf, size_t count, off_t offset) {
  if (g_pread_override != nullptr) {
    return g_pread_override(fd, buf, count, offset);
  }
  return ::pread(fd, buf, count, offset);
}

ssize_t Pwrite(int fd, const void* buf, size_t count, off_t offset) {
  if (g_pwrite_override != nullptr) {
    return g_pwrite_override(fd, buf, count, offset);
  }
  return ::pwrite(fd, buf, count, offset);
}

int Munmap(void* addr, size_t length) {
  if (g_munmap_override != nullptr) {
    return g_munmap_override(addr, length);
  }
  return ::munmap(addr, length);
}

}  // namespace internal

}  // namespace m3::io
