#ifndef M3_IO_PREFETCH_BACKEND_H_
#define M3_IO_PREFETCH_BACKEND_H_

/// \file
/// \brief Pluggable prefetch backends for the execution engine.
///
/// The engine's prefetch stage (exec::ChunkPipeline) asks one of these
/// backends to bring a byte range of a mapping toward RAM before compute
/// reaches it. Three strategies exist because no single one works
/// everywhere:
///
///   - MadviseBackend: MADV_WILLNEED — the paper's mechanism and the
///     default. Asynchronous and cheap, but a silent no-op on several
///     container/overlay filesystems, which stalls the whole pipeline on
///     exactly the hardware where overlap matters most.
///   - PreadBackend: a pool of pread(2) reads into scratch buffers. The
///     reads land in the page cache, so the mapping's later faults are
///     minor. Blocking, but works on every POSIX filesystem.
///   - UringBackend: batched io_uring READ submissions (raw syscalls, no
///     liburing link dependency), optionally through O_DIRECT staging
///     buffers. Compiled in only when the kernel headers are present
///     (CMake option M3_WITH_IOURING) and probed at runtime — construction
///     falls back to the pread path when io_uring_setup is unavailable
///     (ENOSYS, or sysctl kernel.io_uring_disabled in containers).
///
/// Thread model: the pipeline calls Prefetch() from its single background
/// I/O thread, one call at a time; a backend shared between pipelines
/// (cluster simulator) is still only driven by one pass at a time.
/// Prefetch() may block — it runs on the I/O thread precisely so that the
/// compute stage never waits on it. counters() is safe from any thread.
///
/// Selection is wired through M3Options::prefetch_backend /
/// cluster::ClusterExecOptions::prefetch_backend / exec::PipelineOptions.
/// `kAuto` resolves via ProbePrefetchEfficacy(): detect a no-op WILLNEED
/// by timing a faulting read after advising, then pick the fastest
/// working path. Backends move bytes, never values: results of any scan
/// are bitwise identical under every backend (the retire order is fixed
/// by the engine, and no backend touches mapped data).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "io/mmap_file.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::io {

/// \brief Which prefetch implementation a pipeline should use.
enum class PrefetchBackendKind {
  kAuto,     ///< probe WILLNEED efficacy once, then pick for this process
  kMadvise,  ///< MADV_WILLNEED (the default; the paper's mechanism)
  kPread,    ///< pread(2) page-cache warming (works everywhere)
  kUring,    ///< io_uring readahead; falls back to pread when unavailable
};

/// \brief Short lowercase name ("auto", "madvise", "pread", "uring").
std::string_view PrefetchBackendKindToString(PrefetchBackendKind kind);

/// \brief Parses a backend name as printed by PrefetchBackendKindToString.
util::Result<PrefetchBackendKind> ParsePrefetchBackendKind(
    std::string_view name);

/// \brief True when this binary was compiled with io_uring support
/// (M3_WITH_IOURING and the kernel headers were available).
bool UringCompiledIn();

/// \brief True when io_uring_setup(2) succeeds on this kernel (probed once
/// per process, cached). Always false when !UringCompiledIn().
bool UringAvailable();

/// \brief What one Prefetch() call (or a backend lifetime) did.
///
/// `submits` counts I/O requests handed to the kernel (one madvise range,
/// one pread block, one SQE); `completions` counts requests confirmed
/// done. For the synchronous backends the two advance together; for
/// io_uring a submit without a completion means a dropped or failed CQE.
/// `fallbacks` counts requests served by a backend's degraded path (uring
/// -> pread after a probe/submission failure, pread -> mapping touch for
/// anonymous regions).
struct PrefetchOutcome {
  uint64_t submits = 0;
  uint64_t completions = 0;
  uint64_t fallbacks = 0;

  PrefetchOutcome& operator+=(const PrefetchOutcome& rhs);
};

/// \brief Construction-time knobs shared by all backends.
struct PrefetchBackendOptions {
  PrefetchBackendOptions() {}  // NOLINT: so `= PrefetchBackendOptions()` works

  /// Request granularity: ranges are split into blocks of at most this
  /// many bytes (pread and uring; madvise advises the whole range at once).
  size_t block_bytes = 1 << 20;

  /// PreadBackend: reads fan out over this many internal threads (<= 1
  /// reads on the calling I/O thread).
  size_t pread_threads = 2;

  /// UringBackend: submission-queue depth (SQEs in flight per wave).
  size_t uring_queue_depth = 8;

  /// UringBackend: read through a separate O_DIRECT descriptor into
  /// aligned staging buffers. This bypasses the page cache, so it does NOT
  /// warm the mapping — it exists for measured raw-device-bandwidth
  /// experiments and for a future direct-read compute path, not for
  /// accelerating mmap faults. Leave off for pipeline prefetching.
  bool use_o_direct = false;

  /// Test hook: pretend io_uring_setup failed so the fallback path is
  /// exercised deterministically even on kernels where it works.
  bool force_uring_unavailable = false;
};

/// \brief Interface the engine's prefetch stage drives.
///
/// Implementations are stateless with respect to the mapping (the same
/// backend serves many pipelines/mappings) but may cache per-file
/// resources (descriptors, staging buffers) across calls.
class PrefetchBackend {
 public:
  virtual ~PrefetchBackend();

  PrefetchBackend(const PrefetchBackend&) = delete;
  PrefetchBackend& operator=(const PrefetchBackend&) = delete;

  /// The kind this backend was constructed as (kUring even when degraded
  /// to its pread fallback; see using_fallback()).
  virtual PrefetchBackendKind kind() const = 0;

  /// Human-readable name for tables/logs ("madvise", "pread", "uring").
  virtual std::string_view name() const = 0;

  /// Brings mapping[offset, offset+length) toward RAM. Called on the
  /// pipeline's I/O thread; may block. Best effort: an error loses
  /// overlap, never data. Returns what was submitted/completed so the
  /// pipeline can fold the outcome into its PipelineStats.
  util::Result<PrefetchOutcome> Prefetch(const MemoryMappedFile& mapping,
                                         uint64_t offset, uint64_t length);

  /// True when the backend permanently degraded to a fallback path (e.g.
  /// uring -> pread after a failed runtime probe).
  virtual bool using_fallback() const { return false; }

  /// Lifetime totals across all Prefetch() calls (thread-safe).
  PrefetchOutcome counters() const;

 protected:
  PrefetchBackend() = default;

  /// Backend-specific implementation; Record() is applied by Prefetch().
  virtual util::Result<PrefetchOutcome> DoPrefetch(
      const MemoryMappedFile& mapping, uint64_t offset, uint64_t length) = 0;

 private:
  mutable std::mutex mu_;
  PrefetchOutcome totals_;
};

/// \brief Constructs the backend for `kind`.
///
/// kUring degrades gracefully: when io_uring is compiled out or the
/// runtime probe fails, the returned backend reports kind() == kUring but
/// serves every call through the pread path (using_fallback() == true,
/// fallbacks counted). kAuto resolves via ResolveAutoPrefetchBackend()
/// against `probe_mapping` (or the process-cached probe verdict when
/// null).
std::unique_ptr<PrefetchBackend> MakePrefetchBackend(
    PrefetchBackendKind kind,
    PrefetchBackendOptions options = PrefetchBackendOptions(),
    const MemoryMappedFile* probe_mapping = nullptr);

/// \brief Verdict of the WILLNEED-efficacy probe.
struct PrefetchProbeResult {
  /// MADV_WILLNEED measurably populated evicted pages before the timed
  /// faulting read reached them.
  bool willneed_effective = false;
  /// Wall seconds of a faulting read over the probe window after advising
  /// WILLNEED and yielding, vs. reading it stone cold.
  double advised_read_seconds = 0;
  double cold_read_seconds = 0;
  /// The backend kAuto should use on this filesystem/kernel.
  PrefetchBackendKind recommended = PrefetchBackendKind::kMadvise;

  std::string ToString() const;
};

/// \brief Detects no-op MADV_WILLNEED by experiment (the startup probe
/// behind `prefetch_backend = auto`).
///
/// Evicts a small window of `mapping`, advises WILLNEED, yields briefly,
/// then times a faulting read; compares against reading the same window
/// cold. If the advised read is not measurably faster (and the window is
/// not resident), WILLNEED is a no-op here — `recommended` then prefers
/// uring (when available) over pread. The probe's own evictions/reads are
/// invisible to benchmarks: the process-wide io::GlobalExecCounters() are
/// snapshotted and restored around it, so bench JSON reflects only the
/// measured pass. The first probed mapping's verdict is cached for the
/// process (probing is per-filesystem in principle, per-process in
/// practice — M3 runs scan one dataset).
PrefetchProbeResult ProbePrefetchEfficacy(const MemoryMappedFile& mapping);

/// \brief The kind kAuto resolves to: the cached probe verdict, probing
/// `mapping` first when no verdict is cached yet. A null `mapping` with no
/// cached verdict conservatively returns kMadvise.
PrefetchBackendKind ResolveAutoPrefetchBackend(
    const MemoryMappedFile* mapping);

/// \brief Test hook: forgets the cached probe verdict.
void ResetPrefetchProbeCacheForTesting();

}  // namespace m3::io

#endif  // M3_IO_PREFETCH_BACKEND_H_
