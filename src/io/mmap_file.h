#ifndef M3_IO_MMAP_FILE_H_
#define M3_IO_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "io/file.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::io {

/// \brief Access-pattern hints forwarded to madvise(2).
enum class Advice {
  kNormal,      // MADV_NORMAL: default kernel readahead
  kRandom,      // MADV_RANDOM: disable readahead
  kSequential,  // MADV_SEQUENTIAL: aggressive readahead, early reclaim
  kWillNeed,    // MADV_WILLNEED: prefetch now
  kDontNeed,    // MADV_DONTNEED: drop the pages from this mapping
};

/// \brief A file (or anonymous region) mapped into the virtual address
/// space — the core mechanism of M3.
///
/// Move-only RAII: `munmap` runs on destruction. For file-backed mappings
/// the File is kept open for the mapping's lifetime so cache-control
/// operations (Evict, DropFileCache) can reach the backing file.
///
/// Usage (the paper's Table 1 pattern):
///
///   auto mapped = MemoryMappedFile::Map(path).ValueOrDie();
///   const double* m = mapped.As<const double>();
///   la::ConstMatrixView data(m, rows, cols);   // treated like RAM
class MemoryMappedFile {
 public:
  enum class Mode {
    kReadOnly,   // PROT_READ, MAP_SHARED
    kReadWrite,  // PROT_READ|PROT_WRITE, MAP_SHARED (writes reach the file)
    kPrivate,    // PROT_READ|PROT_WRITE, MAP_PRIVATE (copy-on-write)
  };

  struct Options {
    Options() {}  // NOLINT: explicit ctor so `= Options()` default args work

    Mode mode = Mode::kReadOnly;
    /// Pre-fault all pages at map time (MAP_POPULATE).
    bool populate = false;
    /// Initial madvise hint applied to the whole mapping.
    Advice advice = Advice::kNormal;
  };

  /// An empty mapping that owns nothing.
  MemoryMappedFile() = default;

  /// Maps the whole existing file at `path`.
  static util::Result<MemoryMappedFile> Map(const std::string& path,
                                            Options options = Options());

  /// Creates (truncating) `path`, sizes it to `size` bytes, and maps it
  /// read-write — the paper's `mmapAlloc(file, n)` helper.
  static util::Result<MemoryMappedFile> CreateAndMap(const std::string& path,
                                                     uint64_t size);

  /// Maps `size` bytes of zeroed anonymous memory (no backing file).
  static util::Result<MemoryMappedFile> MapAnonymous(uint64_t size);

  ~MemoryMappedFile();
  MemoryMappedFile(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile& operator=(MemoryMappedFile&& other) noexcept;
  MemoryMappedFile(const MemoryMappedFile&) = delete;
  MemoryMappedFile& operator=(const MemoryMappedFile&) = delete;

  bool is_mapped() const { return addr_ != nullptr; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return file_.path(); }
  bool file_backed() const { return file_.is_open(); }

  const void* data() const { return addr_; }
  void* mutable_data() { return addr_; }

  /// The backing File — prefetch backends read through its descriptor to
  /// warm the page cache (pread/io_uring). `!is_open()` for anonymous
  /// mappings.
  const File& backing_file() const { return file_; }

  /// Typed view of the mapping. \pre size() is a multiple of sizeof(T).
  template <typename T>
  T* As() {
    return static_cast<T*>(addr_);
  }
  template <typename T>
  const T* As() const {
    return static_cast<const T*>(addr_);
  }

  /// Applies an madvise hint to the whole mapping. Cache-control calls
  /// are `const`: they steer the kernel's paging, not the mapping object.
  util::Status Advise(Advice advice) const;

  /// Applies an madvise hint to `[offset, offset + length)` (page-aligned
  /// internally; `length` is clamped to the mapping).
  util::Status AdviseRange(Advice advice, uint64_t offset,
                           uint64_t length) const;

  /// Asks the kernel to prefetch a range (MADV_WILLNEED).
  util::Status Prefetch(uint64_t offset, uint64_t length) const;

  /// Drops a range from this mapping *and* from the backing file's page
  /// cache, so the next access re-reads from storage. This is how the
  /// RAM-budget emulator forces out-of-core behaviour at laptop scale.
  util::Status Evict(uint64_t offset, uint64_t length) const;

  /// Touches every page so it is resident (sequential read fault).
  /// Returns a checksum so the compiler cannot elide the reads.
  uint64_t TouchAllPages() const;

  /// msync: flushes dirty pages of a shared file mapping to the file.
  util::Status Sync(bool asynchronous = false);

  /// Number of resident pages in `[offset, offset + length)` via mincore(2).
  util::Result<uint64_t> CountResidentPages(uint64_t offset,
                                            uint64_t length) const;

  /// Fraction of the whole mapping currently resident in RAM, in [0, 1].
  util::Result<double> ResidentFraction() const;

  /// Unmaps early; subsequent accesses are invalid. Idempotent, and safe
  /// on every error path: addr_/size_ are reset before munmap's verdict
  /// is known and the backing fd is closed even when munmap fails, so a
  /// failed Unmap never leaves a dangling mapping pointer or a leaked
  /// descriptor behind.
  util::Status Unmap();

 private:
  MemoryMappedFile(void* addr, uint64_t size, File file)
      : addr_(addr), size_(size), file_(std::move(file)) {}

  void* addr_ = nullptr;
  uint64_t size_ = 0;
  File file_;  // closed/empty for anonymous mappings
};

/// \brief Converts an Advice value to the corresponding MADV_* constant.
int AdviceToMadvFlag(Advice advice);

/// \brief Human-readable advice name ("sequential", ...).
std::string_view AdviceToString(Advice advice);

}  // namespace m3::io

#endif  // M3_IO_MMAP_FILE_H_
