#ifndef M3_EXEC_CHUNK_MAP_REDUCE_H_
#define M3_EXEC_CHUNK_MAP_REDUCE_H_

#include <optional>
#include <utility>
#include <vector>

#include "exec/chunk_pipeline.h"
#include "la/chunker.h"

namespace m3::exec {

/// \brief Deterministic parallel map-reduce over a chunk schedule.
///
/// `map(chunk_index, row_begin, row_end) -> T` computes a chunk's partial
/// result (a partial gradient, per-cluster sums, a count sketch, ...);
/// `reduce(chunk_index, T&&)` folds it into the caller's accumulator in
/// *visit* order. With a pipeline, maps fan out across its workers while
/// prefetch/evict overlap; without one (`pipeline == nullptr`) every
/// chunk runs inline.
///
/// Determinism guarantee: `reduce` always runs on the calling thread in
/// ascending schedule-position order, and each chunk's `map` sees exactly
/// the same rows regardless of worker count. As long as `map` itself is
/// deterministic, the folded result for a fixed schedule is therefore
/// *bitwise identical* at 1 worker, N workers, and in serial mode —
/// floating-point reductions included — because the sequence of merge
/// operations never changes.
///
/// Per-chunk partials are staged in `pipeline->max_in_flight()` slots, so
/// memory stays bounded by the in-flight window, not the chunk count.
/// Slots are keyed by schedule position (chunk indices in flight are not
/// consecutive under a permuted order, so `chunk % window` would
/// collide); positions are dense, so `position % window` is free by
/// dispatch time.
template <typename T, typename MapFn, typename ReduceFn>
void MapReduceChunks(ChunkPipeline* pipeline, const la::Chunker& chunker,
                     const ChunkSchedule& schedule, MapFn&& map,
                     ReduceFn&& reduce) {
  const size_t window = pipeline != nullptr ? pipeline->max_in_flight() : 1;
  // A position's slot is free by the time it is dispatched: the pipeline
  // never has more than `window` positions between dispatch and in-order
  // retire.
  std::vector<std::optional<T>> slots(window);
  RunPass(
      pipeline, chunker, schedule,
      [&](size_t position, size_t chunk, size_t row_begin, size_t row_end) {
        slots[position % window].emplace(map(chunk, row_begin, row_end));
      },
      [&](size_t position, size_t chunk, size_t, size_t) {
        std::optional<T>& slot = slots[position % window];
        reduce(chunk, std::move(*slot));
        slot.reset();
      });
}

/// \brief Sequential-order map-reduce (the trainers' reference order).
template <typename T, typename MapFn, typename ReduceFn>
void MapReduceChunks(ChunkPipeline* pipeline, const la::Chunker& chunker,
                     MapFn&& map, ReduceFn&& reduce) {
  MapReduceChunks<T>(pipeline, chunker,
                     ChunkSchedule::Sequential(chunker.NumChunks()),
                     std::forward<MapFn>(map), std::forward<ReduceFn>(reduce));
}

}  // namespace m3::exec

#endif  // M3_EXEC_CHUNK_MAP_REDUCE_H_
