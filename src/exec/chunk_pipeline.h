#ifndef M3_EXEC_CHUNK_PIPELINE_H_
#define M3_EXEC_CHUNK_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "exec/pipeline_stats.h"
#include "io/mmap_file.h"
#include "la/chunker.h"
#include "util/thread_pool.h"

namespace m3::exec {

/// \brief A row-wise window of a memory mapping that a pipeline scans.
///
/// Row r of the scanned region lives at byte offset
/// `base_offset + r * row_bytes` inside `mapping`. An unbound region
/// (`mapping == nullptr`) disables the prefetch and evict stages — the
/// pipeline then only orchestrates compute.
struct MappedRegion {
  const io::MemoryMappedFile* mapping = nullptr;
  uint64_t base_offset = 0;
  uint64_t row_bytes = 0;
};

/// \brief Knobs for the three pipeline stages.
struct PipelineOptions {
  PipelineOptions() {}  // NOLINT: explicit ctor so `= PipelineOptions()` works

  /// How many chunks ahead of the compute cursor the prefetch stage keeps
  /// MADV_WILLNEED issued. 0 disables prefetching.
  size_t readahead_chunks = 2;

  /// Compute-stage fan-out. 0 or 1 runs chunk functors on the driving
  /// thread in chunk order; >= 2 runs them on an internal worker pool with
  /// up to `2 * num_workers` chunks in flight (retirement stays in order).
  size_t num_workers = 0;

  /// When positive, the evict stage drops pages more than this many bytes
  /// behind the retire cursor (the same trailing-window policy as
  /// core::RamBudgetEmulator). 0 disables engine-side eviction — callers
  /// that already evict via ScanHooks keep doing so in `retire`.
  uint64_t ram_budget_bytes = 0;

  /// madvise hint applied to the scanned region at the start of each pass
  /// (honors the dataset's core AccessPattern/M3Options setting).
  io::Advice advice = io::Advice::kSequential;

  /// Run evictions inline at retire instead of on the background stage.
  /// Deterministic residency for tests; slightly less overlap.
  bool synchronous_eviction = false;
};

/// Chunk functor: (chunk_index, row_begin, row_end).
using ChunkFn = std::function<void(size_t, size_t, size_t)>;

/// \brief Pipelined out-of-core scan driver: prefetch -> compute -> evict.
///
/// M3's thesis is that sequential chunked scans let the OS hide disk
/// latency; this engine makes the overlap explicit. While the compute
/// stage runs the functor on chunk i, a background thread has already
/// issued MADV_WILLNEED for chunks (i, i + readahead], and pages more
/// than the RAM budget behind the retire cursor are dropped with Evict.
/// The result: the disk streams continuously instead of idling while we
/// compute, and resident bytes stay bounded.
///
///   exec::ChunkPipeline pipeline({&mapped, offset, row_bytes}, options);
///   pipeline.Run(la::RowChunker(rows, chunk_rows),
///                [&](size_t c, size_t lo, size_t hi) { Consume(lo, hi); });
///
/// Thread model: Run() is driven from the calling thread. `map` may run
/// concurrently on internal workers when `num_workers >= 2`; `retire`
/// always runs on the calling thread in ascending chunk order (so
/// ScanHooks-style eviction and reductions stay sequential). Run() is not
/// itself thread-safe: one pass at a time per pipeline.
class ChunkPipeline {
 public:
  explicit ChunkPipeline(PipelineOptions options = PipelineOptions());
  ChunkPipeline(MappedRegion region, PipelineOptions options);
  ~ChunkPipeline();

  ChunkPipeline(const ChunkPipeline&) = delete;
  ChunkPipeline& operator=(const ChunkPipeline&) = delete;

  /// Drives one full pass over `chunker`'s schedule. `map` is invoked
  /// exactly once per chunk (possibly concurrently, any order); `retire`
  /// is invoked once per chunk on the calling thread, in ascending chunk
  /// order, after that chunk's `map` has returned. Blocks until every
  /// chunk has retired and background evictions for the pass have settled.
  void Run(const la::RowChunker& chunker, const ChunkFn& map,
           const ChunkFn& retire = ChunkFn());

  /// Upper bound on chunks simultaneously in flight inside Run(). Callers
  /// keeping per-chunk state (e.g. ChunkMapReduce slots) can size arrays
  /// with it; slot `chunk_index % max_in_flight()` is free by the time a
  /// chunk is dispatched.
  size_t max_in_flight() const;

  bool bound() const { return region_.mapping != nullptr; }
  const PipelineOptions& options() const { return options_; }
  const MappedRegion& region() const { return region_; }

  /// Counters accumulated since construction / the last ConsumeStats().
  PipelineStats stats() const;

  /// Returns the accumulated stats and resets them.
  PipelineStats ConsumeStats();

 private:
  void RunSerial(const la::RowChunker& chunker, const ChunkFn& map,
                 const ChunkFn& retire);
  void RunParallel(const la::RowChunker& chunker, const ChunkFn& map,
                   const ChunkFn& retire);

  /// Issues background MADV_WILLNEED so chunks [prefetch_goal_, goal) are
  /// in flight; updates prefetch_goal_.
  void RequestPrefetchThrough(const la::RowChunker& chunker, size_t goal);

  /// Checks the prefetch race for `chunk` and runs `map` timed.
  void RunMapStage(const ChunkFn& map, size_t chunk, size_t row_begin,
                   size_t row_end);

  /// Trailing-window eviction after the chunk ending at `row_end` retired.
  void EvictBehind(size_t row_end);

  MappedRegion region_;
  PipelineOptions options_;
  /// One background thread shared by the prefetch and evict stages; FIFO
  /// order means prefetches complete in issue order.
  std::unique_ptr<util::ThreadPool> io_pool_;
  /// Compute fan-out pool (only when num_workers >= 2). Deliberately
  /// separate from util::GlobalThreadPool so chunk functors that
  /// internally ParallelFor do not deadlock against the engine.
  std::unique_ptr<util::ThreadPool> compute_pool_;

  // Per-pass cursors (driver thread only, except prefetched_through_).
  size_t prefetch_goal_ = 0;  ///< chunks [0, goal) have prefetch issued
  std::atomic<size_t> prefetched_through_{0};  ///< completed prefix
  uint64_t evict_cursor_ = 0;  ///< bytes [0, cursor) of the region evicted
  /// Chunks below this index raced their prefetch with no compute lead
  /// time (pass warm-up) and are excluded from hit/stall classification.
  size_t stall_classify_from_ = 0;

  mutable std::mutex stats_mu_;
  PipelineStats stats_;
};

/// \brief Drives one pass with an optional pipeline.
///
/// The single code path the trainers share: with `pipeline == nullptr`
/// every chunk runs `map` then `retire` inline, in chunk order — the
/// serial reference semantics. With a pipeline, identical calls are made
/// but prefetch/evict overlap and `map` may fan out. Either way `retire`
/// observes chunks in ascending order, so reductions merged at retire are
/// bitwise identical across both modes and any worker count.
void RunPass(ChunkPipeline* pipeline, const la::RowChunker& chunker,
             const ChunkFn& map, const ChunkFn& retire = ChunkFn());

}  // namespace m3::exec

#endif  // M3_EXEC_CHUNK_PIPELINE_H_
