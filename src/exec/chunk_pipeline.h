#ifndef M3_EXEC_CHUNK_PIPELINE_H_
#define M3_EXEC_CHUNK_PIPELINE_H_

/// \file
/// \brief The engine's pass driver: prefetch -> compute -> retire -> evict.
///
/// Stage lifecycle of one Run() pass over a la::Chunker + ChunkSchedule:
///   1. prefetch — a single background I/O thread walks the schedule
///      `readahead_chunks` positions ahead of compute and hands each
///      chunk's byte range to the configured io::PrefetchBackend
///      (madvise/pread/io_uring; see io/prefetch_backend.h).
///   2. map — the chunk functor. Runs on the driving thread
///      (num_workers <= 1) or on an internal worker pool with up to
///      2*num_workers chunks in flight, in any order.
///   3. retire — always the driving thread, in ascending schedule-position
///      order. The in-order barrier that makes reductions (and SGD weight
///      updates) bitwise identical at any worker count and any backend.
///   4. evict — retired chunks join a trailing residency window; the
///      oldest-visited ranges beyond `ram_budget_bytes` are dropped
///      (madvise DONTNEED + fadvise) on the I/O thread (or inline with
///      `synchronous_eviction`).
///
/// Thread-safety: Run() is not reentrant — one pass at a time per
/// pipeline. `map` must be thread-safe across chunks iff num_workers >= 2;
/// `retire` never needs to be. stats()/ConsumeStats() are safe from any
/// thread. The prefetch backend is only ever driven from the (single) I/O
/// thread; pipelines sharing pools/backends (cluster simulator) must not
/// run passes concurrently.
///
/// Observability: every stage is bracketed by an obs::ScopedSpan (pass,
/// prefetch, compute, retire, evict) carrying chunk ids and the hit/stall
/// race verdict, so a `--trace=FILE` run shows the overlap — or the
/// bubble — on a timeline. Free when tracing is off; see
/// docs/OBSERVABILITY.md.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "exec/chunk_schedule.h"
#include "exec/pipeline_stats.h"
#include "io/mmap_file.h"
#include "io/prefetch_backend.h"
#include "la/chunker.h"
#include "util/thread_pool.h"

namespace m3::exec {

/// \brief A contiguous byte range inside a mapping (absolute offsets).
struct ByteSpan {
  uint64_t offset = 0;
  uint64_t length = 0;
};

/// \brief Maps row ranges to the byte spans a scan of those rows touches.
///
/// The byte-range abstraction that lets one engine drive layouts whose
/// rows are not a uniform stride. The dense layout is the implicit
/// identity map (`base_offset + r * row_bytes`, handled inline by the
/// pipeline); a CSR layout maps a row range to its row_ptr / col_idx /
/// values slices. The prefetch, evict, and stall-accounting stages all
/// consume spans, so schedules, backends, counters, and tracing carry
/// over to any layout unchanged.
///
/// Implementations must be pure functions of the row range (same range →
/// same spans, every call, every pass): the evict window dedupes revisited
/// chunks by their first span's offset, and stall accounting assumes a
/// chunk's byte cost is stable. Spans are absolute offsets into the
/// mapping. Must be safe to call from the pipeline's I/O thread
/// concurrently with the driver (const, no mutation).
class ChunkByteMap {
 public:
  virtual ~ChunkByteMap() = default;

  /// Appends the spans a scan of rows [row_begin, row_end) touches.
  /// Zero-length spans may be omitted; spans need not be sorted.
  virtual void AppendSpans(size_t row_begin, size_t row_end,
                           std::vector<ByteSpan>* out) const = 0;

  /// The enclosing byte range of every span this map can produce (what a
  /// whole-region madvise should cover).
  virtual ByteSpan Extent() const = 0;
};

/// \brief A window of a memory mapping that a pipeline scans.
///
/// With `byte_map == nullptr` the region is dense row-major: row r lives
/// at byte offset `base_offset + r * row_bytes` inside `mapping`. With a
/// `byte_map`, the map translates row ranges to byte spans and
/// `base_offset`/`row_bytes` are ignored by the I/O stages. An unbound
/// region (`mapping == nullptr`) disables the prefetch and evict stages —
/// the pipeline then only orchestrates compute.
struct MappedRegion {
  const io::MemoryMappedFile* mapping = nullptr;
  uint64_t base_offset = 0;
  uint64_t row_bytes = 0;
  /// Not-owned row→bytes translation for non-uniform layouts (CSR). Must
  /// outlive the pipeline.
  const ChunkByteMap* byte_map = nullptr;
};

/// \brief Knobs for the three pipeline stages.
struct PipelineOptions {
  PipelineOptions() {}  // NOLINT: explicit ctor so `= PipelineOptions()` works

  /// How many chunks ahead of the compute cursor the prefetch stage keeps
  /// MADV_WILLNEED issued. 0 disables prefetching.
  size_t readahead_chunks = 2;

  /// Compute-stage fan-out. 0 or 1 runs chunk functors on the driving
  /// thread in schedule order; >= 2 runs them on an internal worker pool
  /// with up to `2 * num_workers` chunks in flight (retirement stays in
  /// schedule order).
  size_t num_workers = 0;

  /// When positive, the evict stage keeps at most this many bytes of
  /// visited chunks resident: each retired chunk joins a trailing window
  /// and the oldest-visited chunks are dropped (madvise DONTNEED) once the
  /// window exceeds the budget. Works for any ChunkSchedule — under a
  /// shuffled or strided order the window follows the *visit* order, not
  /// ascending file offsets. 0 disables engine-side eviction — callers
  /// that already evict via ScanHooks keep doing so in `retire`.
  uint64_t ram_budget_bytes = 0;

  /// madvise hint applied to the scanned region at the start of each pass
  /// (honors the dataset's core AccessPattern/M3Options setting). Passes
  /// driven by a non-sequential schedule downgrade kSequential to kNormal
  /// so kernel readahead does not race ahead of the permuted visit order.
  io::Advice advice = io::Advice::kSequential;

  /// Run evictions inline at retire instead of on the background stage.
  /// Deterministic residency for tests; slightly less overlap.
  bool synchronous_eviction = false;

  /// Which io::PrefetchBackend the prefetch stage drives: kMadvise issues
  /// MADV_WILLNEED (the default), kPread warms the page cache with
  /// pread(2) reads, kUring batches io_uring READs (falling back to pread
  /// when unavailable), kAuto probes WILLNEED efficacy on the bound
  /// mapping once per process and picks the fastest working path. Results
  /// are bitwise identical under every backend — only overlap changes.
  io::PrefetchBackendKind prefetch_backend = io::PrefetchBackendKind::kMadvise;

  /// Knobs for the created backend (block size, pread fan-out, uring
  /// queue depth). Ignored when `shared_prefetch_backend` is set.
  io::PrefetchBackendOptions prefetch_backend_options;

  /// Not-owned backend shared between pipelines that never run passes
  /// concurrently (cluster simulator), like the shared pools below. Null
  /// means the pipeline creates and owns one from `prefetch_backend`.
  io::PrefetchBackend* shared_prefetch_backend = nullptr;

  /// Not-owned pools shared between pipelines that never run passes
  /// concurrently (e.g. the cluster simulator's per-partition pipelines,
  /// which a job drives one at a time): instead of every pipeline spawning
  /// its own threads, they borrow these. `shared_io_pool` must be
  /// single-threaded (prefetch completion order must match issue order).
  /// Null means the pipeline creates and owns its pools as needed.
  util::ThreadPool* shared_io_pool = nullptr;
  util::ThreadPool* shared_compute_pool = nullptr;
};

/// \brief Which stage's page access judges the prefetch hit/stall race
/// for a pass.
///
/// The race asks "had the chunk's prefetch landed by the time compute
/// touched its pages?", so it must be sampled at the stage that actually
/// touches them. Map-reduce scans read rows inside `map` (the default);
/// scans whose sequential dependence keeps compute in `retire` (SGD
/// weight updates, union-find merges) touch pages only at retire —
/// sampling those at map dispatch would count a prefetch that lands
/// between the no-op map and the retire as a stall that never happened,
/// an artifact that grew with worker fan-out.
enum class RaceStage {
  kMap,     ///< sample when the chunk's `map` is dispatched (default)
  kRetire,  ///< sample when the chunk retires (retire-stage compute)
};

/// Chunk functor: (chunk_index, row_begin, row_end).
using ChunkFn = std::function<void(size_t, size_t, size_t)>;

/// Schedule-aware chunk functor: (position, chunk_index, row_begin,
/// row_end). `position` is the chunk's place in the pass's visit order
/// (dense in [0, schedule.num_chunks())); `chunk_index` is the chunker's
/// chunk visited there. For a sequential schedule the two coincide.
using ScheduledChunkFn =
    std::function<void(size_t, size_t, size_t, size_t)>;

/// \brief Pipelined out-of-core scan driver: prefetch -> compute -> evict.
///
/// M3's thesis is that chunked scans let the OS hide disk latency; this
/// engine makes the overlap explicit and generalizes it beyond ascending
/// chunk order. While the compute stage runs the functor on the chunk at
/// schedule position p, a background thread has already issued
/// MADV_WILLNEED for the chunks at positions (p, p + readahead], and the
/// oldest-visited chunks beyond the RAM budget are dropped with Evict.
/// The result: the disk streams continuously instead of idling while we
/// compute — for sequential scans, shuffled SGD minibatch passes, and
/// strided shard interleavings alike — and resident bytes stay bounded.
///
///   exec::ChunkPipeline pipeline({&mapped, offset, row_bytes}, options);
///   pipeline.Run(la::RowChunker(rows, chunk_rows),
///                exec::ChunkSchedule::Shuffled(num_chunks, seed),
///                [&](size_t p, size_t c, size_t lo, size_t hi) { ... });
///
/// Thread model: Run() is driven from the calling thread. `map` may run
/// concurrently on internal workers when `num_workers >= 2`; `retire`
/// always runs on the calling thread in ascending schedule-position order
/// (so ScanHooks-style eviction and reductions stay sequential). Run() is
/// not itself thread-safe: one pass at a time per pipeline.
class ChunkPipeline {
 public:
  explicit ChunkPipeline(PipelineOptions options = PipelineOptions());
  ChunkPipeline(MappedRegion region, PipelineOptions options);
  ~ChunkPipeline();

  ChunkPipeline(const ChunkPipeline&) = delete;
  ChunkPipeline& operator=(const ChunkPipeline&) = delete;

  /// Drives one full pass over `chunker` in ascending chunk order.
  /// `map` is invoked exactly once per chunk (possibly concurrently, any
  /// order); `retire` is invoked once per chunk on the calling thread, in
  /// ascending chunk order, after that chunk's `map` has returned. Blocks
  /// until every chunk has retired and background evictions for the pass
  /// have settled.
  void Run(const la::Chunker& chunker, const ChunkFn& map,
           const ChunkFn& retire = ChunkFn());

  /// Drives one full pass visiting `chunker`'s chunks in `schedule` order.
  /// Prefetch walks the schedule's permutation `readahead_chunks` positions
  /// ahead of compute; stall/hit classification and the eviction window
  /// follow visit positions. `retire` runs on the calling thread in
  /// ascending *position* order — the in-order retire barrier that keeps
  /// schedule-driven reductions (and SGD weight updates) bitwise identical
  /// at any worker count. `race_stage` names the stage whose dispatch
  /// samples the prefetch hit/stall race for this pass (per pass, not per
  /// pipeline: trainers share one pipeline between map-compute
  /// evaluations and retire-compute epochs).
  /// \pre schedule.num_chunks() == chunker.NumChunks()
  void Run(const la::Chunker& chunker, const ChunkSchedule& schedule,
           const ScheduledChunkFn& map,
           const ScheduledChunkFn& retire = ScheduledChunkFn(),
           RaceStage race_stage = RaceStage::kMap);

  /// Upper bound on chunks simultaneously in flight inside Run(). Callers
  /// keeping per-chunk state (e.g. ChunkMapReduce slots) can size arrays
  /// with it; the slot `position % max_in_flight()` is free by the time the
  /// chunk at `position` is dispatched.
  size_t max_in_flight() const;

  bool bound() const { return region_.mapping != nullptr; }
  const PipelineOptions& options() const { return options_; }
  const MappedRegion& region() const { return region_; }

  /// The prefetch backend this pipeline drives, or nullptr when unbound.
  const io::PrefetchBackend* prefetch_backend() const { return backend_; }

  /// Counters accumulated since construction / the last ConsumeStats().
  PipelineStats stats() const;

  /// Returns the accumulated stats and resets them.
  PipelineStats ConsumeStats();

 private:
  void RunSerial(const la::Chunker& chunker, const ChunkSchedule& schedule,
                 const ScheduledChunkFn& map, const ScheduledChunkFn& retire);
  void RunParallel(const la::Chunker& chunker,
                   const ChunkSchedule& schedule, const ScheduledChunkFn& map,
                   const ScheduledChunkFn& retire);

  /// The byte spans a scan of rows [row_begin, row_end) touches: one
  /// `row_bytes`-strided span for dense regions, the byte_map's spans
  /// otherwise. Zero-length chunks append nothing.
  void AppendChunkSpans(size_t row_begin, size_t row_end,
                        std::vector<ByteSpan>* out) const;

  /// Total bytes a scan of rows [row_begin, row_end) touches.
  uint64_t ChunkBytes(size_t row_begin, size_t row_end) const;

  /// Issues background prefetch so the chunks at schedule positions
  /// [prefetch_goal_, goal) are in flight; updates prefetch_goal_.
  void RequestPrefetchThrough(const la::Chunker& chunker,
                              const ChunkSchedule& schedule, size_t goal);

  /// Checks the prefetch race for the chunk at `position` (RaceStage::kMap
  /// passes) and runs `map` timed.
  void RunMapStage(const ScheduledChunkFn& map, size_t position, size_t chunk,
                   size_t row_begin, size_t row_end);

  /// Samples the prefetch race at retire time (RaceStage::kRetire passes):
  /// called once per position on the driving thread, in position order,
  /// just before the chunk's retire runs.
  void ClassifyRetireRace(size_t position, const la::Chunker::Range& range);

  /// Runs `retire` timed (calling thread, ascending position order).
  void RunRetireStage(const ScheduledChunkFn& retire, size_t position,
                      size_t chunk, size_t row_begin, size_t row_end);

  /// Appends the retired chunk's byte spans to the trailing residency
  /// window and evicts the oldest-visited ranges beyond the RAM budget.
  void EvictRetired(const la::Chunker::Range& range);

  MappedRegion region_;
  PipelineOptions options_;
  /// Backend owned by this pipeline (null when the options share one).
  std::unique_ptr<io::PrefetchBackend> owned_backend_;
  /// The prefetch stage's I/O issuer (owned or shared); null when unbound.
  io::PrefetchBackend* backend_ = nullptr;
  /// Pools owned by this pipeline (empty when the options share pools).
  std::unique_ptr<util::ThreadPool> owned_io_pool_;
  std::unique_ptr<util::ThreadPool> owned_compute_pool_;
  /// One background thread shared by the prefetch and evict stages; FIFO
  /// order means prefetches complete in issue order.
  util::ThreadPool* io_pool_ = nullptr;
  /// Compute fan-out pool (only when num_workers >= 2). Deliberately
  /// separate from util::GlobalThreadPool so chunk functors that
  /// internally ParallelFor do not deadlock against the engine.
  util::ThreadPool* compute_pool_ = nullptr;

  // Per-pass cursors (driver thread only, except prefetched_through_).
  // All are in schedule-position space, not chunk-index space.
  size_t prefetch_goal_ = 0;  ///< positions [0, goal) have prefetch issued
  std::atomic<size_t> prefetched_through_{0};  ///< completed prefix
  /// Trailing residency window: byte spans (absolute offset, length) of
  /// retired chunks not yet evicted, in visit order. A ragged (byte_map)
  /// chunk contributes one entry per span.
  std::deque<std::pair<uint64_t, uint64_t>> resident_window_;
  uint64_t resident_window_bytes_ = 0;
  /// Positions below this raced their prefetch with no compute lead time
  /// (pass warm-up) and are excluded from hit/stall classification.
  size_t stall_classify_from_ = 0;
  /// The stage judging this pass's hit/stall race (set per Run()).
  RaceStage race_stage_ = RaceStage::kMap;
  /// RaceStage::kRetire only: the classification ClassifyRetireRace just
  /// made for the position about to retire — lets RunRetireStage attribute
  /// the retire duration to the stall histogram and tag its trace span.
  /// Driver thread only; "hit"/"stall"/"warmup" or null between chunks.
  const char* last_retire_race_ = nullptr;

  mutable std::mutex stats_mu_;
  PipelineStats stats_;
};

/// \brief Drives one pass with an optional pipeline.
///
/// The single code path the trainers share: with `pipeline == nullptr`
/// every chunk runs `map` then `retire` inline, in chunk order — the
/// serial reference semantics. With a pipeline, identical calls are made
/// but prefetch/evict overlap and `map` may fan out. Either way `retire`
/// observes chunks in ascending order, so reductions merged at retire are
/// bitwise identical across both modes and any worker count.
void RunPass(ChunkPipeline* pipeline, const la::Chunker& chunker,
             const ChunkFn& map, const ChunkFn& retire = ChunkFn());

/// \brief Schedule-aware RunPass: one pass in `schedule` order.
///
/// Without a pipeline every position runs `map` then `retire` inline in
/// schedule order; with one, prefetch/evict follow the schedule and
/// `retire` keeps ascending position order. Both modes therefore visit
/// chunks in exactly the same sequence — the serial loop is the reference
/// semantics for the pipelined one.
void RunPass(ChunkPipeline* pipeline, const la::Chunker& chunker,
             const ChunkSchedule& schedule, const ScheduledChunkFn& map,
             const ScheduledChunkFn& retire = ScheduledChunkFn(),
             RaceStage race_stage = RaceStage::kMap);

}  // namespace m3::exec

#endif  // M3_EXEC_CHUNK_PIPELINE_H_
