#ifndef M3_EXEC_PIPELINE_STATS_H_
#define M3_EXEC_PIPELINE_STATS_H_

#include <cstdint>
#include <string>

#include "io/io_stats.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/result.h"

namespace m3::exec {

/// \brief Per-stage counters and timings for a ChunkPipeline.
///
/// One Run() is one pass; counters accumulate across passes until the
/// pipeline is destroyed or ConsumeStats() is called. The per-stage
/// second totals let the perf model (`core/perf_model`) be fit against
/// measured overlap: with perfect pipelining,
/// drive_seconds ~ max(compute_seconds, prefetch_seconds) rather than
/// their sum.
struct PipelineStats {
  uint64_t passes = 0;          ///< Run() invocations
  uint64_t chunks = 0;          ///< chunks driven through the compute stage
  uint64_t prefetches = 0;      ///< MADV_WILLNEED ranges issued
  uint64_t prefetch_bytes = 0;  ///< bytes covered by issued prefetches
  /// Chunks whose prefetch had completed before compute began (overlap
  /// succeeded). Only counted when a mapping is bound and readahead > 0.
  uint64_t prefetch_hits = 0;
  /// Chunks that reached their compute stage before their prefetch landed
  /// — the pipeline-stall signal (disk not keeping up with compute). The
  /// race is sampled at the stage that actually touches the chunk's pages
  /// (`exec::RaceStage`): at `map` dispatch for map-reduce scans, at
  /// retire for scans whose compute lives in the retire stage (SGD,
  /// union-find) — so the counts are trustworthy at every worker count.
  uint64_t stalls = 0;
  /// Bytes of the chunks counted in `stalls` — the data volume that
  /// actually waited on storage. core/model_fit requires this stall
  /// evidence before trusting a fitted disk bandwidth (which it computes
  /// as prefetch_bytes over the measured I/O wait, not from this field)
  /// and reports it as the stall_byte_fraction diagnostic.
  uint64_t stall_bytes = 0;
  /// Chunks excluded from the hit/stall race because their prefetch was
  /// issued with no compute lead time (pass warm-up: the first
  /// readahead_chunks positions, widened to the in-flight window under
  /// worker fan-out). After any complete pass of a bound pipeline with
  /// readahead enabled, every prefetched chunk is accounted exactly once:
  ///   prefetches == prefetch_hits + stalls + prefetch_unclassified.
  uint64_t prefetch_unclassified = 0;
  uint64_t evictions = 0;       ///< Evict (DONTNEED) ranges issued
  uint64_t bytes_evicted = 0;   ///< bytes covered by issued evictions
  /// \name Prefetch-backend counters (io::PrefetchBackend).
  /// One pipeline-level prefetch fans out into >= 1 backend submits (one
  /// madvise range, one pread block, one io_uring SQE); completions count
  /// requests the kernel confirmed, fallbacks count requests a degraded
  /// path served (uring -> pread, pread -> page touch). These sit beside
  /// the hit/stall race, which is untouched: for any complete pass
  /// prefetches == prefetch_hits + stalls + prefetch_unclassified holds
  /// under every backend.
  /// @{
  uint64_t backend_submits = 0;
  uint64_t backend_completions = 0;
  uint64_t backend_fallbacks = 0;
  /// @}

  double prefetch_seconds = 0;  ///< background time inside Prefetch calls
  double compute_seconds = 0;   ///< wall time inside chunk `map` functors
  /// Wall time inside `retire` functors (driver thread, in-order). Scans
  /// whose sequential dependence keeps compute in retire — SGD weight
  /// updates, union-find merges — show their compute here, not in
  /// compute_seconds.
  double retire_seconds = 0;
  double evict_seconds = 0;     ///< background time inside Evict calls
  double drive_seconds = 0;     ///< wall time of whole passes (end to end)

  /// \name Per-chunk duration distributions (tail visibility: the totals
  /// above cannot distinguish "every chunk slightly slow" from "a few
  /// chunks catastrophically stalled", which is exactly what the ROADMAP's
  /// async-SGD and serving work needs to see).
  ///
  /// `compute_duration` samples the map-stage wall seconds of every chunk.
  /// `stall_duration` samples the wall seconds of the page-touching stage
  /// of chunks that LOST the prefetch race (map stage for RaceStage::kMap
  /// scans, retire stage for retire-compute scans) — i.e. compute plus the
  /// unhidden fault-service time, the honest per-chunk cost of a stall.
  /// Surfaced as p50/p95/p99 by ToJson() and the bench JsonReporter.
  /// @{
  util::Histogram compute_duration;
  util::Histogram stall_duration;
  /// @}

  PipelineStats& operator+=(const PipelineStats& rhs);
  PipelineStats operator+(const PipelineStats& rhs) const;

  /// The counter subset as the process-wide io::ExecCounters shape — the
  /// single conversion point between the two structs, so the engine can
  /// report per-pass deltas without field-by-field copies.
  io::ExecCounters counters() const;

  /// The inverse lift: a PipelineStats carrying only the counter subset
  /// (seconds and histograms zero). Lets ExecCounters-only callers reuse
  /// the one JSON serialization below.
  static PipelineStats FromCounters(const io::ExecCounters& counters);

  /// Fraction of prefetch-enabled chunks whose prefetch won the race,
  /// in [0, 1]; 1.0 when the prefetch stage fully hides the disk.
  double PrefetchHitRate() const;

  std::string ToString() const;

  /// One JSON object carrying the counters, the per-stage seconds, and
  /// the duration percentiles — THE serialization of pipeline stats:
  /// bench JSON ("exec" objects via bench::JsonReporter) and trace
  /// metadata (obs::TraceRecorder) both emit exactly this, so the schema
  /// cannot fork. Keys are stable; additions are append-only.
  std::string ToJson() const;

  /// The parse side of ToJson() — how stats cross process boundaries
  /// (cluster::ProcessFleet workers serialize their per-job stats into
  /// the shm channel as ToJson() text; the parent rebuilds them here).
  /// Strict about the counter/seconds keys: a missing or non-numeric key
  /// is InvalidArgument, so schema drift fails loudly instead of reading
  /// as zero. The per-chunk duration histograms are NOT round-tripped:
  /// ToJson() emits only their percentiles, so the parsed stats carry
  /// empty histograms (their percentiles re-serialize as 0).
  static util::Result<PipelineStats> FromJson(const util::JsonValue& value);
};

}  // namespace m3::exec

#endif  // M3_EXEC_PIPELINE_STATS_H_
