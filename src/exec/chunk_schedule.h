#ifndef M3_EXEC_CHUNK_SCHEDULE_H_
#define M3_EXEC_CHUNK_SCHEDULE_H_

/// \file
/// \brief Visit orders for pipeline passes.
///
/// A ChunkSchedule maps pass *positions* to RowChunker *chunk indices*:
/// position p of a pass visits chunk At(p). Everything order-sensitive in
/// the engine — prefetch readahead, hit/stall classification, the
/// trailing eviction window — operates in position space, so a shuffled
/// SGD epoch or a strided shard interleaving gets the same overlap and
/// bounded residency as a sequential scan. Schedules are immutable value
/// objects: construction (Fisher-Yates for Shuffled) is the only work,
/// At() is O(1), and a given (kind, num_chunks, seed/stride/offset) tuple
/// yields the same permutation on every platform — one half of the
/// engine's bitwise-determinism contract (the other half is the in-order
/// retire barrier, see chunk_pipeline.h). Thread-safety: const access
/// from any thread; typically built per pass and shared by reference.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace m3::exec {

/// \brief Which order a chunked scan visits a RowChunker's chunks in.
///
/// Exposed through core::M3Options so dataset-level scans can pick an
/// order without constructing schedules by hand.
enum class ScanOrder {
  kSequential,  ///< ascending chunk index (the readahead-friendly default)
  kShuffled,    ///< a seeded per-pass permutation (SGD minibatch order)
  kStrided,     ///< 0, s, 2s, ..., 1, 1+s, ... (interleaved shard order)
};

std::string ToString(ScanOrder order);

/// \brief The visit order of one pipeline pass over a chunker's chunks.
///
/// A schedule is a permutation of [0, num_chunks): position p of the pass
/// visits chunk At(p). The pipeline prefetches, classifies stalls, and
/// evicts along *positions*, so shuffled SGD minibatches and strided shard
/// scans get exactly the same readahead overlap and bounded residency as a
/// sequential scan — randomized access order becomes a first-class
/// scheduling concern instead of a caller-side loop.
///
///   auto schedule = exec::ChunkSchedule::Shuffled(chunker.NumChunks(), seed);
///   pipeline.Run(chunker, schedule, map, retire);
///
/// Sequential schedules carry no permutation vector (identity fast path).
class ChunkSchedule {
 public:
  /// Identity order: position p visits chunk p.
  static ChunkSchedule Sequential(size_t num_chunks);

  /// A Fisher-Yates permutation drawn from util::Rng(seed). The same
  /// (num_chunks, seed) always yields the same order, on every platform.
  static ChunkSchedule Shuffled(size_t num_chunks, uint64_t seed);

  /// Visits the lane starting at `offset % stride` first — offset,
  /// offset+stride, ... — then the following lanes in wrapping order until
  /// every chunk is covered once. With offset == 0 this is the classic
  /// interleaving 0, stride, 2*stride, ..., 1, 1+stride, ...; a nonzero
  /// offset rotates the lane order, which is how the cluster simulator
  /// starts instance k's scan at its own shard (stride = instance count,
  /// offset = instance id). stride == 0 or 1 degenerates to Sequential.
  static ChunkSchedule Strided(size_t num_chunks, size_t stride,
                               size_t offset = 0);

  /// Builds the order named by `order` (seed is used only for kShuffled,
  /// stride/offset only for kStrided).
  static ChunkSchedule Make(ScanOrder order, size_t num_chunks,
                            uint64_t seed = 0, size_t stride = 0,
                            size_t offset = 0);

  /// Number of chunks (== positions) in the pass.
  size_t num_chunks() const { return num_chunks_; }

  /// Chunk visited at position `pos`. \pre pos < num_chunks().
  size_t At(size_t pos) const {
    return order_.empty() ? pos : order_[pos];
  }

  /// True for the identity order (no permutation vector is stored).
  bool is_sequential() const { return order_.empty(); }

 private:
  ChunkSchedule(size_t num_chunks, std::vector<size_t> order)
      : num_chunks_(num_chunks), order_(std::move(order)) {}

  size_t num_chunks_ = 0;
  std::vector<size_t> order_;  ///< empty = identity
};

}  // namespace m3::exec

#endif  // M3_EXEC_CHUNK_SCHEDULE_H_
