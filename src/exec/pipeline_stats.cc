#include "exec/pipeline_stats.h"

#include "util/format.h"

namespace m3::exec {

PipelineStats& PipelineStats::operator+=(const PipelineStats& rhs) {
  passes += rhs.passes;
  chunks += rhs.chunks;
  prefetches += rhs.prefetches;
  prefetch_bytes += rhs.prefetch_bytes;
  prefetch_hits += rhs.prefetch_hits;
  stalls += rhs.stalls;
  stall_bytes += rhs.stall_bytes;
  prefetch_unclassified += rhs.prefetch_unclassified;
  evictions += rhs.evictions;
  bytes_evicted += rhs.bytes_evicted;
  backend_submits += rhs.backend_submits;
  backend_completions += rhs.backend_completions;
  backend_fallbacks += rhs.backend_fallbacks;
  prefetch_seconds += rhs.prefetch_seconds;
  compute_seconds += rhs.compute_seconds;
  retire_seconds += rhs.retire_seconds;
  evict_seconds += rhs.evict_seconds;
  drive_seconds += rhs.drive_seconds;
  return *this;
}

PipelineStats PipelineStats::operator+(const PipelineStats& rhs) const {
  PipelineStats out = *this;
  out += rhs;
  return out;
}

io::ExecCounters PipelineStats::counters() const {
  io::ExecCounters out;
  out.passes = passes;
  out.chunks = chunks;
  out.prefetches = prefetches;
  out.prefetch_bytes = prefetch_bytes;
  out.evictions = evictions;
  out.bytes_evicted = bytes_evicted;
  out.prefetch_hits = prefetch_hits;
  out.stalls = stalls;
  out.stall_bytes = stall_bytes;
  out.prefetch_unclassified = prefetch_unclassified;
  out.backend_submits = backend_submits;
  out.backend_completions = backend_completions;
  out.backend_fallbacks = backend_fallbacks;
  return out;
}

double PipelineStats::PrefetchHitRate() const {
  const uint64_t raced = prefetch_hits + stalls;
  if (raced == 0) {
    return 0.0;
  }
  return static_cast<double>(prefetch_hits) / static_cast<double>(raced);
}

std::string PipelineStats::ToString() const {
  return util::StrFormat(
      "passes=%llu chunks=%llu prefetch=%llu (%s, hit %.0f%%) stalls=%llu "
      "(%s) warmup=%llu evict=%llu (%s) backend s/c/f=%llu/%llu/%llu "
      "stage s: drive=%.3f compute=%.3f "
      "retire=%.3f prefetch=%.3f evict=%.3f",
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(prefetches),
      util::HumanBytes(prefetch_bytes).c_str(), PrefetchHitRate() * 100.0,
      static_cast<unsigned long long>(stalls),
      util::HumanBytes(stall_bytes).c_str(),
      static_cast<unsigned long long>(prefetch_unclassified),
      static_cast<unsigned long long>(evictions),
      util::HumanBytes(bytes_evicted).c_str(),
      static_cast<unsigned long long>(backend_submits),
      static_cast<unsigned long long>(backend_completions),
      static_cast<unsigned long long>(backend_fallbacks),
      drive_seconds, compute_seconds,
      retire_seconds, prefetch_seconds, evict_seconds);
}

}  // namespace m3::exec
