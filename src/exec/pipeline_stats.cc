#include "exec/pipeline_stats.h"

#include "util/format.h"

namespace m3::exec {

PipelineStats& PipelineStats::operator+=(const PipelineStats& rhs) {
  passes += rhs.passes;
  chunks += rhs.chunks;
  prefetches += rhs.prefetches;
  prefetch_bytes += rhs.prefetch_bytes;
  prefetch_hits += rhs.prefetch_hits;
  stalls += rhs.stalls;
  stall_bytes += rhs.stall_bytes;
  prefetch_unclassified += rhs.prefetch_unclassified;
  evictions += rhs.evictions;
  bytes_evicted += rhs.bytes_evicted;
  backend_submits += rhs.backend_submits;
  backend_completions += rhs.backend_completions;
  backend_fallbacks += rhs.backend_fallbacks;
  prefetch_seconds += rhs.prefetch_seconds;
  compute_seconds += rhs.compute_seconds;
  retire_seconds += rhs.retire_seconds;
  evict_seconds += rhs.evict_seconds;
  drive_seconds += rhs.drive_seconds;
  compute_duration.Merge(rhs.compute_duration);
  stall_duration.Merge(rhs.stall_duration);
  return *this;
}

PipelineStats PipelineStats::operator+(const PipelineStats& rhs) const {
  PipelineStats out = *this;
  out += rhs;
  return out;
}

io::ExecCounters PipelineStats::counters() const {
  io::ExecCounters out;
  out.passes = passes;
  out.chunks = chunks;
  out.prefetches = prefetches;
  out.prefetch_bytes = prefetch_bytes;
  out.evictions = evictions;
  out.bytes_evicted = bytes_evicted;
  out.prefetch_hits = prefetch_hits;
  out.stalls = stalls;
  out.stall_bytes = stall_bytes;
  out.prefetch_unclassified = prefetch_unclassified;
  out.backend_submits = backend_submits;
  out.backend_completions = backend_completions;
  out.backend_fallbacks = backend_fallbacks;
  return out;
}

PipelineStats PipelineStats::FromCounters(const io::ExecCounters& counters) {
  PipelineStats out;
  out.passes = counters.passes;
  out.chunks = counters.chunks;
  out.prefetches = counters.prefetches;
  out.prefetch_bytes = counters.prefetch_bytes;
  out.evictions = counters.evictions;
  out.bytes_evicted = counters.bytes_evicted;
  out.prefetch_hits = counters.prefetch_hits;
  out.stalls = counters.stalls;
  out.stall_bytes = counters.stall_bytes;
  out.prefetch_unclassified = counters.prefetch_unclassified;
  out.backend_submits = counters.backend_submits;
  out.backend_completions = counters.backend_completions;
  out.backend_fallbacks = counters.backend_fallbacks;
  return out;
}

double PipelineStats::PrefetchHitRate() const {
  const uint64_t raced = prefetch_hits + stalls;
  if (raced == 0) {
    return 0.0;
  }
  return static_cast<double>(prefetch_hits) / static_cast<double>(raced);
}

std::string PipelineStats::ToString() const {
  return util::StrFormat(
      "passes=%llu chunks=%llu prefetch=%llu (%s, hit %.0f%%) stalls=%llu "
      "(%s) warmup=%llu evict=%llu (%s) backend s/c/f=%llu/%llu/%llu "
      "stage s: drive=%.3f compute=%.3f "
      "retire=%.3f prefetch=%.3f evict=%.3f",
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(prefetches),
      util::HumanBytes(prefetch_bytes).c_str(), PrefetchHitRate() * 100.0,
      static_cast<unsigned long long>(stalls),
      util::HumanBytes(stall_bytes).c_str(),
      static_cast<unsigned long long>(prefetch_unclassified),
      static_cast<unsigned long long>(evictions),
      util::HumanBytes(bytes_evicted).c_str(),
      static_cast<unsigned long long>(backend_submits),
      static_cast<unsigned long long>(backend_completions),
      static_cast<unsigned long long>(backend_fallbacks),
      drive_seconds, compute_seconds,
      retire_seconds, prefetch_seconds, evict_seconds);
}

std::string PipelineStats::ToJson() const {
  // %.9f: per-chunk percentiles sit in the tens-of-microseconds range on
  // test datasets; the bench JSON's usual %.6f would round them to zero.
  return util::StrFormat(
      "{\"passes\": %llu, \"chunks\": %llu, \"prefetches\": %llu, "
      "\"prefetch_bytes\": %llu, \"evictions\": %llu, "
      "\"bytes_evicted\": %llu, \"prefetch_hits\": %llu, "
      "\"stalls\": %llu, \"stall_bytes\": %llu, "
      "\"prefetch_unclassified\": %llu, "
      "\"backend_submits\": %llu, \"backend_completions\": %llu, "
      "\"backend_fallbacks\": %llu, "
      "\"prefetch_seconds\": %.9f, \"compute_seconds\": %.9f, "
      "\"retire_seconds\": %.9f, \"evict_seconds\": %.9f, "
      "\"drive_seconds\": %.9f, "
      "\"compute_p50\": %.9f, \"compute_p95\": %.9f, "
      "\"compute_p99\": %.9f, "
      "\"stall_p50\": %.9f, \"stall_p95\": %.9f, \"stall_p99\": %.9f}",
      static_cast<unsigned long long>(passes),
      static_cast<unsigned long long>(chunks),
      static_cast<unsigned long long>(prefetches),
      static_cast<unsigned long long>(prefetch_bytes),
      static_cast<unsigned long long>(evictions),
      static_cast<unsigned long long>(bytes_evicted),
      static_cast<unsigned long long>(prefetch_hits),
      static_cast<unsigned long long>(stalls),
      static_cast<unsigned long long>(stall_bytes),
      static_cast<unsigned long long>(prefetch_unclassified),
      static_cast<unsigned long long>(backend_submits),
      static_cast<unsigned long long>(backend_completions),
      static_cast<unsigned long long>(backend_fallbacks),
      prefetch_seconds, compute_seconds, retire_seconds, evict_seconds,
      drive_seconds, compute_duration.Percentile(50),
      compute_duration.Percentile(95), compute_duration.Percentile(99),
      stall_duration.Percentile(50), stall_duration.Percentile(95),
      stall_duration.Percentile(99));
}

util::Result<PipelineStats> PipelineStats::FromJson(
    const util::JsonValue& value) {
  if (!value.is_object()) {
    return util::Status::InvalidArgument("PipelineStats JSON is not an object");
  }
  // Strict lookup: ToJson() always writes every key, so absence means the
  // payload is not (or no longer) a PipelineStats serialization.
  auto number = [&value](const char* key) -> util::Result<double> {
    const util::JsonValue* field = value.Find(key);
    if (field == nullptr || !field->is_number()) {
      return util::Status::InvalidArgument(
          std::string("PipelineStats JSON missing numeric key \"") + key +
          "\"");
    }
    return field->number_value;
  };
  PipelineStats out;
  auto counter = [&number](const char* key, uint64_t* dst) -> util::Status {
    M3_ASSIGN_OR_RETURN(double v, number(key));
    *dst = static_cast<uint64_t>(v);
    return util::Status::OK();
  };
  auto seconds = [&number](const char* key, double* dst) -> util::Status {
    M3_ASSIGN_OR_RETURN(double v, number(key));
    *dst = v;
    return util::Status::OK();
  };
  M3_RETURN_IF_ERROR(counter("passes", &out.passes));
  M3_RETURN_IF_ERROR(counter("chunks", &out.chunks));
  M3_RETURN_IF_ERROR(counter("prefetches", &out.prefetches));
  M3_RETURN_IF_ERROR(counter("prefetch_bytes", &out.prefetch_bytes));
  M3_RETURN_IF_ERROR(counter("evictions", &out.evictions));
  M3_RETURN_IF_ERROR(counter("bytes_evicted", &out.bytes_evicted));
  M3_RETURN_IF_ERROR(counter("prefetch_hits", &out.prefetch_hits));
  M3_RETURN_IF_ERROR(counter("stalls", &out.stalls));
  M3_RETURN_IF_ERROR(counter("stall_bytes", &out.stall_bytes));
  M3_RETURN_IF_ERROR(
      counter("prefetch_unclassified", &out.prefetch_unclassified));
  M3_RETURN_IF_ERROR(counter("backend_submits", &out.backend_submits));
  M3_RETURN_IF_ERROR(counter("backend_completions", &out.backend_completions));
  M3_RETURN_IF_ERROR(counter("backend_fallbacks", &out.backend_fallbacks));
  M3_RETURN_IF_ERROR(seconds("prefetch_seconds", &out.prefetch_seconds));
  M3_RETURN_IF_ERROR(seconds("compute_seconds", &out.compute_seconds));
  M3_RETURN_IF_ERROR(seconds("retire_seconds", &out.retire_seconds));
  M3_RETURN_IF_ERROR(seconds("evict_seconds", &out.evict_seconds));
  M3_RETURN_IF_ERROR(seconds("drive_seconds", &out.drive_seconds));
  // compute_p*/stall_p* are derived from the histograms, which ToJson()
  // does not serialize; the parsed stats carry empty histograms.
  return out;
}

}  // namespace m3::exec
