#include "exec/chunk_schedule.h"

#include <numeric>
#include <utility>

#include "util/random.h"

namespace m3::exec {

std::string ToString(ScanOrder order) {
  switch (order) {
    case ScanOrder::kSequential:
      return "sequential";
    case ScanOrder::kShuffled:
      return "shuffled";
    case ScanOrder::kStrided:
      return "strided";
  }
  return "unknown";
}

ChunkSchedule ChunkSchedule::Sequential(size_t num_chunks) {
  return ChunkSchedule(num_chunks, {});
}

ChunkSchedule ChunkSchedule::Shuffled(size_t num_chunks, uint64_t seed) {
  std::vector<size_t> order(num_chunks);
  std::iota(order.begin(), order.end(), size_t{0});
  util::Rng rng(seed);
  rng.Shuffle(&order);
  return ChunkSchedule(num_chunks, std::move(order));
}

ChunkSchedule ChunkSchedule::Strided(size_t num_chunks, size_t stride,
                                     size_t offset) {
  if (stride <= 1 || num_chunks == 0) {
    return Sequential(num_chunks);
  }
  // Only lanes below min(stride, num_chunks) contain chunks, so the lane
  // walk is bounded by the chunk count, never by a huge stride. Starting
  // past the populated lanes wraps through empty ones straight to lane 0.
  const size_t lanes = std::min(stride, num_chunks);
  size_t start = offset % stride;
  if (start >= lanes) {
    start = 0;
  }
  // stride >= num_chunks with a leading lane of 0 puts every chunk in its
  // own lane — the identity order — so keep the sequential fast paths
  // (madvise, byte-exact budget emulation) instead of storing a pointless
  // permutation. A rotated start is no longer the identity and falls
  // through to the general construction.
  if (start == 0 && stride >= num_chunks) {
    return Sequential(num_chunks);
  }
  std::vector<size_t> order;
  order.reserve(num_chunks);
  for (size_t i = 0; i < lanes; ++i) {
    for (size_t c = (start + i) % lanes; c < num_chunks; c += stride) {
      order.push_back(c);
    }
  }
  return ChunkSchedule(num_chunks, std::move(order));
}

ChunkSchedule ChunkSchedule::Make(ScanOrder order, size_t num_chunks,
                                  uint64_t seed, size_t stride,
                                  size_t offset) {
  switch (order) {
    case ScanOrder::kShuffled:
      return Shuffled(num_chunks, seed);
    case ScanOrder::kStrided:
      return Strided(num_chunks, stride, offset);
    case ScanOrder::kSequential:
      break;
  }
  return Sequential(num_chunks);
}

}  // namespace m3::exec
