#include "exec/chunk_pipeline.h"

#include <algorithm>
#include <future>
#include <utility>
#include <vector>

#include "io/io_stats.h"
#include "obs/trace_recorder.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace m3::exec {

namespace {

/// Static-storage backend name for trace args (TraceArg string values
/// must outlive the events; PrefetchBackendKindToString's string_view is
/// not guaranteed NUL-terminated).
const char* BackendTraceName(const io::PrefetchBackend* backend) {
  if (backend == nullptr) {
    return "none";
  }
  switch (backend->kind()) {
    case io::PrefetchBackendKind::kMadvise:
      return "madvise";
    case io::PrefetchBackendKind::kPread:
      return "pread";
    case io::PrefetchBackendKind::kUring:
      return "uring";
    case io::PrefetchBackendKind::kAuto:
      return "auto";
  }
  return "unknown";
}

}  // namespace

ChunkPipeline::ChunkPipeline(PipelineOptions options)
    : ChunkPipeline(MappedRegion(), std::move(options)) {}

ChunkPipeline::ChunkPipeline(MappedRegion region, PipelineOptions options)
    : region_(region), options_(options) {
  if (region_.mapping != nullptr) {
    M3_CHECK(region_.row_bytes > 0 || region_.byte_map != nullptr,
             "bound region needs row_bytes or a byte_map");
    if (options_.shared_prefetch_backend != nullptr) {
      backend_ = options_.shared_prefetch_backend;
    } else {
      owned_backend_ = io::MakePrefetchBackend(
          options_.prefetch_backend, options_.prefetch_backend_options,
          region_.mapping);
      backend_ = owned_backend_.get();
    }
    if (options_.shared_io_pool != nullptr) {
      M3_CHECK(options_.shared_io_pool->num_threads() == 1,
               "shared_io_pool must be single-threaded (prefetch FIFO)");
      io_pool_ = options_.shared_io_pool;
    } else {
      // One thread keeps prefetches completing in issue order, which makes
      // prefetched_through_ a plain high-water mark.
      owned_io_pool_ = std::make_unique<util::ThreadPool>(1);
      io_pool_ = owned_io_pool_.get();
    }
  }
  if (options_.num_workers >= 2) {
    if (options_.shared_compute_pool != nullptr) {
      compute_pool_ = options_.shared_compute_pool;
    } else {
      owned_compute_pool_ =
          std::make_unique<util::ThreadPool>(options_.num_workers);
      compute_pool_ = owned_compute_pool_.get();
    }
  }
}

ChunkPipeline::~ChunkPipeline() = default;

size_t ChunkPipeline::max_in_flight() const {
  if (compute_pool_ == nullptr) {
    return 1;
  }
  return 2 * compute_pool_->num_threads();
}

PipelineStats ChunkPipeline::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

PipelineStats ChunkPipeline::ConsumeStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  PipelineStats out = stats_;
  stats_ = PipelineStats();
  return out;
}

void ChunkPipeline::AppendChunkSpans(size_t row_begin, size_t row_end,
                                     std::vector<ByteSpan>* out) const {
  if (region_.byte_map != nullptr) {
    region_.byte_map->AppendSpans(row_begin, row_end, out);
    return;
  }
  const uint64_t length =
      static_cast<uint64_t>(row_end - row_begin) * region_.row_bytes;
  if (length > 0) {
    out->push_back(
        ByteSpan{region_.base_offset + row_begin * region_.row_bytes, length});
  }
}

uint64_t ChunkPipeline::ChunkBytes(size_t row_begin, size_t row_end) const {
  if (region_.byte_map == nullptr) {
    return static_cast<uint64_t>(row_end - row_begin) * region_.row_bytes;
  }
  std::vector<ByteSpan> spans;
  region_.byte_map->AppendSpans(row_begin, row_end, &spans);
  uint64_t total = 0;
  for (const ByteSpan& span : spans) {
    total += span.length;
  }
  return total;
}

void ChunkPipeline::RequestPrefetchThrough(const la::Chunker& chunker,
                                           const ChunkSchedule& schedule,
                                           size_t goal) {
  if (io_pool_ == nullptr || options_.readahead_chunks == 0) {
    return;
  }
  goal = std::min(goal, schedule.num_chunks());
  for (size_t pos = prefetch_goal_; pos < goal; ++pos) {
    const la::Chunker::Range range = chunker.Chunk(schedule.At(pos));
    std::vector<ByteSpan> spans;
    AppendChunkSpans(range.begin, range.end, &spans);
    // Always submit the task, even for a zero-byte chunk (all-empty sparse
    // rows): the watermark must advance and the chunk must count as one
    // prefetch, or every later position would misclassify as a stall and
    // the prefetches == hits + stalls + unclassified invariant would break.
    const io::MemoryMappedFile* mapping = region_.mapping;
    io_pool_->Submit([this, mapping, spans = std::move(spans), pos] {
      obs::NameThisThread("pipeline-io");
      uint64_t total_bytes = 0;
      for (const ByteSpan& span : spans) {
        total_bytes += span.length;
      }
      obs::ScopedSpan span("exec", "prefetch");
      if (span.armed()) {
        span.AddArg("position", static_cast<uint64_t>(pos));
        span.AddArg("bytes", total_bytes);
        span.AddArg("backend", BackendTraceName(backend_));
      }
      util::Stopwatch watch;
      // Best effort: a failed prefetch only loses overlap, never data.
      io::PrefetchOutcome outcome;
      for (const ByteSpan& range : spans) {
        if (range.length == 0) {
          continue;
        }
        if (auto result =
                backend_->Prefetch(*mapping, range.offset, range.length);
            result.ok()) {
          outcome.submits += result.value().submits;
          outcome.completions += result.value().completions;
          outcome.fallbacks += result.value().fallbacks;
        }
      }
      const double elapsed = watch.ElapsedSeconds();
      if (span.armed()) {
        span.AddArg("submits", static_cast<uint64_t>(outcome.submits));
      }
      prefetched_through_.store(pos + 1, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.prefetches;
      stats_.prefetch_bytes += total_bytes;
      stats_.prefetch_seconds += elapsed;
      stats_.backend_submits += outcome.submits;
      stats_.backend_completions += outcome.completions;
      stats_.backend_fallbacks += outcome.fallbacks;
    });
  }
  prefetch_goal_ = std::max(prefetch_goal_, goal);
}

void ChunkPipeline::RunMapStage(const ScheduledChunkFn& map, size_t position,
                                size_t chunk, size_t row_begin,
                                size_t row_end) {
  // Warm-up positions are dispatched right after their prefetch is issued,
  // so losing that race says nothing about the disk; count them as
  // unclassified instead so every prefetched chunk is accounted once:
  // prefetches == prefetch_hits + stalls + prefetch_unclassified.
  // RaceStage::kRetire passes touch their pages at retire, not here, so
  // their classification happens in ClassifyRetireRace instead.
  const bool prefetching = bound() && options_.readahead_chunks > 0 &&
                           race_stage_ == RaceStage::kMap;
  const bool racing = prefetching && position >= stall_classify_from_;
  bool hit = false;
  if (racing) {
    hit = prefetched_through_.load(std::memory_order_acquire) > position;
  }
  obs::ScopedSpan span("exec", "compute");
  if (span.armed()) {
    span.AddArg("position", static_cast<uint64_t>(position));
    span.AddArg("chunk", static_cast<uint64_t>(chunk));
    span.AddArg("rows", static_cast<uint64_t>(row_end - row_begin));
    if (prefetching) {
      span.AddArg("race", racing ? (hit ? "hit" : "stall") : "warmup");
    }
  }
  util::Stopwatch watch;
  map(position, chunk, row_begin, row_end);
  const double elapsed = watch.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.compute_seconds += elapsed;
  stats_.compute_duration.Add(elapsed);
  if (racing) {
    if (hit) {
      ++stats_.prefetch_hits;
    } else {
      ++stats_.stalls;
      stats_.stall_bytes += ChunkBytes(row_begin, row_end);
      // The map stage touches the pages here, so its wall time carries the
      // unhidden fault-service cost — the stall's per-chunk duration.
      stats_.stall_duration.Add(elapsed);
    }
  } else if (prefetching) {
    ++stats_.prefetch_unclassified;
  }
}

void ChunkPipeline::ClassifyRetireRace(size_t position,
                                       const la::Chunker::Range& range) {
  if (race_stage_ != RaceStage::kRetire || !bound() ||
      options_.readahead_chunks == 0) {
    return;
  }
  // Sampled on the driving thread just before the chunk's retire — the
  // stage that touches the pages of a retire-compute scan. Retire order
  // is position order at every worker count, so these counts do not
  // depend on compute fan-out.
  const bool racing = position >= stall_classify_from_;
  const bool hit =
      prefetched_through_.load(std::memory_order_acquire) > position;
  last_retire_race_ = racing ? (hit ? "hit" : "stall") : "warmup";
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!racing) {
    ++stats_.prefetch_unclassified;
  } else if (hit) {
    ++stats_.prefetch_hits;
  } else {
    ++stats_.stalls;
    stats_.stall_bytes += ChunkBytes(range.begin, range.end);
  }
}

void ChunkPipeline::RunRetireStage(const ScheduledChunkFn& retire,
                                   size_t position, size_t chunk,
                                   size_t row_begin, size_t row_end) {
  // For RaceStage::kRetire passes this stage touches the pages, so its
  // wall time is the stalled chunk's duration; consume the classification
  // ClassifyRetireRace left for this position.
  const char* race = last_retire_race_;
  last_retire_race_ = nullptr;
  obs::ScopedSpan span("exec", "retire");
  if (span.armed()) {
    span.AddArg("position", static_cast<uint64_t>(position));
    span.AddArg("chunk", static_cast<uint64_t>(chunk));
    if (race != nullptr) {
      span.AddArg("race", race);
    }
  }
  util::Stopwatch watch;
  retire(position, chunk, row_begin, row_end);
  const double elapsed = watch.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.retire_seconds += elapsed;
  if (race != nullptr && race[0] == 's') {  // "stall"
    stats_.stall_duration.Add(elapsed);
  }
}

void ChunkPipeline::EvictRetired(const la::Chunker::Range& range) {
  if (!bound() || options_.ram_budget_bytes == 0) {
    return;
  }
  // The retired chunk's spans join the trailing residency window; the
  // oldest-visited spans beyond the budget leave it. Visit order — not
  // file order — so the window is correct under any schedule. A ragged
  // (byte_map) chunk holds one entry per span, all admitted together.
  std::vector<ByteSpan> spans;
  AppendChunkSpans(range.begin, range.end, &spans);
  for (const ByteSpan& span : spans) {
    if (span.length == 0) {
      continue;
    }
    // A revisited chunk (window carried across passes) would otherwise hold
    // two entries: its bytes double-counted and the stale entry later
    // evicting pages this visit just re-admitted. Keep only the newest.
    // Spans are a pure function of the row range, so offset identity is
    // chunk identity.
    for (auto it = resident_window_.begin(); it != resident_window_.end();
         ++it) {
      if (it->first == span.offset) {
        resident_window_bytes_ -= it->second;
        resident_window_.erase(it);
        break;
      }
    }
    resident_window_.emplace_back(span.offset, span.length);
    resident_window_bytes_ += span.length;
  }
  while (resident_window_bytes_ > options_.ram_budget_bytes &&
         !resident_window_.empty()) {
    const auto [offset, length] = resident_window_.front();
    resident_window_.pop_front();
    resident_window_bytes_ -= length;
    const io::MemoryMappedFile* mapping = region_.mapping;
    auto evict = [this, mapping, offset, length] {
      obs::NameThisThread("pipeline-io");
      obs::ScopedSpan span("exec", "evict");
      if (span.armed()) {
        span.AddArg("bytes", static_cast<uint64_t>(length));
      }
      util::Stopwatch watch;
      util::Status status = mapping->Evict(offset, length);
      const double elapsed = watch.ElapsedSeconds();
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.evict_seconds += elapsed;
      if (status.ok()) {
        ++stats_.evictions;
        stats_.bytes_evicted += length;
      }
    };
    if (options_.synchronous_eviction) {
      evict();
    } else {
      io_pool_->Submit(std::move(evict));
    }
  }
}

void ChunkPipeline::RunSerial(const la::Chunker& chunker,
                              const ChunkSchedule& schedule,
                              const ScheduledChunkFn& map,
                              const ScheduledChunkFn& retire) {
  const size_t n = schedule.num_chunks();
  for (size_t pos = 0; pos < n; ++pos) {
    // Keep the prefetch stage `readahead_chunks` positions ahead of compute.
    RequestPrefetchThrough(chunker, schedule, pos + 1 + options_.readahead_chunks);
    const size_t chunk = schedule.At(pos);
    const la::Chunker::Range range = chunker.Chunk(chunk);
    RunMapStage(map, pos, chunk, range.begin, range.end);
    ClassifyRetireRace(pos, range);
    if (retire) {
      RunRetireStage(retire, pos, chunk, range.begin, range.end);
    }
    EvictRetired(range);
  }
}

void ChunkPipeline::RunParallel(const la::Chunker& chunker,
                                const ChunkSchedule& schedule,
                                const ScheduledChunkFn& map,
                                const ScheduledChunkFn& retire) {
  const size_t n = schedule.num_chunks();
  const size_t window = max_in_flight();
  std::deque<std::pair<size_t, std::future<void>>> in_flight;
  size_t next = 0;
  try {
    for (size_t retiring = 0; retiring < n; ++retiring) {
      while (next < n && next - retiring < window) {
        RequestPrefetchThrough(chunker, schedule,
                               next + 1 + options_.readahead_chunks);
        const size_t chunk = schedule.At(next);
        const la::Chunker::Range range = chunker.Chunk(chunk);
        in_flight.emplace_back(
            next, compute_pool_->Submit([this, &map, p = next, chunk, range] {
              obs::NameThisThread("pipeline-worker");
              RunMapStage(map, p, chunk, range.begin, range.end);
            }));
        ++next;
      }
      in_flight.front().second.get();  // in-order retirement barrier
      in_flight.pop_front();
      const size_t chunk = schedule.At(retiring);
      const la::Chunker::Range range = chunker.Chunk(chunk);
      ClassifyRetireRace(retiring, range);
      if (retire) {
        RunRetireStage(retire, retiring, chunk, range.begin, range.end);
      }
      EvictRetired(range);
    }
  } catch (...) {
    // A throwing functor must not leave workers running maps that
    // reference `map` (and the caller's stack) after this frame unwinds:
    // wait out every in-flight chunk, then propagate the first exception.
    // Later chunks' stored exceptions are dropped with their futures.
    for (auto& [pos, future] : in_flight) {
      if (future.valid()) {
        future.wait();
      }
    }
    throw;
  }
}

void ChunkPipeline::Run(const la::Chunker& chunker, const ChunkFn& map,
                        const ChunkFn& retire) {
  M3_CHECK(map != nullptr, "null chunk functor");
  Run(chunker, ChunkSchedule::Sequential(chunker.NumChunks()),
      [&map](size_t, size_t chunk, size_t row_begin, size_t row_end) {
        map(chunk, row_begin, row_end);
      },
      retire ? ScheduledChunkFn([&retire](size_t, size_t chunk,
                                          size_t row_begin, size_t row_end) {
          retire(chunk, row_begin, row_end);
        })
             : ScheduledChunkFn());
}

void ChunkPipeline::Run(const la::Chunker& chunker,
                        const ChunkSchedule& schedule,
                        const ScheduledChunkFn& map,
                        const ScheduledChunkFn& retire,
                        RaceStage race_stage) {
  M3_CHECK(map != nullptr, "null chunk functor");
  M3_CHECK(schedule.num_chunks() == chunker.NumChunks(),
           "schedule covers %zu chunks, chunker has %zu",
           schedule.num_chunks(), chunker.NumChunks());
  // Marks this pass as in flight for the ExecCounters quiescence contract
  // (io/io_stats.h): Reset/SetExecCounters CHECK-fail while any pass holds
  // this guard.
  const io::ScopedExecCountersPass pass_guard;
  obs::NameThisThread("driver");
  obs::ScopedSpan pass_span("exec", "pass");
  if (pass_span.armed()) {
    pass_span.AddArg("chunks", static_cast<uint64_t>(chunker.NumChunks()));
    pass_span.AddArg("workers", static_cast<uint64_t>(options_.num_workers));
  }
  PipelineStats before;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    before = stats_;
  }
  // Started after the stats snapshot so drive time measures only the pass,
  // not the snapshot's mutex wait.
  util::Stopwatch watch;
  prefetch_goal_ = 0;
  prefetched_through_.store(0, std::memory_order_release);
  // resident_window_ deliberately carries over: the previous pass's
  // trailing window is still resident, so dropping it from accounting at
  // an epoch boundary would let peak residency reach ~2x the budget while
  // the new pass fills a fresh window. Revisits dedupe their stale entry
  // at retire (see EvictRetired); the residual cost is a stale entry
  // popping while its chunk is prefetched-but-not-yet-visited early in
  // the next pass — one wasted prefetch, never an accounting leak.
  race_stage_ = race_stage;
  // Warm-up exclusion window. At kMap the dispatch cursor runs up to the
  // in-flight window ahead of retire, so fan-out widens the set of
  // positions whose prefetch was issued with no compute lead time. At
  // kRetire the sampling point is the (always serial, in-order) retire
  // cursor, so the window is the readahead depth at every worker count —
  // which is what keeps retire-race counts comparable across {0,2,4}
  // workers.
  stall_classify_from_ =
      compute_pool_ != nullptr && race_stage_ == RaceStage::kMap
          ? std::max(options_.readahead_chunks, max_in_flight())
          : options_.readahead_chunks;
  if (bound()) {
    // Kernel-side sequential readahead would race ahead in file order; on
    // a permuted schedule that wastes RAM on chunks the pass visits much
    // later, so downgrade to kNormal and let the explicit WILLNEED stage
    // follow the schedule instead.
    io::Advice advice = options_.advice;
    if (!schedule.is_sequential() && advice == io::Advice::kSequential) {
      advice = io::Advice::kNormal;
    }
    ByteSpan extent{region_.base_offset,
                    chunker.total_rows() * region_.row_bytes};
    if (region_.byte_map != nullptr) {
      extent = region_.byte_map->Extent();
    }
    region_.mapping->AdviseRange(advice, extent.offset, extent.length)
        .IgnoreError();
    // Warm the pipe before compute starts.
    RequestPrefetchThrough(chunker, schedule, options_.readahead_chunks);
  }
  try {
    if (compute_pool_ != nullptr) {
      RunParallel(chunker, schedule, map, retire);
    } else {
      RunSerial(chunker, schedule, map, retire);
    }
  } catch (...) {
    if (io_pool_ != nullptr) {
      io_pool_->Wait();  // outstanding prefetch/evict tasks use `this`
    }
    throw;
  }
  if (io_pool_ != nullptr) {
    io_pool_->Wait();  // settle outstanding prefetches/evictions
  }
  // Report this pass's increments to the process-wide counters.
  io::ExecCounters delta;
  PipelineStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.passes;
    stats_.chunks += chunker.NumChunks();
    stats_.drive_seconds += watch.ElapsedSeconds();
    delta = stats_.counters() - before.counters();
    snapshot = stats_;
  }
  io::AddExecCounters(delta);
  if (obs::TracingEnabled()) {
    // Same serialization the bench JSON emits, so a trace is self-describing.
    obs::TraceRecorder::Get().SetMetadata("pipeline_stats", snapshot.ToJson());
  }
}

void RunPass(ChunkPipeline* pipeline, const la::Chunker& chunker,
             const ChunkFn& map, const ChunkFn& retire) {
  RunPass(pipeline, chunker, ChunkSchedule::Sequential(chunker.NumChunks()),
          [&map](size_t, size_t chunk, size_t row_begin, size_t row_end) {
            map(chunk, row_begin, row_end);
          },
          retire ? ScheduledChunkFn([&retire](size_t, size_t chunk,
                                              size_t row_begin,
                                              size_t row_end) {
              retire(chunk, row_begin, row_end);
            })
                 : ScheduledChunkFn());
}

void RunPass(ChunkPipeline* pipeline, const la::Chunker& chunker,
             const ChunkSchedule& schedule, const ScheduledChunkFn& map,
             const ScheduledChunkFn& retire, RaceStage race_stage) {
  if (pipeline != nullptr) {
    pipeline->Run(chunker, schedule, map, retire, race_stage);
    return;
  }
  M3_CHECK(schedule.num_chunks() == chunker.NumChunks(),
           "schedule covers %zu chunks, chunker has %zu",
           schedule.num_chunks(), chunker.NumChunks());
  for (size_t pos = 0; pos < schedule.num_chunks(); ++pos) {
    const size_t chunk = schedule.At(pos);
    const la::Chunker::Range range = chunker.Chunk(chunk);
    map(pos, chunk, range.begin, range.end);
    if (retire) {
      retire(pos, chunk, range.begin, range.end);
    }
  }
}

}  // namespace m3::exec
