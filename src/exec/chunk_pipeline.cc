#include "exec/chunk_pipeline.h"

#include <algorithm>
#include <deque>
#include <future>
#include <utility>
#include <vector>

#include "io/io_stats.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace m3::exec {

ChunkPipeline::ChunkPipeline(PipelineOptions options)
    : ChunkPipeline(MappedRegion(), std::move(options)) {}

ChunkPipeline::ChunkPipeline(MappedRegion region, PipelineOptions options)
    : region_(region), options_(options) {
  if (region_.mapping != nullptr) {
    M3_CHECK(region_.row_bytes > 0, "row_bytes must be positive");
    // One thread keeps prefetches completing in issue order, which makes
    // prefetched_through_ a plain high-water mark.
    io_pool_ = std::make_unique<util::ThreadPool>(1);
  }
  if (options_.num_workers >= 2) {
    compute_pool_ = std::make_unique<util::ThreadPool>(options_.num_workers);
  }
}

ChunkPipeline::~ChunkPipeline() = default;

size_t ChunkPipeline::max_in_flight() const {
  if (compute_pool_ == nullptr) {
    return 1;
  }
  return 2 * compute_pool_->num_threads();
}

PipelineStats ChunkPipeline::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

PipelineStats ChunkPipeline::ConsumeStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  PipelineStats out = stats_;
  stats_ = PipelineStats();
  return out;
}

void ChunkPipeline::RequestPrefetchThrough(const la::RowChunker& chunker,
                                           size_t goal) {
  if (io_pool_ == nullptr || options_.readahead_chunks == 0) {
    return;
  }
  goal = std::min(goal, chunker.NumChunks());
  for (size_t c = prefetch_goal_; c < goal; ++c) {
    const la::RowChunker::Range range = chunker.Chunk(c);
    const uint64_t offset = region_.base_offset + range.begin * region_.row_bytes;
    const uint64_t length = range.size() * region_.row_bytes;
    const io::MemoryMappedFile* mapping = region_.mapping;
    io_pool_->Submit([this, mapping, offset, length, c] {
      util::Stopwatch watch;
      // Best effort: a failed WILLNEED only loses overlap, never data.
      mapping->Prefetch(offset, length).IgnoreError();
      const double elapsed = watch.ElapsedSeconds();
      prefetched_through_.store(c + 1, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.prefetches;
      stats_.prefetch_bytes += length;
      stats_.prefetch_seconds += elapsed;
    });
  }
  prefetch_goal_ = std::max(prefetch_goal_, goal);
}

void ChunkPipeline::RunMapStage(const ChunkFn& map, size_t chunk,
                                size_t row_begin, size_t row_end) {
  // Warm-up chunks are dispatched right after their prefetch is issued, so
  // losing that race says nothing about the disk; skip classifying them.
  const bool racing = bound() && options_.readahead_chunks > 0 &&
                      chunk >= stall_classify_from_;
  bool hit = false;
  if (racing) {
    hit = prefetched_through_.load(std::memory_order_acquire) > chunk;
  }
  util::Stopwatch watch;
  map(chunk, row_begin, row_end);
  const double elapsed = watch.ElapsedSeconds();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.compute_seconds += elapsed;
  if (racing) {
    if (hit) {
      ++stats_.prefetch_hits;
    } else {
      ++stats_.stalls;
    }
  }
}

void ChunkPipeline::EvictBehind(size_t row_end) {
  if (!bound() || options_.ram_budget_bytes == 0) {
    return;
  }
  const uint64_t cursor = row_end * region_.row_bytes;
  if (cursor <= options_.ram_budget_bytes) {
    return;
  }
  const uint64_t evict_end = cursor - options_.ram_budget_bytes;
  if (evict_end <= evict_cursor_) {
    return;
  }
  const uint64_t offset = region_.base_offset + evict_cursor_;
  const uint64_t length = evict_end - evict_cursor_;
  evict_cursor_ = evict_end;
  const io::MemoryMappedFile* mapping = region_.mapping;
  auto evict = [this, mapping, offset, length] {
    util::Stopwatch watch;
    util::Status status = mapping->Evict(offset, length);
    const double elapsed = watch.ElapsedSeconds();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.evict_seconds += elapsed;
    if (status.ok()) {
      ++stats_.evictions;
      stats_.bytes_evicted += length;
    }
  };
  if (options_.synchronous_eviction) {
    evict();
  } else {
    io_pool_->Submit(std::move(evict));
  }
}

void ChunkPipeline::RunSerial(const la::RowChunker& chunker, const ChunkFn& map,
                              const ChunkFn& retire) {
  const size_t n = chunker.NumChunks();
  for (size_t c = 0; c < n; ++c) {
    // Keep the prefetch stage `readahead_chunks` ahead of compute.
    RequestPrefetchThrough(chunker, c + 1 + options_.readahead_chunks);
    const la::RowChunker::Range range = chunker.Chunk(c);
    RunMapStage(map, c, range.begin, range.end);
    if (retire) {
      retire(c, range.begin, range.end);
    }
    EvictBehind(range.end);
  }
}

void ChunkPipeline::RunParallel(const la::RowChunker& chunker,
                                const ChunkFn& map, const ChunkFn& retire) {
  const size_t n = chunker.NumChunks();
  const size_t window = max_in_flight();
  std::deque<std::pair<size_t, std::future<void>>> in_flight;
  size_t next = 0;
  for (size_t retiring = 0; retiring < n; ++retiring) {
    while (next < n && next - retiring < window) {
      RequestPrefetchThrough(chunker, next + 1 + options_.readahead_chunks);
      const la::RowChunker::Range range = chunker.Chunk(next);
      in_flight.emplace_back(
          next, compute_pool_->Submit([this, &map, c = next, range] {
            RunMapStage(map, c, range.begin, range.end);
          }));
      ++next;
    }
    in_flight.front().second.get();  // in-order retirement barrier
    const la::RowChunker::Range range = chunker.Chunk(retiring);
    if (retire) {
      retire(retiring, range.begin, range.end);
    }
    EvictBehind(range.end);
    in_flight.pop_front();
  }
}

void ChunkPipeline::Run(const la::RowChunker& chunker, const ChunkFn& map,
                        const ChunkFn& retire) {
  M3_CHECK(map != nullptr, "null chunk functor");
  util::Stopwatch watch;
  PipelineStats before;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    before = stats_;
  }
  prefetch_goal_ = 0;
  prefetched_through_.store(0, std::memory_order_release);
  evict_cursor_ = 0;
  stall_classify_from_ =
      compute_pool_ != nullptr
          ? std::max(options_.readahead_chunks, max_in_flight())
          : options_.readahead_chunks;
  if (bound()) {
    region_.mapping
        ->AdviseRange(options_.advice, region_.base_offset,
                      chunker.total_rows() * region_.row_bytes)
        .IgnoreError();
    // Warm the pipe before compute starts.
    RequestPrefetchThrough(chunker, options_.readahead_chunks);
  }
  if (compute_pool_ != nullptr) {
    RunParallel(chunker, map, retire);
  } else {
    RunSerial(chunker, map, retire);
  }
  if (io_pool_ != nullptr) {
    io_pool_->Wait();  // settle outstanding prefetches/evictions
  }
  // Report this pass's increments to the process-wide counters.
  io::ExecCounters delta;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.passes;
    stats_.chunks += chunker.NumChunks();
    stats_.drive_seconds += watch.ElapsedSeconds();
    delta = stats_.counters() - before.counters();
  }
  io::AddExecCounters(delta);
}

void RunPass(ChunkPipeline* pipeline, const la::RowChunker& chunker,
             const ChunkFn& map, const ChunkFn& retire) {
  if (pipeline != nullptr) {
    pipeline->Run(chunker, map, retire);
    return;
  }
  for (size_t c = 0; c < chunker.NumChunks(); ++c) {
    const la::RowChunker::Range range = chunker.Chunk(c);
    map(c, range.begin, range.end);
    if (retire) {
      retire(c, range.begin, range.end);
    }
  }
}

}  // namespace m3::exec
