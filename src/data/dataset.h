#ifndef M3_DATA_DATASET_H_
#define M3_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/buffered_io.h"
#include "la/matrix.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::data {

/// \brief On-disk layout of an M3 dataset file.
///
/// The format is designed for memory mapping:
///   [0, 4096)                    header page (fixed size, versioned)
///   [4096, 4096 + rows*cols*8)   dense row-major double feature matrix
///   [labels_offset, +rows*8)     double labels, one per row
///
/// Features start on a page boundary so a MatrixView over the mapping is
/// aligned, and the whole feature block is one contiguous sequential scan —
/// the access pattern M3's performance story depends on.
struct DatasetMeta {
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint32_t num_classes = 0;
  uint64_t features_offset = 0;
  uint64_t labels_offset = 0;

  /// Bytes of the feature matrix.
  uint64_t FeatureBytes() const { return rows * cols * sizeof(double); }
  /// Total file size implied by the meta.
  uint64_t FileBytes() const { return labels_offset + rows * sizeof(double); }
};

/// Size of the reserved header page.
inline constexpr uint64_t kDatasetHeaderBytes = 4096;

/// \brief Streams rows into a new dataset file.
///
/// Features are written sequentially (buffered) as they arrive; labels are
/// held in memory (8 bytes/row) and written behind the feature block by
/// Finalize(), which also stamps the header. A writer that is dropped
/// without Finalize() leaves an unreadable file by design.
class DatasetWriter {
 public:
  static util::Result<DatasetWriter> Create(const std::string& path,
                                            uint64_t cols);

  DatasetWriter(DatasetWriter&&) = default;
  DatasetWriter& operator=(DatasetWriter&&) = default;

  /// Appends one row. \pre features.size() == cols.
  util::Status AppendRow(la::ConstVectorView features, double label);

  /// Appends `count` rows from a packed row-major buffer.
  util::Status AppendRows(const double* features, const double* labels,
                          uint64_t count);

  uint64_t rows_written() const { return labels_.size(); }

  /// Writes labels + header and closes the file.
  util::Status Finalize(uint32_t num_classes);

 private:
  DatasetWriter(io::BufferedWriter writer, std::string path, uint64_t cols)
      : writer_(std::move(writer)), path_(std::move(path)), cols_(cols) {}

  io::BufferedWriter writer_;
  std::string path_;
  uint64_t cols_;
  std::vector<double> labels_;
  bool finalized_ = false;
};

/// \brief Reads and validates the header page of a dataset file.
util::Result<DatasetMeta> ReadDatasetMeta(const std::string& path);

/// \brief Writes a complete in-memory matrix + labels as a dataset file.
util::Status WriteDataset(const std::string& path, la::ConstMatrixView x,
                          const std::vector<double>& labels,
                          uint32_t num_classes);

/// \brief Generates an InfiMNIST-style dataset file of `count` images.
///
/// Rows are 784 doubles in [0, 255] (no preprocessing, like the paper);
/// labels are the digit classes 0..9. Generation is deterministic in
/// `seed` and parallelized across the thread pool. `binary_labels`
/// collapses classes to {0, 1} (digit < 5 -> 0) for binary logistic
/// regression experiments.
util::Status GenerateInfimnistDataset(const std::string& path, uint64_t count,
                                      uint64_t seed, bool binary_labels);

}  // namespace m3::data

#endif  // M3_DATA_DATASET_H_
