#include "data/idx_format.h"

#include <cstring>

#include "io/buffered_io.h"
#include "util/format.h"

namespace m3::data {

using util::Result;
using util::Status;

namespace {

constexpr uint8_t kUnsignedByteType = 0x08;

Status WriteIdx(const std::string& path, uint8_t ndims,
                const std::vector<uint32_t>& dims,
                const std::vector<uint8_t>& payload) {
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      io::BufferedWriter::Create(path));
  const uint8_t magic[4] = {0, 0, kUnsignedByteType, ndims};
  M3_RETURN_IF_ERROR(writer.Append(magic, sizeof(magic)));
  for (uint32_t dim : dims) {
    uint8_t be[4];
    StoreBigEndianU32(dim, be);
    M3_RETURN_IF_ERROR(writer.Append(be, sizeof(be)));
  }
  M3_RETURN_IF_ERROR(writer.Append(payload.data(), payload.size()));
  return writer.Close();
}

}  // namespace

// Byte-shift decode: endian-independent and alignment-free, unlike the
// previous load-then-bswap (which was also host-endian-dependent: the
// swap only round-tripped on little-endian machines).
uint32_t LoadBigEndianU32(const void* bytes) {
  uint8_t b[4];
  std::memcpy(b, bytes, sizeof(b));
  return (uint32_t{b[0]} << 24) | (uint32_t{b[1]} << 16) |
         (uint32_t{b[2]} << 8) | uint32_t{b[3]};
}

void StoreBigEndianU32(uint32_t value, void* bytes) {
  const uint8_t b[4] = {static_cast<uint8_t>(value >> 24),
                        static_cast<uint8_t>(value >> 16),
                        static_cast<uint8_t>(value >> 8),
                        static_cast<uint8_t>(value)};
  std::memcpy(bytes, b, sizeof(b));
}

uint64_t IdxData::NumElements() const {
  uint64_t n = dims.empty() ? 0 : 1;
  for (uint32_t d : dims) {
    n *= d;
  }
  return n;
}

Result<IdxData> ReadIdx(const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::BufferedReader reader, io::BufferedReader::Open(path));
  uint8_t magic[4];
  M3_RETURN_IF_ERROR(reader.ReadExact(magic, sizeof(magic)));
  if (magic[0] != 0 || magic[1] != 0) {
    return Status::InvalidArgument("not an IDX file: " + path);
  }
  if (magic[2] != kUnsignedByteType) {
    return Status::NotSupported(
        util::StrFormat("IDX element type 0x%02x unsupported (only ubyte)",
                        magic[2]));
  }
  const uint8_t ndims = magic[3];
  if (ndims == 0 || ndims > 4) {
    return Status::InvalidArgument(
        util::StrFormat("IDX dimension count %u out of range", ndims));
  }
  IdxData data;
  data.dims.resize(ndims);
  for (uint8_t i = 0; i < ndims; ++i) {
    uint8_t be[4];
    M3_RETURN_IF_ERROR(reader.ReadExact(be, sizeof(be)));
    data.dims[i] = LoadBigEndianU32(be);
  }
  const uint64_t elements = data.NumElements();
  const uint64_t header = 4 + 4ull * ndims;
  if (reader.file_size() != header + elements) {
    return Status::InvalidArgument(
        util::StrFormat("IDX payload size mismatch: header says %llu "
                        "elements, file has %llu payload bytes",
                        static_cast<unsigned long long>(elements),
                        static_cast<unsigned long long>(
                            reader.file_size() - header)));
  }
  data.bytes.resize(elements);
  if (elements > 0) {
    M3_RETURN_IF_ERROR(reader.ReadExact(data.bytes.data(), elements));
  }
  return data;
}

Status WriteIdxImages(const std::string& path,
                      const std::vector<uint8_t>& pixels, uint32_t count,
                      uint32_t rows, uint32_t cols) {
  const uint64_t expected =
      static_cast<uint64_t>(count) * rows * cols;
  if (pixels.size() != expected) {
    return Status::InvalidArgument(util::StrFormat(
        "pixel buffer has %zu bytes, expected %llu", pixels.size(),
        static_cast<unsigned long long>(expected)));
  }
  return WriteIdx(path, 3, {count, rows, cols}, pixels);
}

Status WriteIdxLabels(const std::string& path,
                      const std::vector<uint8_t>& labels) {
  return WriteIdx(path, 1, {static_cast<uint32_t>(labels.size())}, labels);
}

}  // namespace m3::data
