#include "data/infimnist.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace m3::data {

namespace {

/// A 2D point in glyph space ([0,1] x [0,1], y growing downward).
struct Point {
  double x;
  double y;
};

/// Polyline stroke description of one digit prototype.
using Stroke = std::vector<Point>;

/// Appends an elliptical arc (polygon approximation) to a stroke.
Stroke Ellipse(double cx, double cy, double rx, double ry, int segments = 20,
               double start = 0.0, double sweep = 2 * M_PI) {
  Stroke stroke;
  stroke.reserve(segments + 1);
  for (int i = 0; i <= segments; ++i) {
    const double t = start + sweep * i / segments;
    stroke.push_back({cx + rx * std::sin(t), cy - ry * std::cos(t)});
  }
  return stroke;
}

/// Stroke sets for each digit 0..9, hand-laid-out in [0,1]^2.
const std::vector<std::vector<Stroke>>& DigitStrokes() {
  static const std::vector<std::vector<Stroke>>* strokes = [] {
    auto* s = new std::vector<std::vector<Stroke>>(10);
    // 0: single ellipse.
    (*s)[0] = {Ellipse(0.5, 0.5, 0.21, 0.3)};
    // 1: serif + vertical.
    (*s)[1] = {{{0.38, 0.3}, {0.52, 0.16}, {0.52, 0.84}}};
    // 2: top hook, diagonal, base bar.
    (*s)[2] = {{{0.32, 0.3},
                {0.36, 0.2},
                {0.5, 0.15},
                {0.64, 0.2},
                {0.68, 0.32},
                {0.6, 0.47},
                {0.42, 0.62},
                {0.3, 0.8}},
               {{0.3, 0.8}, {0.7, 0.8}}};
    // 3: two right-facing bumps.
    (*s)[3] = {{{0.32, 0.22},
                {0.46, 0.15},
                {0.62, 0.2},
                {0.66, 0.32},
                {0.56, 0.44},
                {0.45, 0.48}},
               {{0.45, 0.48},
                {0.6, 0.52},
                {0.68, 0.64},
                {0.62, 0.78},
                {0.46, 0.85},
                {0.32, 0.78}}};
    // 4: diagonal, crossbar, vertical.
    (*s)[4] = {{{0.58, 0.15}, {0.3, 0.6}},
               {{0.3, 0.6}, {0.74, 0.6}},
               {{0.58, 0.15}, {0.58, 0.85}}};
    // 5: top bar, descender, bowl.
    (*s)[5] = {{{0.66, 0.16}, {0.36, 0.16}},
               {{0.36, 0.16}, {0.34, 0.45}},
               {{0.34, 0.45},
                {0.52, 0.4},
                {0.66, 0.5},
                {0.67, 0.66},
                {0.55, 0.82},
                {0.36, 0.8}}};
    // 6: sweep into a lower loop.
    (*s)[6] = {{{0.62, 0.16},
                {0.46, 0.2},
                {0.36, 0.35},
                {0.33, 0.55},
                {0.36, 0.72},
                {0.5, 0.84},
                {0.63, 0.74},
                {0.63, 0.58},
                {0.5, 0.5},
                {0.36, 0.58}}};
    // 7: top bar + steep diagonal.
    (*s)[7] = {{{0.3, 0.17}, {0.7, 0.17}}, {{0.7, 0.17}, {0.46, 0.85}}};
    // 8: stacked loops.
    (*s)[8] = {Ellipse(0.5, 0.32, 0.15, 0.16),
               Ellipse(0.5, 0.66, 0.18, 0.18)};
    // 9: upper loop with a tail (mirrored 6).
    (*s)[9] = {{{0.38, 0.84},
                {0.54, 0.8},
                {0.64, 0.65},
                {0.67, 0.45},
                {0.64, 0.28},
                {0.5, 0.16},
                {0.37, 0.26},
                {0.37, 0.42},
                {0.5, 0.5},
                {0.64, 0.42}}};
    return s;
  }();
  return *strokes;
}

/// Distance from point p to segment ab.
double SegmentDistance(Point p, Point a, Point b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  double t = 0.0;
  if (len2 > 0) {
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double dx = p.x - (a.x + t * abx);
  const double dy = p.y - (a.y + t * aby);
  return std::sqrt(dx * dx + dy * dy);
}

/// Distance from p to the nearest stroke of `glyph`.
double GlyphDistance(Point p, const std::vector<Stroke>& glyph) {
  double best = 1e9;
  for (const Stroke& stroke : glyph) {
    for (size_t i = 0; i + 1 < stroke.size(); ++i) {
      best = std::min(best, SegmentDistance(p, stroke[i], stroke[i + 1]));
    }
  }
  return best;
}

/// Per-image deformation parameters drawn deterministically.
struct Deformation {
  double dx, dy;          // translation (glyph-space units)
  double angle;           // rotation, radians
  double scale;           // isotropic
  double shear;           // x-shear
  double thickness;       // stroke half-width
  double elastic_amp;     // elastic displacement amplitude
  double elastic_fx, elastic_fy, elastic_px, elastic_py;  // wave params
  double noise_sigma;     // additive pixel noise
  uint64_t noise_seed;
};

Deformation DrawDeformation(uint64_t seed, uint64_t index) {
  // Mix seed and index so each image has an independent stream.
  util::Rng rng(seed * 0x9E3779B97F4A7C15ULL + index * 0xD1B54A32D192ED03ULL +
                0x632BE59BD9B4E019ULL);
  Deformation d;
  d.dx = rng.Uniform(-0.09, 0.09);            // about +-2.5 px
  d.dy = rng.Uniform(-0.09, 0.09);
  d.angle = rng.Uniform(-0.22, 0.22);         // about +-12.6 degrees
  d.scale = rng.Uniform(0.88, 1.12);
  d.shear = rng.Uniform(-0.18, 0.18);
  d.thickness = rng.Uniform(0.035, 0.055);
  d.elastic_amp = rng.Uniform(0.0, 0.035);
  d.elastic_fx = rng.Uniform(1.0, 3.0);
  d.elastic_fy = rng.Uniform(1.0, 3.0);
  d.elastic_px = rng.Uniform(0.0, 2 * M_PI);
  d.elastic_py = rng.Uniform(0.0, 2 * M_PI);
  d.noise_sigma = rng.Uniform(0.0, 10.0);
  d.noise_seed = rng.Next();
  return d;
}

}  // namespace

InfiMnistGenerator::InfiMnistGenerator(uint64_t seed) : seed_(seed) {}

DigitImage InfiMnistGenerator::Generate(uint64_t index) const {
  const uint8_t label = static_cast<uint8_t>(index % 10);
  const std::vector<Stroke>& glyph = DigitStrokes()[label];
  const Deformation d = DrawDeformation(seed_, index);

  const double cos_a = std::cos(-d.angle);
  const double sin_a = std::sin(-d.angle);

  DigitImage image;
  image.label = label;
  util::Rng noise(d.noise_seed);
  for (size_t py = 0; py < kImageSide; ++py) {
    for (size_t px = 0; px < kImageSide; ++px) {
      // Output pixel center in unit space.
      const double u = (static_cast<double>(px) + 0.5) / kImageSide;
      const double v = (static_cast<double>(py) + 0.5) / kImageSide;
      // Elastic displacement (smooth, low-frequency).
      const double eu =
          u + d.elastic_amp *
                  std::sin(2 * M_PI * d.elastic_fy * v + d.elastic_py);
      const double ev =
          v + d.elastic_amp *
                  std::sin(2 * M_PI * d.elastic_fx * u + d.elastic_px);
      // Inverse affine: translate to center, un-rotate/un-shear/un-scale.
      double x = eu - 0.5 - d.dx;
      double y = ev - 0.5 - d.dy;
      const double xs = x - d.shear * y;  // inverse of x-shear
      const double xr = (cos_a * xs - sin_a * y) / d.scale + 0.5;
      const double yr = (sin_a * xs + cos_a * y) / d.scale + 0.5;
      // Intensity from the stroke distance field.
      const double dist = GlyphDistance({xr, yr}, glyph);
      double intensity = 0.0;
      if (dist < d.thickness) {
        intensity = 255.0;
      } else if (dist < d.thickness + 0.03) {
        intensity = 255.0 * (1.0 - (dist - d.thickness) / 0.03);  // soft edge
      }
      intensity += noise.Gaussian(0.0, d.noise_sigma);
      image.pixels[py * kImageSide + px] =
          static_cast<uint8_t>(std::clamp(intensity, 0.0, 255.0));
    }
  }
  return image;
}

uint8_t InfiMnistGenerator::GenerateDoubles(uint64_t index, double* out) const {
  const DigitImage image = Generate(index);
  for (size_t i = 0; i < kImageFeatures; ++i) {
    out[i] = static_cast<double>(image.pixels[i]);
  }
  return image.label;
}

}  // namespace m3::data
