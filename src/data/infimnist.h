#ifndef M3_DATA_INFIMNIST_H_
#define M3_DATA_INFIMNIST_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace m3::data {

/// Side length of a digit image (matches MNIST).
inline constexpr size_t kImageSide = 28;
/// Features per image = 28 * 28 (matches the paper: 784 features).
inline constexpr size_t kImageFeatures = kImageSide * kImageSide;

/// \brief One generated digit image with its class label.
struct DigitImage {
  std::array<uint8_t, kImageFeatures> pixels;  // grayscale, row-major
  uint8_t label = 0;                           // 0..9
};

/// \brief InfiMNIST-style infinite digit stream, built from scratch.
///
/// The paper uses InfiMNIST (Loosli/Canu/Bottou): an endless supply of
/// MNIST-like 28x28 digits produced by applying pseudo-random deformations
/// to seed images. We do not have the MNIST originals, so this generator
/// substitutes procedurally rendered glyph prototypes (stroke polylines
/// rasterized through a distance field) and applies the same *kinds* of
/// deformation the original tool uses: translation, rotation, shear, scale,
/// smooth elastic displacement, and pixel noise.
///
/// Determinism contract: `Generate(i)` is a pure function of (seed, i) —
/// no sequential state — so images can be generated in parallel, in any
/// order, and reproduced exactly.
class InfiMnistGenerator {
 public:
  explicit InfiMnistGenerator(uint64_t seed = 2016);

  /// Generates image number `index` (label = index % 10).
  DigitImage Generate(uint64_t index) const;

  /// Writes image `index` as doubles in [0, 255] into `out[0..783]` and
  /// returns the label. The double layout is what the paper benchmarks:
  /// a dense 6272-byte (784 x 8B) record per image.
  uint8_t GenerateDoubles(uint64_t index, double* out) const;

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

}  // namespace m3::data

#endif  // M3_DATA_INFIMNIST_H_
