#ifndef M3_DATA_SPARSE_DATASET_H_
#define M3_DATA_SPARSE_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "io/buffered_io.h"
#include "la/sparse.h"
#include "util/result.h"
#include "util/status.h"

namespace m3::data {

/// \brief On-disk layout of an M3 sparse (CSR) dataset file.
///
/// Like the dense format, designed for memory mapping — every section
/// starts on a page boundary so typed views over the mapping are aligned,
/// and each section is one contiguous run so a chunked scan of rows
/// [b, e) touches exactly three sequential byte spans:
///
///   [0, 4096)                     header page (fixed size, versioned)
///   [values_offset,  +nnz*8)      double nonzero values   (streamed)
///   [col_idx_offset, +nnz*4)      uint32 column indices
///   [row_ptr_offset, +(rows+1)*8) uint64 row offsets into col_idx/values
///   [labels_offset,  +rows*8)     double labels, one per row
///
/// Section positions come from the header offsets, never from the order
/// above; readers must not assume adjacency. Column indices within a row
/// are strictly increasing.
struct SparseDatasetMeta {
  uint64_t rows = 0;
  uint64_t cols = 0;
  uint64_t nnz = 0;
  uint32_t num_classes = 0;
  uint64_t row_ptr_offset = 0;
  uint64_t col_idx_offset = 0;
  uint64_t values_offset = 0;
  uint64_t labels_offset = 0;

  uint64_t RowPtrBytes() const { return (rows + 1) * sizeof(uint64_t); }
  uint64_t ColIdxBytes() const { return nnz * sizeof(uint32_t); }
  uint64_t ValueBytes() const { return nnz * sizeof(double); }
  uint64_t LabelBytes() const { return rows * sizeof(double); }

  /// Bytes a full feature scan touches per pass (col_idx + values).
  uint64_t PayloadBytes() const { return ColIdxBytes() + ValueBytes(); }

  /// Total file size implied by the meta (max section end).
  uint64_t FileBytes() const;
};

/// Size of the reserved header page.
inline constexpr uint64_t kSparseDatasetHeaderBytes = 4096;
/// Every section starts on this boundary.
inline constexpr uint64_t kSparseSectionAlign = 4096;

/// \brief The raw header record at file offset 0.
///
/// Public (unlike the dense format's) so the format-fuzz suite can
/// corrupt individual fields surgically instead of flipping blind bytes.
struct SparseRawHeader {
  char magic[4];  // "M3SP"
  uint32_t version;
  uint64_t rows;
  uint64_t cols;
  uint64_t nnz;
  uint32_t num_classes;
  uint32_t flags;
  uint64_t row_ptr_offset;
  uint64_t col_idx_offset;
  uint64_t values_offset;
  uint64_t labels_offset;
};
static_assert(sizeof(SparseRawHeader) == 72);
static_assert(sizeof(SparseRawHeader) <= kSparseDatasetHeaderBytes);

inline constexpr char kSparseDatasetMagic[4] = {'M', '3', 'S', 'P'};
inline constexpr uint32_t kSparseDatasetVersion = 1;

/// \brief Streams CSR rows into a new sparse dataset file.
///
/// The values section (8 bytes/nnz, the bulk of the file) is streamed
/// buffered as rows arrive; col_idx (4 bytes/nnz), row_ptr and labels are
/// held in memory and written behind it by Finalize(), which also stamps
/// the header. A writer dropped without Finalize() leaves an unreadable
/// file by design.
class SparseDatasetWriter {
 public:
  static util::Result<SparseDatasetWriter> Create(const std::string& path,
                                                  uint64_t cols);

  SparseDatasetWriter(SparseDatasetWriter&&) = default;
  SparseDatasetWriter& operator=(SparseDatasetWriter&&) = default;

  /// Appends one row of `nnz` (column, value) pairs. Columns must be
  /// strictly increasing and < cols; `nnz == 0` appends an empty row.
  util::Status AppendRow(const uint32_t* cols, const double* values,
                         size_t nnz, double label);

  uint64_t rows_written() const { return labels_.size(); }
  uint64_t nnz_written() const { return row_ptr_.back(); }

  /// Writes col_idx + row_ptr + labels + header and closes the file.
  util::Status Finalize(uint32_t num_classes);

 private:
  SparseDatasetWriter(io::BufferedWriter writer, std::string path,
                      uint64_t cols)
      : writer_(std::move(writer)), path_(std::move(path)), cols_(cols) {}

  io::BufferedWriter writer_;
  std::string path_;
  uint64_t cols_;
  std::vector<uint64_t> row_ptr_{0};
  std::vector<uint32_t> col_idx_;
  std::vector<double> labels_;
  bool finalized_ = false;
};

/// \brief Reads and validates the header page of a sparse dataset file.
///
/// Everything checkable from the header alone: magic, version, plausible
/// shape (overflow-guarded), section offsets aligned for their element
/// type, sections inside the file. The O(nnz) structural checks
/// (monotone row_ptr, col_idx < cols) belong to the mmap reader
/// (core::MappedSparseDataset::Open), which has the sections in memory.
util::Result<SparseDatasetMeta> ReadSparseDatasetMeta(const std::string& path);

/// \brief Writes a complete in-memory CSR matrix + labels as a file.
util::Status WriteSparseDataset(const std::string& path, const la::CsrView& x,
                                const std::vector<double>& labels,
                                uint32_t num_classes);

/// \brief Deterministic synthetic sparse dataset generator.
struct SparseSyntheticOptions {
  uint64_t rows = 0;
  uint64_t cols = 0;
  /// Mean stored nonzeros per row; actual per-row counts vary in
  /// [0, 2*nnz_per_row] so chunk raggedness is exercised. Clamped to cols.
  uint64_t nnz_per_row = 16;
  uint64_t seed = 2016;
  bool binary_labels = true;
};

/// \brief Generates a random CSR dataset: per-row sorted distinct column
/// draws with nonzero values in [-1, 1] \ {0}, labels made learnable by a
/// planted hyperplane. Deterministic in `seed`.
util::Status GenerateSparseDataset(const std::string& path,
                                   const SparseSyntheticOptions& options);

}  // namespace m3::data

#endif  // M3_DATA_SPARSE_DATASET_H_
