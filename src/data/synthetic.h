#ifndef M3_DATA_SYNTHETIC_H_
#define M3_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace m3::data {

/// \brief A dense feature matrix with per-row labels.
struct LabeledData {
  la::Matrix features;
  std::vector<double> labels;
};

/// \brief `k` Gaussian clusters in `dims` dimensions.
///
/// Cluster centers are drawn uniformly in [-10, 10]^dims, points are
/// center + N(0, stddev^2 I). Labels are the cluster indices — ground truth
/// for the k-means tests. Deterministic in `seed`.
struct BlobsResult {
  LabeledData data;
  la::Matrix centers;  // k x dims
};
BlobsResult GaussianBlobs(size_t num_points, size_t dims, size_t k,
                          double stddev, uint64_t seed);

/// \brief Binary classification data that is (nearly) linearly separable.
///
/// A ground-truth weight vector w* and bias b* are drawn; each point is
/// x ~ N(0, I) labelled 1 if w*.x + b* + noise > 0. `label_noise` flips the
/// label with that probability. Deterministic in `seed`.
struct SeparableResult {
  LabeledData data;      // labels in {0, 1}
  la::Vector true_weights;
  double true_bias = 0;
};
SeparableResult LinearlySeparable(size_t num_points, size_t dims,
                                  double label_noise, uint64_t seed);

/// \brief Dense regression data y = X w* + b* + N(0, sigma^2).
struct RegressionResult {
  LabeledData data;  // labels are the targets
  la::Vector true_weights;
  double true_bias = 0;
};
RegressionResult LinearRegressionData(size_t num_points, size_t dims,
                                      double noise_sigma, uint64_t seed);

}  // namespace m3::data

#endif  // M3_DATA_SYNTHETIC_H_
