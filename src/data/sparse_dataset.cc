#include "data/sparse_dataset.h"

#include <algorithm>
#include <cstring>

#include "io/file.h"
#include "util/format.h"
#include "util/random.h"

namespace m3::data {

using util::Result;
using util::Status;

namespace {

/// Shape bound that keeps every section-size product and sum far from
/// uint64 overflow (2^48 rows of 8 bytes is 2^51; offsets add at most
/// the file size). Headers are untrusted input: a fuzzer can claim any
/// rows/nnz it likes, and the validation arithmetic below must stay
/// exact for all of them.
constexpr uint64_t kMaxPlausibleCount = 1ull << 48;

uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

}  // namespace

uint64_t SparseDatasetMeta::FileBytes() const {
  uint64_t end = kSparseDatasetHeaderBytes;
  end = std::max(end, row_ptr_offset + RowPtrBytes());
  end = std::max(end, col_idx_offset + ColIdxBytes());
  end = std::max(end, values_offset + ValueBytes());
  end = std::max(end, labels_offset + LabelBytes());
  return end;
}

Result<SparseDatasetWriter> SparseDatasetWriter::Create(
    const std::string& path, uint64_t cols) {
  if (cols == 0) {
    return Status::InvalidArgument("dataset must have at least one column");
  }
  if (cols > UINT32_MAX) {
    return Status::InvalidArgument(
        "CSR column indices are uint32; cols > UINT32_MAX unsupported");
  }
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      io::BufferedWriter::Create(path, 4 << 20));
  // Reserve the header page; contents are stamped in Finalize(). The
  // values section streams right behind it (the page boundary doubles as
  // its alignment).
  const std::vector<char> zeros(kSparseDatasetHeaderBytes, 0);
  M3_RETURN_IF_ERROR(writer.Append(zeros.data(), zeros.size()));
  return SparseDatasetWriter(std::move(writer), path, cols);
}

Status SparseDatasetWriter::AppendRow(const uint32_t* cols,
                                      const double* values, size_t nnz,
                                      double label) {
  for (size_t k = 0; k < nnz; ++k) {
    if (cols[k] >= cols_) {
      return Status::InvalidArgument(util::StrFormat(
          "column %u out of range (dataset has %llu columns)",
          static_cast<unsigned>(cols[k]),
          static_cast<unsigned long long>(cols_)));
    }
    if (k > 0 && cols[k] <= cols[k - 1]) {
      return Status::InvalidArgument(util::StrFormat(
          "columns must be strictly increasing (%u after %u)",
          static_cast<unsigned>(cols[k]),
          static_cast<unsigned>(cols[k - 1])));
    }
  }
  M3_RETURN_IF_ERROR(writer_.Append(values, nnz * sizeof(double)));
  col_idx_.insert(col_idx_.end(), cols, cols + nnz);
  row_ptr_.push_back(row_ptr_.back() + nnz);
  labels_.push_back(label);
  return Status::OK();
}

Status SparseDatasetWriter::Finalize(uint32_t num_classes) {
  if (finalized_) {
    return Status::FailedPrecondition("dataset already finalized");
  }
  finalized_ = true;
  const uint64_t rows = labels_.size();
  const uint64_t nnz = row_ptr_.back();

  SparseRawHeader header;
  std::memcpy(header.magic, kSparseDatasetMagic, sizeof(kSparseDatasetMagic));
  header.version = kSparseDatasetVersion;
  header.rows = rows;
  header.cols = cols_;
  header.nnz = nnz;
  header.num_classes = num_classes;
  header.flags = 0;
  header.values_offset = kSparseDatasetHeaderBytes;
  header.col_idx_offset =
      AlignUp(header.values_offset + nnz * sizeof(double), kSparseSectionAlign);
  header.row_ptr_offset = AlignUp(
      header.col_idx_offset + nnz * sizeof(uint32_t), kSparseSectionAlign);
  header.labels_offset = AlignUp(
      header.row_ptr_offset + (rows + 1) * sizeof(uint64_t),
      kSparseSectionAlign);

  // The values section is already streamed; pad to each section start and
  // append the in-memory sections behind it.
  const std::vector<char> padding(kSparseSectionAlign, 0);
  uint64_t written = header.values_offset + nnz * sizeof(double);
  auto pad_to = [&](uint64_t offset) -> Status {
    M3_RETURN_IF_ERROR(writer_.Append(padding.data(), offset - written));
    written = offset;
    return Status::OK();
  };
  M3_RETURN_IF_ERROR(pad_to(header.col_idx_offset));
  M3_RETURN_IF_ERROR(
      writer_.Append(col_idx_.data(), col_idx_.size() * sizeof(uint32_t)));
  written += col_idx_.size() * sizeof(uint32_t);
  M3_RETURN_IF_ERROR(pad_to(header.row_ptr_offset));
  M3_RETURN_IF_ERROR(
      writer_.Append(row_ptr_.data(), row_ptr_.size() * sizeof(uint64_t)));
  written += row_ptr_.size() * sizeof(uint64_t);
  M3_RETURN_IF_ERROR(pad_to(header.labels_offset));
  M3_RETURN_IF_ERROR(
      writer_.Append(labels_.data(), labels_.size() * sizeof(double)));
  M3_RETURN_IF_ERROR(writer_.Close());

  M3_ASSIGN_OR_RETURN(io::File file, io::File::OpenReadWrite(path_));
  M3_RETURN_IF_ERROR(file.WriteExactAt(0, &header, sizeof(header)));
  M3_RETURN_IF_ERROR(file.Sync());
  return file.Close();
}

Result<SparseDatasetMeta> ReadSparseDatasetMeta(const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::File file, io::File::OpenReadOnly(path));
  SparseRawHeader header;
  M3_RETURN_IF_ERROR(file.ReadExactAt(0, &header, sizeof(header)));
  if (std::memcmp(header.magic, kSparseDatasetMagic,
                  sizeof(kSparseDatasetMagic)) != 0) {
    return Status::InvalidArgument("not an M3 sparse dataset: " + path);
  }
  if (header.version != kSparseDatasetVersion) {
    return Status::NotSupported(util::StrFormat(
        "sparse dataset version %u unsupported", header.version));
  }
  if (header.cols == 0 || header.cols > UINT32_MAX) {
    return Status::InvalidArgument(util::StrFormat(
        "sparse dataset cols %llu outside [1, 2^32)",
        static_cast<unsigned long long>(header.cols)));
  }
  // Reject shapes whose byte sizes would overflow the arithmetic below —
  // a fuzzed header can claim anything.
  if (header.rows >= kMaxPlausibleCount || header.nnz >= kMaxPlausibleCount) {
    return Status::InvalidArgument(util::StrFormat(
        "sparse dataset shape implausible (rows=%llu nnz=%llu)",
        static_cast<unsigned long long>(header.rows),
        static_cast<unsigned long long>(header.nnz)));
  }
  SparseDatasetMeta meta;
  meta.rows = header.rows;
  meta.cols = header.cols;
  meta.nnz = header.nnz;
  meta.num_classes = header.num_classes;
  meta.row_ptr_offset = header.row_ptr_offset;
  meta.col_idx_offset = header.col_idx_offset;
  meta.values_offset = header.values_offset;
  meta.labels_offset = header.labels_offset;
  // MappedSparseDataset hands these offsets to typed pointers over a
  // page-aligned mmap base; a misaligned offset would make every later
  // access UB (UBSan: misaligned load), so reject the file here, where a
  // path and a message are still available.
  if (meta.row_ptr_offset % alignof(uint64_t) != 0 ||
      meta.col_idx_offset % alignof(uint32_t) != 0 ||
      meta.values_offset % alignof(double) != 0 ||
      meta.labels_offset % alignof(double) != 0) {
    return Status::InvalidArgument(util::StrFormat(
        "sparse dataset section offsets misaligned (row_ptr %llu, col_idx "
        "%llu, values %llu, labels %llu): %s",
        static_cast<unsigned long long>(meta.row_ptr_offset),
        static_cast<unsigned long long>(meta.col_idx_offset),
        static_cast<unsigned long long>(meta.values_offset),
        static_cast<unsigned long long>(meta.labels_offset), path.c_str()));
  }
  M3_ASSIGN_OR_RETURN(uint64_t actual_size, file.Size());
  // Per-section bound check, overflow-safe: the offset must sit inside
  // the file and leave room for the section behind it. (Sections may not
  // start inside the header page either.)
  const std::pair<uint64_t, uint64_t> sections[] = {
      {meta.row_ptr_offset, meta.RowPtrBytes()},
      {meta.col_idx_offset, meta.ColIdxBytes()},
      {meta.values_offset, meta.ValueBytes()},
      {meta.labels_offset, meta.LabelBytes()},
  };
  for (const auto& [offset, bytes] : sections) {
    if (offset < kSparseDatasetHeaderBytes || offset > actual_size ||
        bytes > actual_size - offset) {
      return Status::InvalidArgument(util::StrFormat(
          "sparse dataset truncated or section out of bounds (section at "
          "%llu, %llu bytes, file has %llu): %s",
          static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(bytes),
          static_cast<unsigned long long>(actual_size), path.c_str()));
    }
  }
  return meta;
}

Status WriteSparseDataset(const std::string& path, const la::CsrView& x,
                          const std::vector<double>& labels,
                          uint32_t num_classes) {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument("labels size != matrix rows");
  }
  M3_ASSIGN_OR_RETURN(SparseDatasetWriter writer,
                      SparseDatasetWriter::Create(path, x.cols()));
  for (size_t r = 0; r < x.rows(); ++r) {
    const la::SparseRowView row = x.Row(r);
    M3_RETURN_IF_ERROR(
        writer.AppendRow(row.cols, row.values, row.nnz, labels[r]));
  }
  return writer.Finalize(num_classes);
}

Status GenerateSparseDataset(const std::string& path,
                             const SparseSyntheticOptions& options) {
  if (options.rows == 0 || options.cols == 0) {
    return Status::InvalidArgument("cannot generate empty sparse dataset");
  }
  if (options.cols > UINT32_MAX) {
    return Status::InvalidArgument("cols > UINT32_MAX unsupported");
  }
  M3_ASSIGN_OR_RETURN(SparseDatasetWriter writer,
                      SparseDatasetWriter::Create(path, options.cols));
  util::Rng rng(options.seed);
  // Planted hyperplane making labels learnable (and classes non-trivial).
  std::vector<double> plane(options.cols);
  for (double& w : plane) {
    w = rng.Uniform(-1.0, 1.0);
  }
  std::vector<uint32_t> cols;
  std::vector<double> values;
  for (uint64_t r = 0; r < options.rows; ++r) {
    // Ragged rows on purpose: [0, 2*nnz_per_row] stored entries.
    const uint64_t max_nnz = std::min<uint64_t>(options.cols,
                                                2 * options.nnz_per_row);
    const uint64_t nnz = max_nnz == 0 ? 0 : rng.UniformInt(max_nnz + 1);
    cols.clear();
    values.clear();
    // Distinct sorted column draws: sample without replacement via
    // retry (nnz << cols in any sparse regime worth the name).
    while (cols.size() < nnz) {
      const uint32_t c = static_cast<uint32_t>(rng.UniformInt(options.cols));
      if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
        cols.push_back(c);
      }
    }
    std::sort(cols.begin(), cols.end());
    double margin = 0.0;
    for (const uint32_t c : cols) {
      double v = rng.Uniform(-1.0, 1.0);
      if (v == 0.0) {
        v = 0.5;  // keep stored entries genuinely nonzero
      }
      values.push_back(v);
      margin += v * plane[c];
    }
    const double label = options.binary_labels
                             ? (margin > 0.0 ? 1.0 : 0.0)
                             : (margin < -0.5 ? 0.0
                                              : (margin < 0.5 ? 1.0 : 2.0));
    M3_RETURN_IF_ERROR(
        writer.AppendRow(cols.data(), values.data(), cols.size(), label));
  }
  return writer.Finalize(options.binary_labels ? 2 : 3);
}

}  // namespace m3::data
