#include "data/dataset.h"

#include <cstring>

#include "data/infimnist.h"
#include "util/format.h"
#include "util/thread_pool.h"

namespace m3::data {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'M', '3', 'D', 'S'};
constexpr uint32_t kVersion = 1;

// Fixed header record at the start of the reserved page.
struct RawHeader {
  char magic[4];
  uint32_t version;
  uint64_t rows;
  uint64_t cols;
  uint32_t num_classes;
  uint32_t flags;
  uint64_t features_offset;
  uint64_t labels_offset;
};
static_assert(sizeof(RawHeader) == 48);
static_assert(sizeof(RawHeader) <= kDatasetHeaderBytes);

}  // namespace

Result<DatasetWriter> DatasetWriter::Create(const std::string& path,
                                            uint64_t cols) {
  if (cols == 0) {
    return Status::InvalidArgument("dataset must have at least one column");
  }
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      io::BufferedWriter::Create(path, 4 << 20));
  // Reserve the header page; contents are stamped in Finalize().
  const std::vector<char> zeros(kDatasetHeaderBytes, 0);
  M3_RETURN_IF_ERROR(writer.Append(zeros.data(), zeros.size()));
  return DatasetWriter(std::move(writer), path, cols);
}

Status DatasetWriter::AppendRow(la::ConstVectorView features, double label) {
  if (features.size() != cols_) {
    return Status::InvalidArgument(
        util::StrFormat("row has %zu features, dataset has %llu columns",
                        features.size(),
                        static_cast<unsigned long long>(cols_)));
  }
  M3_RETURN_IF_ERROR(
      writer_.Append(features.data(), cols_ * sizeof(double)));
  labels_.push_back(label);
  return Status::OK();
}

Status DatasetWriter::AppendRows(const double* features, const double* labels,
                                 uint64_t count) {
  M3_RETURN_IF_ERROR(
      writer_.Append(features, count * cols_ * sizeof(double)));
  labels_.insert(labels_.end(), labels, labels + count);
  return Status::OK();
}

Status DatasetWriter::Finalize(uint32_t num_classes) {
  if (finalized_) {
    return Status::FailedPrecondition("dataset already finalized");
  }
  finalized_ = true;
  const uint64_t rows = labels_.size();
  // Labels live immediately behind the feature block.
  M3_RETURN_IF_ERROR(
      writer_.Append(labels_.data(), labels_.size() * sizeof(double)));
  M3_RETURN_IF_ERROR(writer_.Close());

  RawHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.rows = rows;
  header.cols = cols_;
  header.num_classes = num_classes;
  header.flags = 0;
  header.features_offset = kDatasetHeaderBytes;
  header.labels_offset =
      kDatasetHeaderBytes + rows * cols_ * sizeof(double);
  M3_ASSIGN_OR_RETURN(io::File file, io::File::OpenReadWrite(path_));
  M3_RETURN_IF_ERROR(file.WriteExactAt(0, &header, sizeof(header)));
  M3_RETURN_IF_ERROR(file.Sync());
  return file.Close();
}

Result<DatasetMeta> ReadDatasetMeta(const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::File file, io::File::OpenReadOnly(path));
  RawHeader header;
  M3_RETURN_IF_ERROR(file.ReadExactAt(0, &header, sizeof(header)));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an M3 dataset: " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported(
        util::StrFormat("dataset version %u unsupported", header.version));
  }
  DatasetMeta meta;
  meta.rows = header.rows;
  meta.cols = header.cols;
  meta.num_classes = header.num_classes;
  meta.features_offset = header.features_offset;
  meta.labels_offset = header.labels_offset;
  // MappedDataset hands these offsets to reinterpret_cast<const double*>
  // over a page-aligned mmap base; misaligned offsets would make every
  // later feature read UB (UBSan: misaligned load), so reject the file
  // here, where a path and a message are still available.
  if (meta.features_offset % alignof(double) != 0 ||
      meta.labels_offset % alignof(double) != 0) {
    return Status::InvalidArgument(util::StrFormat(
        "dataset section offsets misaligned for double access "
        "(features at %llu, labels at %llu): %s",
        static_cast<unsigned long long>(meta.features_offset),
        static_cast<unsigned long long>(meta.labels_offset), path.c_str()));
  }
  M3_ASSIGN_OR_RETURN(uint64_t actual_size, file.Size());
  if (actual_size < meta.FileBytes()) {
    return Status::InvalidArgument(util::StrFormat(
        "dataset truncated: %llu bytes on disk, header implies %llu",
        static_cast<unsigned long long>(actual_size),
        static_cast<unsigned long long>(meta.FileBytes())));
  }
  return meta;
}

Status WriteDataset(const std::string& path, la::ConstMatrixView x,
                    const std::vector<double>& labels, uint32_t num_classes) {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument("labels size != matrix rows");
  }
  M3_ASSIGN_OR_RETURN(DatasetWriter writer,
                      DatasetWriter::Create(path, x.cols()));
  for (size_t r = 0; r < x.rows(); ++r) {
    M3_RETURN_IF_ERROR(writer.AppendRow(x.Row(r), labels[r]));
  }
  return writer.Finalize(num_classes);
}

Status GenerateInfimnistDataset(const std::string& path, uint64_t count,
                                uint64_t seed, bool binary_labels) {
  if (count == 0) {
    return Status::InvalidArgument("cannot generate empty dataset");
  }
  M3_ASSIGN_OR_RETURN(DatasetWriter writer,
                      DatasetWriter::Create(path, kImageFeatures));
  const InfiMnistGenerator generator(seed);
  // Generate in batches: workers render deterministic images in parallel,
  // the writer streams each completed batch sequentially.
  constexpr uint64_t kBatch = 2048;
  std::vector<double> features(kBatch * kImageFeatures);
  std::vector<double> labels(kBatch);
  for (uint64_t base = 0; base < count; base += kBatch) {
    const uint64_t n = std::min(kBatch, count - base);
    util::ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const uint8_t label = generator.GenerateDoubles(
            base + i, features.data() + i * kImageFeatures);
        labels[i] = binary_labels ? (label < 5 ? 0.0 : 1.0)
                                  : static_cast<double>(label);
      }
    });
    M3_RETURN_IF_ERROR(writer.AppendRows(features.data(), labels.data(), n));
  }
  return writer.Finalize(binary_labels ? 2 : 10);
}

}  // namespace m3::data
