#ifndef M3_DATA_IDX_FORMAT_H_
#define M3_DATA_IDX_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace m3::data {

/// \brief Parsed contents of an IDX file (the MNIST container format).
///
/// IDX layout: magic {0, 0, type, ndims}, then ndims big-endian uint32
/// dimension sizes, then the payload. Only the unsigned-byte element type
/// (0x08) is supported — that is what MNIST/InfiMNIST ship.
struct IdxData {
  std::vector<uint32_t> dims;
  std::vector<uint8_t> bytes;

  /// Product of dims (number of elements).
  uint64_t NumElements() const;
};

/// \name Alignment-safe big-endian accessors.
///
/// IDX headers pack big-endian uint32 dimensions at byte offset 4 — a
/// position with no alignment guarantee once the header sits inside an
/// mmap'd or pooled buffer. Dereferencing such bytes as `uint32_t*` is
/// undefined behavior (UBSan: "load of misaligned address"); these
/// accessors go through memcpy/byte shifts instead, which every compiler
/// folds to a single load + bswap on x86/ARM. Use them for ANY multi-byte
/// read from a byte buffer whose alignment the type system cannot prove.
/// @{

/// Loads a big-endian uint32 from `bytes` (any alignment).
uint32_t LoadBigEndianU32(const void* bytes);

/// Stores `value` big-endian into `bytes` (any alignment, 4 bytes).
void StoreBigEndianU32(uint32_t value, void* bytes);
/// @}

/// \brief Reads and validates an IDX file.
util::Result<IdxData> ReadIdx(const std::string& path);

/// \brief Writes `count` images of rows x cols uint8 pixels
/// (IDX3, magic 0x00000803 — same as train-images-idx3-ubyte).
util::Status WriteIdxImages(const std::string& path,
                            const std::vector<uint8_t>& pixels, uint32_t count,
                            uint32_t rows, uint32_t cols);

/// \brief Writes `labels` (IDX1, magic 0x00000801 — same as
/// train-labels-idx1-ubyte).
util::Status WriteIdxLabels(const std::string& path,
                            const std::vector<uint8_t>& labels);

}  // namespace m3::data

#endif  // M3_DATA_IDX_FORMAT_H_
