#ifndef M3_DATA_IDX_FORMAT_H_
#define M3_DATA_IDX_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace m3::data {

/// \brief Parsed contents of an IDX file (the MNIST container format).
///
/// IDX layout: magic {0, 0, type, ndims}, then ndims big-endian uint32
/// dimension sizes, then the payload. Only the unsigned-byte element type
/// (0x08) is supported — that is what MNIST/InfiMNIST ship.
struct IdxData {
  std::vector<uint32_t> dims;
  std::vector<uint8_t> bytes;

  /// Product of dims (number of elements).
  uint64_t NumElements() const;
};

/// \brief Reads and validates an IDX file.
util::Result<IdxData> ReadIdx(const std::string& path);

/// \brief Writes `count` images of rows x cols uint8 pixels
/// (IDX3, magic 0x00000803 — same as train-images-idx3-ubyte).
util::Status WriteIdxImages(const std::string& path,
                            const std::vector<uint8_t>& pixels, uint32_t count,
                            uint32_t rows, uint32_t cols);

/// \brief Writes `labels` (IDX1, magic 0x00000801 — same as
/// train-labels-idx1-ubyte).
util::Status WriteIdxLabels(const std::string& path,
                            const std::vector<uint8_t>& labels);

}  // namespace m3::data

#endif  // M3_DATA_IDX_FORMAT_H_
