#include "data/synthetic.h"

#include "la/blas.h"
#include "util/random.h"

namespace m3::data {

BlobsResult GaussianBlobs(size_t num_points, size_t dims, size_t k,
                          double stddev, uint64_t seed) {
  util::Rng rng(seed);
  BlobsResult result;
  result.centers = la::Matrix(k, dims);
  for (size_t c = 0; c < k; ++c) {
    for (size_t d = 0; d < dims; ++d) {
      result.centers(c, d) = rng.Uniform(-10.0, 10.0);
    }
  }
  result.data.features = la::Matrix(num_points, dims);
  result.data.labels.resize(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    const size_t cluster = static_cast<size_t>(rng.UniformInt(uint64_t{k}));
    result.data.labels[i] = static_cast<double>(cluster);
    for (size_t d = 0; d < dims; ++d) {
      result.data.features(i, d) =
          result.centers(cluster, d) + rng.Gaussian(0.0, stddev);
    }
  }
  return result;
}

SeparableResult LinearlySeparable(size_t num_points, size_t dims,
                                  double label_noise, uint64_t seed) {
  util::Rng rng(seed);
  SeparableResult result;
  result.true_weights = la::Vector(dims);
  for (size_t d = 0; d < dims; ++d) {
    result.true_weights[d] = rng.Gaussian(0.0, 1.0);
  }
  result.true_bias = rng.Gaussian(0.0, 0.5);
  result.data.features = la::Matrix(num_points, dims);
  result.data.labels.resize(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      result.data.features(i, d) = rng.Gaussian(0.0, 1.0);
    }
    const double margin = la::Dot(result.data.features.Row(i),
                                  result.true_weights) +
                          result.true_bias;
    double label = margin > 0 ? 1.0 : 0.0;
    if (label_noise > 0 && rng.Uniform() < label_noise) {
      label = 1.0 - label;
    }
    result.data.labels[i] = label;
  }
  return result;
}

RegressionResult LinearRegressionData(size_t num_points, size_t dims,
                                      double noise_sigma, uint64_t seed) {
  util::Rng rng(seed);
  RegressionResult result;
  result.true_weights = la::Vector(dims);
  for (size_t d = 0; d < dims; ++d) {
    result.true_weights[d] = rng.Gaussian(0.0, 1.0);
  }
  result.true_bias = rng.Gaussian(0.0, 1.0);
  result.data.features = la::Matrix(num_points, dims);
  result.data.labels.resize(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    for (size_t d = 0; d < dims; ++d) {
      result.data.features(i, d) = rng.Gaussian(0.0, 1.0);
    }
    result.data.labels[i] = la::Dot(result.data.features.Row(i),
                                    result.true_weights) +
                            result.true_bias +
                            rng.Gaussian(0.0, noise_sigma);
  }
  return result;
}

}  // namespace m3::data
