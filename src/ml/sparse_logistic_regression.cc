#include "ml/sparse_logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "la/blas.h"
#include "util/thread_pool.h"

namespace m3::ml {

using util::Result;
using util::Status;

namespace {

// The stable formulas below are byte-for-byte the dense objective's
// (logistic_regression.cc): the ulp-conformance contract needs identical
// transcendental call sequences, not just mathematically equal ones.

/// Numerically stable log(1 + e^z).
double Log1pExp(double z) {
  if (z > 0) {
    return z + std::log1p(std::exp(-z));
  }
  return std::log1p(std::exp(z));
}

/// Numerically stable sigmoid.
double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

// ---------------------------------------------------------------------------
// Sparse binary logistic regression
// ---------------------------------------------------------------------------

SparseLogisticRegressionObjective::SparseLogisticRegressionObjective(
    la::CsrView x, la::ConstVectorView y, double l2, size_t chunk_rows,
    uint64_t chunk_nnz_bytes, ScanHooks hooks)
    : ChunkedObjective(chunk_rows, std::move(hooks)),
      x_(x),
      y_(y),
      l2_(l2),
      chunk_nnz_bytes_(chunk_nnz_bytes) {
  M3_CHECK(x_.rows() == y_.size(), "labels size %zu != rows %zu", y_.size(),
           x_.rows());
}

std::unique_ptr<la::Chunker> SparseLogisticRegressionObjective::MakeChunker()
    const {
  if (chunk_rows_ > 0) {
    // Uniform row chunks: boundaries (and therefore merge grouping and
    // bits) match a dense scan of the densified data.
    return std::make_unique<la::RowChunker>(NumRows(), chunk_rows_);
  }
  const uint64_t budget = chunk_nnz_bytes_ > 0 ? chunk_nnz_bytes_
                                               : la::kDefaultNnzBudgetBytes;
  return std::make_unique<la::SparseChunker>(x_.row_ptr(), x_.rows(), budget);
}

double SparseLogisticRegressionObjective::EvaluateChunk(size_t begin,
                                                        size_t end,
                                                        la::ConstVectorView w,
                                                        la::VectorView grad) {
  const size_t d = x_.cols();
  const double inv_n =
      1.0 / static_cast<double>(std::max<size_t>(1, NumRows()));
  la::ConstVectorView weights = w.Slice(0, d);
  const double intercept = w[d];

  // Same partition granularity and merge order as the dense objective:
  // per-range partials merged in range order (deterministic FP reduction,
  // and the same grouping as dense under the same chunk boundaries).
  const auto ranges = util::PartitionRange(
      begin, end, 512, util::GlobalThreadPool().num_threads());
  std::vector<la::Vector> partials(ranges.size(), la::Vector(d + 1));
  std::vector<double> losses(ranges.size(), 0.0);
  util::ParallelForIndexed(begin, end, 512,
                           [&](size_t chunk, size_t lo, size_t hi) {
    la::Vector& partial = partials[chunk];
    double local_loss = 0;
    for (size_t r = lo; r < hi; ++r) {
      const la::SparseRowView xi = x_.Row(r);
      const double z = la::SparseDot(xi, weights) + intercept;
      const double yi = y_[r];
      local_loss += Log1pExp(z) - yi * z;
      const double residual = (Sigmoid(z) - yi) * inv_n;
      la::SparseAxpy(residual, xi, partial.View().Slice(0, d));
      partial[d] += residual;
    }
    losses[chunk] = local_loss;
  });
  double chunk_loss = 0;
  for (size_t c = 0; c < ranges.size(); ++c) {
    chunk_loss += losses[c];
    la::Axpy(1.0, partials[c], grad);
  }
  return chunk_loss * inv_n;
}

double SparseLogisticRegressionObjective::ApplyRegularization(
    la::ConstVectorView w, la::VectorView grad) {
  // Ridge penalty on the weights (not the intercept).
  const size_t d = x_.cols();
  if (l2_ <= 0) {
    return 0.0;
  }
  la::ConstVectorView weights = w.Slice(0, d);
  la::Axpy(l2_, weights, grad.Slice(0, d));
  return 0.5 * l2_ * la::Dot(weights, weights);
}

SparseLogisticRegression::SparseLogisticRegression(
    SparseLogisticRegressionOptions options)
    : options_(std::move(options)) {}

Result<LogisticRegressionModel> SparseLogisticRegression::Train(
    const la::CsrView& x, la::ConstVectorView y,
    OptimizationResult* stats) const {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("labels size does not match rows");
  }
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] != 0.0 && y[i] != 1.0) {
      return Status::InvalidArgument(
          "binary logistic regression requires labels in {0, 1}");
    }
  }
  SparseLogisticRegressionObjective objective(
      x, y, options_.l2, options_.chunk_rows, options_.chunk_nnz_bytes,
      options_.hooks);
  objective.set_pipeline(options_.pipeline);
  la::Vector params(x.cols() + 1);  // zero init
  Lbfgs optimizer(options_.lbfgs);
  M3_ASSIGN_OR_RETURN(OptimizationResult result,
                      optimizer.Minimize(&objective, params));
  if (stats != nullptr) {
    *stats = result;
  }
  LogisticRegressionModel model;
  model.weights = la::Vector(x.cols());
  la::Copy(params.View().Slice(0, x.cols()), model.weights);
  model.intercept = params[x.cols()];
  return model;
}

// ---------------------------------------------------------------------------
// Sparse softmax regression
// ---------------------------------------------------------------------------

SparseSoftmaxRegressionObjective::SparseSoftmaxRegressionObjective(
    la::CsrView x, la::ConstVectorView y, size_t num_classes, double l2,
    size_t chunk_rows, uint64_t chunk_nnz_bytes, ScanHooks hooks)
    : ChunkedObjective(chunk_rows, std::move(hooks)),
      x_(x),
      y_(y),
      num_classes_(num_classes),
      l2_(l2),
      chunk_nnz_bytes_(chunk_nnz_bytes) {
  M3_CHECK(x_.rows() == y_.size(), "labels size mismatch");
  M3_CHECK(num_classes_ >= 2, "need at least 2 classes");
}

std::unique_ptr<la::Chunker> SparseSoftmaxRegressionObjective::MakeChunker()
    const {
  if (chunk_rows_ > 0) {
    return std::make_unique<la::RowChunker>(NumRows(), chunk_rows_);
  }
  const uint64_t budget = chunk_nnz_bytes_ > 0 ? chunk_nnz_bytes_
                                               : la::kDefaultNnzBudgetBytes;
  return std::make_unique<la::SparseChunker>(x_.row_ptr(), x_.rows(), budget);
}

double SparseSoftmaxRegressionObjective::EvaluateChunk(size_t begin,
                                                       size_t end,
                                                       la::ConstVectorView w,
                                                       la::VectorView grad) {
  const size_t d = x_.cols();
  const size_t k = num_classes_;
  const size_t stride = d + 1;  // per-class weights + bias
  const double inv_n =
      1.0 / static_cast<double>(std::max<size_t>(1, NumRows()));

  const auto ranges = util::PartitionRange(
      begin, end, 256, util::GlobalThreadPool().num_threads());
  std::vector<la::Vector> partials(ranges.size(), la::Vector(k * stride));
  std::vector<double> losses(ranges.size(), 0.0);
  util::ParallelForIndexed(begin, end, 256,
                           [&](size_t chunk, size_t lo, size_t hi) {
    la::Vector& partial = partials[chunk];
    std::vector<double> scores(k);
    double local_loss = 0;
    for (size_t r = lo; r < hi; ++r) {
      const la::SparseRowView xi = x_.Row(r);
      double max_score = -1e300;
      for (size_t c = 0; c < k; ++c) {
        la::ConstVectorView wc = w.Slice(c * stride, d);
        scores[c] = la::SparseDot(xi, wc) + w[c * stride + d];
        max_score = std::max(max_score, scores[c]);
      }
      double sum_exp = 0;
      for (size_t c = 0; c < k; ++c) {
        scores[c] = std::exp(scores[c] - max_score);
        sum_exp += scores[c];
      }
      const size_t label = static_cast<size_t>(y_[r]);
      // loss_i = -log p_label = -(score_label - max - log sum_exp)
      local_loss += std::log(sum_exp) - std::log(scores[label]);
      for (size_t c = 0; c < k; ++c) {
        const double p = scores[c] / sum_exp;
        const double coeff = (p - (c == label ? 1.0 : 0.0)) * inv_n;
        la::SparseAxpy(coeff, xi, partial.View().Slice(c * stride, d));
        partial[c * stride + d] += coeff;
      }
    }
    losses[chunk] = local_loss;
  });
  double chunk_loss = 0;
  for (size_t c = 0; c < ranges.size(); ++c) {
    chunk_loss += losses[c];
    la::Axpy(1.0, partials[c], grad);
  }
  return chunk_loss * inv_n;
}

double SparseSoftmaxRegressionObjective::ApplyRegularization(
    la::ConstVectorView w, la::VectorView grad) {
  if (l2_ <= 0) {
    return 0.0;
  }
  double loss = 0;
  const size_t d = x_.cols();
  const size_t stride = d + 1;
  for (size_t c = 0; c < num_classes_; ++c) {
    la::ConstVectorView wc = w.Slice(c * stride, d);
    loss += 0.5 * l2_ * la::Dot(wc, wc);
    la::Axpy(l2_, wc, grad.Slice(c * stride, d));
  }
  return loss;
}

SparseSoftmaxRegression::SparseSoftmaxRegression(
    SparseSoftmaxRegressionOptions options)
    : options_(std::move(options)) {}

Result<SoftmaxRegressionModel> SparseSoftmaxRegression::Train(
    const la::CsrView& x, la::ConstVectorView y, size_t num_classes,
    OptimizationResult* stats) const {
  if (x.rows() == 0 || x.cols() == 0) {
    return Status::InvalidArgument("empty training data");
  }
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("labels size does not match rows");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }
  for (size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0 || y[i] >= static_cast<double>(num_classes) ||
        y[i] != std::floor(y[i])) {
      return Status::InvalidArgument(
          "labels must be integers in [0, num_classes)");
    }
  }
  SparseSoftmaxRegressionObjective objective(
      x, y, num_classes, options_.l2, options_.chunk_rows,
      options_.chunk_nnz_bytes, options_.hooks);
  objective.set_pipeline(options_.pipeline);
  la::Vector params(objective.Dimension());
  Lbfgs optimizer(options_.lbfgs);
  M3_ASSIGN_OR_RETURN(OptimizationResult result,
                      optimizer.Minimize(&objective, params));
  if (stats != nullptr) {
    *stats = result;
  }
  const size_t d = x.cols();
  const size_t stride = d + 1;
  SoftmaxRegressionModel model;
  model.weights = la::Matrix(num_classes, d);
  model.biases = la::Vector(num_classes);
  for (size_t c = 0; c < num_classes; ++c) {
    la::Copy(params.View().Slice(c * stride, d), model.weights.Row(c));
    model.biases[c] = params[c * stride + d];
  }
  return model;
}

}  // namespace m3::ml
