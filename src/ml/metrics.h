#ifndef M3_ML_METRICS_H_
#define M3_ML_METRICS_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace m3::ml {

/// \brief Fraction of positions where predictions == truth. \pre same size.
double Accuracy(const std::vector<double>& predictions,
                const std::vector<double>& truth);

/// \brief Mean squared error between predictions and targets.
double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& targets);

/// \brief Binary cross-entropy given probabilities in (0,1) and 0/1 labels.
double LogLoss(const std::vector<double>& probabilities,
               const std::vector<double>& labels);

/// \brief k-means inertia: sum of squared distances to nearest center.
double Inertia(la::ConstMatrixView x, la::ConstMatrixView centers);

/// \brief k x k confusion matrix; entry (t, p) counts truth t predicted p.
la::Matrix ConfusionMatrix(const std::vector<double>& predictions,
                           const std::vector<double>& truth, size_t k);

/// \brief Clustering purity in [0, 1]: each cluster votes its majority
/// ground-truth label. \pre assignments/truth same length.
double ClusterPurity(const std::vector<uint32_t>& assignments,
                     const std::vector<double>& truth, size_t k,
                     size_t num_labels);

}  // namespace m3::ml

#endif  // M3_ML_METRICS_H_
