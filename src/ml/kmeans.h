#ifndef M3_ML_KMEANS_H_
#define M3_ML_KMEANS_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Options for Lloyd's k-means.
struct KMeansOptions {
  size_t k = 5;                   ///< paper's Fig. 1b uses 5 clusters
  size_t max_iterations = 10;     ///< paper's Fig. 1b uses 10 iterations
  /// Stop early when relative inertia improvement falls below this.
  double tolerance = 1e-6;
  /// kmeans++ seeding on a bounded sample (false = random rows).
  bool kmeanspp_init = true;
  /// Explicit initial centers (k x d), overriding seeding entirely. Not
  /// owned; must outlive Cluster(). Used to compare implementations (e.g.
  /// the simulated cluster vs the single machine) from identical starts.
  const la::Matrix* initial_centers = nullptr;
  /// Sample size used for kmeans++ seeding (bounded so init is one cheap
  /// partial scan even for out-of-core data).
  size_t init_sample = 4096;
  uint64_t seed = 42;
  size_t chunk_rows = 0;          ///< 0 = auto (~8 MiB chunks)
  ScanHooks hooks;
  /// Execution engine driving the per-iteration scans (prefetch/evict
  /// overlap + parallel chunk map-reduce). Not owned; nullptr = serial.
  exec::ChunkPipeline* pipeline = nullptr;
  /// Optional per-iteration observer: (iteration, inertia).
  std::function<void(size_t, double)> iteration_callback;
};

/// \brief k-means result.
struct KMeansResult {
  la::Matrix centers;                   ///< k x d
  std::vector<double> inertia_history;  ///< sum of squared distances per iter
  double inertia = 0;                   ///< final inertia
  size_t iterations = 0;
  bool converged = false;
};

/// \brief Lloyd's algorithm with kmeans++ seeding over matrix views.
///
/// Each iteration is one sequential chunked pass over the data (assignment
/// + accumulation fused), so the I/O profile per iteration matches the
/// logistic-regression gradient pass: stream the whole dataset once.
class KMeans {
 public:
  explicit KMeans(KMeansOptions options = KMeansOptions());

  /// Clusters the rows of `x`.
  util::Result<KMeansResult> Cluster(la::ConstMatrixView x) const;

  /// Assigns each row of `x` to its nearest center (for evaluation).
  static std::vector<uint32_t> Assign(la::ConstMatrixView x,
                                      la::ConstMatrixView centers);

  /// Produces initial centers exactly as Cluster() would (explicit >
  /// kmeans++ > random rows). Exposed so alternative drivers (e.g. the
  /// cluster simulator) can start from the identical state.
  static util::Result<la::Matrix> SeedCenters(la::ConstMatrixView x,
                                              const KMeansOptions& options);

  const KMeansOptions& options() const { return options_; }

 private:
  KMeansOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_KMEANS_H_
