#ifndef M3_ML_LINEAR_REGRESSION_H_
#define M3_ML_LINEAR_REGRESSION_H_

#include <cstddef>

#include "la/matrix.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Trained ridge linear-regression model.
struct LinearRegressionModel {
  la::Vector weights;
  double intercept = 0;

  double Predict(la::ConstVectorView x) const;
};

/// \brief Options for linear regression.
struct LinearRegressionOptions {
  double l2 = 0.0;        ///< ridge penalty (intercept unpenalized)
  size_t chunk_rows = 0;  ///< 0 = auto
  ScanHooks hooks;
  /// Execution engine driving the training scan. Not owned; nullptr =
  /// inline serial scan.
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief Least-squares regression via the normal equations.
///
/// Accumulates X^T X and X^T y in one sequential chunked pass (d x d
/// sufficient statistics), then solves the (d+1) SPD system by Cholesky.
/// Another single-scan workload for the access-pattern study: one pass,
/// O(d^2) state, exact solution.
class LinearRegression {
 public:
  explicit LinearRegression(
      LinearRegressionOptions options = LinearRegressionOptions());

  util::Result<LinearRegressionModel> Train(la::ConstMatrixView x,
                                            la::ConstVectorView y) const;

 private:
  LinearRegressionOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_LINEAR_REGRESSION_H_
