#include "ml/gradient_descent.h"

#include <cmath>

#include "la/blas.h"

namespace m3::ml {

using util::Result;
using util::Status;

GradientDescent::GradientDescent(GradientDescentOptions options)
    : options_(std::move(options)) {}

Result<OptimizationResult> GradientDescent::Minimize(
    DifferentiableFunction* function, la::VectorView w) const {
  if (function == nullptr) {
    return Status::InvalidArgument("null objective");
  }
  const size_t n = function->Dimension();
  if (w.size() != n) {
    return Status::InvalidArgument("initial point has wrong dimension");
  }

  OptimizationResult result;
  la::Vector grad(n), w_trial(n), grad_trial(n);
  const auto* chunked_before = dynamic_cast<ChunkedObjective*>(function);
  const size_t passes_before =
      chunked_before != nullptr ? chunked_before->passes() : 0;
  double f = function->EvaluateWithGradient(w, grad);
  ++result.function_evaluations;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const double grad_inf = la::AbsMax(grad);
    if (options_.iteration_callback) {
      options_.iteration_callback(iter, f, grad_inf);
    }
    if (grad_inf <= options_.gradient_tolerance) {
      result.converged = true;
      break;
    }
    const double grad_sq = la::Dot(grad, grad);

    // Backtracking: shrink until Armijo holds.
    double step = options_.initial_step;
    double f_new = f;
    bool accepted = false;
    for (size_t bt = 0; bt < options_.max_backtracks; ++bt) {
      la::Copy(w, w_trial);
      la::Axpy(-step, grad, w_trial);
      f_new = function->EvaluateWithGradient(w_trial, grad_trial);
      ++result.function_evaluations;
      if (f_new <= f - options_.armijo * step * grad_sq &&
          std::isfinite(f_new)) {
        accepted = true;
        break;
      }
      step *= options_.backtrack;
    }
    if (!accepted) {
      break;  // no acceptable step: flat to numerical precision
    }
    la::Copy(w_trial, w);
    la::Copy(grad_trial, grad);

    const double improvement =
        std::fabs(f - f_new) / std::max(1.0, std::fabs(f));
    f = f_new;
    ++result.iterations;
    result.objective_history.push_back(f);
    if (improvement < options_.objective_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.objective = f;
  result.gradient_norm = la::AbsMax(grad);
  if (result.gradient_norm <= options_.gradient_tolerance) {
    result.converged = true;
  }
  // Chunked objectives scan the data once per evaluation through the
  // execution engine; report the pass count (the paper's I/O unit).
  if (auto* chunked = dynamic_cast<ChunkedObjective*>(function)) {
    result.data_passes = chunked->passes() - passes_before;
  }
  return result;
}

}  // namespace m3::ml
