#include "ml/scaler.h"

#include <algorithm>
#include <cmath>

#include "la/chunker.h"
#include "util/thread_pool.h"

namespace m3::ml {

using util::Result;
using util::Status;

namespace {

/// Per-feature Welford accumulator block.
struct Moments {
  la::Vector mean;
  la::Vector m2;
  uint64_t count = 0;

  explicit Moments(size_t cols) : mean(cols), m2(cols) {}

  void Add(la::ConstVectorView row) {
    ++count;
    const double inv = 1.0 / static_cast<double>(count);
    for (size_t j = 0; j < mean.size(); ++j) {
      const double delta = row[j] - mean[j];
      mean[j] += delta * inv;
      m2[j] += delta * (row[j] - mean[j]);
    }
  }

  void Merge(const Moments& other) {
    if (other.count == 0) {
      return;
    }
    if (count == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(count + other.count);
    for (size_t j = 0; j < mean.size(); ++j) {
      const double delta = other.mean[j] - mean[j];
      mean[j] += delta * static_cast<double>(other.count) / total;
      m2[j] += other.m2[j] + delta * delta * static_cast<double>(count) *
                                 static_cast<double>(other.count) / total;
    }
    count += other.count;
  }
};

}  // namespace

Result<StandardScaler::Params> StandardScaler::Fit(la::ConstMatrixView x,
                                                   size_t chunk_rows,
                                                   ScanHooks hooks) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  Moments global(d);
  la::RowChunker chunker(n, la::AutoChunkRows(d, chunk_rows));
  if (hooks.before_pass) {
    hooks.before_pass(0);
  }
  for (size_t ci = 0; ci < chunker.NumChunks(); ++ci) {
    const la::RowChunker::Range range = chunker.Chunk(ci);
    const auto ranges = util::PartitionRange(
        range.begin, range.end, 512, util::GlobalThreadPool().num_threads());
    std::vector<Moments> partials(ranges.size(), Moments(d));
    util::ParallelForIndexed(range.begin, range.end, 512,
                             [&](size_t chunk, size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) {
        partials[chunk].Add(x.Row(r));
      }
    });
    for (const Moments& partial : partials) {
      global.Merge(partial);
    }
    if (hooks.after_chunk) {
      hooks.after_chunk(range.begin, range.end);
    }
  }

  Params params;
  params.mean = std::move(global.mean);
  params.scale = la::Vector(d);
  for (size_t j = 0; j < d; ++j) {
    const double variance = global.m2[j] / static_cast<double>(n);
    params.scale[j] = std::max(std::sqrt(variance), 1e-12);
  }
  return params;
}

void StandardScaler::TransformRow(const Params& params,
                                  la::ConstVectorView row,
                                  la::VectorView out) {
  for (size_t j = 0; j < params.mean.size(); ++j) {
    out[j] = (row[j] - params.mean[j]) / params.scale[j];
  }
}

void StandardScaler::TransformInPlace(const Params& params, la::MatrixView x) {
  for (size_t r = 0; r < x.rows(); ++r) {
    TransformRow(params, x.Row(r), x.Row(r));
  }
}

}  // namespace m3::ml
