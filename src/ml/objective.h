#ifndef M3_ML_OBJECTIVE_H_
#define M3_ML_OBJECTIVE_H_

#include <cstddef>
#include <functional>

#include "la/matrix.h"

namespace m3::ml {

/// \brief A differentiable objective f: R^d -> R to be minimized.
///
/// Optimizers (L-BFGS, gradient descent) know only this interface; the
/// data-backed objectives below implement it with sequential chunked scans,
/// so one `EvaluateWithGradient` call equals one full pass over the dataset
/// — the unit of I/O the paper's runtime analysis counts.
class DifferentiableFunction {
 public:
  virtual ~DifferentiableFunction() = default;

  /// Number of parameters.
  virtual size_t Dimension() const = 0;

  /// Returns f(w) and writes the full gradient into `grad`.
  /// \pre w.size() == grad.size() == Dimension().
  virtual double EvaluateWithGradient(la::ConstVectorView w,
                                      la::VectorView grad) = 0;
};

/// \brief Instrumentation hooks for data-scanning objectives.
///
/// `after_chunk` fires after each contiguous block of rows has been
/// consumed during a pass; the core RAM-budget emulator uses it to evict
/// pages behind the scan. `before_pass` fires at the start of every full
/// pass over the data (each optimizer function evaluation is one pass).
struct ScanHooks {
  std::function<void(size_t row_begin, size_t row_end)> after_chunk;
  std::function<void(size_t pass_index)> before_pass;
};

/// \brief A data-backed objective that can be evaluated on row subsets.
///
/// Extends DifferentiableFunction with per-chunk evaluation used by the
/// mini-batch SGD trainer (the paper's §4 online-learning extension).
class ChunkedObjective : public DifferentiableFunction {
 public:
  /// Rows in the backing dataset.
  virtual size_t NumRows() const = 0;

  /// Adds the gradient contribution of rows [begin, end) (already divided
  /// by NumRows() so that summing all chunks yields the full data term) and
  /// returns those rows' loss contribution. Regularization is NOT included;
  /// it is applied once per full pass by EvaluateWithGradient.
  virtual double EvaluateChunk(size_t begin, size_t end,
                               la::ConstVectorView w,
                               la::VectorView grad) = 0;
};

}  // namespace m3::ml

#endif  // M3_ML_OBJECTIVE_H_
