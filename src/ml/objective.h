#ifndef M3_ML_OBJECTIVE_H_
#define M3_ML_OBJECTIVE_H_

#include <cstddef>
#include <functional>
#include <memory>

#include "la/chunker.h"
#include "la/matrix.h"

namespace m3::exec {
class ChunkPipeline;
}  // namespace m3::exec

namespace m3::ml {

/// \brief A differentiable objective f: R^d -> R to be minimized.
///
/// Optimizers (L-BFGS, gradient descent) know only this interface; the
/// data-backed objectives below implement it with sequential chunked scans,
/// so one `EvaluateWithGradient` call equals one full pass over the dataset
/// — the unit of I/O the paper's runtime analysis counts.
class DifferentiableFunction {
 public:
  virtual ~DifferentiableFunction() = default;

  /// Number of parameters.
  virtual size_t Dimension() const = 0;

  /// Returns f(w) and writes the full gradient into `grad`.
  /// \pre w.size() == grad.size() == Dimension().
  virtual double EvaluateWithGradient(la::ConstVectorView w,
                                      la::VectorView grad) = 0;
};

/// \brief Instrumentation hooks for data-scanning objectives.
///
/// `after_chunk` fires after each contiguous block of rows has been
/// consumed during a pass; the core RAM-budget emulator uses it to evict
/// pages behind the scan. `before_pass` fires at the start of every full
/// pass over the data (each optimizer function evaluation is one pass).
struct ScanHooks {
  std::function<void(size_t row_begin, size_t row_end)> after_chunk;
  std::function<void(size_t pass_index)> before_pass;
};

/// \brief A data-backed objective that can be evaluated on row subsets.
///
/// Extends DifferentiableFunction with per-chunk evaluation used by the
/// mini-batch SGD trainer (the paper's §4 online-learning extension).
///
/// The base class owns the sequential chunked scan: EvaluateWithGradient
/// drives EvaluateChunk over a RowChunker schedule through the pipelined
/// execution engine (`exec::ChunkPipeline`, when one is attached) with
/// per-chunk partial gradients merged in ascending chunk order. The merge
/// order is independent of the engine's worker count, so a trained model
/// is bitwise identical in serial mode, at 1 worker, and at N workers.
class ChunkedObjective : public DifferentiableFunction {
 public:
  /// Rows in the backing dataset.
  virtual size_t NumRows() const = 0;

  /// Adds the gradient contribution of rows [begin, end) (already divided
  /// by NumRows() so that summing all chunks yields the full data term) and
  /// returns those rows' loss contribution. Regularization is NOT included;
  /// it is applied once per full pass by ApplyRegularization. Must be
  /// deterministic and safe to call concurrently on disjoint row ranges.
  virtual double EvaluateChunk(size_t begin, size_t end,
                               la::ConstVectorView w,
                               la::VectorView grad) = 0;

  /// One full engine-driven pass: chunk partials via EvaluateChunk, merged
  /// in chunk order, plus the per-pass regularization term.
  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override;

  /// Rows per sequential scan chunk.
  size_t chunk_rows() const { return chunk_rows_; }

  /// Full data passes performed so far.
  size_t passes() const { return passes_; }

  /// Attaches the execution engine driving this objective's scans (not
  /// owned; nullptr reverts to the inline serial scan).
  void set_pipeline(exec::ChunkPipeline* pipeline) { pipeline_ = pipeline; }
  exec::ChunkPipeline* pipeline() const { return pipeline_; }

 protected:
  ChunkedObjective(size_t chunk_rows, ScanHooks hooks)
      : chunk_rows_(chunk_rows), hooks_(std::move(hooks)) {}

  /// The chunker driving EvaluateWithGradient's pass. Default: uniform
  /// la::RowChunker(NumRows(), chunk_rows()). Sparse objectives override
  /// with an nnz-budget la::SparseChunker so ragged rows still yield
  /// uniform-cost chunks. Must be deterministic: the chunk boundaries fix
  /// the FP merge grouping, so the same chunker means the same bits at
  /// every worker count.
  virtual std::unique_ptr<la::Chunker> MakeChunker() const;

  /// Adds the per-pass regularization contribution (once per full pass,
  /// after all chunks merged) and returns its loss term. Default: none.
  virtual double ApplyRegularization(la::ConstVectorView w,
                                     la::VectorView grad);

  size_t chunk_rows_ = 0;
  ScanHooks hooks_;
  exec::ChunkPipeline* pipeline_ = nullptr;
  size_t passes_ = 0;
};

}  // namespace m3::ml

#endif  // M3_ML_OBJECTIVE_H_
