#include "ml/metrics.h"

#include <algorithm>
#include <cmath>

#include "la/blas.h"
#include "util/logging.h"

namespace m3::ml {

double Accuracy(const std::vector<double>& predictions,
                const std::vector<double>& truth) {
  M3_CHECK(predictions.size() == truth.size(), "metric size mismatch");
  if (predictions.empty()) {
    return 0.0;
  }
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == truth[i]) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(predictions.size());
}

double MeanSquaredError(const std::vector<double>& predictions,
                        const std::vector<double>& targets) {
  M3_CHECK(predictions.size() == targets.size(), "metric size mismatch");
  if (predictions.empty()) {
    return 0.0;
  }
  double acc = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions[i] - targets[i];
    acc += diff * diff;
  }
  return acc / static_cast<double>(predictions.size());
}

double LogLoss(const std::vector<double>& probabilities,
               const std::vector<double>& labels) {
  M3_CHECK(probabilities.size() == labels.size(), "metric size mismatch");
  if (probabilities.empty()) {
    return 0.0;
  }
  double acc = 0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(probabilities[i], 1e-15, 1.0 - 1e-15);
    acc -= labels[i] * std::log(p) + (1.0 - labels[i]) * std::log(1.0 - p);
  }
  return acc / static_cast<double>(probabilities.size());
}

double Inertia(la::ConstMatrixView x, la::ConstMatrixView centers) {
  double total = 0;
  for (size_t r = 0; r < x.rows(); ++r) {
    double best = la::SquaredDistance(x.Row(r), centers.Row(0));
    for (size_t c = 1; c < centers.rows(); ++c) {
      best = std::min(best, la::SquaredDistance(x.Row(r), centers.Row(c)));
    }
    total += best;
  }
  return total;
}

la::Matrix ConfusionMatrix(const std::vector<double>& predictions,
                           const std::vector<double>& truth, size_t k) {
  M3_CHECK(predictions.size() == truth.size(), "metric size mismatch");
  la::Matrix confusion(k, k);
  for (size_t i = 0; i < predictions.size(); ++i) {
    const size_t t = static_cast<size_t>(truth[i]);
    const size_t p = static_cast<size_t>(predictions[i]);
    M3_CHECK(t < k && p < k, "label out of range in confusion matrix");
    confusion(t, p) += 1.0;
  }
  return confusion;
}

double ClusterPurity(const std::vector<uint32_t>& assignments,
                     const std::vector<double>& truth, size_t k,
                     size_t num_labels) {
  M3_CHECK(assignments.size() == truth.size(), "metric size mismatch");
  if (assignments.empty()) {
    return 0.0;
  }
  // counts[cluster][label]
  std::vector<std::vector<uint64_t>> counts(
      k, std::vector<uint64_t>(num_labels, 0));
  for (size_t i = 0; i < assignments.size(); ++i) {
    const size_t cluster = assignments[i];
    const size_t label = static_cast<size_t>(truth[i]);
    M3_CHECK(cluster < k && label < num_labels, "index out of range");
    ++counts[cluster][label];
  }
  uint64_t majority_total = 0;
  for (size_t c = 0; c < k; ++c) {
    majority_total += *std::max_element(counts[c].begin(), counts[c].end());
  }
  return static_cast<double>(majority_total) /
         static_cast<double>(assignments.size());
}

}  // namespace m3::ml
