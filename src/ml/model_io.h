#ifndef M3_ML_MODEL_IO_H_
#define M3_ML_MODEL_IO_H_

#include <string>

#include "ml/kmeans.h"
#include "ml/logistic_regression.h"
#include "util/result.h"

namespace m3::ml {

/// \defgroup model_io Model persistence
///
/// Small versioned binary container ("M3ML") for trained models so that
/// the out-of-core training examples can hand results to downstream
/// consumers. Layout: 16-byte header (magic, version, kind, reserved),
/// then kind-specific payload of little-endian uint64 dims + doubles.

/// \brief Persists a binary logistic-regression model.
util::Status SaveModel(const std::string& path,
                       const LogisticRegressionModel& model);

/// \brief Loads a binary logistic-regression model.
util::Result<LogisticRegressionModel> LoadLogisticRegressionModel(
    const std::string& path);

/// \brief Persists a softmax model.
util::Status SaveModel(const std::string& path,
                       const SoftmaxRegressionModel& model);

/// \brief Loads a softmax model.
util::Result<SoftmaxRegressionModel> LoadSoftmaxRegressionModel(
    const std::string& path);

/// \brief Persists k-means centers.
util::Status SaveCenters(const std::string& path, const la::Matrix& centers);

/// \brief Loads k-means centers.
util::Result<la::Matrix> LoadCenters(const std::string& path);

}  // namespace m3::ml

#endif  // M3_ML_MODEL_IO_H_
