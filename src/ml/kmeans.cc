#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "exec/chunk_map_reduce.h"
#include "la/blas.h"
#include "la/chunker.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace m3::ml {

using util::Result;
using util::Status;

namespace {

/// Index of the nearest center to `point` (and the squared distance).
size_t NearestCenter(la::ConstVectorView point, la::ConstMatrixView centers,
                     double* dist2_out) {
  size_t best = 0;
  double best_dist2 = la::SquaredDistance(point, centers.Row(0));
  for (size_t c = 1; c < centers.rows(); ++c) {
    const double dist2 = la::SquaredDistance(point, centers.Row(c));
    if (dist2 < best_dist2) {
      best_dist2 = dist2;
      best = c;
    }
  }
  if (dist2_out != nullptr) {
    *dist2_out = best_dist2;
  }
  return best;
}

/// kmeans++ seeding (Arthur & Vassilvitskii) on `sample` rows.
la::Matrix KMeansPlusPlus(la::ConstMatrixView x,
                          const std::vector<size_t>& sample, size_t k,
                          util::Rng* rng) {
  const size_t d = x.cols();
  la::Matrix centers(k, d);
  // First center: uniform over the sample.
  const size_t first = sample[rng->UniformInt(uint64_t{sample.size()})];
  la::Copy(x.Row(first), centers.Row(0));
  std::vector<double> min_dist2(sample.size(),
                                std::numeric_limits<double>::max());
  for (size_t c = 1; c < k; ++c) {
    // Update distances against the last chosen center, accumulate total.
    double total = 0;
    for (size_t i = 0; i < sample.size(); ++i) {
      const double dist2 =
          la::SquaredDistance(x.Row(sample[i]), centers.Row(c - 1));
      min_dist2[i] = std::min(min_dist2[i], dist2);
      total += min_dist2[i];
    }
    // Sample proportional to D^2 (fall back to uniform if degenerate).
    size_t chosen = sample.size() - 1;
    if (total > 0) {
      double threshold = rng->Uniform() * total;
      for (size_t i = 0; i < sample.size(); ++i) {
        threshold -= min_dist2[i];
        if (threshold <= 0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<size_t>(rng->UniformInt(uint64_t{sample.size()}));
    }
    la::Copy(x.Row(sample[chosen]), centers.Row(c));
  }
  return centers;
}

/// One chunk's assignment partial: per-cluster sums/counts + inertia.
struct AssignPartial {
  la::Matrix sums;
  std::vector<uint64_t> counts;
  double inertia = 0;
};

}  // namespace

KMeans::KMeans(KMeansOptions options) : options_(std::move(options)) {}

std::vector<uint32_t> KMeans::Assign(la::ConstMatrixView x,
                                     la::ConstMatrixView centers) {
  std::vector<uint32_t> assignment(x.rows());
  util::ParallelFor(0, x.rows(), 512, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) {
      assignment[r] =
          static_cast<uint32_t>(NearestCenter(x.Row(r), centers, nullptr));
    }
  });
  return assignment;
}

util::Result<la::Matrix> KMeans::SeedCenters(la::ConstMatrixView x,
                                             const KMeansOptions& options) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = options.k;
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  if (k == 0 || k > n) {
    return Status::InvalidArgument("k must be in [1, rows]");
  }
  if (options.initial_centers != nullptr) {
    if (options.initial_centers->rows() != k ||
        options.initial_centers->cols() != d) {
      return Status::InvalidArgument("initial_centers must be k x d");
    }
    return *options.initial_centers;
  }
  util::Rng rng(options.seed);
  // Bounded sample of row indices for seeding (evenly spaced, then
  // shuffled: touches at most init_sample rows of the mapped file).
  const size_t sample_size = std::min(n, std::max(k, options.init_sample));
  std::vector<size_t> sample(sample_size);
  const double step =
      static_cast<double>(n) / static_cast<double>(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample[i] = std::min(n - 1, static_cast<size_t>(i * step));
  }
  if (options.kmeanspp_init) {
    return KMeansPlusPlus(x, sample, k, &rng);
  }
  rng.Shuffle(&sample);
  la::Matrix centers(k, d);
  for (size_t c = 0; c < k; ++c) {
    la::Copy(x.Row(sample[c]), centers.Row(c));
  }
  return centers;
}

Result<KMeansResult> KMeans::Cluster(la::ConstMatrixView x) const {
  const size_t n = x.rows();
  const size_t d = x.cols();
  const size_t k = options_.k;
  if (options_.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be positive");
  }

  util::Rng rng(options_.seed);
  // Bounded sample reused for empty-cluster reseeding.
  const size_t sample_size =
      std::min(std::max<size_t>(n, 1),
               std::max(std::max<size_t>(k, 1), options_.init_sample));
  std::vector<size_t> sample(sample_size);
  if (n > 0) {
    const double step =
        static_cast<double>(n) / static_cast<double>(sample_size);
    for (size_t i = 0; i < sample_size; ++i) {
      sample[i] = std::min(n - 1, static_cast<size_t>(i * step));
    }
  }

  KMeansResult result;
  M3_ASSIGN_OR_RETURN(result.centers, SeedCenters(x, options_));

  const size_t chunk_rows = la::AutoChunkRows(d, options_.chunk_rows);
  la::RowChunker chunker(n, chunk_rows);
  la::Matrix sums(k, d);
  std::vector<uint64_t> counts(k);
  double previous_inertia = std::numeric_limits<double>::max();

  size_t pass = 0;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    if (options_.hooks.before_pass) {
      options_.hooks.before_pass(pass);
    }
    ++pass;
    sums.SetZero();
    std::fill(counts.begin(), counts.end(), 0);
    double inertia = 0;

    // Assignment + accumulation pass through the execution engine: each
    // chunk maps to per-cluster partial sums, merged in chunk order so the
    // result is bitwise identical at any engine worker count.
    exec::MapReduceChunks<AssignPartial>(
        options_.pipeline, chunker,
        [&](size_t, size_t row_begin, size_t row_end) {
          AssignPartial partial;
          partial.sums = la::Matrix(k, d);
          partial.counts.assign(k, 0);
          // Per-sub-chunk partials merged in fixed order (deterministic FP).
          const auto ranges = util::PartitionRange(
              row_begin, row_end, 512, util::GlobalThreadPool().num_threads());
          std::vector<la::Matrix> local_sums(ranges.size(), la::Matrix(k, d));
          std::vector<std::vector<uint64_t>> local_counts(
              ranges.size(), std::vector<uint64_t>(k, 0));
          std::vector<double> local_inertia(ranges.size(), 0.0);
          util::ParallelForIndexed(row_begin, row_end, 512,
                                   [&](size_t chunk, size_t lo, size_t hi) {
            for (size_t r = lo; r < hi; ++r) {
              double dist2 = 0;
              const size_t c = NearestCenter(x.Row(r), result.centers, &dist2);
              local_inertia[chunk] += dist2;
              la::Axpy(1.0, x.Row(r), local_sums[chunk].Row(c));
              ++local_counts[chunk][c];
            }
          });
          for (size_t s = 0; s < ranges.size(); ++s) {
            partial.inertia += local_inertia[s];
            for (size_t c = 0; c < k; ++c) {
              if (local_counts[s][c] > 0) {
                la::Axpy(1.0, local_sums[s].Row(c), partial.sums.Row(c));
                partial.counts[c] += local_counts[s][c];
              }
            }
          }
          return partial;
        },
        [&](size_t ci, AssignPartial&& partial) {
          inertia += partial.inertia;
          for (size_t c = 0; c < k; ++c) {
            if (partial.counts[c] > 0) {
              la::Axpy(1.0, partial.sums.Row(c), sums.Row(c));
              counts[c] += partial.counts[c];
            }
          }
          if (options_.hooks.after_chunk) {
            const la::RowChunker::Range range = chunker.Chunk(ci);
            options_.hooks.after_chunk(range.begin, range.end);
          }
        });

    // Recompute centers; reseed any emptied cluster from the sample.
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] > 0) {
        la::Copy(sums.Row(c), result.centers.Row(c));
        la::Scal(1.0 / static_cast<double>(counts[c]),
                 result.centers.Row(c));
      } else {
        const size_t row = sample[rng.UniformInt(uint64_t{sample.size()})];
        la::Copy(x.Row(row), result.centers.Row(c));
      }
    }

    result.inertia = inertia;
    result.inertia_history.push_back(inertia);
    ++result.iterations;
    if (options_.iteration_callback) {
      options_.iteration_callback(iter, inertia);
    }
    const double improvement =
        (previous_inertia - inertia) / std::max(1.0, previous_inertia);
    if (iter > 0 && improvement >= 0 && improvement < options_.tolerance) {
      result.converged = true;
      break;
    }
    previous_inertia = inertia;
  }
  return result;
}

}  // namespace m3::ml
