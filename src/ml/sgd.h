#ifndef M3_ML_SGD_H_
#define M3_ML_SGD_H_

#include <cstdint>
#include <functional>

#include "ml/lbfgs.h"  // OptimizationResult
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Options for mini-batch stochastic gradient descent.
struct SgdOptions {
  size_t epochs = 5;
  /// Rows per mini-batch. Batches are *contiguous* row blocks whose visit
  /// order is an epoch-shuffled exec::ChunkSchedule: randomness for
  /// convergence, sequential in-batch access for mmap locality (the §4
  /// access-pattern tradeoff).
  size_t batch_rows = 256;
  double learning_rate = 0.1;
  /// Step decay: lr_t = learning_rate / (1 + decay * t), t = batch counter.
  double decay = 1e-3;
  /// Seeds both the per-epoch batch shuffles and nothing else: results are
  /// a pure function of (data, options) at any engine worker count.
  uint64_t seed = 42;
  /// Optional per-epoch observer: (epoch, mean-loss-over-batches).
  std::function<void(size_t, double)> epoch_callback;
};

/// \brief Mini-batch SGD over a ChunkedObjective.
///
/// The paper's §4 names online learning as the first extension target for
/// M3; this trainer is that extension. It reuses the same chunk-evaluation
/// path as the batch optimizers, so it runs identically on mmap'd data.
///
/// Epochs run through the execution engine when the objective has an
/// exec::ChunkPipeline attached (ChunkedObjective::set_pipeline): prefetch
/// walks the epoch's shuffled schedule ahead of the weight updates and
/// eviction trails the visited batches under the engine's RAM budget. The
/// updates themselves run in the engine's in-order retire stage, so the
/// trained weights are bitwise identical with no engine, a serial engine,
/// and any `num_workers` count, for a fixed seed.
class Sgd {
 public:
  explicit Sgd(SgdOptions options = SgdOptions());

  /// Runs `epochs` passes, updating `w` in place. The returned
  /// OptimizationResult reports the final full-data loss in `objective`
  /// and the per-epoch mean batch losses in objective_history (data term
  /// only; regularization is excluded) — the two are distinct values.
  util::Result<OptimizationResult> Minimize(ChunkedObjective* objective,
                                            la::VectorView w) const;

  const SgdOptions& options() const { return options_; }

 private:
  SgdOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_SGD_H_
