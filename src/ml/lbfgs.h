#ifndef M3_ML_LBFGS_H_
#define M3_ML_LBFGS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Outcome of an optimizer run.
struct OptimizationResult {
  double objective = 0;              ///< final f(w)
  double gradient_norm = 0;          ///< final ||grad||
  size_t iterations = 0;             ///< outer iterations performed
  size_t function_evaluations = 0;   ///< full data passes
  /// Sequential data passes the objective actually performed (from
  /// ChunkedObjective::passes(); equals function_evaluations for chunked
  /// objectives, 0 for objectives that do not scan data).
  size_t data_passes = 0;
  bool converged = false;            ///< gradient tolerance reached
  std::vector<double> objective_history;  ///< f after each iteration
};

/// \brief Options for the L-BFGS optimizer.
struct LbfgsOptions {
  size_t max_iterations = 100;
  /// Number of (s, y) correction pairs kept (mlpack default is 10).
  size_t history = 10;
  /// Stop when ||grad||_inf <= this.
  double gradient_tolerance = 1e-6;
  /// Stop when |f_k - f_{k+1}| / max(1, |f_k|) falls below this.
  double objective_tolerance = 1e-12;
  /// Armijo sufficient-decrease constant (c1) for the Wolfe line search.
  double armijo = 1e-4;
  /// Curvature constant (c2) for the strong Wolfe condition.
  double wolfe = 0.9;
  size_t max_line_search_steps = 30;
  /// Optional per-iteration observer: (iteration, f, ||grad||_inf).
  std::function<void(size_t, double, double)> iteration_callback;
};

/// \brief Limited-memory BFGS with a strong-Wolfe line search
/// (Nocedal & Wright, Algorithms 3.5/3.6 + 7.4 two-loop recursion).
///
/// This is the optimizer the paper uses for logistic regression ("10
/// iterations of L-BFGS"). Each line-search probe is a full pass over the
/// data, which is why L-BFGS on a memory-mapped out-of-core dataset is
/// I/O-bound: every evaluation streams the file once.
class Lbfgs {
 public:
  explicit Lbfgs(LbfgsOptions options = LbfgsOptions());

  /// Minimizes `function` starting from (and updating) `w`.
  util::Result<OptimizationResult> Minimize(DifferentiableFunction* function,
                                            la::VectorView w) const;

  const LbfgsOptions& options() const { return options_; }

 private:
  LbfgsOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_LBFGS_H_
