#ifndef M3_ML_SCALER_H_
#define M3_ML_SCALER_H_

#include <cstddef>

#include "la/matrix.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Per-feature standardization fitted in ONE sequential scan.
///
/// Out-of-core preprocessing in the M3 style: the fit is a single chunked
/// pass over the (possibly mapped) matrix accumulating per-feature
/// mean/variance with Welford partials merged deterministically, so the
/// I/O cost is exactly one dataset read. Transform is applied per-row on
/// the fly (the mapped file is read-only), e.g. by copying scaled rows
/// into a batch buffer.
class StandardScaler {
 public:
  /// Fitted parameters: x' = (x - mean) / scale, scale = max(stddev, eps).
  struct Params {
    la::Vector mean;
    la::Vector scale;
    size_t cols() const { return mean.size(); }
  };

  /// Fits over all rows of `x` in one chunked pass.
  static util::Result<Params> Fit(la::ConstMatrixView x,
                                  size_t chunk_rows = 0,
                                  ScanHooks hooks = ScanHooks());

  /// Applies the transform to one row, writing into `out`.
  /// \pre row.size() == params.cols() == out.size().
  static void TransformRow(const Params& params, la::ConstVectorView row,
                           la::VectorView out);

  /// Applies the transform in place to an owning matrix.
  static void TransformInPlace(const Params& params, la::MatrixView x);
};

}  // namespace m3::ml

#endif  // M3_ML_SCALER_H_
