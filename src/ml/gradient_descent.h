#ifndef M3_ML_GRADIENT_DESCENT_H_
#define M3_ML_GRADIENT_DESCENT_H_

#include <functional>

#include "ml/lbfgs.h"  // OptimizationResult
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Options for batch gradient descent.
struct GradientDescentOptions {
  size_t max_iterations = 500;
  double gradient_tolerance = 1e-6;
  double objective_tolerance = 1e-12;
  /// Initial step size tried each iteration before backtracking.
  double initial_step = 1.0;
  /// Armijo sufficient-decrease constant.
  double armijo = 1e-4;
  /// Multiplicative backtracking factor in (0, 1).
  double backtrack = 0.5;
  size_t max_backtracks = 40;
  std::function<void(size_t, double, double)> iteration_callback;
};

/// \brief Full-batch gradient descent with Armijo backtracking.
///
/// The simplest baseline optimizer: one gradient pass + a few cheap probes
/// per iteration. Used in tests and as an ablation against L-BFGS (which
/// converges in far fewer passes on the paper's logistic regression).
class GradientDescent {
 public:
  explicit GradientDescent(
      GradientDescentOptions options = GradientDescentOptions());

  util::Result<OptimizationResult> Minimize(DifferentiableFunction* function,
                                            la::VectorView w) const;

  const GradientDescentOptions& options() const { return options_; }

 private:
  GradientDescentOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_GRADIENT_DESCENT_H_
