#include "ml/naive_bayes.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "exec/chunk_map_reduce.h"
#include "la/blas.h"
#include "la/chunker.h"
#include "util/thread_pool.h"

namespace m3::ml {

using util::Result;
using util::Status;

NaiveBayes::NaiveBayes(NaiveBayesOptions options)
    : options_(std::move(options)) {}

Result<NaiveBayesModel> NaiveBayes::Train(la::ConstMatrixView x,
                                          la::ConstVectorView y,
                                          size_t num_classes) const {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  if (n != y.size()) {
    return Status::InvalidArgument("labels size mismatch");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes");
  }

  la::Matrix sums(num_classes, d);
  la::Matrix sq_sums(num_classes, d);
  std::vector<uint64_t> counts(num_classes, 0);

  const size_t chunk_rows = la::AutoChunkRows(d, options_.chunk_rows);
  la::RowChunker chunker(n, chunk_rows);
  if (options_.hooks.before_pass) {
    options_.hooks.before_pass(0);
  }
  // Sufficient-statistics pass through the execution engine: one partial
  // (sums, squared sums, counts) per chunk, merged in chunk order.
  struct StatsPartial {
    la::Matrix sums;
    la::Matrix sq_sums;
    std::vector<uint64_t> counts;
  };
  exec::MapReduceChunks<StatsPartial>(
      options_.pipeline, chunker,
      [&](size_t, size_t row_begin, size_t row_end) {
        StatsPartial partial;
        partial.sums = la::Matrix(num_classes, d);
        partial.sq_sums = la::Matrix(num_classes, d);
        partial.counts.assign(num_classes, 0);
        const auto ranges = util::PartitionRange(
            row_begin, row_end, 512, util::GlobalThreadPool().num_threads());
        std::vector<la::Matrix> local_sums(ranges.size(),
                                           la::Matrix(num_classes, d));
        std::vector<la::Matrix> local_sq(ranges.size(),
                                         la::Matrix(num_classes, d));
        std::vector<std::vector<uint64_t>> local_counts(
            ranges.size(), std::vector<uint64_t>(num_classes, 0));
        util::ParallelForIndexed(row_begin, row_end, 512,
                                 [&](size_t chunk, size_t lo, size_t hi) {
          for (size_t r = lo; r < hi; ++r) {
            const double label = y[r];
            if (label < 0 || label >= static_cast<double>(num_classes) ||
                label != std::floor(label)) {
              return;  // leaves total != n; reported below
            }
            const size_t c = static_cast<size_t>(label);
            la::ConstVectorView xi = x.Row(r);
            la::Axpy(1.0, xi, local_sums[chunk].Row(c));
            double* sq = local_sq[chunk].Row(c).data();
            for (size_t j = 0; j < d; ++j) {
              sq[j] += xi[j] * xi[j];
            }
            ++local_counts[chunk][c];
          }
        });
        for (size_t s = 0; s < ranges.size(); ++s) {
          for (size_t c = 0; c < num_classes; ++c) {
            la::Axpy(1.0, local_sums[s].Row(c), partial.sums.Row(c));
            la::Axpy(1.0, local_sq[s].Row(c), partial.sq_sums.Row(c));
            partial.counts[c] += local_counts[s][c];
          }
        }
        return partial;
      },
      [&](size_t ci, StatsPartial&& partial) {
        for (size_t c = 0; c < num_classes; ++c) {
          la::Axpy(1.0, partial.sums.Row(c), sums.Row(c));
          la::Axpy(1.0, partial.sq_sums.Row(c), sq_sums.Row(c));
          counts[c] += partial.counts[c];
        }
        if (options_.hooks.after_chunk) {
          const la::RowChunker::Range range = chunker.Chunk(ci);
          options_.hooks.after_chunk(range.begin, range.end);
        }
      });

  // Validate labels were all integral in range (re-scan cheaply).
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  if (total != n) {
    return Status::InvalidArgument(
        "labels must be integers in [0, num_classes)");
  }

  NaiveBayesModel model;
  model.means = la::Matrix(num_classes, d);
  model.variances = la::Matrix(num_classes, d);
  model.log_priors = la::Vector(num_classes);
  double max_var = 0;
  for (size_t c = 0; c < num_classes; ++c) {
    const double count = static_cast<double>(std::max<uint64_t>(1, counts[c]));
    for (size_t j = 0; j < d; ++j) {
      const double mean = sums(c, j) / count;
      model.means(c, j) = mean;
      const double var = sq_sums(c, j) / count - mean * mean;
      model.variances(c, j) = std::max(0.0, var);
      max_var = std::max(max_var, model.variances(c, j));
    }
    // Laplace-free prior; empty classes get a tiny prior.
    model.log_priors[c] =
        std::log(std::max(1e-12, static_cast<double>(counts[c]) /
                                     static_cast<double>(n)));
  }
  const double epsilon = std::max(options_.var_smoothing * max_var, 1e-12);
  for (size_t c = 0; c < num_classes; ++c) {
    for (size_t j = 0; j < d; ++j) {
      model.variances(c, j) += epsilon;
    }
  }
  return model;
}

size_t NaiveBayesModel::Predict(la::ConstVectorView x) const {
  size_t best = 0;
  double best_score = -std::numeric_limits<double>::max();
  for (size_t c = 0; c < means.rows(); ++c) {
    double score = log_priors[c];
    for (size_t j = 0; j < means.cols(); ++j) {
      const double var = variances(c, j);
      const double diff = x[j] - means(c, j);
      score += -0.5 * (std::log(2 * M_PI * var) + diff * diff / var);
    }
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace m3::ml
