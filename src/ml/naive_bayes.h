#ifndef M3_ML_NAIVE_BAYES_H_
#define M3_ML_NAIVE_BAYES_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Trained Gaussian naive-Bayes model.
struct NaiveBayesModel {
  la::Matrix means;      ///< k x d per-class feature means
  la::Matrix variances;  ///< k x d per-class feature variances (smoothed)
  la::Vector log_priors; ///< k log class priors

  size_t num_classes() const { return means.rows(); }

  /// Most likely class under the class-conditional Gaussian model.
  size_t Predict(la::ConstVectorView x) const;
};

/// \brief Options for Gaussian naive Bayes.
struct NaiveBayesOptions {
  /// Variance smoothing added to every per-class variance, as a fraction
  /// of the largest feature variance (sklearn-style epsilon).
  double var_smoothing = 1e-9;
  size_t chunk_rows = 0;  ///< 0 = auto
  ScanHooks hooks;
  /// Execution engine driving the single training scan. Not owned;
  /// nullptr = inline serial scan.
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief Single-pass Gaussian naive Bayes over matrix views.
///
/// The extreme point of the paper's access-pattern spectrum: training is
/// exactly ONE sequential scan (sufficient statistics per class), making it
/// the cheapest M3 workload per byte and a useful contrast to L-BFGS's
/// many passes in the access-pattern benches.
class NaiveBayes {
 public:
  explicit NaiveBayes(NaiveBayesOptions options = NaiveBayesOptions());

  /// Trains on (x, y); labels are integers in [0, num_classes).
  util::Result<NaiveBayesModel> Train(la::ConstMatrixView x,
                                      la::ConstVectorView y,
                                      size_t num_classes) const;

 private:
  NaiveBayesOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_NAIVE_BAYES_H_
