#include "ml/model_io.h"

#include <cstring>

#include "io/buffered_io.h"
#include "util/format.h"

namespace m3::ml {

using util::Result;
using util::Status;

namespace {

constexpr char kMagic[4] = {'M', '3', 'M', 'L'};
constexpr uint32_t kVersion = 1;

enum class ModelKind : uint32_t {
  kLogisticRegression = 1,
  kSoftmaxRegression = 2,
  kKMeansCenters = 3,
};

struct Header {
  char magic[4];
  uint32_t version;
  uint32_t kind;
  uint32_t reserved;
};
static_assert(sizeof(Header) == 16);

Result<io::BufferedWriter> OpenForKind(const std::string& path,
                                       ModelKind kind) {
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      io::BufferedWriter::Create(path));
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.kind = static_cast<uint32_t>(kind);
  header.reserved = 0;
  M3_RETURN_IF_ERROR(writer.Append(&header, sizeof(header)));
  return writer;
}

Result<io::BufferedReader> OpenExpectingKind(const std::string& path,
                                             ModelKind kind) {
  M3_ASSIGN_OR_RETURN(io::BufferedReader reader, io::BufferedReader::Open(path));
  Header header;
  M3_RETURN_IF_ERROR(reader.ReadExact(&header, sizeof(header)));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an M3 model file: " + path);
  }
  if (header.version != kVersion) {
    return Status::NotSupported(
        util::StrFormat("model version %u unsupported", header.version));
  }
  if (header.kind != static_cast<uint32_t>(kind)) {
    return Status::InvalidArgument(util::StrFormat(
        "model kind mismatch in %s: file has %u, expected %u", path.c_str(),
        header.kind, static_cast<uint32_t>(kind)));
  }
  return reader;
}

Status WriteVector(io::BufferedWriter* writer, la::ConstVectorView v) {
  const uint64_t n = v.size();
  M3_RETURN_IF_ERROR(writer->AppendValue(n));
  return writer->Append(v.data(), n * sizeof(double));
}

Result<la::Vector> ReadVector(io::BufferedReader* reader) {
  M3_ASSIGN_OR_RETURN(uint64_t n, reader->ReadValue<uint64_t>());
  if (n > (1ull << 32)) {
    return Status::InvalidArgument("unreasonable vector size in model file");
  }
  la::Vector v(static_cast<size_t>(n));
  M3_RETURN_IF_ERROR(reader->ReadExact(v.data(), n * sizeof(double)));
  return v;
}

Status WriteMatrix(io::BufferedWriter* writer, la::ConstMatrixView m) {
  const uint64_t rows = m.rows();
  const uint64_t cols = m.cols();
  M3_RETURN_IF_ERROR(writer->AppendValue(rows));
  M3_RETURN_IF_ERROR(writer->AppendValue(cols));
  for (size_t r = 0; r < rows; ++r) {
    M3_RETURN_IF_ERROR(writer->Append(m.Row(r).data(),
                                      cols * sizeof(double)));
  }
  return Status::OK();
}

Result<la::Matrix> ReadMatrix(io::BufferedReader* reader) {
  M3_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadValue<uint64_t>());
  M3_ASSIGN_OR_RETURN(uint64_t cols, reader->ReadValue<uint64_t>());
  if (rows > (1ull << 32) || cols > (1ull << 32)) {
    return Status::InvalidArgument("unreasonable matrix size in model file");
  }
  la::Matrix m(static_cast<size_t>(rows), static_cast<size_t>(cols));
  if (rows * cols > 0) {
    M3_RETURN_IF_ERROR(
        reader->ReadExact(m.data(), rows * cols * sizeof(double)));
  }
  return m;
}

}  // namespace

Status SaveModel(const std::string& path,
                 const LogisticRegressionModel& model) {
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      OpenForKind(path, ModelKind::kLogisticRegression));
  M3_RETURN_IF_ERROR(WriteVector(&writer, model.weights));
  M3_RETURN_IF_ERROR(writer.AppendValue(model.intercept));
  return writer.Close();
}

Result<LogisticRegressionModel> LoadLogisticRegressionModel(
    const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::BufferedReader reader,
                      OpenExpectingKind(path, ModelKind::kLogisticRegression));
  LogisticRegressionModel model;
  M3_ASSIGN_OR_RETURN(model.weights, ReadVector(&reader));
  M3_ASSIGN_OR_RETURN(model.intercept, reader.ReadValue<double>());
  return model;
}

Status SaveModel(const std::string& path,
                 const SoftmaxRegressionModel& model) {
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      OpenForKind(path, ModelKind::kSoftmaxRegression));
  M3_RETURN_IF_ERROR(WriteMatrix(&writer, model.weights));
  M3_RETURN_IF_ERROR(WriteVector(&writer, model.biases));
  return writer.Close();
}

Result<SoftmaxRegressionModel> LoadSoftmaxRegressionModel(
    const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::BufferedReader reader,
                      OpenExpectingKind(path, ModelKind::kSoftmaxRegression));
  SoftmaxRegressionModel model;
  M3_ASSIGN_OR_RETURN(model.weights, ReadMatrix(&reader));
  M3_ASSIGN_OR_RETURN(model.biases, ReadVector(&reader));
  if (model.biases.size() != model.weights.rows()) {
    return Status::InvalidArgument("softmax model is internally inconsistent");
  }
  return model;
}

Status SaveCenters(const std::string& path, const la::Matrix& centers) {
  M3_ASSIGN_OR_RETURN(io::BufferedWriter writer,
                      OpenForKind(path, ModelKind::kKMeansCenters));
  M3_RETURN_IF_ERROR(WriteMatrix(&writer, centers));
  return writer.Close();
}

Result<la::Matrix> LoadCenters(const std::string& path) {
  M3_ASSIGN_OR_RETURN(io::BufferedReader reader,
                      OpenExpectingKind(path, ModelKind::kKMeansCenters));
  return ReadMatrix(&reader);
}

}  // namespace m3::ml
