#ifndef M3_ML_SPARSE_LOGISTIC_REGRESSION_H_
#define M3_ML_SPARSE_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "la/chunker.h"
#include "la/sparse.h"
#include "ml/lbfgs.h"
#include "ml/logistic_regression.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Binary logistic-regression objective over a CSR feature view.
///
/// Same loss, same chunked engine pass, same deterministic merge order as
/// the dense LogisticRegressionObjective — only the per-row kernels
/// change (la::SparseDot / la::SparseAxpy over stored nonzeros). The
/// per-row arithmetic performs the dense row's additions minus its zero
/// terms in the same order, so on a densified copy of the same data the
/// two objectives agree to the last ulp *when chunked identically*
/// (pass `chunk_rows` > 0 for that mode; the conformance suite does).
///
/// Default chunking is the nnz-budget la::SparseChunker
/// (`chunk_nnz_bytes`, 0 = ~8 MiB payload per chunk): ragged rows still
/// yield uniform-cost chunks for the prefetch/evict engine. Boundaries
/// depend only on the data, so results stay bitwise identical at any
/// worker count and prefetch backend, as always.
class SparseLogisticRegressionObjective final : public ChunkedObjective {
 public:
  /// \param x n-by-d CSR view (validated; rows are samples)
  /// \param y n labels in {0, 1}
  /// \param l2 ridge penalty lambda (intercept not penalized)
  /// \param chunk_rows > 0 forces uniform row chunks (dense-conformance
  ///        mode); 0 chunks by nnz budget
  /// \param chunk_nnz_bytes payload bytes per chunk (0 = ~8 MiB); only
  ///        used when chunk_rows == 0
  SparseLogisticRegressionObjective(la::CsrView x, la::ConstVectorView y,
                                    double l2, size_t chunk_rows = 0,
                                    uint64_t chunk_nnz_bytes = 0,
                                    ScanHooks hooks = ScanHooks());

  /// d + 1 parameters: weights then intercept (last element).
  size_t Dimension() const override { return x_.cols() + 1; }
  size_t NumRows() const override { return x_.rows(); }

  double EvaluateChunk(size_t begin, size_t end, la::ConstVectorView w,
                       la::VectorView grad) override;

 protected:
  double ApplyRegularization(la::ConstVectorView w,
                             la::VectorView grad) override;
  std::unique_ptr<la::Chunker> MakeChunker() const override;

 private:
  la::CsrView x_;
  la::ConstVectorView y_;
  double l2_;
  uint64_t chunk_nnz_bytes_;
};

/// \brief Options for training sparse logistic regression.
struct SparseLogisticRegressionOptions {
  double l2 = 1e-6;
  size_t chunk_rows = 0;         ///< > 0: uniform row chunks
  uint64_t chunk_nnz_bytes = 0;  ///< payload budget per chunk (0 = auto)
  LbfgsOptions lbfgs;
  ScanHooks hooks;
  /// Execution engine driving the training scans. For mmap'd CSR data
  /// pass MappedSparseDataset::pipeline() so prefetch/evict follow the
  /// CSR sections. Not owned; nullptr = inline serial.
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief L-BFGS-trained logistic regression on CSR features. Produces
/// the same LogisticRegressionModel as the dense trainer.
class SparseLogisticRegression {
 public:
  explicit SparseLogisticRegression(SparseLogisticRegressionOptions options =
                                        SparseLogisticRegressionOptions());

  /// Trains on (x, y); labels must be {0, 1}.
  util::Result<LogisticRegressionModel> Train(
      const la::CsrView& x, la::ConstVectorView y,
      OptimizationResult* stats = nullptr) const;

 private:
  SparseLogisticRegressionOptions options_;
};

/// \brief Multiclass softmax-regression objective over a CSR view.
///
/// The sparse twin of SoftmaxRegressionObjective (flattened k x (d+1)
/// parameters); shares ChunkedObjective's engine pass and the chunking
/// policy described on SparseLogisticRegressionObjective.
class SparseSoftmaxRegressionObjective final : public ChunkedObjective {
 public:
  SparseSoftmaxRegressionObjective(la::CsrView x, la::ConstVectorView y,
                                   size_t num_classes, double l2,
                                   size_t chunk_rows = 0,
                                   uint64_t chunk_nnz_bytes = 0,
                                   ScanHooks hooks = ScanHooks());

  size_t Dimension() const override {
    return num_classes_ * (x_.cols() + 1);
  }
  size_t NumRows() const override { return x_.rows(); }

  double EvaluateChunk(size_t begin, size_t end, la::ConstVectorView w,
                       la::VectorView grad) override;

  size_t num_classes() const { return num_classes_; }

 protected:
  double ApplyRegularization(la::ConstVectorView w,
                             la::VectorView grad) override;
  std::unique_ptr<la::Chunker> MakeChunker() const override;

 private:
  la::CsrView x_;
  la::ConstVectorView y_;
  size_t num_classes_;
  double l2_;
  uint64_t chunk_nnz_bytes_;
};

/// \brief Options for sparse softmax training.
struct SparseSoftmaxRegressionOptions {
  double l2 = 1e-6;
  size_t chunk_rows = 0;
  uint64_t chunk_nnz_bytes = 0;
  LbfgsOptions lbfgs;
  ScanHooks hooks;
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief L-BFGS-trained multiclass classifier on CSR features.
class SparseSoftmaxRegression {
 public:
  explicit SparseSoftmaxRegression(SparseSoftmaxRegressionOptions options =
                                       SparseSoftmaxRegressionOptions());

  util::Result<SoftmaxRegressionModel> Train(
      const la::CsrView& x, la::ConstVectorView y, size_t num_classes,
      OptimizationResult* stats = nullptr) const;

 private:
  SparseSoftmaxRegressionOptions options_;
};

}  // namespace m3::ml

#endif  // M3_ML_SPARSE_LOGISTIC_REGRESSION_H_
