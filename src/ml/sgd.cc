#include "ml/sgd.h"

#include <algorithm>
#include <cmath>

#include "la/blas.h"
#include "la/chunker.h"
#include "util/random.h"

namespace m3::ml {

using util::Result;
using util::Status;

Sgd::Sgd(SgdOptions options) : options_(std::move(options)) {}

Result<OptimizationResult> Sgd::Minimize(ChunkedObjective* objective,
                                         la::VectorView w) const {
  if (objective == nullptr) {
    return Status::InvalidArgument("null objective");
  }
  if (w.size() != objective->Dimension()) {
    return Status::InvalidArgument("initial point has wrong dimension");
  }
  if (options_.batch_rows == 0 || options_.epochs == 0) {
    return Status::InvalidArgument("batch_rows and epochs must be positive");
  }
  const size_t n = objective->NumRows();
  if (n == 0) {
    return Status::InvalidArgument("objective has no data");
  }

  util::Rng rng(options_.seed);
  la::RowChunker chunker(n, options_.batch_rows);
  const size_t num_batches = chunker.NumChunks();
  std::vector<size_t> order(num_batches);
  for (size_t i = 0; i < num_batches; ++i) {
    order[i] = i;
  }

  OptimizationResult result;
  la::Vector grad(w.size());
  size_t step_index = 0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0;
    for (size_t batch : order) {
      const la::RowChunker::Range range = chunker.Chunk(batch);
      grad.SetZero();
      // EvaluateChunk returns loss/n and gradient/n contributions; rescale
      // to the batch mean so the step size is batch-size independent.
      const double scale =
          static_cast<double>(n) / static_cast<double>(range.size());
      const double batch_loss =
          objective->EvaluateChunk(range.begin, range.end, w, grad) * scale;
      ++result.function_evaluations;
      const double lr =
          options_.learning_rate /
          (1.0 + options_.decay * static_cast<double>(step_index));
      la::Axpy(-lr * scale, grad, w);
      epoch_loss += batch_loss;
      ++step_index;
    }
    epoch_loss /= static_cast<double>(num_batches);
    result.objective_history.push_back(epoch_loss);
    ++result.iterations;
    if (options_.epoch_callback) {
      options_.epoch_callback(epoch, epoch_loss);
    }
  }
  result.objective = result.objective_history.back();
  // Final full gradient for reporting.
  grad.SetZero();
  result.objective = objective->EvaluateWithGradient(w, grad);
  ++result.function_evaluations;
  result.gradient_norm = la::AbsMax(grad);
  result.converged = true;  // SGD runs a fixed budget
  return result;
}

}  // namespace m3::ml
