#include "ml/sgd.h"

#include <algorithm>
#include <cmath>

#include "exec/chunk_pipeline.h"
#include "exec/chunk_schedule.h"
#include "la/blas.h"
#include "la/chunker.h"
#include "util/random.h"

namespace m3::ml {

using util::Result;
using util::Status;

Sgd::Sgd(SgdOptions options) : options_(std::move(options)) {}

Result<OptimizationResult> Sgd::Minimize(ChunkedObjective* objective,
                                         la::VectorView w) const {
  if (objective == nullptr) {
    return Status::InvalidArgument("null objective");
  }
  if (w.size() != objective->Dimension()) {
    return Status::InvalidArgument("initial point has wrong dimension");
  }
  if (options_.batch_rows == 0 || options_.epochs == 0) {
    return Status::InvalidArgument("batch_rows and epochs must be positive");
  }
  const size_t n = objective->NumRows();
  if (n == 0) {
    return Status::InvalidArgument("objective has no data");
  }

  util::Rng rng(options_.seed);
  la::RowChunker chunker(n, options_.batch_rows);
  const size_t num_batches = chunker.NumChunks();
  exec::ChunkPipeline* pipeline = objective->pipeline();

  OptimizationResult result;
  la::Vector grad(w.size());
  size_t step_index = 0;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    // One shuffle per epoch, drawn from the seed's stream: the visit order
    // depends only on (seed, epoch), never on the engine configuration.
    const exec::ChunkSchedule schedule =
        exec::ChunkSchedule::Shuffled(num_batches, rng.Next());
    double epoch_loss = 0;
    exec::RunPass(
        pipeline, chunker, schedule,
        // Each step reads the weights the previous step wrote, so gradient
        // work cannot fan out across map workers; the engine's value here
        // is prefetch running ahead along the shuffled schedule (and
        // budget eviction trailing it) while retire does the math. Retire
        // order is the schedule order at any worker count, which keeps the
        // trained weights bitwise identical across engine configurations.
        [](size_t, size_t, size_t, size_t) {},
        [&](size_t, size_t, size_t row_begin, size_t row_end) {
          grad.SetZero();
          // EvaluateChunk returns loss/n and gradient/n contributions;
          // rescale to the batch mean so the step size is batch-size
          // independent.
          const double scale = static_cast<double>(n) /
                               static_cast<double>(row_end - row_begin);
          const double batch_loss =
              objective->EvaluateChunk(row_begin, row_end, w, grad) * scale;
          ++result.function_evaluations;
          const double lr =
              options_.learning_rate /
              (1.0 + options_.decay * static_cast<double>(step_index));
          la::Axpy(-lr * scale, grad, w);
          epoch_loss += batch_loss;
          ++step_index;
        },
        // Pages are touched by the retire-stage math above, so the
        // prefetch hit/stall race is judged at retire — trustworthy at
        // any pipeline_workers count.
        exec::RaceStage::kRetire);
    epoch_loss /= static_cast<double>(num_batches);
    result.objective_history.push_back(epoch_loss);
    ++result.iterations;
    if (options_.epoch_callback) {
      options_.epoch_callback(epoch, epoch_loss);
    }
  }
  // Final full-data evaluation for reporting. `objective` carries only
  // this value; the per-epoch mean batch losses stay in objective_history
  // so the two are never conflated.
  grad.SetZero();
  result.objective = objective->EvaluateWithGradient(w, grad);
  ++result.function_evaluations;
  result.gradient_norm = la::AbsMax(grad);
  result.converged = true;  // SGD runs a fixed budget
  return result;
}

}  // namespace m3::ml
