#include "ml/objective.h"

#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "la/blas.h"
#include "la/chunker.h"

namespace m3::ml {

namespace {

/// One chunk's contribution to the pass: loss + partial gradient.
struct ChunkPartial {
  double loss = 0;
  la::Vector grad;
};

}  // namespace

double ChunkedObjective::ApplyRegularization(la::ConstVectorView,
                                             la::VectorView) {
  return 0.0;
}

std::unique_ptr<la::Chunker> ChunkedObjective::MakeChunker() const {
  return std::make_unique<la::RowChunker>(NumRows(), chunk_rows_);
}

double ChunkedObjective::EvaluateWithGradient(la::ConstVectorView w,
                                              la::VectorView grad) {
  if (hooks_.before_pass) {
    hooks_.before_pass(passes_);
  }
  ++passes_;
  grad.SetZero();
  double loss = 0;
  const std::unique_ptr<la::Chunker> chunker_ptr = MakeChunker();
  const la::Chunker& chunker = *chunker_ptr;
  const size_t dim = Dimension();
  exec::MapReduceChunks<ChunkPartial>(
      pipeline_, chunker,
      [&](size_t, size_t row_begin, size_t row_end) {
        ChunkPartial partial;
        partial.grad = la::Vector(dim);
        partial.loss =
            EvaluateChunk(row_begin, row_end, w, partial.grad.View());
        return partial;
      },
      [&](size_t chunk, ChunkPartial&& partial) {
        loss += partial.loss;
        la::Axpy(1.0, partial.grad, grad);
        if (hooks_.after_chunk) {
          const la::Chunker::Range range = chunker.Chunk(chunk);
          hooks_.after_chunk(range.begin, range.end);
        }
      });
  loss += ApplyRegularization(w, grad);
  return loss;
}

}  // namespace m3::ml
