#include "ml/linear_regression.h"

#include <mutex>

#include "exec/chunk_map_reduce.h"
#include "la/blas.h"
#include "la/chunker.h"
#include "la/solve.h"
#include "util/thread_pool.h"

namespace m3::ml {

using util::Result;
using util::Status;

LinearRegression::LinearRegression(LinearRegressionOptions options)
    : options_(std::move(options)) {}

double LinearRegressionModel::Predict(la::ConstVectorView x) const {
  return la::Dot(x, weights) + intercept;
}

Result<LinearRegressionModel> LinearRegression::Train(
    la::ConstMatrixView x, la::ConstVectorView y) const {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n == 0 || d == 0) {
    return Status::InvalidArgument("empty data");
  }
  if (n != y.size()) {
    return Status::InvalidArgument("labels size mismatch");
  }

  // Augmented system over [features, 1]: G = Z^T Z (SPD), r = Z^T y.
  const size_t m = d + 1;
  la::Matrix gram(m, m);
  la::Vector rhs(m);

  const size_t chunk_rows = la::AutoChunkRows(d, options_.chunk_rows);
  la::RowChunker chunker(n, chunk_rows);
  if (options_.hooks.before_pass) {
    options_.hooks.before_pass(0);
  }
  // Normal-equation accumulation through the execution engine: one
  // (gram, rhs) partial per chunk, merged in chunk order.
  struct GramPartial {
    la::Matrix gram;
    la::Vector rhs;
  };
  exec::MapReduceChunks<GramPartial>(
      options_.pipeline, chunker,
      [&](size_t, size_t row_begin, size_t row_end) {
        GramPartial partial;
        partial.gram = la::Matrix(m, m);
        partial.rhs = la::Vector(m);
        const auto ranges = util::PartitionRange(
            row_begin, row_end, 256, util::GlobalThreadPool().num_threads());
        std::vector<la::Matrix> local_gram(ranges.size(), la::Matrix(m, m));
        std::vector<la::Vector> local_rhs(ranges.size(), la::Vector(m));
        util::ParallelForIndexed(row_begin, row_end, 256,
                                 [&](size_t chunk, size_t lo, size_t hi) {
          la::Matrix& my_gram = local_gram[chunk];
          la::Vector& my_rhs = local_rhs[chunk];
          for (size_t r = lo; r < hi; ++r) {
            la::ConstVectorView xi = x.Row(r);
            const double yi = y[r];
            // Lower triangle of the outer product (SPD symmetry).
            for (size_t a = 0; a < d; ++a) {
              const double xa = xi[a];
              double* grow = my_gram.Row(a).data();
              for (size_t b = 0; b <= a; ++b) {
                grow[b] += xa * xi[b];
              }
              my_rhs[a] += xa * yi;
            }
            // Intercept column: Z[:, d] = 1.
            double* last = my_gram.Row(d).data();
            for (size_t b = 0; b < d; ++b) {
              last[b] += xi[b];
            }
            last[d] += 1.0;
            my_rhs[d] += yi;
          }
        });
        for (size_t s = 0; s < ranges.size(); ++s) {
          for (size_t a = 0; a < m; ++a) {
            la::Axpy(1.0, local_gram[s].Row(a), partial.gram.Row(a));
          }
          la::Axpy(1.0, local_rhs[s], partial.rhs);
        }
        return partial;
      },
      [&](size_t ci, GramPartial&& partial) {
        for (size_t a = 0; a < m; ++a) {
          la::Axpy(1.0, partial.gram.Row(a), gram.Row(a));
        }
        la::Axpy(1.0, partial.rhs, rhs);
        if (options_.hooks.after_chunk) {
          const la::RowChunker::Range range = chunker.Chunk(ci);
          options_.hooks.after_chunk(range.begin, range.end);
        }
      });

  // Mirror the lower triangle and add the ridge term (not on intercept).
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = a + 1; b < m; ++b) {
      gram(a, b) = gram(b, a);
    }
  }
  for (size_t a = 0; a < d; ++a) {
    gram(a, a) += options_.l2;
  }
  // Tiny jitter keeps the Cholesky stable when features are collinear.
  for (size_t a = 0; a < m; ++a) {
    gram(a, a) += 1e-10;
  }

  M3_ASSIGN_OR_RETURN(la::Vector solution, la::SolveSpd(gram, rhs));
  LinearRegressionModel model;
  model.weights = la::Vector(d);
  la::Copy(solution.View().Slice(0, d), model.weights);
  model.intercept = solution[d];
  return model;
}

}  // namespace m3::ml
