#ifndef M3_ML_LOGISTIC_REGRESSION_H_
#define M3_ML_LOGISTIC_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "la/chunker.h"
#include "la/matrix.h"
#include "ml/lbfgs.h"
#include "ml/objective.h"
#include "util/result.h"

namespace m3::ml {

/// \brief Binary logistic-regression objective over a dense feature view.
///
/// loss(w, b) = (1/n) sum_i [ log(1 + e^{z_i}) - y_i z_i ]
///              + (lambda/2) ||w||^2,   z_i = w . x_i + b
///
/// The data is scanned in sequential row chunks driven by the base-class
/// engine pass (exec::ChunkPipeline when attached); within a chunk the
/// work is partitioned across the thread pool with per-worker partial
/// gradients. Because `x` is a view, the same objective runs on heap data
/// and on an mmap'd dataset — the M3 property under test. One
/// EvaluateWithGradient call performs exactly one full pass over `x`
/// (ScanHooks observe it).
class LogisticRegressionObjective final : public ChunkedObjective {
 public:
  /// \param x n-by-d feature view (rows are samples)
  /// \param y n labels in {0, 1}
  /// \param l2 ridge penalty lambda (intercept not penalized)
  /// \param chunk_rows rows per sequential chunk (0 = auto, ~8 MiB chunks)
  LogisticRegressionObjective(la::ConstMatrixView x, la::ConstVectorView y,
                              double l2, size_t chunk_rows = 0,
                              ScanHooks hooks = ScanHooks());

  /// d + 1 parameters: weights then intercept (last element).
  size_t Dimension() const override { return x_.cols() + 1; }
  size_t NumRows() const override { return x_.rows(); }

  double EvaluateChunk(size_t begin, size_t end, la::ConstVectorView w,
                       la::VectorView grad) override;

 protected:
  double ApplyRegularization(la::ConstVectorView w,
                             la::VectorView grad) override;

 private:
  la::ConstMatrixView x_;
  la::ConstVectorView y_;
  double l2_;
};

/// \brief Trained binary logistic-regression model.
struct LogisticRegressionModel {
  la::Vector weights;  ///< d feature weights
  double intercept = 0;

  /// P(y = 1 | x).
  double PredictProbability(la::ConstVectorView x) const;
  /// Hard 0/1 decision at threshold 0.5.
  double Predict(la::ConstVectorView x) const;
};

/// \brief Options for training logistic regression.
struct LogisticRegressionOptions {
  double l2 = 1e-6;
  size_t chunk_rows = 0;  ///< 0 = auto
  LbfgsOptions lbfgs;
  ScanHooks hooks;
  /// Execution engine driving the training scans (prefetch/evict overlap
  /// and parallel chunk map-reduce). Not owned; nullptr = inline serial.
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief L-BFGS-trained logistic regression (the paper's classifier).
class LogisticRegression {
 public:
  explicit LogisticRegression(
      LogisticRegressionOptions options = LogisticRegressionOptions());

  /// Trains on (x, y); labels must be {0, 1}.
  util::Result<LogisticRegressionModel> Train(
      la::ConstMatrixView x, la::ConstVectorView y,
      OptimizationResult* stats = nullptr) const;

 private:
  LogisticRegressionOptions options_;
};

/// \brief Multiclass softmax-regression objective (k classes).
///
/// Parameters are a flattened k x (d+1) matrix (per-class weights + bias).
/// Same chunked sequential-scan structure as the binary objective.
class SoftmaxRegressionObjective final : public ChunkedObjective {
 public:
  SoftmaxRegressionObjective(la::ConstMatrixView x, la::ConstVectorView y,
                             size_t num_classes, double l2,
                             size_t chunk_rows = 0,
                             ScanHooks hooks = ScanHooks());

  size_t Dimension() const override {
    return num_classes_ * (x_.cols() + 1);
  }
  size_t NumRows() const override { return x_.rows(); }

  double EvaluateChunk(size_t begin, size_t end, la::ConstVectorView w,
                       la::VectorView grad) override;

  size_t num_classes() const { return num_classes_; }

 protected:
  double ApplyRegularization(la::ConstVectorView w,
                             la::VectorView grad) override;

 private:
  la::ConstMatrixView x_;
  la::ConstVectorView y_;
  size_t num_classes_;
  double l2_;
};

/// \brief Trained softmax model: class scores = W x + b.
struct SoftmaxRegressionModel {
  la::Matrix weights;   ///< k x d
  la::Vector biases;    ///< k
  size_t num_classes() const { return weights.rows(); }

  /// Most likely class for x.
  size_t Predict(la::ConstVectorView x) const;
};

/// \brief Options for softmax training.
struct SoftmaxRegressionOptions {
  double l2 = 1e-6;
  size_t chunk_rows = 0;
  LbfgsOptions lbfgs;
  ScanHooks hooks;
  /// Execution engine driving the training scans (see
  /// LogisticRegressionOptions::pipeline).
  exec::ChunkPipeline* pipeline = nullptr;
};

/// \brief L-BFGS-trained multiclass classifier (for the 10-digit example).
class SoftmaxRegression {
 public:
  explicit SoftmaxRegression(
      SoftmaxRegressionOptions options = SoftmaxRegressionOptions());

  util::Result<SoftmaxRegressionModel> Train(
      la::ConstMatrixView x, la::ConstVectorView y, size_t num_classes,
      OptimizationResult* stats = nullptr) const;

 private:
  SoftmaxRegressionOptions options_;
};

/// The chunk-size policy lives with the chunker; re-exported here for the
/// trainers and their callers.
using la::AutoChunkRows;

}  // namespace m3::ml

#endif  // M3_ML_LOGISTIC_REGRESSION_H_
