#include "ml/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "la/blas.h"
#include "util/logging.h"

namespace m3::ml {

using util::Result;
using util::Status;

namespace {

/// State shared by the line-search helpers: evaluates
/// phi(alpha) = f(w + alpha * d) and phi'(alpha) = grad . d.
struct LineProbe {
  DifferentiableFunction* function;
  la::ConstVectorView w0;
  la::ConstVectorView direction;
  la::VectorView w_trial;    // scratch: w0 + alpha d
  la::VectorView grad_trial; // scratch: gradient at w_trial
  size_t* evaluations;

  double Eval(double alpha, double* derivative) {
    la::Copy(w0, w_trial);
    la::Axpy(alpha, direction, w_trial);
    const double value =
        function->EvaluateWithGradient(w_trial, grad_trial);
    ++*evaluations;
    *derivative = la::Dot(grad_trial, direction);
    return value;
  }
};

/// Cubic/bisection interpolation inside [lo, hi].
double Interpolate(double lo, double hi) { return 0.5 * (lo + hi); }

/// Nocedal & Wright Algorithm 3.6 ("zoom").
/// Returns the accepted step, or 0 on failure.
double Zoom(LineProbe* probe, double alpha_lo, double alpha_hi, double f_lo,
            double f0, double df0, double armijo, double wolfe,
            size_t max_steps) {
  for (size_t i = 0; i < max_steps; ++i) {
    const double alpha = Interpolate(alpha_lo, alpha_hi);
    double df = 0;
    const double f = probe->Eval(alpha, &df);
    if (f > f0 + armijo * alpha * df0 || f >= f_lo) {
      alpha_hi = alpha;
    } else {
      if (std::fabs(df) <= -wolfe * df0) {
        return alpha;  // strong Wolfe satisfied
      }
      if (df * (alpha_hi - alpha_lo) >= 0) {
        alpha_hi = alpha_lo;
      }
      alpha_lo = alpha;
      f_lo = f;
    }
    if (std::fabs(alpha_hi - alpha_lo) < 1e-16) {
      break;
    }
  }
  return alpha_lo > 0 ? alpha_lo : 0.0;
}

/// Nocedal & Wright Algorithm 3.5 (line search for strong Wolfe).
double WolfeLineSearch(LineProbe* probe, double f0, double df0, double armijo,
                       double wolfe, size_t max_steps, double initial_alpha) {
  if (df0 >= 0) {
    return 0.0;  // not a descent direction
  }
  double alpha_prev = 0.0;
  double f_prev = f0;
  double alpha = initial_alpha;
  constexpr double kAlphaMax = 1e6;
  for (size_t i = 0; i < max_steps; ++i) {
    double df = 0;
    const double f = probe->Eval(alpha, &df);
    if (f > f0 + armijo * alpha * df0 || (i > 0 && f >= f_prev)) {
      return Zoom(probe, alpha_prev, alpha, f_prev, f0, df0, armijo, wolfe,
                  max_steps);
    }
    if (std::fabs(df) <= -wolfe * df0) {
      return alpha;
    }
    if (df >= 0) {
      return Zoom(probe, alpha, alpha_prev, f, f0, df0, armijo, wolfe,
                  max_steps);
    }
    alpha_prev = alpha;
    f_prev = f;
    alpha = std::min(2.0 * alpha, kAlphaMax);
  }
  return alpha_prev;
}

}  // namespace

Lbfgs::Lbfgs(LbfgsOptions options) : options_(std::move(options)) {}

Result<OptimizationResult> Lbfgs::Minimize(DifferentiableFunction* function,
                                           la::VectorView w) const {
  if (function == nullptr) {
    return Status::InvalidArgument("null objective");
  }
  const size_t n = function->Dimension();
  if (w.size() != n) {
    return Status::InvalidArgument("initial point has wrong dimension");
  }
  if (options_.history == 0) {
    return Status::InvalidArgument("history must be positive");
  }

  OptimizationResult result;
  la::Vector grad(n), grad_prev(n), direction(n);
  la::Vector w_trial(n), grad_trial(n), w_prev(n);

  const auto* chunked_before = dynamic_cast<ChunkedObjective*>(function);
  const size_t passes_before =
      chunked_before != nullptr ? chunked_before->passes() : 0;

  double f = function->EvaluateWithGradient(w, grad);
  ++result.function_evaluations;
  if (!std::isfinite(f)) {
    return Status::FailedPrecondition(
        "objective is not finite at the initial point");
  }

  // Correction-pair history (s = w_k+1 - w_k, y = g_k+1 - g_k).
  std::deque<la::Vector> s_history, y_history;
  std::deque<double> rho_history;

  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    const double grad_inf = la::AbsMax(grad);
    if (options_.iteration_callback) {
      options_.iteration_callback(iter, f, grad_inf);
    }
    if (grad_inf <= options_.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H grad.
    la::Copy(grad, direction);
    std::vector<double> alpha(s_history.size());
    for (size_t i = s_history.size(); i > 0; --i) {
      const size_t k = i - 1;
      alpha[k] = rho_history[k] * la::Dot(s_history[k], direction);
      la::Axpy(-alpha[k], y_history[k], direction);
    }
    if (!s_history.empty()) {
      // Initial Hessian scaling gamma = s.y / y.y (Nocedal eq. 7.20).
      const la::Vector& s_last = s_history.back();
      const la::Vector& y_last = y_history.back();
      const double yy = la::Dot(y_last, y_last);
      if (yy > 0) {
        la::Scal(la::Dot(s_last, y_last) / yy, direction);
      }
    }
    for (size_t k = 0; k < s_history.size(); ++k) {
      const double beta = rho_history[k] * la::Dot(y_history[k], direction);
      la::Axpy(alpha[k] - beta, s_history[k], direction);
    }
    la::Scal(-1.0, direction);

    // Strong-Wolfe line search along `direction`.
    const double df0 = la::Dot(grad, direction);
    la::Copy(w, w_prev);
    la::Copy(grad, grad_prev);
    LineProbe probe{function, w_prev, direction, w_trial, grad_trial,
                    &result.function_evaluations};
    // After the first update the two-loop recursion scales the direction
    // properly, so a unit step is the right opening probe. On the very
    // first iteration the direction is the raw (unscaled) negative
    // gradient, whose magnitude is arbitrary — open with ~unit-length
    // movement instead (Nocedal & Wright §6.1; mlpack does the same).
    const double initial_alpha =
        s_history.empty()
            ? 1.0 / std::max(1.0, la::Nrm2(direction))
            : 1.0;
    const double step =
        WolfeLineSearch(&probe, f, df0, options_.armijo, options_.wolfe,
                        options_.max_line_search_steps, initial_alpha);
    if (step <= 0) {
      // Line search failed: either converged to numerical precision or the
      // direction was bad; stop with what we have.
      break;
    }

    // Accept w = w_prev + step * direction; reuse the last probe state if it
    // matches, else evaluate at the accepted point.
    la::Copy(w_prev, w);
    la::Axpy(step, direction, w);
    const double f_new = function->EvaluateWithGradient(w, grad);
    ++result.function_evaluations;

    // Update history.
    la::Vector s(n), y(n);
    la::Copy(w, s);
    la::Axpy(-1.0, w_prev, s);
    la::Copy(grad, y);
    la::Axpy(-1.0, grad_prev, y);
    const double sy = la::Dot(s, y);
    if (sy > 1e-12) {  // curvature condition; skip degenerate pairs
      if (s_history.size() == options_.history) {
        s_history.pop_front();
        y_history.pop_front();
        rho_history.pop_front();
      }
      s_history.push_back(std::move(s));
      y_history.push_back(std::move(y));
      rho_history.push_back(1.0 / sy);
    }

    const double improvement =
        std::fabs(f - f_new) / std::max(1.0, std::fabs(f));
    f = f_new;
    ++result.iterations;
    result.objective_history.push_back(f);
    if (improvement < options_.objective_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.objective = f;
  result.gradient_norm = la::AbsMax(grad);
  if (result.gradient_norm <= options_.gradient_tolerance) {
    result.converged = true;
  }
  // Every evaluation of a chunked objective is one engine-driven pass over
  // the data; report how many this run performed (the paper's I/O unit).
  if (auto* chunked = dynamic_cast<ChunkedObjective*>(function)) {
    result.data_passes = chunked->passes() - passes_before;
  }
  return result;
}

}  // namespace m3::ml
