#include "la/blas.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace m3::la {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, util::Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      m(r, c) = rng->Uniform(-1.0, 1.0);
    }
  }
  return m;
}

Vector RandomVector(size_t n, util::Rng* rng) {
  Vector v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng->Uniform(-1.0, 1.0);
  }
  return v;
}

TEST(BlasTest, DotBasic) {
  Vector x(std::vector<double>{1, 2, 3});
  Vector y(std::vector<double>{4, 5, 6});
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(Dot(x, x), 14.0);
}

TEST(BlasTest, DotEmptyIsZero) {
  Vector empty;
  EXPECT_DOUBLE_EQ(Dot(empty, empty), 0.0);
}

TEST(BlasTest, AxpyAccumulates) {
  Vector x(std::vector<double>{1, 2, 3});
  Vector y(std::vector<double>{10, 20, 30});
  Axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(BlasTest, ScalScales) {
  Vector x(std::vector<double>{1, -2, 3});
  Scal(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], -6.0);
}

TEST(BlasTest, Nrm2AndSumAndAbsMax) {
  Vector x(std::vector<double>{3, -4});
  EXPECT_DOUBLE_EQ(Nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(Sum(x), -1.0);
  EXPECT_DOUBLE_EQ(AbsMax(x), 4.0);
  Vector empty;
  EXPECT_DOUBLE_EQ(AbsMax(empty), 0.0);
}

TEST(BlasTest, SquaredDistanceMatchesDefinition) {
  Vector x(std::vector<double>{1, 2, 3});
  Vector y(std::vector<double>{2, 0, 3});
  EXPECT_DOUBLE_EQ(SquaredDistance(x, y), 1.0 + 4.0 + 0.0);
}

TEST(BlasTest, CopyCopies) {
  Vector x(std::vector<double>{1, 2});
  Vector y(2);
  Copy(x, y);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

TEST(BlasTest, GemvMatchesManual) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Vector x(std::vector<double>{1, 0, -1});
  Vector y(std::vector<double>{10, 10});
  Gemv(2.0, a, x, 0.5, y);
  // A*x = {1-3, 4-6} = {-2, -2}; y = 2*(-2) + 0.5*10 = 1
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(BlasTest, GemvTMatchesManual) {
  Matrix a(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  Vector x(std::vector<double>{1, -1});
  Vector y(3);
  GemvT(1.0, a, x, 0.0, y);
  // A^T x = {1-4, 2-5, 3-6}
  EXPECT_DOUBLE_EQ(y[0], -3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
}

TEST(BlasTest, GemvTransposeConsistency) {
  // Property: x^T (A y) == (A^T x)^T y for random A, x, y.
  util::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix a = RandomMatrix(17, 9, &rng);
    Vector x = RandomVector(17, &rng);
    Vector y = RandomVector(9, &rng);
    Vector ay(17);
    Gemv(1.0, a, y, 0.0, ay);
    Vector atx(9);
    GemvT(1.0, a, x, 0.0, atx);
    EXPECT_NEAR(Dot(x, ay), Dot(atx, y), 1e-10);
  }
}

TEST(BlasTest, GemmMatchesNaive) {
  util::Rng rng(31);
  Matrix a = RandomMatrix(7, 5, &rng);
  Matrix b = RandomMatrix(5, 9, &rng);
  Matrix c(7, 9);
  Gemm(1.0, a, b, 0.0, c);
  for (size_t i = 0; i < 7; ++i) {
    for (size_t j = 0; j < 9; ++j) {
      double expected = 0;
      for (size_t k = 0; k < 5; ++k) {
        expected += a(i, k) * b(k, j);
      }
      ASSERT_NEAR(c(i, j), expected, 1e-12);
    }
  }
}

TEST(BlasTest, GemmAlphaBetaComposition) {
  util::Rng rng(41);
  Matrix a = RandomMatrix(4, 4, &rng);
  Matrix b = RandomMatrix(4, 4, &rng);
  Matrix c = RandomMatrix(4, 4, &rng);
  Matrix expected = c;
  // expected = 2*A*B + 3*C computed naively.
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      double acc = 0;
      for (size_t k = 0; k < 4; ++k) {
        acc += a(i, k) * b(k, j);
      }
      expected(i, j) = 2.0 * acc + 3.0 * c(i, j);
    }
  }
  Gemm(2.0, a, b, 3.0, c);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      ASSERT_NEAR(c(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(BlasTest, GemmBlockingCrossesBlockBoundary) {
  // k = 130 exceeds the 64-wide block: checks block loop seams.
  util::Rng rng(51);
  Matrix a = RandomMatrix(3, 130, &rng);
  Matrix b = RandomMatrix(130, 2, &rng);
  Matrix c(3, 2);
  Gemm(1.0, a, b, 0.0, c);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      double expected = 0;
      for (size_t k = 0; k < 130; ++k) {
        expected += a(i, k) * b(k, j);
      }
      ASSERT_NEAR(c(i, j), expected, 1e-10);
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized property sweep: parallel kernels must agree with their
// sequential counterparts for a range of shapes that straddle the grain.
// ---------------------------------------------------------------------------

struct ShapeParam {
  size_t rows;
  size_t cols;
};

class ParallelKernelTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(ParallelKernelTest, ParallelGemvMatchesSequential) {
  const ShapeParam p = GetParam();
  util::Rng rng(61 + p.rows);
  Matrix a = RandomMatrix(p.rows, p.cols, &rng);
  Vector x = RandomVector(p.cols, &rng);
  Vector y_seq = RandomVector(p.rows, &rng);
  Vector y_par = y_seq;
  Gemv(1.7, a, x, 0.3, y_seq);
  ParallelGemv(1.7, a, x, 0.3, y_par);
  for (size_t i = 0; i < p.rows; ++i) {
    ASSERT_NEAR(y_seq[i], y_par[i], 1e-10) << "row " << i;
  }
}

TEST_P(ParallelKernelTest, ParallelGemvTMatchesSequential) {
  const ShapeParam p = GetParam();
  util::Rng rng(71 + p.cols);
  Matrix a = RandomMatrix(p.rows, p.cols, &rng);
  Vector x = RandomVector(p.rows, &rng);
  Vector y_seq = RandomVector(p.cols, &rng);
  Vector y_par = y_seq;
  GemvT(0.9, a, x, 1.1, y_seq);
  ParallelGemvT(0.9, a, x, 1.1, y_par);
  for (size_t i = 0; i < p.cols; ++i) {
    ASSERT_NEAR(y_seq[i], y_par[i], 1e-9) << "col " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ParallelKernelTest,
    ::testing::Values(ShapeParam{1, 1}, ShapeParam{3, 7}, ShapeParam{255, 16},
                      ShapeParam{256, 16}, ShapeParam{257, 16},
                      ShapeParam{1024, 8}, ShapeParam{2000, 3}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

}  // namespace
}  // namespace m3::la
