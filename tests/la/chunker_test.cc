#include "la/chunker.h"

#include <gtest/gtest.h>

namespace m3::la {
namespace {

TEST(RowChunkerTest, ExactDivision) {
  RowChunker chunker(100, 25);
  EXPECT_EQ(chunker.NumChunks(), 4u);
  EXPECT_EQ(chunker.Chunk(0).begin, 0u);
  EXPECT_EQ(chunker.Chunk(0).end, 25u);
  EXPECT_EQ(chunker.Chunk(3).begin, 75u);
  EXPECT_EQ(chunker.Chunk(3).end, 100u);
}

TEST(RowChunkerTest, RaggedTail) {
  RowChunker chunker(10, 4);
  EXPECT_EQ(chunker.NumChunks(), 3u);
  EXPECT_EQ(chunker.Chunk(2).begin, 8u);
  EXPECT_EQ(chunker.Chunk(2).end, 10u);
  EXPECT_EQ(chunker.Chunk(2).size(), 2u);
}

TEST(RowChunkerTest, SingleChunkWhenLarger) {
  RowChunker chunker(5, 100);
  EXPECT_EQ(chunker.NumChunks(), 1u);
  EXPECT_EQ(chunker.Chunk(0).size(), 5u);
}

TEST(RowChunkerTest, ZeroRows) {
  RowChunker chunker(0, 8);
  EXPECT_EQ(chunker.NumChunks(), 0u);
}

TEST(RowChunkerTest, ZeroChunkSizeClampedToOne) {
  RowChunker chunker(3, 0);
  EXPECT_EQ(chunker.chunk_rows(), 1u);
  EXPECT_EQ(chunker.NumChunks(), 3u);
}

TEST(RowChunkerTest, ChunkEqualsTotalIsOneExactChunk) {
  RowChunker chunker(64, 64);
  EXPECT_EQ(chunker.NumChunks(), 1u);
  EXPECT_EQ(chunker.Chunk(0).begin, 0u);
  EXPECT_EQ(chunker.Chunk(0).end, 64u);
}

TEST(RowChunkerTest, SingleRow) {
  RowChunker chunker(1, 1 << 20);
  EXPECT_EQ(chunker.NumChunks(), 1u);
  EXPECT_EQ(chunker.Chunk(0).size(), 1u);
}

TEST(RowChunkerTest, ZeroRowsWithHugeChunk) {
  RowChunker chunker(0, size_t{1} << 40);
  EXPECT_EQ(chunker.NumChunks(), 0u);
  EXPECT_EQ(chunker.total_rows(), 0u);
}

TEST(RowChunkerTest, LastChunkOfChunkSizeOne) {
  RowChunker chunker(5, 1);
  EXPECT_EQ(chunker.NumChunks(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(chunker.Chunk(i).begin, i);
    EXPECT_EQ(chunker.Chunk(i).size(), 1u);
  }
}

TEST(RowChunkerTest, ChunksPartitionRange) {
  RowChunker chunker(1237, 64);
  size_t covered = 0;
  size_t expected_begin = 0;
  for (size_t i = 0; i < chunker.NumChunks(); ++i) {
    auto range = chunker.Chunk(i);
    EXPECT_EQ(range.begin, expected_begin);
    EXPECT_GT(range.end, range.begin);
    covered += range.size();
    expected_begin = range.end;
  }
  EXPECT_EQ(covered, 1237u);
}

}  // namespace
}  // namespace m3::la
