#include "la/matrix.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace m3::la {
namespace {

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(5);
  EXPECT_EQ(v.size(), 5u);
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i], 0.0);
  }
  v[2] = 7.5;
  EXPECT_DOUBLE_EQ(v[2], 7.5);
}

TEST(VectorTest, FillConstructorAndFromStdVector) {
  Vector filled(3, 1.5);
  EXPECT_DOUBLE_EQ(filled[0], 1.5);
  EXPECT_DOUBLE_EQ(filled[2], 1.5);
  Vector from(std::vector<double>{1, 2, 3});
  EXPECT_EQ(from.size(), 3u);
  EXPECT_DOUBLE_EQ(from[1], 2.0);
}

TEST(VectorTest, ViewAliasesStorage) {
  Vector v(4);
  VectorView view = v.View();
  view[1] = 42.0;
  EXPECT_DOUBLE_EQ(v[1], 42.0);
  ConstVectorView cview = v.View();
  EXPECT_DOUBLE_EQ(cview[1], 42.0);
}

TEST(VectorTest, ResizePreservesPrefix) {
  Vector v(std::vector<double>{1, 2});
  v.Resize(4);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[3], 0.0);
}

TEST(VectorViewTest, SliceAndIteration) {
  std::vector<double> data{0, 1, 2, 3, 4, 5};
  ConstVectorView v(data.data(), data.size());
  ConstVectorView mid = v.Slice(2, 3);
  EXPECT_EQ(mid.size(), 3u);
  EXPECT_DOUBLE_EQ(mid[0], 2.0);
  double sum = std::accumulate(mid.begin(), mid.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 9.0);
}

TEST(VectorViewTest, FillAndSetZero) {
  std::vector<double> data(4, 1.0);
  VectorView v(data.data(), data.size());
  v.Fill(3.0);
  EXPECT_DOUBLE_EQ(data[2], 3.0);
  v.SetZero();
  EXPECT_DOUBLE_EQ(data[2], 0.0);
}

TEST(MatrixTest, RowMajorIndexing) {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 2) = 3;
  m(1, 1) = 5;
  EXPECT_DOUBLE_EQ(m.data()[0], 1.0);
  EXPECT_DOUBLE_EQ(m.data()[2], 3.0);
  EXPECT_DOUBLE_EQ(m.data()[4], 5.0);  // row 1, col 1 -> 1*3+1
}

TEST(MatrixTest, ConstructFromStorage) {
  Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RowViewWritesThrough) {
  Matrix m(3, 2);
  m.Row(1).Fill(9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 0.0);
}

TEST(MatrixViewTest, ViewOverExternalBuffer) {
  // The M3 pattern: a matrix view over memory the Matrix class does not
  // own (here a plain vector standing in for an mmap'd region).
  std::vector<double> backing{1, 2, 3, 4, 5, 6};
  ConstMatrixView view(backing.data(), 2, 3);
  EXPECT_EQ(view.rows(), 2u);
  EXPECT_EQ(view.cols(), 3u);
  EXPECT_DOUBLE_EQ(view(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(view.Row(1)[0], 4.0);
}

TEST(MatrixViewTest, RowRangeSharesStride) {
  Matrix m(5, 2);
  for (size_t r = 0; r < 5; ++r) {
    m(r, 0) = static_cast<double>(r);
  }
  ConstMatrixView middle = m.View().RowRange(1, 3);
  EXPECT_EQ(middle.rows(), 3u);
  EXPECT_DOUBLE_EQ(middle(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(middle(2, 0), 3.0);
}

TEST(MatrixViewTest, StridedViewSkipsTrailingColumns) {
  // 3 rows of 4 doubles where only the first 3 columns are "features":
  // models a record layout with label in the 4th slot.
  std::vector<double> backing{1, 2, 3, 100, 4, 5, 6, 200, 7, 8, 9, 300};
  ConstMatrixView features(backing.data(), 3, 3, 4);
  EXPECT_DOUBLE_EQ(features(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(features(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(features(2, 2), 9.0);
}

TEST(MatrixViewTest, MutableViewWritesThrough) {
  std::vector<double> backing(6, 0.0);
  MatrixView view(backing.data(), 2, 3);
  view(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(backing[5], 7.0);
  view.SetZero();
  EXPECT_DOUBLE_EQ(backing[5], 0.0);
}

TEST(MatrixViewTest, FillRespectsStride) {
  std::vector<double> backing(8, -1.0);
  MatrixView view(backing.data(), 2, 3, 4);  // 4th column untouched
  view.Fill(5.0);
  EXPECT_DOUBLE_EQ(backing[0], 5.0);
  EXPECT_DOUBLE_EQ(backing[2], 5.0);
  EXPECT_DOUBLE_EQ(backing[3], -1.0);
  EXPECT_DOUBLE_EQ(backing[7], -1.0);
}

TEST(MatrixTest, EmptyMatrixIsSafe) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  m.Fill(1.0);  // no-op, must not crash
}

}  // namespace
}  // namespace m3::la
