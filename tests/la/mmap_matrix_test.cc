// Integration: la views over io memory-mapped files — the M3 mechanism.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "io/mmap_file.h"
#include "la/blas.h"
#include "la/matrix.h"

namespace m3 {
namespace {

class MmapMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_mmapmat_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(MmapMatrixTest, KernelsAgreeOnHeapAndMappedCopies) {
  // Build a matrix on the heap, persist it, map it, and verify that every
  // kernel produces bit-identical results on both backings.
  const size_t kRows = 200, kCols = 33;
  la::Matrix heap(kRows, kCols);
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c) {
      heap(r, c) = static_cast<double>(r * kCols + c) * 0.01 - 30.0;
    }
  }
  const std::string path = dir_ + "/matrix.bin";
  {
    auto mapped =
        io::MemoryMappedFile::CreateAndMap(path, kRows * kCols * 8)
            .ValueOrDie();
    std::copy(heap.data(), heap.data() + kRows * kCols,
              mapped.As<double>());
    ASSERT_TRUE(mapped.Sync().ok());
  }
  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  la::ConstMatrixView mapped_view(mapped.As<const double>(), kRows, kCols);

  la::Vector x(kCols, 0.5);
  la::Vector y_heap(kRows), y_mapped(kRows);
  la::Gemv(1.0, heap, x, 0.0, y_heap);
  la::Gemv(1.0, mapped_view, x, 0.0, y_mapped);
  for (size_t i = 0; i < kRows; ++i) {
    ASSERT_EQ(y_heap[i], y_mapped[i]) << "Gemv row " << i;
  }

  la::Vector g_heap(kCols), g_mapped(kCols);
  la::GemvT(1.0, heap, y_heap, 0.0, g_heap);
  la::GemvT(1.0, mapped_view, y_mapped, 0.0, g_mapped);
  for (size_t i = 0; i < kCols; ++i) {
    ASSERT_EQ(g_heap[i], g_mapped[i]) << "GemvT col " << i;
  }

  ASSERT_EQ(la::Dot(heap.Row(7), heap.Row(9)),
            la::Dot(mapped_view.Row(7), mapped_view.Row(9)));
}

TEST_F(MmapMatrixTest, TableOneCodeChange) {
  // The paper's Table 1, literally:
  //   Original:  Mat data(rows, cols);
  //   M3:        double* m = mmapAlloc(file, rows * cols);
  //              Mat data(m, rows, cols);
  const size_t rows = 64, cols = 8;
  const std::string file = dir_ + "/table1.bin";

  auto region =
      io::MemoryMappedFile::CreateAndMap(file, rows * cols * sizeof(double))
          .ValueOrDie();
  double* m = region.As<double>();          // mmapAlloc(file, rows * cols)
  la::MatrixView data(m, rows, cols);       // Mat data(m, rows, cols)

  // Downstream code is oblivious to the backing store:
  data.Fill(2.0);
  la::Vector ones(cols, 1.0);
  la::Vector out(rows);
  la::Gemv(1.0, data, ones, 0.0, out);
  for (size_t i = 0; i < rows; ++i) {
    ASSERT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(cols));
  }
}

TEST_F(MmapMatrixTest, RowRangeViewsOverMappedFileChunkCleanly) {
  const size_t kRows = 100, kCols = 4;
  const std::string path = dir_ + "/chunks.bin";
  {
    auto mapped =
        io::MemoryMappedFile::CreateAndMap(path, kRows * kCols * 8)
            .ValueOrDie();
    double* p = mapped.As<double>();
    std::iota(p, p + kRows * kCols, 0.0);
  }
  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  la::ConstMatrixView view(mapped.As<const double>(), kRows, kCols);
  double total = 0;
  for (size_t chunk = 0; chunk < 10; ++chunk) {
    la::ConstMatrixView rows = view.RowRange(chunk * 10, 10);
    for (size_t r = 0; r < rows.rows(); ++r) {
      total += la::Sum(rows.Row(r));
    }
  }
  const double n = static_cast<double>(kRows * kCols);
  EXPECT_DOUBLE_EQ(total, n * (n - 1) / 2.0);
}

}  // namespace
}  // namespace m3
