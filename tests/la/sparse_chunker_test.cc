// SparseChunker boundary policy, pinned case by case: chunks must cover
// the row space exactly once, respect the payload budget except where a
// single row makes that impossible, and depend only on (row_ptr, budget)
// — the determinism the engine's bitwise fold builds on. The degenerate
// shapes here (all-empty, one giant row, budget below every row) are the
// ones a uniform RowChunker handles trivially and an nnz-budget policy
// can silently get wrong.

#include "la/chunker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace m3::la {
namespace {

/// row_ptr from per-row nnz counts.
std::vector<uint64_t> RowPtr(const std::vector<uint64_t>& nnz_per_row) {
  std::vector<uint64_t> row_ptr{0};
  for (const uint64_t nnz : nnz_per_row) {
    row_ptr.push_back(row_ptr.back() + nnz);
  }
  return row_ptr;
}

/// Every chunker must tile [0, total_rows) with contiguous non-empty
/// half-open ranges.
void ExpectExactCover(const Chunker& chunker) {
  size_t cursor = 0;
  for (size_t i = 0; i < chunker.NumChunks(); ++i) {
    const Chunker::Range range = chunker.Chunk(i);
    EXPECT_EQ(range.begin, cursor) << "chunk " << i;
    EXPECT_GT(range.end, range.begin) << "chunk " << i;
    cursor = range.end;
  }
  EXPECT_EQ(cursor, chunker.total_rows());
}

TEST(SparseChunkerTest, ZeroRowsYieldsZeroChunks) {
  const std::vector<uint64_t> row_ptr = RowPtr({});
  const SparseChunker chunker(row_ptr.data(), 0, 1024);
  EXPECT_EQ(chunker.total_rows(), 0u);
  EXPECT_EQ(chunker.NumChunks(), 0u);
}

TEST(SparseChunkerTest, AllEmptyRowsMergeIntoOneFreeChunk) {
  const std::vector<uint64_t> row_ptr = RowPtr({0, 0, 0, 0, 0});
  const SparseChunker chunker(row_ptr.data(), 5, 64);
  ASSERT_EQ(chunker.NumChunks(), 1u);
  EXPECT_EQ(chunker.Chunk(0).begin, 0u);
  EXPECT_EQ(chunker.Chunk(0).end, 5u);
  EXPECT_EQ(chunker.ChunkNnz(0), 0u);
  ExpectExactCover(chunker);
}

TEST(SparseChunkerTest, UniformRowsSplitAtTheBudget) {
  // 8 rows x 2 nnz x 12 bytes = 24 bytes/row; budget 48 = 2 rows/chunk.
  const std::vector<uint64_t> row_ptr = RowPtr({2, 2, 2, 2, 2, 2, 2, 2});
  const SparseChunker chunker(row_ptr.data(), 8, 48);
  ASSERT_EQ(chunker.NumChunks(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(chunker.Chunk(i).size(), 2u) << "chunk " << i;
    EXPECT_EQ(chunker.ChunkNnz(i), 4u) << "chunk " << i;
  }
  ExpectExactCover(chunker);
}

TEST(SparseChunkerTest, GiantRowBecomesItsOwnChunk) {
  // Row 2's payload (100 nnz x 12 bytes) dwarfs the 60-byte budget: it
  // must land alone, and its neighbors must not be dragged in with it.
  const std::vector<uint64_t> row_ptr = RowPtr({1, 1, 100, 1, 1});
  const SparseChunker chunker(row_ptr.data(), 5, 60);
  ExpectExactCover(chunker);
  bool giant_isolated = false;
  for (size_t i = 0; i < chunker.NumChunks(); ++i) {
    const Chunker::Range range = chunker.Chunk(i);
    if (range.begin <= 2 && 2 < range.end) {
      giant_isolated = range.size() == 1;
    }
  }
  EXPECT_TRUE(giant_isolated) << "giant row shares a chunk";
}

TEST(SparseChunkerTest, BudgetBelowEveryRowIsolatesNonEmptyRows) {
  // Budget 1 byte < any nonzero row: each nonzero row is its own chunk;
  // the empty rows between them merge into whichever chunk is open.
  const std::vector<uint64_t> row_ptr = RowPtr({3, 0, 2, 0, 0, 4});
  const SparseChunker chunker(row_ptr.data(), 6, 1);
  ExpectExactCover(chunker);
  // No chunk may hold two nonzero rows.
  for (size_t i = 0; i < chunker.NumChunks(); ++i) {
    const Chunker::Range range = chunker.Chunk(i);
    size_t nonzero_rows = 0;
    for (size_t r = range.begin; r < range.end; ++r) {
      nonzero_rows += row_ptr[r + 1] > row_ptr[r] ? 1 : 0;
    }
    EXPECT_LE(nonzero_rows, 1u) << "chunk " << i;
  }
}

TEST(SparseChunkerTest, ZeroBudgetClampsInsteadOfLooping) {
  const std::vector<uint64_t> row_ptr = RowPtr({1, 1, 1});
  const SparseChunker chunker(row_ptr.data(), 3, /*nnz_budget_bytes=*/0);
  ExpectExactCover(chunker);
  EXPECT_EQ(chunker.NumChunks(), 3u);
}

TEST(SparseChunkerTest, EmptyRowsAreFreeRiders) {
  // Interleaved empties must not close chunks: 4 nonzero rows of 24
  // payload bytes under a 48-byte budget pair up two per chunk no matter
  // how many empty rows sit between them.
  const std::vector<uint64_t> row_ptr = RowPtr({2, 0, 0, 2, 0, 2, 0, 0, 2});
  const SparseChunker chunker(row_ptr.data(), 9, 48);
  ExpectExactCover(chunker);
  ASSERT_EQ(chunker.NumChunks(), 2u);
  EXPECT_EQ(chunker.ChunkNnz(0), 4u);
  EXPECT_EQ(chunker.ChunkNnz(1), 4u);
}

TEST(SparseChunkerTest, PayloadStaysUnderBudgetExceptSingleRowChunks) {
  const std::vector<uint64_t> row_ptr =
      RowPtr({5, 0, 17, 3, 3, 3, 0, 40, 1, 1, 6, 0, 0, 9, 2});
  const uint64_t kBudget = 10 * kCsrBytesPerNnz;
  const SparseChunker chunker(row_ptr.data(), 15, kBudget);
  ExpectExactCover(chunker);
  uint64_t total_nnz = 0;
  for (size_t i = 0; i < chunker.NumChunks(); ++i) {
    total_nnz += chunker.ChunkNnz(i);
    const uint64_t payload = chunker.ChunkNnz(i) * kCsrBytesPerNnz;
    if (chunker.Chunk(i).size() > 1) {
      EXPECT_LE(payload, kBudget) << "chunk " << i;
    }
  }
  EXPECT_EQ(total_nnz, row_ptr[15]);
}

TEST(SparseChunkerTest, BoundariesAreAPureFunctionOfTheInputs) {
  const std::vector<uint64_t> row_ptr =
      RowPtr({3, 1, 0, 12, 5, 5, 0, 2, 8, 1});
  const SparseChunker a(row_ptr.data(), 10, 7 * kCsrBytesPerNnz);
  const SparseChunker b(row_ptr.data(), 10, 7 * kCsrBytesPerNnz);
  ASSERT_EQ(a.NumChunks(), b.NumChunks());
  for (size_t i = 0; i < a.NumChunks(); ++i) {
    EXPECT_EQ(a.Chunk(i).begin, b.Chunk(i).begin);
    EXPECT_EQ(a.Chunk(i).end, b.Chunk(i).end);
  }
}

TEST(SparseChunkerTest, CustomBytesPerNnzScalesTheBudget) {
  // 4 bytes/nnz (col_idx only): 6 nnz fit where kCsrBytesPerNnz would
  // allow 2.
  const std::vector<uint64_t> row_ptr = RowPtr({2, 2, 2, 2, 2, 2});
  const SparseChunker chunker(row_ptr.data(), 6, 24, /*bytes_per_nnz=*/4);
  ExpectExactCover(chunker);
  ASSERT_EQ(chunker.NumChunks(), 2u);
  EXPECT_EQ(chunker.Chunk(0).size(), 3u);
}

}  // namespace
}  // namespace m3::la
