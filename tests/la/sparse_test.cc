// Sparse kernel correctness, pinned to the dense kernels: SparseDot and
// SparseAxpy over a CSR row must be the bitwise twins of Dot/Axpy over
// the densified row (the skipped zero terms are additive identities), so
// every ulp-conformance claim upstream (objectives, trainers) reduces to
// these loops.

#include "la/sparse.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "la/blas.h"
#include "la/matrix.h"
#include "util/random.h"

namespace m3::la {
namespace {

/// In-memory CSR holder for tests (the view is non-owning).
struct Csr {
  std::vector<uint64_t> row_ptr{0};
  std::vector<uint32_t> col_idx;
  std::vector<double> values;
  size_t cols = 0;

  CsrView View(size_t rows) const {
    return CsrView(row_ptr.data(), col_idx.data(), values.data(), rows, cols);
  }
};

/// Random ragged CSR: per-row nnz in [0, max_nnz], sorted distinct
/// columns, values in [-1, 1] with zeros remapped so every stored entry
/// is a genuine nonzero.
Csr RandomCsr(size_t rows, size_t cols, size_t max_nnz, uint64_t seed) {
  util::Rng rng(seed);
  Csr csr;
  csr.cols = cols;
  for (size_t r = 0; r < rows; ++r) {
    const size_t nnz = static_cast<size_t>(rng.UniformInt(
        static_cast<uint64_t>(std::min(cols, max_nnz) + 1)));
    std::vector<uint32_t> picked;
    while (picked.size() < nnz) {
      const uint32_t c = static_cast<uint32_t>(rng.UniformInt(
          static_cast<uint64_t>(cols)));
      bool dup = false;
      for (const uint32_t existing : picked) {
        dup = dup || existing == c;
      }
      if (!dup) {
        picked.push_back(c);
      }
    }
    std::sort(picked.begin(), picked.end());
    for (const uint32_t c : picked) {
      double v = rng.Uniform(-1.0, 1.0);
      if (v == 0.0) {
        v = 0.5;
      }
      csr.col_idx.push_back(c);
      csr.values.push_back(v);
    }
    csr.row_ptr.push_back(csr.col_idx.size());
  }
  return csr;
}

Vector RandomVector(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = rng.Uniform(-2.0, 2.0);
  }
  return v;
}

bool BitwiseEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

TEST(CsrViewTest, ShapeAndRowAccess) {
  Csr csr;
  csr.cols = 5;
  // Row 0: (1, 2.0), (3, -1.0); row 1: empty; row 2: (0, 4.0).
  csr.col_idx = {1, 3, 0};
  csr.values = {2.0, -1.0, 4.0};
  csr.row_ptr = {0, 2, 2, 3};
  const CsrView view = csr.View(3);
  EXPECT_EQ(view.rows(), 3u);
  EXPECT_EQ(view.cols(), 5u);
  EXPECT_EQ(view.nnz(), 3u);
  EXPECT_EQ(view.Row(0).nnz, 2u);
  EXPECT_EQ(view.Row(0).cols[1], 3u);
  EXPECT_EQ(view.Row(1).nnz, 0u);
  EXPECT_EQ(view.Row(2).values[0], 4.0);
  EXPECT_EQ(CsrView().nnz(), 0u);
}

TEST(DensifyTest, ScattersStoredEntriesAndZeroesTheRest) {
  Csr csr;
  csr.cols = 4;
  csr.col_idx = {0, 3, 2};
  csr.values = {1.5, -2.5, 7.0};
  csr.row_ptr = {0, 2, 2, 3};
  const Matrix dense = Densify(csr.View(3));
  ASSERT_EQ(dense.rows(), 3u);
  ASSERT_EQ(dense.cols(), 4u);
  EXPECT_EQ(dense(0, 0), 1.5);
  EXPECT_EQ(dense(0, 1), 0.0);
  EXPECT_EQ(dense(0, 3), -2.5);
  EXPECT_EQ(dense(1, 2), 0.0);
  EXPECT_EQ(dense(2, 2), 7.0);

  Vector row(4);
  row[1] = 99.0;  // stale garbage DensifyRow must clear
  DensifyRow(csr.View(3).Row(0), row.View());
  EXPECT_EQ(row[0], 1.5);
  EXPECT_EQ(row[1], 0.0);
  EXPECT_EQ(row[3], -2.5);
}

TEST(SparseDotTest, BitwiseMatchesDenseDotOnDensifiedRows) {
  const size_t kRows = 64, kCols = 40;
  const Csr csr = RandomCsr(kRows, kCols, 12, /*seed=*/7);
  const CsrView view = csr.View(kRows);
  const Matrix dense = Densify(view);
  const Vector w = RandomVector(kCols, /*seed=*/11);
  for (size_t r = 0; r < kRows; ++r) {
    const double sparse = SparseDot(view.Row(r), w);
    const double reference = Dot(dense.Row(r), w);
    EXPECT_TRUE(BitwiseEqual(sparse, reference))
        << "row " << r << ": " << sparse << " vs " << reference;
  }
}

TEST(SparseAxpyTest, BitwiseMatchesDenseAxpyOnDensifiedRows) {
  const size_t kRows = 48, kCols = 32;
  const Csr csr = RandomCsr(kRows, kCols, 10, /*seed=*/21);
  const CsrView view = csr.View(kRows);
  const Matrix dense = Densify(view);
  Vector sparse_acc = RandomVector(kCols, /*seed=*/5);
  Vector dense_acc(kCols);
  Copy(sparse_acc, dense_acc);
  for (size_t r = 0; r < kRows; ++r) {
    const double alpha = 0.25 + static_cast<double>(r) * 0.125;
    SparseAxpy(alpha, view.Row(r), sparse_acc.View());
    Axpy(alpha, dense.Row(r), dense_acc.View());
  }
  EXPECT_EQ(std::memcmp(sparse_acc.data(), dense_acc.data(),
                        kCols * sizeof(double)),
            0);
}

TEST(SparseDotTest, EmptyRowIsExactlyZero) {
  const SparseRowView empty;
  const Vector w = RandomVector(16, /*seed=*/3);
  EXPECT_EQ(SparseDot(empty, w), 0.0);
  Vector acc = RandomVector(16, /*seed=*/4);
  Vector before(16);
  Copy(acc, before);
  SparseAxpy(2.0, empty, acc.View());
  EXPECT_EQ(std::memcmp(acc.data(), before.data(), 16 * sizeof(double)), 0);
}

}  // namespace
}  // namespace m3::la
