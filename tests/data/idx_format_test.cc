#include "data/idx_format.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "io/file.h"

namespace m3::data {
namespace {

class IdxFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_idx_test_" + std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(IdxFormatTest, ImagesRoundTrip) {
  const uint32_t count = 3, rows = 4, cols = 5;
  std::vector<uint8_t> pixels(count * rows * cols);
  for (size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<uint8_t>(i * 7);
  }
  const std::string path = Path("images.idx3");
  ASSERT_TRUE(WriteIdxImages(path, pixels, count, rows, cols).ok());
  auto data = ReadIdx(path);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data.value().dims, (std::vector<uint32_t>{count, rows, cols}));
  EXPECT_EQ(data.value().bytes, pixels);
  EXPECT_EQ(data.value().NumElements(), pixels.size());
}

TEST_F(IdxFormatTest, LabelsRoundTrip) {
  std::vector<uint8_t> labels{0, 1, 2, 9, 5};
  const std::string path = Path("labels.idx1");
  ASSERT_TRUE(WriteIdxLabels(path, labels).ok());
  auto data = ReadIdx(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().dims, std::vector<uint32_t>{5});
  EXPECT_EQ(data.value().bytes, labels);
}

TEST_F(IdxFormatTest, MnistMagicNumbersUsed) {
  // The first 4 bytes must match the official MNIST container values.
  std::vector<uint8_t> labels{1};
  const std::string lpath = Path("l.idx1");
  ASSERT_TRUE(WriteIdxLabels(lpath, labels).ok());
  auto raw = io::ReadFileToString(lpath).ValueOrDie();
  EXPECT_EQ(static_cast<uint8_t>(raw[2]), 0x08);  // ubyte
  EXPECT_EQ(static_cast<uint8_t>(raw[3]), 0x01);  // 1 dim

  std::vector<uint8_t> pixels(28 * 28, 0);
  const std::string ipath = Path("i.idx3");
  ASSERT_TRUE(WriteIdxImages(ipath, pixels, 1, 28, 28).ok());
  raw = io::ReadFileToString(ipath).ValueOrDie();
  EXPECT_EQ(static_cast<uint8_t>(raw[3]), 0x03);  // 3 dims
  // Dimension 28 in big-endian.
  EXPECT_EQ(static_cast<uint8_t>(raw[8 + 2]), 0);
  EXPECT_EQ(static_cast<uint8_t>(raw[8 + 3]), 28);
}

TEST_F(IdxFormatTest, PixelCountMismatchRejected) {
  std::vector<uint8_t> pixels(10);
  EXPECT_FALSE(WriteIdxImages(Path("bad.idx3"), pixels, 2, 3, 4).ok());
}

TEST_F(IdxFormatTest, CorruptMagicRejected) {
  const std::string path = Path("corrupt.idx");
  ASSERT_TRUE(io::WriteStringToFile(path, "XXXXGARBAGE").ok());
  auto data = ReadIdx(path);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(IdxFormatTest, TruncatedPayloadRejected) {
  std::vector<uint8_t> labels{1, 2, 3, 4};
  const std::string path = Path("trunc.idx1");
  ASSERT_TRUE(WriteIdxLabels(path, labels).ok());
  // Chop off the last byte.
  auto contents = io::ReadFileToString(path).ValueOrDie();
  contents.pop_back();
  ASSERT_TRUE(io::WriteStringToFile(path, contents).ok());
  EXPECT_FALSE(ReadIdx(path).ok());
}

TEST_F(IdxFormatTest, UnsupportedElementTypeRejected) {
  // Type 0x0D = float, which we do not support.
  std::string raw = {0, 0, 0x0D, 0x01, 0, 0, 0, 0};
  const std::string path = Path("float.idx");
  ASSERT_TRUE(io::WriteStringToFile(path, raw).ok());
  auto data = ReadIdx(path);
  ASSERT_FALSE(data.ok());
  EXPECT_EQ(data.status().code(), util::StatusCode::kNotSupported);
}

TEST_F(IdxFormatTest, EmptyLabelsRoundTrip) {
  const std::string path = Path("empty.idx1");
  ASSERT_TRUE(WriteIdxLabels(path, {}).ok());
  auto data = ReadIdx(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().NumElements(), 0u);
}

}  // namespace
}  // namespace m3::data
