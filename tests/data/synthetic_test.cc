#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "la/blas.h"

namespace m3::data {
namespace {

TEST(GaussianBlobsTest, ShapesAndLabels) {
  BlobsResult blobs = GaussianBlobs(200, 5, 3, 0.5, 42);
  EXPECT_EQ(blobs.data.features.rows(), 200u);
  EXPECT_EQ(blobs.data.features.cols(), 5u);
  EXPECT_EQ(blobs.data.labels.size(), 200u);
  EXPECT_EQ(blobs.centers.rows(), 3u);
  std::set<double> distinct(blobs.data.labels.begin(),
                            blobs.data.labels.end());
  EXPECT_LE(distinct.size(), 3u);
  for (double label : distinct) {
    EXPECT_GE(label, 0.0);
    EXPECT_LT(label, 3.0);
  }
}

TEST(GaussianBlobsTest, PointsNearTheirCenters) {
  BlobsResult blobs = GaussianBlobs(300, 4, 3, 0.25, 7);
  for (size_t i = 0; i < 300; ++i) {
    const size_t c = static_cast<size_t>(blobs.data.labels[i]);
    const double dist = std::sqrt(la::SquaredDistance(
        blobs.data.features.Row(i), blobs.centers.Row(c)));
    // 4-dim N(0, 0.25^2 I): distance above 2 is ~8 sigma, absurdly unlikely.
    EXPECT_LT(dist, 2.0) << "point " << i;
  }
}

TEST(GaussianBlobsTest, DeterministicInSeed) {
  BlobsResult a = GaussianBlobs(50, 3, 2, 1.0, 123);
  BlobsResult b = GaussianBlobs(50, 3, 2, 1.0, 123);
  for (size_t i = 0; i < 50; ++i) {
    for (size_t d = 0; d < 3; ++d) {
      ASSERT_DOUBLE_EQ(a.data.features(i, d), b.data.features(i, d));
    }
  }
  BlobsResult c = GaussianBlobs(50, 3, 2, 1.0, 124);
  EXPECT_NE(a.data.features(0, 0), c.data.features(0, 0));
}

TEST(LinearlySeparableTest, CleanDataIsSeparableByTrueWeights) {
  SeparableResult sep = LinearlySeparable(500, 8, 0.0, 42);
  for (size_t i = 0; i < 500; ++i) {
    const double margin =
        la::Dot(sep.data.features.Row(i), sep.true_weights) + sep.true_bias;
    const double expected = margin > 0 ? 1.0 : 0.0;
    ASSERT_DOUBLE_EQ(sep.data.labels[i], expected);
  }
}

TEST(LinearlySeparableTest, LabelsAreBinary) {
  SeparableResult sep = LinearlySeparable(200, 4, 0.1, 9);
  for (double label : sep.data.labels) {
    EXPECT_TRUE(label == 0.0 || label == 1.0);
  }
}

TEST(LinearlySeparableTest, NoiseFlipsSomeLabels) {
  // With label_noise = 0.3, ~30% of labels disagree with the true margin.
  SeparableResult noisy = LinearlySeparable(1000, 4, 0.3, 5);
  int flips = 0;
  for (size_t i = 0; i < 1000; ++i) {
    const double margin =
        la::Dot(noisy.data.features.Row(i), noisy.true_weights) +
        noisy.true_bias;
    const double unflipped = margin > 0 ? 1.0 : 0.0;
    if (noisy.data.labels[i] != unflipped) {
      ++flips;
    }
  }
  EXPECT_GT(flips, 200);
  EXPECT_LT(flips, 400);
}

TEST(LinearlySeparableTest, ClassesRoughlyBalanced) {
  SeparableResult sep = LinearlySeparable(2000, 6, 0.0, 17);
  double positives = 0;
  for (double label : sep.data.labels) {
    positives += label;
  }
  EXPECT_GT(positives, 300.0);
  EXPECT_LT(positives, 1700.0);
}

TEST(LinearRegressionDataTest, NoiselessTargetsExactlyLinear) {
  RegressionResult reg = LinearRegressionData(100, 5, 0.0, 42);
  for (size_t i = 0; i < 100; ++i) {
    const double expected =
        la::Dot(reg.data.features.Row(i), reg.true_weights) + reg.true_bias;
    ASSERT_NEAR(reg.data.labels[i], expected, 1e-12);
  }
}

TEST(LinearRegressionDataTest, NoiseIncreasesResidual) {
  RegressionResult noisy = LinearRegressionData(500, 5, 2.0, 42);
  double sum_sq = 0;
  for (size_t i = 0; i < 500; ++i) {
    const double residual =
        noisy.data.labels[i] -
        (la::Dot(noisy.data.features.Row(i), noisy.true_weights) +
         noisy.true_bias);
    sum_sq += residual * residual;
  }
  const double rmse = std::sqrt(sum_sq / 500);
  EXPECT_NEAR(rmse, 2.0, 0.4);
}

}  // namespace
}  // namespace m3::data
