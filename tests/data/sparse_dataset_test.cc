// Round-trip and contract tests for the CSR on-disk format: what the
// writer emits, the validating readers accept and hand back verbatim;
// what violates the writer's preconditions is refused at append time, not
// discovered by a reader later.

#include "data/sparse_dataset.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sparse_mapped_dataset.h"
#include "io/file.h"

namespace m3::data {
namespace {

class SparseDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_sparse_dataset_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(SparseDatasetTest, WriterReaderRoundTrip) {
  const std::string path = Path("round_trip.m3s");
  auto writer = SparseDatasetWriter::Create(path, /*cols=*/10);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const std::vector<uint32_t> row0_cols = {1, 4, 9};
  const std::vector<double> row0_vals = {0.5, -2.0, 3.25};
  const std::vector<uint32_t> row2_cols = {0};
  const std::vector<double> row2_vals = {7.0};
  ASSERT_TRUE(writer.value()
                  .AppendRow(row0_cols.data(), row0_vals.data(), 3, 1.0)
                  .ok());
  ASSERT_TRUE(writer.value().AppendRow(nullptr, nullptr, 0, 0.0).ok());
  ASSERT_TRUE(writer.value()
                  .AppendRow(row2_cols.data(), row2_vals.data(), 1, 1.0)
                  .ok());
  EXPECT_EQ(writer.value().rows_written(), 3u);
  EXPECT_EQ(writer.value().nnz_written(), 4u);
  ASSERT_TRUE(writer.value().Finalize(/*num_classes=*/2).ok());

  auto meta = ReadSparseDatasetMeta(path);
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta.value().rows, 3u);
  EXPECT_EQ(meta.value().cols, 10u);
  EXPECT_EQ(meta.value().nnz, 4u);
  EXPECT_EQ(meta.value().num_classes, 2u);

  auto mapped = MappedSparseDataset::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const la::CsrView csr = mapped.value().csr();
  ASSERT_EQ(csr.rows(), 3u);
  ASSERT_EQ(csr.nnz(), 4u);
  EXPECT_EQ(csr.Row(0).nnz, 3u);
  EXPECT_EQ(csr.Row(0).cols[1], 4u);
  EXPECT_EQ(csr.Row(0).values[2], 3.25);
  EXPECT_EQ(csr.Row(1).nnz, 0u);
  EXPECT_EQ(csr.Row(2).values[0], 7.0);
  const la::ConstVectorView labels = mapped.value().labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], 1.0);
  EXPECT_EQ(labels[1], 0.0);
  EXPECT_EQ(labels[2], 1.0);
}

TEST_F(SparseDatasetTest, SectionsArePageAligned) {
  const std::string path = Path("aligned.m3s");
  SparseSyntheticOptions options;
  options.rows = 200;
  options.cols = 64;
  options.nnz_per_row = 8;
  ASSERT_TRUE(GenerateSparseDataset(path, options).ok());
  auto meta = ReadSparseDatasetMeta(path);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta.value().values_offset % kSparseSectionAlign, 0u);
  EXPECT_EQ(meta.value().col_idx_offset % kSparseSectionAlign, 0u);
  EXPECT_EQ(meta.value().row_ptr_offset % kSparseSectionAlign, 0u);
  EXPECT_EQ(meta.value().labels_offset % kSparseSectionAlign, 0u);
  auto size = io::FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), meta.value().FileBytes());
}

TEST_F(SparseDatasetTest, WriterRejectsContractViolationsAtAppendTime) {
  auto writer = SparseDatasetWriter::Create(Path("reject.m3s"), /*cols=*/5);
  ASSERT_TRUE(writer.ok());
  const std::vector<double> vals = {1.0, 2.0};
  const std::vector<uint32_t> unsorted = {3, 1};
  EXPECT_FALSE(
      writer.value().AppendRow(unsorted.data(), vals.data(), 2, 0.0).ok());
  const std::vector<uint32_t> duplicate = {2, 2};
  EXPECT_FALSE(
      writer.value().AppendRow(duplicate.data(), vals.data(), 2, 0.0).ok());
  const std::vector<uint32_t> out_of_range = {1, 5};
  EXPECT_FALSE(
      writer.value().AppendRow(out_of_range.data(), vals.data(), 2, 0.0).ok());
  // A valid row still lands after the rejections.
  const std::vector<uint32_t> good = {1, 4};
  EXPECT_TRUE(writer.value().AppendRow(good.data(), vals.data(), 2, 1.0).ok());
  EXPECT_EQ(writer.value().rows_written(), 1u);
}

TEST_F(SparseDatasetTest, ZeroColumnsRefused) {
  EXPECT_FALSE(SparseDatasetWriter::Create(Path("zero.m3s"), 0).ok());
}

TEST_F(SparseDatasetTest, WriteSparseDatasetMirrorsAnInMemoryView) {
  const std::vector<uint64_t> row_ptr = {0, 2, 2, 3};
  const std::vector<uint32_t> col_idx = {0, 2, 1};
  const std::vector<double> values = {1.0, -1.0, 0.25};
  const std::vector<double> labels = {0.0, 1.0, 1.0};
  const la::CsrView view(row_ptr.data(), col_idx.data(), values.data(), 3, 3);
  const std::string path = Path("from_view.m3s");
  ASSERT_TRUE(WriteSparseDataset(path, view, labels, 2).ok());
  auto mapped = MappedSparseDataset::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const la::CsrView back = mapped.value().csr();
  ASSERT_EQ(back.nnz(), view.nnz());
  EXPECT_EQ(std::memcmp(back.values(), values.data(),
                        values.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(back.col_idx(), col_idx.data(),
                        col_idx.size() * sizeof(uint32_t)),
            0);
}

TEST_F(SparseDatasetTest, GeneratorIsDeterministicInTheSeed) {
  SparseSyntheticOptions options;
  options.rows = 128;
  options.cols = 50;
  options.nnz_per_row = 6;
  options.seed = 99;
  const std::string a = Path("gen_a.m3s");
  const std::string b = Path("gen_b.m3s");
  ASSERT_TRUE(GenerateSparseDataset(a, options).ok());
  ASSERT_TRUE(GenerateSparseDataset(b, options).ok());
  auto bytes_a = io::ReadFileToString(a);
  auto bytes_b = io::ReadFileToString(b);
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  EXPECT_EQ(bytes_a.value(), bytes_b.value());

  options.seed = 100;
  const std::string c = Path("gen_c.m3s");
  ASSERT_TRUE(GenerateSparseDataset(c, options).ok());
  auto bytes_c = io::ReadFileToString(c);
  ASSERT_TRUE(bytes_c.ok());
  EXPECT_NE(bytes_a.value(), bytes_c.value());
}

TEST_F(SparseDatasetTest, GeneratedDatasetValidatesAndIsRagged) {
  const std::string path = Path("ragged.m3s");
  SparseSyntheticOptions options;
  options.rows = 512;
  options.cols = 100;
  options.nnz_per_row = 10;
  ASSERT_TRUE(GenerateSparseDataset(path, options).ok());
  auto mapped = MappedSparseDataset::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const la::CsrView csr = mapped.value().csr();
  // Raggedness: not every row has the same nnz (the chunker suite depends
  // on generated data exercising uneven chunks).
  bool uneven = false;
  const size_t first = csr.Row(0).nnz;
  for (size_t r = 1; r < csr.rows(); ++r) {
    uneven = uneven || csr.Row(r).nnz != first;
  }
  EXPECT_TRUE(uneven);
  // Binary labels planted by a hyperplane: both classes present.
  const la::ConstVectorView labels = mapped.value().labels();
  bool saw[2] = {false, false};
  for (size_t r = 0; r < labels.size(); ++r) {
    ASSERT_TRUE(labels[r] == 0.0 || labels[r] == 1.0);
    saw[static_cast<size_t>(labels[r])] = true;
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

}  // namespace
}  // namespace m3::data
