#include "data/infimnist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace m3::data {
namespace {

TEST(InfiMnistTest, DeterministicAcrossGeneratorInstances) {
  InfiMnistGenerator a(42);
  InfiMnistGenerator b(42);
  for (uint64_t i : {0ull, 1ull, 17ull, 100003ull}) {
    DigitImage ia = a.Generate(i);
    DigitImage ib = b.Generate(i);
    EXPECT_EQ(ia.label, ib.label);
    EXPECT_EQ(ia.pixels, ib.pixels) << "index " << i;
  }
}

TEST(InfiMnistTest, LabelIsIndexMod10) {
  InfiMnistGenerator gen(7);
  for (uint64_t i = 0; i < 30; ++i) {
    EXPECT_EQ(gen.Generate(i).label, i % 10);
  }
}

TEST(InfiMnistTest, DifferentSeedsProduceDifferentImages) {
  InfiMnistGenerator a(1);
  InfiMnistGenerator b(2);
  EXPECT_NE(a.Generate(0).pixels, b.Generate(0).pixels);
}

TEST(InfiMnistTest, SameDigitDifferentIndexIsDeformed) {
  InfiMnistGenerator gen(42);
  // Index 3 and 13 are both the digit "3" but deformed differently.
  DigitImage first = gen.Generate(3);
  DigitImage second = gen.Generate(13);
  EXPECT_EQ(first.label, second.label);
  EXPECT_NE(first.pixels, second.pixels);
}

TEST(InfiMnistTest, ImagesHaveInkAndBackground) {
  InfiMnistGenerator gen(42);
  for (uint64_t i = 0; i < 10; ++i) {
    DigitImage image = gen.Generate(i);
    const int ink = static_cast<int>(std::count_if(
        image.pixels.begin(), image.pixels.end(),
        [](uint8_t p) { return p > 128; }));
    // A legible 28x28 digit has ink in roughly 5-40% of pixels.
    EXPECT_GT(ink, 30) << "digit " << i << " has almost no ink";
    EXPECT_LT(ink, 400) << "digit " << i << " is mostly ink";
  }
}

TEST(InfiMnistTest, InkConcentratedInGlyphBoundingBox) {
  // Deformations are bounded, so ink should stay away from the extreme
  // corners of the frame.
  InfiMnistGenerator gen(11);
  for (uint64_t i = 0; i < 10; ++i) {
    DigitImage image = gen.Generate(i);
    int corner_ink = 0;
    for (size_t y : {0ul, 1ul, 26ul, 27ul}) {
      for (size_t x : {0ul, 1ul, 26ul, 27ul}) {
        if (image.pixels[y * kImageSide + x] > 200) {
          ++corner_ink;
        }
      }
    }
    EXPECT_LE(corner_ink, 2) << "digit " << i;
  }
}

TEST(InfiMnistTest, DigitsAreMutuallyDistinguishable) {
  // Mean images per class over a few samples should differ pairwise:
  // L2 distance between class means must be clearly positive.
  InfiMnistGenerator gen(5);
  std::vector<std::vector<double>> means(10,
                                         std::vector<double>(kImageFeatures));
  constexpr int kPerClass = 8;
  for (int digit = 0; digit < 10; ++digit) {
    for (int rep = 0; rep < kPerClass; ++rep) {
      DigitImage image =
          gen.Generate(static_cast<uint64_t>(digit) + 10ull * rep);
      for (size_t p = 0; p < kImageFeatures; ++p) {
        means[digit][p] += image.pixels[p] / double{kPerClass};
      }
    }
  }
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      double dist2 = 0;
      for (size_t p = 0; p < kImageFeatures; ++p) {
        const double d = means[a][p] - means[b][p];
        dist2 += d * d;
      }
      EXPECT_GT(std::sqrt(dist2), 300.0)
          << "digits " << a << " and " << b << " look identical";
    }
  }
}

TEST(InfiMnistTest, GenerateDoublesMatchesBytePixels) {
  InfiMnistGenerator gen(9);
  std::vector<double> row(kImageFeatures);
  const uint8_t label = gen.GenerateDoubles(1234, row.data());
  DigitImage image = gen.Generate(1234);
  EXPECT_EQ(label, image.label);
  for (size_t p = 0; p < kImageFeatures; ++p) {
    ASSERT_DOUBLE_EQ(row[p], static_cast<double>(image.pixels[p]));
  }
}

TEST(InfiMnistTest, PixelRangeIsByteRange) {
  InfiMnistGenerator gen(3);
  std::vector<double> row(kImageFeatures);
  gen.GenerateDoubles(77, row.data());
  for (double v : row) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 255.0);
  }
}

}  // namespace
}  // namespace m3::data
