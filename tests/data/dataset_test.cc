#include "data/dataset.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/infimnist.h"
#include "io/mmap_file.h"

namespace m3::data {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_dataset_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(DatasetTest, WriterRoundTripViaMmap) {
  const std::string path = Path("ds.m3");
  auto writer = DatasetWriter::Create(path, 3).ValueOrDie();
  la::Vector row(std::vector<double>{1, 2, 3});
  ASSERT_TRUE(writer.AppendRow(row, 1.0).ok());
  row = la::Vector(std::vector<double>{4, 5, 6});
  ASSERT_TRUE(writer.AppendRow(row, 0.0).ok());
  EXPECT_EQ(writer.rows_written(), 2u);
  ASSERT_TRUE(writer.Finalize(2).ok());

  auto meta = ReadDatasetMeta(path).ValueOrDie();
  EXPECT_EQ(meta.rows, 2u);
  EXPECT_EQ(meta.cols, 3u);
  EXPECT_EQ(meta.num_classes, 2u);
  EXPECT_EQ(meta.features_offset, kDatasetHeaderBytes);
  EXPECT_EQ(meta.labels_offset, kDatasetHeaderBytes + 2 * 3 * 8);

  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  const double* features = reinterpret_cast<const double*>(
      mapped.As<const char>() + meta.features_offset);
  EXPECT_DOUBLE_EQ(features[0], 1.0);
  EXPECT_DOUBLE_EQ(features[5], 6.0);
  const double* labels = reinterpret_cast<const double*>(
      mapped.As<const char>() + meta.labels_offset);
  EXPECT_DOUBLE_EQ(labels[0], 1.0);
  EXPECT_DOUBLE_EQ(labels[1], 0.0);
}

TEST_F(DatasetTest, AppendRowsBulkMatchesPerRow) {
  const std::string bulk_path = Path("bulk.m3");
  const std::string row_path = Path("rows.m3");
  std::vector<double> features{1, 2, 3, 4, 5, 6};
  std::vector<double> labels{7, 8};
  {
    auto writer = DatasetWriter::Create(bulk_path, 3).ValueOrDie();
    ASSERT_TRUE(writer.AppendRows(features.data(), labels.data(), 2).ok());
    ASSERT_TRUE(writer.Finalize(0).ok());
  }
  {
    auto writer = DatasetWriter::Create(row_path, 3).ValueOrDie();
    for (int r = 0; r < 2; ++r) {
      la::ConstVectorView row(features.data() + 3 * r, 3);
      ASSERT_TRUE(writer.AppendRow(row, labels[r]).ok());
    }
    ASSERT_TRUE(writer.Finalize(0).ok());
  }
  EXPECT_EQ(io::ReadFileToString(bulk_path).ValueOrDie(),
            io::ReadFileToString(row_path).ValueOrDie());
}

TEST_F(DatasetTest, WrongColumnCountRejected) {
  auto writer = DatasetWriter::Create(Path("bad.m3"), 3).ValueOrDie();
  la::Vector row(std::vector<double>{1, 2});
  EXPECT_FALSE(writer.AppendRow(row, 0.0).ok());
}

TEST_F(DatasetTest, DoubleFinalizeRejected) {
  auto writer = DatasetWriter::Create(Path("fin.m3"), 1).ValueOrDie();
  la::Vector row(std::vector<double>{1});
  ASSERT_TRUE(writer.AppendRow(row, 0.0).ok());
  ASSERT_TRUE(writer.Finalize(1).ok());
  EXPECT_EQ(writer.Finalize(1).code(), util::StatusCode::kFailedPrecondition);
}

TEST_F(DatasetTest, ZeroColumnsRejected) {
  EXPECT_FALSE(DatasetWriter::Create(Path("zc.m3"), 0).ok());
}

TEST_F(DatasetTest, MetaOfGarbageFileRejected) {
  const std::string path = Path("garbage.m3");
  ASSERT_TRUE(
      io::WriteStringToFile(path, std::string(8192, 'z')).ok());
  auto meta = ReadDatasetMeta(path);
  ASSERT_FALSE(meta.ok());
  EXPECT_EQ(meta.status().code(), util::StatusCode::kInvalidArgument);
}

TEST_F(DatasetTest, TruncatedFileRejected) {
  const std::string path = Path("trunc.m3");
  {
    auto writer = DatasetWriter::Create(path, 4).ValueOrDie();
    la::Vector row(4, 1.0);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.AppendRow(row, 0.0).ok());
    }
    ASSERT_TRUE(writer.Finalize(1).ok());
  }
  auto contents = io::ReadFileToString(path).ValueOrDie();
  contents.resize(contents.size() - 64);
  ASSERT_TRUE(io::WriteStringToFile(path, contents).ok());
  EXPECT_FALSE(ReadDatasetMeta(path).ok());
}

TEST_F(DatasetTest, WriteDatasetConvenience) {
  la::Matrix x(3, 2, std::vector<double>{1, 2, 3, 4, 5, 6});
  std::vector<double> labels{0, 1, 0};
  const std::string path = Path("conv.m3");
  ASSERT_TRUE(WriteDataset(path, x, labels, 2).ok());
  auto meta = ReadDatasetMeta(path).ValueOrDie();
  EXPECT_EQ(meta.rows, 3u);
  EXPECT_EQ(meta.cols, 2u);
}

TEST_F(DatasetTest, WriteDatasetLabelMismatchRejected) {
  la::Matrix x(3, 2);
  std::vector<double> labels{0, 1};
  EXPECT_FALSE(WriteDataset(Path("mm.m3"), x, labels, 2).ok());
}

TEST_F(DatasetTest, GenerateInfimnistDatasetProducesValidFile) {
  const std::string path = Path("digits.m3");
  ASSERT_TRUE(GenerateInfimnistDataset(path, 100, 42, false).ok());
  auto meta = ReadDatasetMeta(path).ValueOrDie();
  EXPECT_EQ(meta.rows, 100u);
  EXPECT_EQ(meta.cols, kImageFeatures);
  EXPECT_EQ(meta.num_classes, 10u);
  // Labels must be 0..9 repeating.
  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  const double* labels = reinterpret_cast<const double*>(
      mapped.As<const char>() + meta.labels_offset);
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(labels[i], static_cast<double>(i % 10));
  }
}

TEST_F(DatasetTest, GenerateInfimnistMatchesDirectGenerator) {
  // Dataset rows must equal direct generator output (parallel generation
  // must not perturb determinism or ordering).
  const std::string path = Path("digits2.m3");
  ASSERT_TRUE(GenerateInfimnistDataset(path, 50, 7, false).ok());
  auto meta = ReadDatasetMeta(path).ValueOrDie();
  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  const double* features = reinterpret_cast<const double*>(
      mapped.As<const char>() + meta.features_offset);
  InfiMnistGenerator gen(7);
  std::vector<double> expected(kImageFeatures);
  for (uint64_t i : {0ull, 13ull, 49ull}) {
    gen.GenerateDoubles(i, expected.data());
    for (size_t p = 0; p < kImageFeatures; ++p) {
      ASSERT_DOUBLE_EQ(features[i * kImageFeatures + p], expected[p])
          << "image " << i << " pixel " << p;
    }
  }
}

TEST_F(DatasetTest, GenerateBinaryLabelsCollapseClasses) {
  const std::string path = Path("binary.m3");
  ASSERT_TRUE(GenerateInfimnistDataset(path, 20, 42, true).ok());
  auto meta = ReadDatasetMeta(path).ValueOrDie();
  EXPECT_EQ(meta.num_classes, 2u);
  auto mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  const double* labels = reinterpret_cast<const double*>(
      mapped.As<const char>() + meta.labels_offset);
  for (int i = 0; i < 20; ++i) {
    const double expected = (i % 10) < 5 ? 0.0 : 1.0;
    ASSERT_DOUBLE_EQ(labels[i], expected);
  }
}

TEST_F(DatasetTest, GenerateZeroImagesRejected) {
  EXPECT_FALSE(GenerateInfimnistDataset(Path("zero.m3"), 0, 1, false).ok());
}

}  // namespace
}  // namespace m3::data
