// Format fuzzing for the CSR on-disk format. The readers' contract on
// hostile input is total: every corruption is answered with a clean
// error status — InvalidArgument for structural damage, NotSupported for
// a future version — and never a crash, hang, or out-of-bounds access.
// The targeted cases pin each validation path by name; the seed-driven
// mutator then sprays randomized damage (header bytes, truncation,
// section patches) and asserts the same totality. The suite is tier1, so
// the ASan/UBSan CI legs run every mutation under instrumentation — an
// OOB read the status machinery happened to survive still fails here.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "core/sparse_mapped_dataset.h"
#include "data/sparse_dataset.h"
#include "io/file.h"
#include "util/random.h"
#include "util/status.h"

namespace m3::data {
namespace {

using util::StatusCode;

class SparseFormatFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_sparse_fuzz_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
    const std::string valid_path = dir_ + "/valid.m3s";
    SparseSyntheticOptions options;
    options.rows = 96;
    options.cols = 64;
    options.nnz_per_row = 6;
    options.seed = 7;
    ASSERT_TRUE(GenerateSparseDataset(valid_path, options).ok());
    valid_bytes_ = io::ReadFileToString(valid_path).ValueOrDie();
    meta_ = ReadSparseDatasetMeta(valid_path).ValueOrDie();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Writes `bytes` to a fresh file and attempts the full open path
  /// (header validation + mmap + deep structural validation). Returns the
  /// status the reader produced.
  util::Status TryOpen(const std::string& bytes, const std::string& name) {
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(io::WriteStringToFile(path, bytes).ok());
    auto opened = MappedSparseDataset::Open(path);
    if (!opened.ok()) {
      return opened.status();
    }
    // An accepted file must be internally consistent end to end — probe
    // the view the way a training scan would.
    const la::CsrView csr = opened.value().csr();
    EXPECT_EQ(csr.nnz(), opened.value().nnz());
    double sink = 0;
    for (size_t r = 0; r < csr.rows(); ++r) {
      const la::SparseRowView row = csr.Row(r);
      for (size_t k = 0; k < row.nnz; ++k) {
        EXPECT_LT(row.cols[k], csr.cols());
        sink += row.values[k];
      }
    }
    (void)sink;
    return util::Status();
  }

  /// The valid bytes with the raw header mutated in place.
  std::string WithHeader(
      const std::function<void(SparseRawHeader*)>& mutate) const {
    std::string bytes = valid_bytes_;
    SparseRawHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    mutate(&header);
    std::memcpy(bytes.data(), &header, sizeof(header));
    return bytes;
  }

  void ExpectRejected(const std::string& bytes, const std::string& name,
                      StatusCode want = StatusCode::kInvalidArgument) {
    const util::Status status = TryOpen(bytes, name);
    EXPECT_FALSE(status.ok()) << name << " accepted corrupt input";
    EXPECT_EQ(static_cast<int>(status.code()), static_cast<int>(want))
        << name << ": " << status.ToString();
  }

  std::string dir_;
  std::string valid_bytes_;
  SparseDatasetMeta meta_;
};

TEST_F(SparseFormatFuzzTest, ValidFileOpens) {
  EXPECT_TRUE(TryOpen(valid_bytes_, "ok.m3s").ok());
}

TEST_F(SparseFormatFuzzTest, BadMagicRejected) {
  std::string bytes = valid_bytes_;
  bytes[0] = 'X';
  ExpectRejected(bytes, "magic.m3s");
}

TEST_F(SparseFormatFuzzTest, FutureVersionRejectedAsNotSupported) {
  ExpectRejected(WithHeader([](SparseRawHeader* h) { h->version = 999; }),
                 "version.m3s", StatusCode::kNotSupported);
}

TEST_F(SparseFormatFuzzTest, TruncatedSectionsRejected) {
  // One byte short of any section's end is a truncation.
  ExpectRejected(valid_bytes_.substr(0, valid_bytes_.size() - 1),
                 "trunc_tail.m3s");
  ExpectRejected(valid_bytes_.substr(0, meta_.col_idx_offset + 2),
                 "trunc_colidx.m3s");
  ExpectRejected(valid_bytes_.substr(0, kSparseDatasetHeaderBytes),
                 "trunc_header_only.m3s");
}

TEST_F(SparseFormatFuzzTest, FileShorterThanTheHeaderRejectedCleanly) {
  // Too short to even read the raw header: an I/O-layer error, still no
  // crash and no partial acceptance.
  const util::Status status =
      TryOpen(valid_bytes_.substr(0, 40), "trunc_tiny.m3s");
  EXPECT_FALSE(status.ok());
}

TEST_F(SparseFormatFuzzTest, MisalignedOffsetsRejected) {
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->values_offset += 4; }),
      "misaligned_values.m3s");
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->col_idx_offset += 2; }),
      "misaligned_colidx.m3s");
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->row_ptr_offset += 1; }),
      "misaligned_rowptr.m3s");
}

TEST_F(SparseFormatFuzzTest, SectionsOutsideTheFileRejected) {
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->row_ptr_offset = 0; }),
      "section_in_header.m3s");
  ExpectRejected(WithHeader([&](SparseRawHeader* h) {
                   h->values_offset = valid_bytes_.size() + (64ull << 10);
                 }),
                 "section_past_eof.m3s");
  ExpectRejected(WithHeader([](SparseRawHeader* h) {
                   // Offset + size overflows uint64: the bounds check must
                   // be overflow-safe, not wrap and accept.
                   h->labels_offset = UINT64_MAX - 4096 + 1;
                 }),
                 "section_offset_overflow.m3s");
}

TEST_F(SparseFormatFuzzTest, ImplausibleShapesRejected) {
  ExpectRejected(WithHeader([](SparseRawHeader* h) { h->rows = UINT64_MAX; }),
                 "huge_rows.m3s");
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->nnz = 1ull << 60; }),
      "huge_nnz.m3s");
  ExpectRejected(WithHeader([](SparseRawHeader* h) { h->cols = 0; }),
                 "zero_cols.m3s");
  ExpectRejected(
      WithHeader([](SparseRawHeader* h) { h->cols = 1ull << 33; }),
      "cols_past_uint32.m3s");
}

TEST_F(SparseFormatFuzzTest, HeaderNnzDisagreeingWithRowPtrRejected) {
  // Shrinking the header's nnz keeps every section in bounds (padding
  // absorbs the difference), so only the deep check can catch it.
  ExpectRejected(WithHeader([](SparseRawHeader* h) { h->nnz -= 1; }),
                 "nnz_mismatch.m3s");
}

TEST_F(SparseFormatFuzzTest, NonMonotoneRowPtrRejected) {
  std::string bytes = valid_bytes_;
  uint64_t* row_ptr =
      reinterpret_cast<uint64_t*>(bytes.data() + meta_.row_ptr_offset);
  const size_t victim = meta_.rows / 2;
  uint64_t bumped = row_ptr[victim + 1] + 10;
  std::memcpy(&row_ptr[victim], &bumped, sizeof(bumped));
  ExpectRejected(bytes, "non_monotone.m3s");
}

TEST_F(SparseFormatFuzzTest, RowPtrNotStartingAtZeroRejected) {
  std::string bytes = valid_bytes_;
  const uint64_t one = 1;
  std::memcpy(bytes.data() + meta_.row_ptr_offset, &one, sizeof(one));
  ExpectRejected(bytes, "rowptr_nonzero_start.m3s");
}

TEST_F(SparseFormatFuzzTest, OutOfRangeColIdxRejected) {
  std::string bytes = valid_bytes_;
  const uint32_t bad = static_cast<uint32_t>(meta_.cols) + 3;
  std::memcpy(bytes.data() + meta_.col_idx_offset + 4 * (meta_.nnz / 2),
              &bad, sizeof(bad));
  ExpectRejected(bytes, "colidx_oob.m3s");
}

// The randomized sweep: every seed picks a mutation class and random
// parameters. Whatever happens, the reader must answer with ok() or a
// clean error — and an accepted file must scan safely (TryOpen probes
// it). Random damage can be harmless (a values byte, header padding), so
// acceptance is legitimate; crashing or reporting an unknown code is not.
TEST_F(SparseFormatFuzzTest, SeededMutationSweepNeverCrashes) {
  for (uint64_t seed = 0; seed < 128; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    util::Rng rng(seed);
    std::string bytes = valid_bytes_;
    const uint64_t mutation = rng.UniformInt(uint64_t{4});
    switch (mutation) {
      case 0: {  // random header-page byte flips
        const size_t flips = 1 + rng.UniformInt(uint64_t{8});
        for (size_t i = 0; i < flips; ++i) {
          const size_t at = rng.UniformInt(kSparseDatasetHeaderBytes);
          bytes[at] = static_cast<char>(rng.UniformInt(uint64_t{256}));
        }
        break;
      }
      case 1:  // random truncation anywhere
        bytes.resize(rng.UniformInt(bytes.size() + 1));
        break;
      case 2: {  // random row_ptr damage
        const size_t at =
            meta_.row_ptr_offset + 8 * rng.UniformInt(meta_.rows + 1);
        uint64_t value = rng.Next();
        std::memcpy(bytes.data() + at, &value, sizeof(value));
        break;
      }
      default: {  // random col_idx damage
        const size_t at = meta_.col_idx_offset + 4 * rng.UniformInt(meta_.nnz);
        uint32_t value = static_cast<uint32_t>(rng.Next());
        std::memcpy(bytes.data() + at, &value, sizeof(value));
        break;
      }
    }
    const util::Status status =
        TryOpen(bytes, "sweep_" + std::to_string(seed) + ".m3s");
    if (!status.ok()) {
      const StatusCode code = status.code();
      EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                  code == StatusCode::kNotSupported ||
                  code == StatusCode::kIoError)
          << status.ToString();
    }
  }
}

}  // namespace
}  // namespace m3::data
