#include "ml/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "util/random.h"

namespace m3::ml {
namespace {

TEST(StandardScalerTest, FitRecoversMomentsExactly) {
  la::Matrix x(4, 2, std::vector<double>{1, 10,
                                         2, 20,
                                         3, 30,
                                         4, 40});
  auto params = StandardScaler::Fit(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(params.mean[0], 2.5);
  EXPECT_DOUBLE_EQ(params.mean[1], 25.0);
  // Population stddev of {1,2,3,4} = sqrt(1.25).
  EXPECT_NEAR(params.scale[0], std::sqrt(1.25), 1e-12);
  EXPECT_NEAR(params.scale[1], std::sqrt(125.0), 1e-12);
}

TEST(StandardScalerTest, TransformedDataIsStandardized) {
  util::Rng rng(42);
  la::Matrix x(5000, 3);
  for (size_t r = 0; r < x.rows(); ++r) {
    x(r, 0) = rng.Gaussian(100.0, 5.0);
    x(r, 1) = rng.Gaussian(-3.0, 0.01);
    x(r, 2) = rng.Uniform(0, 255);
  }
  auto params = StandardScaler::Fit(x).ValueOrDie();
  StandardScaler::TransformInPlace(params, x);
  for (size_t j = 0; j < 3; ++j) {
    double sum = 0, sum_sq = 0;
    for (size_t r = 0; r < x.rows(); ++r) {
      sum += x(r, j);
      sum_sq += x(r, j) * x(r, j);
    }
    const double mean = sum / static_cast<double>(x.rows());
    const double var =
        sum_sq / static_cast<double>(x.rows()) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-9) << "feature " << j;
    EXPECT_NEAR(var, 1.0, 1e-6) << "feature " << j;
  }
}

TEST(StandardScalerTest, ChunkingDoesNotChangeFit) {
  data::BlobsResult blobs = data::GaussianBlobs(1000, 4, 3, 2.0, 7);
  auto small = StandardScaler::Fit(blobs.data.features, 17).ValueOrDie();
  auto big = StandardScaler::Fit(blobs.data.features, 1000).ValueOrDie();
  for (size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(small.mean[j], big.mean[j], 1e-10);
    EXPECT_NEAR(small.scale[j], big.scale[j], 1e-10);
  }
}

TEST(StandardScalerTest, ConstantFeatureGetsEpsilonScale) {
  la::Matrix x(10, 1);
  x.Fill(7.0);
  auto params = StandardScaler::Fit(x).ValueOrDie();
  EXPECT_DOUBLE_EQ(params.mean[0], 7.0);
  EXPECT_GT(params.scale[0], 0.0);  // epsilon, not zero
  la::Vector out(1);
  StandardScaler::TransformRow(params, x.Row(0), out);
  EXPECT_TRUE(std::isfinite(out[0]));
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(StandardScalerTest, TransformRowMatchesFormula) {
  StandardScaler::Params params;
  params.mean = la::Vector(std::vector<double>{10.0, -5.0});
  params.scale = la::Vector(std::vector<double>{2.0, 0.5});
  la::Vector row(std::vector<double>{14.0, -4.0});
  la::Vector out(2);
  StandardScaler::TransformRow(params, row, out);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
}

TEST(StandardScalerTest, HooksObserveSinglePass) {
  data::BlobsResult blobs = data::GaussianBlobs(200, 2, 2, 1.0, 3);
  size_t passes = 0, chunks = 0;
  ScanHooks hooks;
  hooks.before_pass = [&passes](size_t) { ++passes; };
  hooks.after_chunk = [&chunks](size_t, size_t) { ++chunks; };
  ASSERT_TRUE(
      StandardScaler::Fit(blobs.data.features, 50, hooks).ok());
  EXPECT_EQ(passes, 1u);  // single-scan preprocessing
  EXPECT_EQ(chunks, 4u);
}

TEST(StandardScalerTest, EmptyDataRejected) {
  la::Matrix empty;
  EXPECT_FALSE(StandardScaler::Fit(empty).ok());
}

}  // namespace
}  // namespace m3::ml
