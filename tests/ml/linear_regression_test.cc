#include "ml/linear_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "la/blas.h"
#include "la/solve.h"
#include "ml/metrics.h"

namespace m3::ml {
namespace {

TEST(CholeskyTest, FactorsAndSolvesSpdSystem) {
  // A = L L^T with known L.
  la::Matrix a(3, 3, std::vector<double>{4, 2, 2,
                                         2, 5, 3,
                                         2, 3, 6});
  la::Vector b(std::vector<double>{1, 2, 3});
  auto x = la::SolveSpd(a, b);
  ASSERT_TRUE(x.ok()) << x.status().ToString();
  // Verify A x == b.
  la::Vector ax(3);
  la::Gemv(1.0, a, x.value(), 0.0, ax);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-10);
  }
}

TEST(CholeskyTest, RejectsIndefiniteMatrix) {
  la::Matrix a(2, 2, std::vector<double>{1, 2, 2, 1});  // eigenvalues 3, -1
  la::Vector b(std::vector<double>{1, 1});
  EXPECT_FALSE(la::SolveSpd(a, b).ok());
}

TEST(LinearRegressionTest, RecoversExactWeightsWithoutNoise) {
  data::RegressionResult reg = data::LinearRegressionData(500, 6, 0.0, 42);
  la::ConstVectorView y(reg.data.labels.data(), reg.data.labels.size());
  LinearRegression trainer;
  auto model = trainer.Train(reg.data.features, y);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  for (size_t d = 0; d < 6; ++d) {
    EXPECT_NEAR(model.value().weights[d], reg.true_weights[d], 1e-6);
  }
  EXPECT_NEAR(model.value().intercept, reg.true_bias, 1e-6);
}

TEST(LinearRegressionTest, NoisyRecoveryWithinStatisticalError) {
  data::RegressionResult reg = data::LinearRegressionData(20000, 4, 0.5, 7);
  la::ConstVectorView y(reg.data.labels.data(), reg.data.labels.size());
  auto model = LinearRegression().Train(reg.data.features, y).ValueOrDie();
  for (size_t d = 0; d < 4; ++d) {
    // Standard error ~ sigma / sqrt(n) = 0.5/141 ~ 0.0035; use 5 sigma.
    EXPECT_NEAR(model.weights[d], reg.true_weights[d], 0.02);
  }
}

TEST(LinearRegressionTest, RidgeShrinksWeights) {
  data::RegressionResult reg = data::LinearRegressionData(200, 5, 0.1, 3);
  la::ConstVectorView y(reg.data.labels.data(), reg.data.labels.size());
  auto plain = LinearRegression().Train(reg.data.features, y).ValueOrDie();
  LinearRegressionOptions heavy;
  heavy.l2 = 1000.0;
  auto ridge =
      LinearRegression(heavy).Train(reg.data.features, y).ValueOrDie();
  EXPECT_LT(la::Nrm2(ridge.weights), la::Nrm2(plain.weights) * 0.5);
}

TEST(LinearRegressionTest, PredictUsesInterceptAndWeights) {
  LinearRegressionModel model;
  model.weights = la::Vector(std::vector<double>{2.0, -1.0});
  model.intercept = 0.5;
  la::Vector x(std::vector<double>{3.0, 4.0});
  EXPECT_DOUBLE_EQ(model.Predict(x), 2.0 * 3 - 1.0 * 4 + 0.5);
}

TEST(LinearRegressionTest, ChunkingDoesNotChangeSolution) {
  data::RegressionResult reg = data::LinearRegressionData(777, 4, 0.2, 13);
  la::ConstVectorView y(reg.data.labels.data(), reg.data.labels.size());
  LinearRegressionOptions small;
  small.chunk_rows = 31;
  auto a = LinearRegression(small).Train(reg.data.features, y).ValueOrDie();
  LinearRegressionOptions big;
  big.chunk_rows = 777;
  auto b = LinearRegression(big).Train(reg.data.features, y).ValueOrDie();
  for (size_t d = 0; d < 4; ++d) {
    ASSERT_NEAR(a.weights[d], b.weights[d], 1e-8);
  }
}

TEST(LinearRegressionTest, RejectsEmptyAndMismatched) {
  la::Matrix empty;
  la::Vector none;
  EXPECT_FALSE(LinearRegression().Train(empty, none).ok());
  la::Matrix x(3, 2);
  la::Vector two(2);
  EXPECT_FALSE(LinearRegression().Train(x, two).ok());
}

TEST(MetricsTest, AccuracyAndMse) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {1, 1, 1}), 2.0 / 3);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(MeanSquaredError({1, 2}, {0, 0}), 2.5);
}

TEST(MetricsTest, LogLossOfPerfectAndUncertain) {
  EXPECT_NEAR(LogLoss({1.0, 0.0}, {1, 0}), 0.0, 1e-6);
  EXPECT_NEAR(LogLoss({0.5, 0.5}, {1, 0}), std::log(2.0), 1e-12);
}

TEST(MetricsTest, ConfusionMatrixCounts) {
  la::Matrix confusion =
      ConfusionMatrix({0, 1, 1, 0, 1}, {0, 1, 0, 0, 1}, 2);
  EXPECT_DOUBLE_EQ(confusion(0, 0), 2.0);  // truth 0 predicted 0
  EXPECT_DOUBLE_EQ(confusion(0, 1), 1.0);  // truth 0 predicted 1
  EXPECT_DOUBLE_EQ(confusion(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(confusion(1, 0), 0.0);
}

TEST(MetricsTest, InertiaMatchesManual) {
  la::Matrix x(2, 1, std::vector<double>{0.0, 4.0});
  la::Matrix centers(2, 1, std::vector<double>{1.0, 3.0});
  // 0 -> center 1 (dist2 1), 4 -> center 3 (dist2 1).
  EXPECT_DOUBLE_EQ(Inertia(x, centers), 2.0);
}

TEST(MetricsTest, ClusterPurityPerfectAndMixed) {
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 1, 1}, {5, 5, 3, 3}, 2, 6), 1.0);
  EXPECT_DOUBLE_EQ(ClusterPurity({0, 0, 0, 0}, {1, 1, 2, 2}, 1, 3), 0.5);
}

}  // namespace
}  // namespace m3::ml
