#include "ml/lbfgs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"
#include "ml/gradient_descent.h"

namespace m3::ml {
namespace {

/// f(w) = 0.5 * sum_i c_i (w_i - t_i)^2 — convex quadratic with known
/// minimum at t.
class Quadratic final : public DifferentiableFunction {
 public:
  Quadratic(std::vector<double> curvature, std::vector<double> target)
      : curvature_(std::move(curvature)), target_(std::move(target)) {}

  size_t Dimension() const override { return curvature_.size(); }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    double f = 0;
    for (size_t i = 0; i < curvature_.size(); ++i) {
      const double diff = w[i] - target_[i];
      f += 0.5 * curvature_[i] * diff * diff;
      grad[i] = curvature_[i] * diff;
    }
    return f;
  }

 private:
  std::vector<double> curvature_;
  std::vector<double> target_;
};

/// The 2-D Rosenbrock banana: nonconvex valley, minimum at (1, 1).
class Rosenbrock final : public DifferentiableFunction {
 public:
  size_t Dimension() const override { return 2; }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    const double x = w[0], y = w[1];
    const double a = 1.0 - x;
    const double b = y - x * x;
    grad[0] = -2.0 * a - 400.0 * x * b;
    grad[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  }
};

TEST(LbfgsTest, MinimizesWellConditionedQuadratic) {
  Quadratic f({1, 1, 1}, {3, -2, 7});
  la::Vector w(3);
  Lbfgs optimizer;
  auto result = optimizer.Minimize(&f, w);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().converged);
  EXPECT_NEAR(w[0], 3.0, 1e-5);
  EXPECT_NEAR(w[1], -2.0, 1e-5);
  EXPECT_NEAR(w[2], 7.0, 1e-5);
  EXPECT_NEAR(result.value().objective, 0.0, 1e-9);
}

TEST(LbfgsTest, MinimizesIllConditionedQuadratic) {
  // Condition number 1e4: gradient descent would crawl, L-BFGS should not.
  Quadratic f({1e-2, 1e2}, {1, 1});
  la::Vector w(2);
  LbfgsOptions options;
  options.max_iterations = 100;
  Lbfgs optimizer(options);
  auto result = optimizer.Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(w[0], 1.0, 1e-3);
  EXPECT_NEAR(w[1], 1.0, 1e-6);
}

TEST(LbfgsTest, SolvesRosenbrock) {
  Rosenbrock f;
  la::Vector w(2);
  w[0] = -1.2;
  w[1] = 1.0;  // classic hard start
  LbfgsOptions options;
  options.max_iterations = 200;
  Lbfgs optimizer(options);
  auto result = optimizer.Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(w[0], 1.0, 1e-4);
  EXPECT_NEAR(w[1], 1.0, 1e-4);
}

TEST(LbfgsTest, ObjectiveHistoryIsMonotoneNonIncreasing) {
  Rosenbrock f;
  la::Vector w(2);
  w[0] = -1.2;
  w[1] = 1.0;
  Lbfgs optimizer;
  auto result = optimizer.Minimize(&f, w).ValueOrDie();
  for (size_t i = 1; i < result.objective_history.size(); ++i) {
    // Wolfe line search guarantees decrease at every accepted step.
    EXPECT_LE(result.objective_history[i],
              result.objective_history[i - 1] + 1e-12)
        << "iteration " << i;
  }
}

TEST(LbfgsTest, RespectsMaxIterations) {
  Rosenbrock f;
  la::Vector w(2);
  w[0] = -1.2;
  w[1] = 1.0;
  LbfgsOptions options;
  options.max_iterations = 3;
  options.gradient_tolerance = 0;  // never converge on tolerance
  Lbfgs optimizer(options);
  auto result = optimizer.Minimize(&f, w).ValueOrDie();
  EXPECT_LE(result.iterations, 3u);
}

TEST(LbfgsTest, IterationCallbackFires) {
  Quadratic f({1, 1}, {1, 1});
  la::Vector w(2);
  size_t calls = 0;
  LbfgsOptions options;
  options.iteration_callback = [&calls](size_t, double, double) { ++calls; };
  Lbfgs optimizer(options);
  ASSERT_TRUE(optimizer.Minimize(&f, w).ok());
  EXPECT_GT(calls, 0u);
}

TEST(LbfgsTest, StartingAtOptimumConvergesImmediately) {
  Quadratic f({2, 2}, {0, 0});
  la::Vector w(2);  // exactly the optimum
  Lbfgs optimizer;
  auto result = optimizer.Minimize(&f, w).ValueOrDie();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(LbfgsTest, NullFunctionRejected) {
  la::Vector w(2);
  Lbfgs optimizer;
  EXPECT_FALSE(optimizer.Minimize(nullptr, w).ok());
}

TEST(LbfgsTest, DimensionMismatchRejected) {
  Quadratic f({1}, {0});
  la::Vector w(3);
  Lbfgs optimizer;
  EXPECT_FALSE(optimizer.Minimize(&f, w).ok());
}

TEST(LbfgsTest, ZeroHistoryRejected) {
  Quadratic f({1}, {0});
  la::Vector w(1);
  LbfgsOptions options;
  options.history = 0;
  Lbfgs optimizer(options);
  EXPECT_FALSE(optimizer.Minimize(&f, w).ok());
}

TEST(LbfgsTest, FunctionEvaluationsCounted) {
  Rosenbrock f;
  la::Vector w(2);
  w[0] = -1.2;
  w[1] = 1.0;
  Lbfgs optimizer;
  auto result = optimizer.Minimize(&f, w).ValueOrDie();
  // At least one evaluation per iteration plus the initial one.
  EXPECT_GE(result.function_evaluations, result.iterations + 1);
}

TEST(GradientDescentTest, MinimizesQuadratic) {
  Quadratic f({1, 4}, {2, -1});
  la::Vector w(2);
  GradientDescentOptions options;
  options.max_iterations = 1000;
  GradientDescent optimizer(options);
  auto result = optimizer.Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(w[0], 2.0, 1e-4);
  EXPECT_NEAR(w[1], -1.0, 1e-4);
}

TEST(GradientDescentTest, BacktrackingHandlesHugeInitialStep) {
  Quadratic f({100, 100}, {0, 0});
  la::Vector w(2);
  w[0] = w[1] = 10;
  GradientDescentOptions options;
  options.initial_step = 1e6;  // would explode without backtracking
  options.max_iterations = 500;
  GradientDescent optimizer(options);
  auto result = optimizer.Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(w[0], 0.0, 1e-3);
}

TEST(GradientDescentTest, LbfgsNeedsFewerPassesOnIllConditioned) {
  // The ablation behind using L-BFGS in the paper: far fewer data passes
  // than first-order descent on an ill-conditioned objective.
  Quadratic f_gd({1e-2, 1e2}, {1, 1});
  Quadratic f_lb({1e-2, 1e2}, {1, 1});
  la::Vector w_gd(2), w_lb(2);
  GradientDescentOptions gd_options;
  gd_options.max_iterations = 100000;
  gd_options.gradient_tolerance = 1e-6;
  auto gd = GradientDescent(gd_options).Minimize(&f_gd, w_gd).ValueOrDie();
  LbfgsOptions lb_options;
  lb_options.gradient_tolerance = 1e-6;
  auto lb = Lbfgs(lb_options).Minimize(&f_lb, w_lb).ValueOrDie();
  EXPECT_TRUE(lb.converged);
  EXPECT_LT(lb.function_evaluations, gd.function_evaluations / 10);
}

}  // namespace
}  // namespace m3::ml
