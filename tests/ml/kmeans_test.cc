#include "ml/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "data/synthetic.h"
#include "la/blas.h"
#include "ml/metrics.h"

namespace m3::ml {
namespace {

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  data::BlobsResult blobs = data::GaussianBlobs(1000, 4, 3, 0.4, 42);
  KMeansOptions options;
  options.k = 3;
  options.max_iterations = 50;
  options.seed = 1;
  KMeans kmeans(options);
  auto result = kmeans.Cluster(blobs.data.features);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Every found center must be close to exactly one true center.
  std::set<size_t> matched;
  for (size_t c = 0; c < 3; ++c) {
    double best = 1e300;
    size_t best_true = 0;
    for (size_t t = 0; t < 3; ++t) {
      const double dist = std::sqrt(la::SquaredDistance(
          result.value().centers.Row(c), blobs.centers.Row(t)));
      if (dist < best) {
        best = dist;
        best_true = t;
      }
    }
    EXPECT_LT(best, 1.0) << "center " << c << " far from any true center";
    matched.insert(best_true);
  }
  EXPECT_EQ(matched.size(), 3u) << "two centers matched the same blob";
}

TEST(KMeansTest, HighPurityOnSeparatedBlobs) {
  data::BlobsResult blobs = data::GaussianBlobs(2000, 6, 4, 0.5, 9);
  KMeansOptions options;
  options.k = 4;
  options.max_iterations = 30;
  KMeans kmeans(options);
  auto result = kmeans.Cluster(blobs.data.features).ValueOrDie();
  auto assignment = KMeans::Assign(blobs.data.features, result.centers);
  EXPECT_GT(ClusterPurity(assignment, blobs.data.labels, 4, 4), 0.97);
}

TEST(KMeansTest, InertiaIsMonotoneNonIncreasing) {
  data::BlobsResult blobs = data::GaussianBlobs(800, 5, 3, 1.5, 3);
  KMeansOptions options;
  options.k = 3;
  options.max_iterations = 20;
  KMeans kmeans(options);
  auto result = kmeans.Cluster(blobs.data.features).ValueOrDie();
  for (size_t i = 1; i < result.inertia_history.size(); ++i) {
    EXPECT_LE(result.inertia_history[i],
              result.inertia_history[i - 1] * (1 + 1e-12))
        << "iteration " << i;
  }
}

TEST(KMeansTest, DeterministicForFixedSeed) {
  data::BlobsResult blobs = data::GaussianBlobs(500, 4, 3, 1.0, 8);
  KMeansOptions options;
  options.k = 3;
  options.seed = 77;
  auto a = KMeans(options).Cluster(blobs.data.features).ValueOrDie();
  auto b = KMeans(options).Cluster(blobs.data.features).ValueOrDie();
  for (size_t c = 0; c < 3; ++c) {
    for (size_t d = 0; d < 4; ++d) {
      ASSERT_DOUBLE_EQ(a.centers(c, d), b.centers(c, d));
    }
  }
  ASSERT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, RandomInitWorksAcrossRestarts) {
  // Random seeding can land in a local optimum (two centers in one blob);
  // the correct property is that restarts find the global structure.
  data::BlobsResult blobs = data::GaussianBlobs(600, 3, 3, 0.4, 12);
  KMeansOptions options;
  options.k = 3;
  options.kmeanspp_init = false;
  options.max_iterations = 100;
  double best_purity = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    options.seed = seed;
    auto result = KMeans(options).Cluster(blobs.data.features);
    ASSERT_TRUE(result.ok());
    auto assignment =
        KMeans::Assign(blobs.data.features, result.value().centers);
    best_purity = std::max(
        best_purity, ClusterPurity(assignment, blobs.data.labels, 3, 3));
  }
  EXPECT_GT(best_purity, 0.9);
}

TEST(KMeansTest, KppBeatsOrMatchesRandomInitOnAverage) {
  // kmeans++ should rarely be worse after 1 iteration on clusterable data.
  data::BlobsResult blobs = data::GaussianBlobs(800, 4, 5, 0.6, 20);
  KMeansOptions kpp, rnd;
  kpp.k = rnd.k = 5;
  kpp.max_iterations = rnd.max_iterations = 1;
  kpp.kmeanspp_init = true;
  rnd.kmeanspp_init = false;
  double kpp_total = 0, rnd_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    kpp.seed = rnd.seed = seed;
    kpp_total += KMeans(kpp).Cluster(blobs.data.features).ValueOrDie().inertia;
    rnd_total += KMeans(rnd).Cluster(blobs.data.features).ValueOrDie().inertia;
  }
  EXPECT_LE(kpp_total, rnd_total * 1.05);
}

TEST(KMeansTest, AssignMapsPointsToNearestCenter) {
  la::Matrix centers(2, 1, std::vector<double>{0.0, 10.0});
  la::Matrix points(4, 1, std::vector<double>{-1, 1, 9, 12});
  auto assignment = KMeans::Assign(points, centers);
  EXPECT_EQ(assignment, (std::vector<uint32_t>{0, 0, 1, 1}));
}

TEST(KMeansTest, KEqualsOneYieldsCentroid) {
  la::Matrix points(4, 2, std::vector<double>{0, 0, 2, 0, 0, 2, 2, 2});
  KMeansOptions options;
  options.k = 1;
  options.max_iterations = 5;
  auto result = KMeans(options).Cluster(points).ValueOrDie();
  EXPECT_NEAR(result.centers(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(result.centers(0, 1), 1.0, 1e-12);
}

TEST(KMeansTest, KLargerThanRowsRejected) {
  la::Matrix points(3, 2);
  KMeansOptions options;
  options.k = 4;
  EXPECT_FALSE(KMeans(options).Cluster(points).ok());
}

TEST(KMeansTest, EmptyDataRejected) {
  la::Matrix empty;
  EXPECT_FALSE(KMeans().Cluster(empty).ok());
}

TEST(KMeansTest, HooksObserveChunkedPasses) {
  data::BlobsResult blobs = data::GaussianBlobs(100, 3, 2, 1.0, 4);
  size_t passes = 0;
  size_t chunk_calls = 0;
  KMeansOptions options;
  options.k = 2;
  options.max_iterations = 3;
  options.tolerance = 0;  // run all 3 iterations
  options.chunk_rows = 40;
  options.hooks.before_pass = [&passes](size_t) { ++passes; };
  options.hooks.after_chunk = [&chunk_calls](size_t, size_t) {
    ++chunk_calls;
  };
  auto result = KMeans(options).Cluster(blobs.data.features).ValueOrDie();
  EXPECT_EQ(passes, result.iterations);
  // ceil(100/40) = 3 chunks per pass.
  EXPECT_EQ(chunk_calls, result.iterations * 3);
}

TEST(KMeansTest, IterationCallbackSeesInertia) {
  data::BlobsResult blobs = data::GaussianBlobs(200, 3, 2, 1.0, 5);
  std::vector<double> observed;
  KMeansOptions options;
  options.k = 2;
  options.max_iterations = 5;
  options.iteration_callback = [&observed](size_t, double inertia) {
    observed.push_back(inertia);
  };
  auto result = KMeans(options).Cluster(blobs.data.features).ValueOrDie();
  EXPECT_EQ(observed, result.inertia_history);
}

// Paper configuration: k=5, 10 iterations, parameterized across chunk
// sizes — chunking must not change the math at all.
class KMeansChunkInvarianceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KMeansChunkInvarianceTest, ChunkSizeDoesNotChangeResult) {
  data::BlobsResult blobs = data::GaussianBlobs(500, 8, 5, 1.0, 60);
  KMeansOptions options;
  options.k = 5;
  options.max_iterations = 10;
  options.seed = 123;
  options.chunk_rows = GetParam();
  auto result = KMeans(options).Cluster(blobs.data.features).ValueOrDie();

  KMeansOptions reference = options;
  reference.chunk_rows = 500;  // single chunk
  auto expected =
      KMeans(reference).Cluster(blobs.data.features).ValueOrDie();
  EXPECT_NEAR(result.inertia, expected.inertia,
              1e-9 * std::max(1.0, expected.inertia));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, KMeansChunkInvarianceTest,
                         ::testing::Values(1, 7, 64, 499, 500, 1000));

}  // namespace
}  // namespace m3::ml
