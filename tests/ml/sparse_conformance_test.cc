// Sparse-vs-dense conformance: on a densified copy of the same data,
// chunked identically, the sparse LR and softmax objectives must agree
// with their dense twins to the last ulp — loss, gradient, and the
// trained model. The sparse kernels perform the dense kernels' additions
// minus the zero terms, in the same order, and the objectives share the
// partition granularity and merge order, so "agree" here means bitwise.
//
// Independently, the sparse path must keep the engine's determinism
// guarantee on its own: MapReduceChunks over an mmap'd CSR dataset is
// bitwise identical at every worker count under every prefetch backend
// (mirroring prefetch_backend_test.cc's dense version).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/sparse_mapped_dataset.h"
#include "data/sparse_dataset.h"
#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "io/prefetch_backend.h"
#include "la/blas.h"
#include "la/sparse.h"
#include "ml/logistic_regression.h"
#include "ml/sparse_logistic_regression.h"
#include "util/random.h"

namespace m3::ml {
namespace {

std::vector<io::PrefetchBackendKind> AllBackendKinds() {
  return {io::PrefetchBackendKind::kMadvise, io::PrefetchBackendKind::kPread,
          io::PrefetchBackendKind::kUring};
}

bool BitwiseEqual(la::ConstVectorView a, la::ConstVectorView b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

class SparseConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_sparse_conformance_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

/// A random ragged learnable dataset held in memory, with both views.
struct TwinData {
  std::vector<uint64_t> row_ptr;
  std::vector<uint32_t> col_idx;
  std::vector<double> values;
  std::vector<double> labels;
  la::Matrix dense;
  size_t rows = 0;
  size_t cols = 0;

  la::CsrView Csr() const {
    return la::CsrView(row_ptr.data(), col_idx.data(), values.data(), rows,
                       cols);
  }
  la::ConstVectorView Labels() const {
    return la::ConstVectorView(labels.data(), labels.size());
  }
};

TwinData MakeTwin(size_t rows, size_t cols, size_t max_nnz, size_t classes,
                  uint64_t seed) {
  util::Rng rng(seed);
  TwinData data;
  data.rows = rows;
  data.cols = cols;
  data.row_ptr.push_back(0);
  std::vector<double> plane(cols);
  for (size_t c = 0; c < cols; ++c) {
    plane[c] = rng.Uniform(-1.0, 1.0);
  }
  for (size_t r = 0; r < rows; ++r) {
    const size_t nnz =
        static_cast<size_t>(rng.UniformInt(static_cast<uint64_t>(max_nnz + 1)));
    std::vector<uint32_t> picked;
    while (picked.size() < nnz) {
      const uint32_t c =
          static_cast<uint32_t>(rng.UniformInt(static_cast<uint64_t>(cols)));
      bool dup = false;
      for (const uint32_t existing : picked) {
        dup = dup || existing == c;
      }
      if (!dup) {
        picked.push_back(c);
      }
    }
    std::sort(picked.begin(), picked.end());
    double margin = 0;
    for (const uint32_t c : picked) {
      double v = rng.Uniform(-1.0, 1.0);
      if (v == 0.0) {
        v = 0.5;
      }
      data.col_idx.push_back(c);
      data.values.push_back(v);
      margin += v * plane[c];
    }
    data.row_ptr.push_back(data.col_idx.size());
    if (classes <= 2) {
      data.labels.push_back(margin > 0 ? 1.0 : 0.0);
    } else {
      size_t label = 0;
      if (margin > 0.3) {
        label = 2;
      } else if (margin > -0.3) {
        label = 1;
      }
      data.labels.push_back(static_cast<double>(label));
    }
  }
  data.dense = la::Densify(data.Csr());
  return data;
}

// ---------------------------------------------------------------------------
// Objective-level conformance (heap data, uniform chunking on both sides)
// ---------------------------------------------------------------------------

TEST(SparseObjectiveConformance, LogisticLossAndGradientBitwiseEqualDense) {
  const TwinData data = MakeTwin(300, 48, 14, 2, /*seed=*/31);
  const size_t kChunkRows = 64;
  LogisticRegressionObjective dense(data.dense.View(), data.Labels(), 1e-4,
                                    kChunkRows);
  SparseLogisticRegressionObjective sparse(data.Csr(), data.Labels(), 1e-4,
                                           kChunkRows);
  ASSERT_EQ(dense.Dimension(), sparse.Dimension());
  util::Rng rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    la::Vector w(dense.Dimension());
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = rng.Uniform(-0.5, 0.5);
    }
    la::Vector dense_grad(dense.Dimension());
    la::Vector sparse_grad(sparse.Dimension());
    const double dense_loss = dense.EvaluateWithGradient(w, dense_grad);
    const double sparse_loss = sparse.EvaluateWithGradient(w, sparse_grad);
    EXPECT_EQ(std::memcmp(&dense_loss, &sparse_loss, sizeof(double)), 0)
        << "trial " << trial << ": " << dense_loss << " vs " << sparse_loss;
    EXPECT_TRUE(BitwiseEqual(dense_grad, sparse_grad)) << "trial " << trial;
  }
}

TEST(SparseObjectiveConformance, SoftmaxLossAndGradientBitwiseEqualDense) {
  const TwinData data = MakeTwin(240, 32, 10, 3, /*seed=*/43);
  const size_t kChunkRows = 50;
  SoftmaxRegressionObjective dense(data.dense.View(), data.Labels(), 3, 1e-4,
                                   kChunkRows);
  SparseSoftmaxRegressionObjective sparse(data.Csr(), data.Labels(), 3, 1e-4,
                                          kChunkRows);
  ASSERT_EQ(dense.Dimension(), sparse.Dimension());
  util::Rng rng(6);
  for (int trial = 0; trial < 4; ++trial) {
    la::Vector w(dense.Dimension());
    for (size_t i = 0; i < w.size(); ++i) {
      w[i] = rng.Uniform(-0.5, 0.5);
    }
    la::Vector dense_grad(dense.Dimension());
    la::Vector sparse_grad(sparse.Dimension());
    const double dense_loss = dense.EvaluateWithGradient(w, dense_grad);
    const double sparse_loss = sparse.EvaluateWithGradient(w, sparse_grad);
    EXPECT_EQ(std::memcmp(&dense_loss, &sparse_loss, sizeof(double)), 0)
        << "trial " << trial;
    EXPECT_TRUE(BitwiseEqual(dense_grad, sparse_grad)) << "trial " << trial;
  }
}

TEST(SparseObjectiveConformance, TrainedModelsBitwiseEqualDense) {
  const TwinData data = MakeTwin(400, 30, 8, 2, /*seed=*/77);
  const size_t kChunkRows = 128;
  LogisticRegressionOptions dense_options;
  dense_options.chunk_rows = kChunkRows;
  dense_options.lbfgs.max_iterations = 25;
  auto dense_model = LogisticRegression(dense_options)
                         .Train(data.dense.View(), data.Labels());
  ASSERT_TRUE(dense_model.ok()) << dense_model.status().ToString();

  SparseLogisticRegressionOptions sparse_options;
  sparse_options.chunk_rows = kChunkRows;
  sparse_options.lbfgs.max_iterations = 25;
  auto sparse_model = SparseLogisticRegression(sparse_options)
                          .Train(data.Csr(), data.Labels());
  ASSERT_TRUE(sparse_model.ok()) << sparse_model.status().ToString();

  EXPECT_TRUE(BitwiseEqual(dense_model.value().weights,
                           sparse_model.value().weights));
  EXPECT_EQ(std::memcmp(&dense_model.value().intercept,
                        &sparse_model.value().intercept, sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Engine-level determinism on mmap'd CSR data (nnz-budget chunking)
// ---------------------------------------------------------------------------

TEST_F(SparseConformanceTest, MapReduceBitwiseIdenticalAcrossWorkersAndBackends) {
  const std::string path = dir_ + "/engine.m3s";
  data::SparseSyntheticOptions gen;
  gen.rows = 4096;
  gen.cols = 256;
  gen.nnz_per_row = 12;
  gen.seed = 2016;
  ASSERT_TRUE(data::GenerateSparseDataset(path, gen).ok());

  auto run = [&](io::PrefetchBackendKind kind, size_t workers) {
    M3Options options;
    options.readahead_chunks = 2;
    options.pipeline_workers = workers;
    options.prefetch_backend = kind;
    // A small payload budget so the pass has many ragged chunks.
    options.chunk_nnz_bytes = 8 << 10;
    auto mapped = MappedSparseDataset::Open(path, options);
    EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
    const la::CsrView csr = mapped.value().csr();
    const la::SparseChunker chunker = mapped.value().MakeChunker();
    EXPECT_GT(chunker.NumChunks(), 8u);
    double sum = 0;
    exec::MapReduceChunks<double>(
        &mapped.value().pipeline(), chunker,
        [&](size_t, size_t row_begin, size_t row_end) {
          double partial = 0;
          for (size_t r = row_begin; r < row_end; ++r) {
            const la::SparseRowView row = csr.Row(r);
            for (size_t k = 0; k < row.nnz; ++k) {
              partial += row.values[k] * 1.000000119;
            }
          }
          return partial;
        },
        [&](size_t, double&& partial) { sum += partial; });
    return sum;
  };

  const double reference = run(io::PrefetchBackendKind::kMadvise, 0);
  for (const io::PrefetchBackendKind kind : AllBackendKinds()) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE(std::string(io::PrefetchBackendKindToString(kind)) +
                   " workers=" + std::to_string(workers));
      const double sum = run(kind, workers);
      EXPECT_EQ(std::memcmp(&sum, &reference, sizeof(sum)), 0)
          << sum << " vs " << reference;
    }
  }
}

TEST_F(SparseConformanceTest, TrainingBitwiseIdenticalAcrossWorkersAndBackends) {
  const std::string path = dir_ + "/train.m3s";
  data::SparseSyntheticOptions gen;
  gen.rows = 2048;
  gen.cols = 64;
  gen.nnz_per_row = 8;
  gen.seed = 11;
  ASSERT_TRUE(data::GenerateSparseDataset(path, gen).ok());

  auto train = [&](io::PrefetchBackendKind kind, size_t workers) {
    M3Options options;
    options.readahead_chunks = 2;
    options.pipeline_workers = workers;
    options.prefetch_backend = kind;
    options.chunk_nnz_bytes = 16 << 10;
    auto mapped = MappedSparseDataset::Open(path, options);
    EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
    const std::vector<double> labels = mapped.value().CopyLabels();
    SparseLogisticRegressionOptions train_options;
    train_options.chunk_nnz_bytes = options.chunk_nnz_bytes;
    train_options.lbfgs.max_iterations = 15;
    train_options.pipeline = &mapped.value().pipeline();
    auto model = SparseLogisticRegression(train_options)
                     .Train(mapped.value().csr(),
                            la::ConstVectorView(labels.data(), labels.size()));
    EXPECT_TRUE(model.ok()) << model.status().ToString();
    return std::move(model).ValueOrDie();
  };

  const LogisticRegressionModel reference =
      train(io::PrefetchBackendKind::kMadvise, 0);
  for (const io::PrefetchBackendKind kind : AllBackendKinds()) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE(std::string(io::PrefetchBackendKindToString(kind)) +
                   " workers=" + std::to_string(workers));
      const LogisticRegressionModel model = train(kind, workers);
      EXPECT_TRUE(BitwiseEqual(model.weights, reference.weights));
      EXPECT_EQ(std::memcmp(&model.intercept, &reference.intercept,
                            sizeof(double)),
                0);
    }
  }
}

// The two chunking modes must agree with each other in value-determinism
// terms too: nnz-budget chunking changes the FP grouping (so bits may
// differ from uniform chunking), but each mode is itself deterministic.
TEST(SparseObjectiveConformance, NnzBudgetModeIsSelfDeterministic) {
  const TwinData data = MakeTwin(500, 40, 16, 2, /*seed=*/13);
  SparseLogisticRegressionObjective a(data.Csr(), data.Labels(), 1e-4,
                                      /*chunk_rows=*/0,
                                      /*chunk_nnz_bytes=*/4 << 10);
  SparseLogisticRegressionObjective b(data.Csr(), data.Labels(), 1e-4,
                                      /*chunk_rows=*/0,
                                      /*chunk_nnz_bytes=*/4 << 10);
  la::Vector w(a.Dimension());
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.01 * static_cast<double>(i % 17);
  }
  la::Vector grad_a(a.Dimension());
  la::Vector grad_b(b.Dimension());
  const double loss_a = a.EvaluateWithGradient(w, grad_a);
  const double loss_b = b.EvaluateWithGradient(w, grad_b);
  EXPECT_EQ(std::memcmp(&loss_a, &loss_b, sizeof(double)), 0);
  EXPECT_TRUE(BitwiseEqual(grad_a, grad_b));
}

}  // namespace
}  // namespace m3::ml
