#include "ml/model_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "io/file.h"

namespace m3::ml {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_modelio_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(ModelIoTest, LogisticRegressionRoundTrip) {
  LogisticRegressionModel model;
  model.weights = la::Vector(std::vector<double>{1.5, -2.25, 0.0, 1e-300});
  model.intercept = -0.75;
  const std::string path = Path("lr.m3ml");
  ASSERT_TRUE(SaveModel(path, model).ok());
  auto loaded = LoadLogisticRegressionModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().weights.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(loaded.value().weights[i], model.weights[i]);
  }
  EXPECT_EQ(loaded.value().intercept, model.intercept);
}

TEST_F(ModelIoTest, SoftmaxRoundTrip) {
  SoftmaxRegressionModel model;
  model.weights = la::Matrix(3, 2, std::vector<double>{1, 2, 3, 4, 5, 6});
  model.biases = la::Vector(std::vector<double>{-1, 0, 1});
  const std::string path = Path("softmax.m3ml");
  ASSERT_TRUE(SaveModel(path, model).ok());
  auto loaded = LoadSoftmaxRegressionModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_classes(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(loaded.value().weights(c, d), model.weights(c, d));
    }
    EXPECT_EQ(loaded.value().biases[c], model.biases[c]);
  }
  // Predictions must agree.
  la::Vector x(std::vector<double>{0.3, -0.7});
  EXPECT_EQ(loaded.value().Predict(x), model.Predict(x));
}

TEST_F(ModelIoTest, CentersRoundTrip) {
  la::Matrix centers(2, 3, std::vector<double>{9, 8, 7, 6, 5, 4});
  const std::string path = Path("centers.m3ml");
  ASSERT_TRUE(SaveCenters(path, centers).ok());
  auto loaded = LoadCenters(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(loaded.value()(r, c), centers(r, c));
    }
  }
}

TEST_F(ModelIoTest, KindMismatchRejected) {
  LogisticRegressionModel model;
  model.weights = la::Vector(2);
  const std::string path = Path("kind.m3ml");
  ASSERT_TRUE(SaveModel(path, model).ok());
  auto as_softmax = LoadSoftmaxRegressionModel(path);
  ASSERT_FALSE(as_softmax.ok());
  EXPECT_EQ(as_softmax.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(LoadCenters(path).ok());
}

TEST_F(ModelIoTest, GarbageRejected) {
  const std::string path = Path("garbage.m3ml");
  ASSERT_TRUE(io::WriteStringToFile(path, "not a model at all").ok());
  EXPECT_FALSE(LoadLogisticRegressionModel(path).ok());
}

TEST_F(ModelIoTest, TruncatedPayloadRejected) {
  LogisticRegressionModel model;
  model.weights = la::Vector(16, 1.0);
  const std::string path = Path("trunc.m3ml");
  ASSERT_TRUE(SaveModel(path, model).ok());
  auto contents = io::ReadFileToString(path).ValueOrDie();
  contents.resize(contents.size() - 9);
  ASSERT_TRUE(io::WriteStringToFile(path, contents).ok());
  EXPECT_FALSE(LoadLogisticRegressionModel(path).ok());
}

TEST_F(ModelIoTest, MissingFileRejected) {
  EXPECT_FALSE(LoadLogisticRegressionModel(Path("missing.m3ml")).ok());
}

TEST_F(ModelIoTest, EmptyWeightsRoundTrip) {
  LogisticRegressionModel model;  // zero-dim weights
  const std::string path = Path("empty.m3ml");
  ASSERT_TRUE(SaveModel(path, model).ok());
  auto loaded = LoadLogisticRegressionModel(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().weights.size(), 0u);
}

}  // namespace
}  // namespace m3::ml
