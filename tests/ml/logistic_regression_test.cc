#include "ml/logistic_regression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "la/blas.h"
#include "ml/metrics.h"

namespace m3::ml {
namespace {

std::vector<double> PredictAll(const LogisticRegressionModel& model,
                               la::ConstMatrixView x) {
  std::vector<double> out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    out[i] = model.Predict(x.Row(i));
  }
  return out;
}

TEST(LogisticRegressionObjectiveTest, GradientMatchesFiniteDifferences) {
  data::SeparableResult sep = data::LinearlySeparable(60, 4, 0.1, 3);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 0.01);
  la::Vector w(5);
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.1 * static_cast<double>(i) - 0.2;
  }
  la::Vector grad(5);
  const double f0 = objective.EvaluateWithGradient(w, grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < w.size(); ++i) {
    la::Vector wp = w;
    wp[i] += eps;
    la::Vector scratch(5);
    const double fp = objective.EvaluateWithGradient(wp, scratch);
    const double numeric = (fp - f0) / eps;
    EXPECT_NEAR(grad[i], numeric, 1e-4) << "coordinate " << i;
  }
}

TEST(LogisticRegressionObjectiveTest, ChunkSumEqualsFullEvaluation) {
  data::SeparableResult sep = data::LinearlySeparable(100, 3, 0.0, 9);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  // No regularization so the data term is the whole objective.
  LogisticRegressionObjective objective(sep.data.features, y, 0.0, 17);
  la::Vector w(4);
  w[0] = 0.5;
  w[3] = -0.25;
  la::Vector grad_full(4), grad_chunks(4);
  const double f_full = objective.EvaluateWithGradient(w, grad_full);
  double f_chunks = 0;
  for (size_t begin = 0; begin < 100; begin += 17) {
    const size_t end = std::min<size_t>(100, begin + 17);
    f_chunks += objective.EvaluateChunk(begin, end, w, grad_chunks);
  }
  EXPECT_NEAR(f_full, f_chunks, 1e-12);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(grad_full[i], grad_chunks[i], 1e-12);
  }
}

TEST(LogisticRegressionObjectiveTest, HooksObservePassStructure) {
  data::SeparableResult sep = data::LinearlySeparable(100, 3, 0.0, 5);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  std::vector<std::pair<size_t, size_t>> chunks;
  size_t passes = 0;
  ScanHooks hooks;
  hooks.before_pass = [&passes](size_t) { ++passes; };
  hooks.after_chunk = [&chunks](size_t b, size_t e) {
    chunks.emplace_back(b, e);
  };
  LogisticRegressionObjective objective(sep.data.features, y, 0.0, 30, hooks);
  la::Vector w(4), grad(4);
  objective.EvaluateWithGradient(w, grad);
  EXPECT_EQ(passes, 1u);
  ASSERT_EQ(chunks.size(), 4u);  // ceil(100/30)
  EXPECT_EQ(chunks.front().first, 0u);
  EXPECT_EQ(chunks.back().second, 100u);
  // Chunks tile the row range in order.
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(LogisticRegressionTest, SeparatesCleanData) {
  data::SeparableResult sep = data::LinearlySeparable(2000, 10, 0.0, 42);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegression trainer;
  auto model = trainer.Train(sep.data.features, y);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const double accuracy =
      Accuracy(PredictAll(model.value(), sep.data.features), sep.data.labels);
  EXPECT_GT(accuracy, 0.99);
}

TEST(LogisticRegressionTest, HandlesLabelNoise) {
  data::SeparableResult sep = data::LinearlySeparable(3000, 8, 0.1, 7);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionOptions options;
  options.l2 = 1e-3;
  LogisticRegression trainer(options);
  auto model = trainer.Train(sep.data.features, y);
  ASSERT_TRUE(model.ok());
  const double accuracy =
      Accuracy(PredictAll(model.value(), sep.data.features), sep.data.labels);
  // 10% labels are flipped; Bayes-optimal is ~90%.
  EXPECT_GT(accuracy, 0.85);
}

TEST(LogisticRegressionTest, RecoversWeightDirection) {
  data::SeparableResult sep = data::LinearlySeparable(5000, 5, 0.05, 11);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionOptions options;
  options.l2 = 1e-2;
  LogisticRegression trainer(options);
  auto model = trainer.Train(sep.data.features, y).ValueOrDie();
  // Learned weights should align with the generating direction.
  const double cosine =
      la::Dot(model.weights, sep.true_weights) /
      (la::Nrm2(model.weights) * la::Nrm2(sep.true_weights));
  EXPECT_GT(cosine, 0.95);
}

TEST(LogisticRegressionTest, StatsReportPassesAndConvergence) {
  data::SeparableResult sep = data::LinearlySeparable(500, 4, 0.0, 13);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  OptimizationResult stats;
  LogisticRegression trainer;
  ASSERT_TRUE(trainer.Train(sep.data.features, y, &stats).ok());
  EXPECT_GT(stats.function_evaluations, 0u);
  EXPECT_GT(stats.iterations, 0u);
}

TEST(LogisticRegressionTest, TenIterationBudgetMatchesPaperSetup) {
  // The paper's benchmark: exactly 10 L-BFGS iterations, no early stop.
  data::SeparableResult sep = data::LinearlySeparable(2000, 20, 0.05, 17);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionOptions options;
  options.lbfgs.max_iterations = 10;
  options.lbfgs.gradient_tolerance = 0;
  options.lbfgs.objective_tolerance = 0;
  OptimizationResult stats;
  LogisticRegression trainer(options);
  auto model = trainer.Train(sep.data.features, y, &stats);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(stats.iterations, 10u);
  const double accuracy =
      Accuracy(PredictAll(model.value(), sep.data.features), sep.data.labels);
  EXPECT_GT(accuracy, 0.9);
}

TEST(LogisticRegressionTest, RejectsNonBinaryLabels) {
  la::Matrix x(4, 2);
  std::vector<double> labels{0, 1, 2, 1};
  la::ConstVectorView y(labels.data(), labels.size());
  LogisticRegression trainer;
  EXPECT_FALSE(trainer.Train(x, y).ok());
}

TEST(LogisticRegressionTest, RejectsEmptyAndMismatched) {
  LogisticRegression trainer;
  la::Matrix empty;
  la::Vector no_labels;
  EXPECT_FALSE(trainer.Train(empty, no_labels).ok());
  la::Matrix x(3, 2);
  la::Vector two(2);
  EXPECT_FALSE(trainer.Train(x, two).ok());
}

TEST(AutoChunkRowsTest, TargetsEightMiB) {
  EXPECT_EQ(AutoChunkRows(784, 0), (8ull << 20) / (784 * 8));
  EXPECT_EQ(AutoChunkRows(784, 1000), 1000u);   // explicit wins
  EXPECT_EQ(AutoChunkRows(1 << 24, 0), 256u);   // floor for huge rows
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

TEST(SoftmaxRegressionObjectiveTest, GradientMatchesFiniteDifferences) {
  data::BlobsResult blobs = data::GaussianBlobs(60, 3, 3, 1.0, 21);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  SoftmaxRegressionObjective objective(blobs.data.features, y, 3, 0.01);
  la::Vector w(objective.Dimension());
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.05 * std::sin(static_cast<double>(i));
  }
  la::Vector grad(w.size());
  const double f0 = objective.EvaluateWithGradient(w, grad);
  const double eps = 1e-6;
  for (size_t i = 0; i < w.size(); i += 3) {  // spot-check every 3rd coord
    la::Vector wp = w;
    wp[i] += eps;
    la::Vector scratch(w.size());
    const double fp = objective.EvaluateWithGradient(wp, scratch);
    EXPECT_NEAR(grad[i], (fp - f0) / eps, 1e-4) << "coordinate " << i;
  }
}

TEST(SoftmaxRegressionTest, ClassifiesGaussianBlobs) {
  data::BlobsResult blobs = data::GaussianBlobs(1500, 6, 4, 1.0, 33);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  SoftmaxRegression trainer;
  auto model = trainer.Train(blobs.data.features, y, 4);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::vector<double> predictions(blobs.data.labels.size());
  for (size_t i = 0; i < predictions.size(); ++i) {
    predictions[i] = static_cast<double>(
        model.value().Predict(blobs.data.features.Row(i)));
  }
  EXPECT_GT(Accuracy(predictions, blobs.data.labels), 0.97);
}

TEST(SoftmaxRegressionTest, RejectsBadLabels) {
  la::Matrix x(4, 2);
  std::vector<double> labels{0, 1, 5, 1};  // 5 out of range for k=3
  la::ConstVectorView y(labels.data(), labels.size());
  SoftmaxRegression trainer;
  EXPECT_FALSE(trainer.Train(x, y, 3).ok());
  std::vector<double> fractional{0, 1, 0.5, 1};
  la::ConstVectorView yf(fractional.data(), fractional.size());
  EXPECT_FALSE(trainer.Train(x, yf, 3).ok());
}

TEST(SoftmaxRegressionTest, TwoClassAgreesWithBinaryLr) {
  data::SeparableResult sep = data::LinearlySeparable(1000, 5, 0.0, 29);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  auto softmax =
      SoftmaxRegression().Train(sep.data.features, y, 2).ValueOrDie();
  auto binary = LogisticRegression().Train(sep.data.features, y).ValueOrDie();
  size_t agreements = 0;
  for (size_t i = 0; i < 1000; ++i) {
    const double b = binary.Predict(sep.data.features.Row(i));
    const double s =
        static_cast<double>(softmax.Predict(sep.data.features.Row(i)));
    if (b == s) {
      ++agreements;
    }
  }
  EXPECT_GT(agreements, 990u);
}

}  // namespace
}  // namespace m3::ml
