#include "ml/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic.h"
#include "ml/metrics.h"

namespace m3::ml {
namespace {

TEST(NaiveBayesTest, ClassifiesWellSeparatedBlobs) {
  data::BlobsResult blobs = data::GaussianBlobs(2000, 5, 3, 0.8, 42);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  NaiveBayes trainer;
  auto model = trainer.Train(blobs.data.features, y, 3);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  std::vector<double> predictions(2000);
  for (size_t i = 0; i < 2000; ++i) {
    predictions[i] = static_cast<double>(
        model.value().Predict(blobs.data.features.Row(i)));
  }
  EXPECT_GT(Accuracy(predictions, blobs.data.labels), 0.97);
}

TEST(NaiveBayesTest, LearnsClassMeans) {
  data::BlobsResult blobs = data::GaussianBlobs(5000, 3, 2, 0.5, 11);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  auto model = NaiveBayes().Train(blobs.data.features, y, 2).ValueOrDie();
  // Model means should approximate the generating centers (order matches
  // labels by construction).
  for (size_t c = 0; c < 2; ++c) {
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_NEAR(model.means(c, d), blobs.centers(c, d), 0.1)
          << "class " << c << " dim " << d;
    }
  }
}

TEST(NaiveBayesTest, LearnsVariances) {
  data::BlobsResult blobs = data::GaussianBlobs(20000, 2, 2, 1.5, 13);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  auto model = NaiveBayes().Train(blobs.data.features, y, 2).ValueOrDie();
  for (size_t c = 0; c < 2; ++c) {
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_NEAR(model.variances(c, d), 1.5 * 1.5, 0.2);
    }
  }
}

TEST(NaiveBayesTest, PriorsReflectClassBalance) {
  data::BlobsResult blobs = data::GaussianBlobs(4000, 3, 4, 1.0, 29);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  auto model = NaiveBayes().Train(blobs.data.features, y, 4).ValueOrDie();
  // Uniform cluster assignment -> priors near log(1/4).
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(model.log_priors[c], std::log(0.25), 0.15);
  }
}

TEST(NaiveBayesTest, ChunkingDoesNotChangeModel) {
  data::BlobsResult blobs = data::GaussianBlobs(1000, 4, 3, 1.0, 5);
  la::ConstVectorView y(blobs.data.labels.data(), blobs.data.labels.size());
  NaiveBayesOptions small_chunks;
  small_chunks.chunk_rows = 37;
  auto a = NaiveBayes(small_chunks).Train(blobs.data.features, y, 3)
               .ValueOrDie();
  NaiveBayesOptions one_chunk;
  one_chunk.chunk_rows = 1000;
  auto b = NaiveBayes(one_chunk).Train(blobs.data.features, y, 3)
               .ValueOrDie();
  for (size_t c = 0; c < 3; ++c) {
    for (size_t d = 0; d < 4; ++d) {
      ASSERT_NEAR(a.means(c, d), b.means(c, d), 1e-9);
      ASSERT_NEAR(a.variances(c, d), b.variances(c, d), 1e-9);
    }
  }
}

TEST(NaiveBayesTest, BadLabelsRejected) {
  la::Matrix x(4, 2);
  std::vector<double> labels{0, 1, 7, 0};
  la::ConstVectorView y(labels.data(), labels.size());
  EXPECT_FALSE(NaiveBayes().Train(x, y, 2).ok());
}

TEST(NaiveBayesTest, EmptyAndMismatchedRejected) {
  la::Matrix empty;
  la::Vector none;
  EXPECT_FALSE(NaiveBayes().Train(empty, none, 2).ok());
  la::Matrix x(3, 2);
  la::Vector two(2);
  EXPECT_FALSE(NaiveBayes().Train(x, two, 2).ok());
  la::Vector three(3);
  EXPECT_FALSE(NaiveBayes().Train(x, three, 1).ok());
}

}  // namespace
}  // namespace m3::ml
