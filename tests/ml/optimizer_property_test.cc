// Parameterized property sweeps for the optimizers: convergence must hold
// across conditioning, dimension, and starting distance — not just on the
// hand-picked cases of lbfgs_test.cc.

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.h"
#include "ml/gradient_descent.h"
#include "ml/lbfgs.h"
#include "util/random.h"

namespace m3::ml {
namespace {

/// f(w) = 0.5 (w - t)^T D (w - t) with log-spaced diagonal D.
class DiagonalQuadratic final : public DifferentiableFunction {
 public:
  DiagonalQuadratic(size_t dim, double condition, uint64_t seed)
      : curvature_(dim), target_(dim) {
    util::Rng rng(seed);
    for (size_t i = 0; i < dim; ++i) {
      // Eigenvalues log-spaced in [1, condition].
      const double t =
          dim == 1 ? 0.0 : static_cast<double>(i) / (dim - 1);
      curvature_[i] = std::pow(condition, t);
      target_[i] = rng.Uniform(-5.0, 5.0);
    }
  }

  size_t Dimension() const override { return curvature_.size(); }

  double EvaluateWithGradient(la::ConstVectorView w,
                              la::VectorView grad) override {
    double f = 0;
    for (size_t i = 0; i < curvature_.size(); ++i) {
      const double diff = w[i] - target_[i];
      f += 0.5 * curvature_[i] * diff * diff;
      grad[i] = curvature_[i] * diff;
    }
    return f;
  }

  double DistanceToOptimum(la::ConstVectorView w) const {
    double acc = 0;
    for (size_t i = 0; i < target_.size(); ++i) {
      const double diff = w[i] - target_[i];
      acc += diff * diff;
    }
    return std::sqrt(acc);
  }

 private:
  std::vector<double> curvature_;
  std::vector<double> target_;
};

struct SweepParam {
  size_t dim;
  double condition;
};

class LbfgsPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(LbfgsPropertyTest, ConvergesToOptimum) {
  const SweepParam p = GetParam();
  DiagonalQuadratic f(p.dim, p.condition, 7);
  la::Vector w(p.dim);  // start at origin
  LbfgsOptions options;
  options.max_iterations = 500;
  options.gradient_tolerance = 1e-8;
  auto result = Lbfgs(options).Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(f.DistanceToOptimum(w), 1e-3)
      << "dim=" << p.dim << " cond=" << p.condition;
}

TEST_P(LbfgsPropertyTest, NeverIncreasesObjective) {
  const SweepParam p = GetParam();
  DiagonalQuadratic f(p.dim, p.condition, 11);
  la::Vector w(p.dim);
  auto result = Lbfgs().Minimize(&f, w).ValueOrDie();
  for (size_t i = 1; i < result.objective_history.size(); ++i) {
    ASSERT_LE(result.objective_history[i],
              result.objective_history[i - 1] * (1 + 1e-12));
  }
}

TEST_P(LbfgsPropertyTest, SolutionIsFixedPoint) {
  // Re-running the optimizer from the solution must not move it (much).
  const SweepParam p = GetParam();
  DiagonalQuadratic f(p.dim, p.condition, 13);
  la::Vector w(p.dim);
  LbfgsOptions options;
  options.max_iterations = 500;
  options.gradient_tolerance = 1e-10;
  ASSERT_TRUE(Lbfgs(options).Minimize(&f, w).ok());
  la::Vector w2 = w;
  auto second = Lbfgs(options).Minimize(&f, w2).ValueOrDie();
  EXPECT_LE(second.iterations, 1u);
  for (size_t i = 0; i < p.dim; ++i) {
    ASSERT_NEAR(w[i], w2[i], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditioning, LbfgsPropertyTest,
    ::testing::Values(SweepParam{1, 1.0}, SweepParam{2, 1e2},
                      SweepParam{5, 1e4}, SweepParam{20, 1e3},
                      SweepParam{50, 1e2}, SweepParam{100, 10.0}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "dim" + std::to_string(info.param.dim) + "_cond" +
             std::to_string(static_cast<int>(info.param.condition));
    });

class GdPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GdPropertyTest, ConvergesOnModerateConditioning) {
  const SweepParam p = GetParam();
  DiagonalQuadratic f(p.dim, p.condition, 3);
  la::Vector w(p.dim);
  GradientDescentOptions options;
  options.max_iterations = 50000;
  options.gradient_tolerance = 1e-6;
  auto result = GradientDescent(options).Minimize(&f, w);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(f.DistanceToOptimum(w), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Conditioning, GdPropertyTest,
    ::testing::Values(SweepParam{2, 1.0}, SweepParam{5, 50.0},
                      SweepParam{10, 100.0}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "dim" + std::to_string(info.param.dim) + "_cond" +
             std::to_string(static_cast<int>(info.param.condition));
    });

}  // namespace
}  // namespace m3::ml
