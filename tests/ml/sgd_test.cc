#include "ml/sgd.h"

#include <gtest/gtest.h>

#include <cstring>

#include "data/synthetic.h"
#include "exec/chunk_pipeline.h"
#include "la/blas.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"

namespace m3::ml {
namespace {

TEST(SgdTest, TrainsLogisticRegressionToHighAccuracy) {
  data::SeparableResult sep = data::LinearlySeparable(4000, 8, 0.0, 42);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 1e-4);
  la::Vector w(objective.Dimension());
  SgdOptions options;
  options.epochs = 10;
  options.batch_rows = 128;
  options.learning_rate = 0.5;
  Sgd sgd(options);
  auto result = sgd.Minimize(&objective, w);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  LogisticRegressionModel model;
  model.weights = la::Vector(8);
  la::Copy(w.View().Slice(0, 8), model.weights);
  model.intercept = w[8];
  std::vector<double> predictions(4000);
  for (size_t i = 0; i < 4000; ++i) {
    predictions[i] = model.Predict(sep.data.features.Row(i));
  }
  EXPECT_GT(Accuracy(predictions, sep.data.labels), 0.97);
}

TEST(SgdTest, EpochLossDecreasesOverall) {
  data::SeparableResult sep = data::LinearlySeparable(2000, 6, 0.05, 7);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 1e-4);
  la::Vector w(objective.Dimension());
  SgdOptions options;
  options.epochs = 8;
  options.learning_rate = 0.3;
  auto result = Sgd(options).Minimize(&objective, w).ValueOrDie();
  ASSERT_EQ(result.objective_history.size(), 8u);
  // First epoch loss (near ln 2 at w=0) should clearly exceed the last.
  EXPECT_LT(result.objective_history.back(),
            result.objective_history.front() * 0.8);
}

TEST(SgdTest, DeterministicForFixedSeed) {
  data::SeparableResult sep = data::LinearlySeparable(500, 4, 0.0, 3);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  la::Vector w1(5), w2(5);
  SgdOptions options;
  options.epochs = 3;
  options.seed = 99;
  {
    LogisticRegressionObjective objective(sep.data.features, y, 0.0);
    ASSERT_TRUE(Sgd(options).Minimize(&objective, w1).ok());
  }
  {
    LogisticRegressionObjective objective(sep.data.features, y, 0.0);
    ASSERT_TRUE(Sgd(options).Minimize(&objective, w2).ok());
  }
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_DOUBLE_EQ(w1[i], w2[i]);
  }
}

TEST(SgdTest, BitIdenticalAcrossEngineWorkerCounts) {
  // The engine port's acceptance criterion: for a fixed seed the trained
  // weights are a pure function of the data — bitwise identical with no
  // engine and at any pipeline worker count, because the weight updates
  // run in the in-order retire stage along the same shuffled schedule.
  data::SeparableResult sep = data::LinearlySeparable(800, 6, 0.02, 21);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  SgdOptions options;
  options.epochs = 4;
  options.batch_rows = 64;
  options.seed = 1234;

  auto run = [&](exec::ChunkPipeline* pipeline) {
    LogisticRegressionObjective objective(sep.data.features, y, 1e-4);
    objective.set_pipeline(pipeline);
    la::Vector w(objective.Dimension());
    EXPECT_TRUE(Sgd(options).Minimize(&objective, w).ok());
    return w;
  };

  const la::Vector reference = run(nullptr);
  for (size_t workers : {0u, 2u, 4u}) {
    exec::PipelineOptions pipeline_options;
    pipeline_options.num_workers = workers;
    exec::ChunkPipeline pipeline(pipeline_options);
    const la::Vector w = run(&pipeline);
    ASSERT_EQ(w.size(), reference.size());
    EXPECT_EQ(std::memcmp(w.data(), reference.data(),
                          reference.size() * sizeof(double)),
              0)
        << "workers=" << workers;
  }
}

TEST(SgdTest, ObjectiveReportsFullDataLossNotEpochAverage) {
  // `objective` must be the final full-data evaluation, while
  // objective_history keeps the per-epoch mean batch losses: the mean over
  // a moving-weights epoch is almost surely different from the loss at the
  // final weights.
  data::SeparableResult sep = data::LinearlySeparable(1000, 5, 0.1, 9);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 1e-4);
  la::Vector w(objective.Dimension());
  SgdOptions options;
  options.epochs = 3;
  options.learning_rate = 0.3;
  auto result = Sgd(options).Minimize(&objective, w).ValueOrDie();

  // Recompute the full-data loss at the returned weights independently.
  la::Vector grad(w.size());
  LogisticRegressionObjective check(sep.data.features, y, 1e-4);
  const double full_loss = check.EvaluateWithGradient(w.View(), grad);
  EXPECT_DOUBLE_EQ(result.objective, full_loss);
  EXPECT_NE(result.objective, result.objective_history.back());
}

TEST(SgdTest, EpochCallbackFires) {
  data::SeparableResult sep = data::LinearlySeparable(300, 3, 0.0, 1);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 0.0);
  la::Vector w(4);
  size_t calls = 0;
  SgdOptions options;
  options.epochs = 4;
  options.epoch_callback = [&calls](size_t, double) { ++calls; };
  ASSERT_TRUE(Sgd(options).Minimize(&objective, w).ok());
  EXPECT_EQ(calls, 4u);
}

TEST(SgdTest, BatchCountIndependentOfBatchSizeCorrectness) {
  // Tiny batches and huge batches should both learn the same separator
  // direction (possibly at different rates).
  data::SeparableResult sep = data::LinearlySeparable(1000, 4, 0.0, 17);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  for (size_t batch : {16ul, 1000ul}) {
    LogisticRegressionObjective objective(sep.data.features, y, 1e-4);
    la::Vector w(5);
    SgdOptions options;
    options.epochs = 20;
    options.batch_rows = batch;
    options.learning_rate = 0.2;
    ASSERT_TRUE(Sgd(options).Minimize(&objective, w).ok());
    la::Vector weights(4);
    la::Copy(w.View().Slice(0, 4), weights);
    const double cosine = la::Dot(weights, sep.true_weights) /
                          (la::Nrm2(weights) * la::Nrm2(sep.true_weights));
    EXPECT_GT(cosine, 0.9) << "batch_rows=" << batch;
  }
}

TEST(SgdTest, InvalidOptionsRejected) {
  data::SeparableResult sep = data::LinearlySeparable(100, 3, 0.0, 2);
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  LogisticRegressionObjective objective(sep.data.features, y, 0.0);
  la::Vector w(4);
  SgdOptions zero_epochs;
  zero_epochs.epochs = 0;
  EXPECT_FALSE(Sgd(zero_epochs).Minimize(&objective, w).ok());
  SgdOptions zero_batch;
  zero_batch.batch_rows = 0;
  EXPECT_FALSE(Sgd(zero_batch).Minimize(&objective, w).ok());
  EXPECT_FALSE(Sgd().Minimize(nullptr, w).ok());
  la::Vector wrong(2);
  EXPECT_FALSE(Sgd().Minimize(&objective, wrong).ok());
}

}  // namespace
}  // namespace m3::ml
