// The calibration loop: measured PipelineStats -> FitFromStats ->
// calibrated PerfModelParams -> prediction -> residual.
//
// The round-trip tests feed synthetic stats generated from known
// parameters and expect the fit to recover them exactly; the end-to-end
// test calibrates from real measured engine passes over a generated
// dataset and expects the calibrated model to predict a second measured
// run within a (generous — CI timers are noisy) tolerance.

#include "core/model_fit.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include <unistd.h>

#include "exec/chunk_pipeline.h"
#include "exec/chunk_schedule.h"
#include "io/file.h"
#include "io/mmap_file.h"
#include "la/chunker.h"

namespace m3 {
namespace {

// Synthetic stats internally consistent with (cpu_spb, disk_bw, eff):
// one logical dataset of `bytes`, scanned once, with io-dominated timing.
exec::PipelineStats SyntheticStats(uint64_t bytes, double cpu_spb,
                                   double disk_bw, double efficiency) {
  exec::PipelineStats stats;
  stats.passes = 1;
  stats.chunks = 64;
  stats.prefetches = 64;
  stats.prefetch_bytes = bytes;
  stats.prefetch_hits = 40;
  stats.stalls = 20;
  stats.stall_bytes = bytes / 4;
  stats.prefetch_unclassified = 4;
  stats.compute_seconds = cpu_spb * static_cast<double>(bytes) * 0.7;
  stats.retire_seconds = cpu_spb * static_cast<double>(bytes) * 0.3;
  stats.prefetch_seconds = static_cast<double>(bytes) / disk_bw;
  const double cpu = cpu_spb * static_cast<double>(bytes);
  const double io = stats.prefetch_seconds;
  stats.drive_seconds = CombineOverlap(cpu, io, efficiency);
  return stats;
}

TEST(FitFromStatsTest, RoundTripRecoversKnownParameters) {
  const uint64_t bytes = 1ull << 30;
  const double cpu_spb = 2e-9;   // cpu ~ 2.15 s
  const double disk_bw = 200e6;  // io ~ 5.4 s (io-bound)
  const double efficiency = 0.75;
  const exec::PipelineStats stats =
      SyntheticStats(bytes, cpu_spb, disk_bw, efficiency);

  FitOptions options;
  options.ram_bytes = 4ull << 30;
  auto fit = FitFromStats(stats, bytes, options);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const ModelFitResult& result = fit.value();

  EXPECT_NEAR(result.params.cpu_seconds_per_byte, cpu_spb, cpu_spb * 1e-9);
  EXPECT_NEAR(result.params.disk_read_bytes_per_sec, disk_bw,
              disk_bw * 1e-9);
  EXPECT_FALSE(result.disk_bandwidth_from_fallback);
  EXPECT_NEAR(result.params.overlap_efficiency, efficiency, 1e-9);
  EXPECT_EQ(result.params.ram_bytes, options.ram_bytes);
  EXPECT_DOUBLE_EQ(result.params.pass_overhead_seconds, 0.0);
  // Internally consistent input => zero self-residual.
  EXPECT_NEAR(result.residual_seconds, 0.0, 1e-9);
  EXPECT_NEAR(result.relative_residual, 0.0, 1e-9);
  EXPECT_NEAR(result.stall_byte_fraction, 0.25, 1e-12);
}

TEST(FitFromStatsTest, CpuBoundRunRecoversOverlapToo) {
  const uint64_t bytes = 1ull << 28;
  const exec::PipelineStats stats =
      SyntheticStats(bytes, /*cpu_spb=*/4e-8, /*disk_bw=*/400e6,
                     /*efficiency=*/0.5);
  auto fit = FitFromStats(stats, bytes, FitOptions());
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit.value().params.overlap_efficiency, 0.5, 1e-9);
  EXPECT_NEAR(fit.value().params.cpu_seconds_per_byte, 4e-8, 1e-15);
}

TEST(FitFromStatsTest, NoStallsKeepsFallbackBandwidth) {
  exec::PipelineStats stats =
      SyntheticStats(1ull << 20, 1e-8, 100e6, 1.0);
  stats.stalls = 0;  // the disk always won: bandwidth only bounded below
  stats.stall_bytes = 0;
  FitOptions options;
  options.fallback_disk_bytes_per_sec = 123e6;
  auto fit = FitFromStats(stats, 1ull << 20, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_TRUE(fit.value().disk_bandwidth_from_fallback);
  EXPECT_DOUBLE_EQ(fit.value().params.disk_read_bytes_per_sec, 123e6);
}

TEST(FitFromStatsTest, OverheadAttributionIsOptIn) {
  // drive = cpu + io + passes * overhead: outside the overlap family.
  exec::PipelineStats stats;
  stats.passes = 2;
  stats.chunks = 8;
  stats.compute_seconds = 1.0;
  stats.prefetch_seconds = 0.5;
  stats.drive_seconds = 2.0;  // 1.0 + 0.5 + 2 * 0.25
  const uint64_t bytes = 1ull << 20;

  auto plain = FitFromStats(stats, bytes, FitOptions());
  ASSERT_TRUE(plain.ok());
  EXPECT_DOUBLE_EQ(plain.value().params.overlap_efficiency, 0.0);
  EXPECT_LT(plain.value().overlap_raw, 0.0);
  EXPECT_DOUBLE_EQ(plain.value().params.pass_overhead_seconds, 0.0);
  // Without overhead fitting the residual reports the unmodeled 0.5 s.
  EXPECT_NEAR(plain.value().residual_seconds, -0.5, 1e-9);
  EXPECT_NEAR(plain.value().relative_residual, 0.25, 1e-9);

  FitOptions with_overhead;
  with_overhead.fit_pass_overhead = true;
  auto fitted = FitFromStats(stats, bytes, with_overhead);
  ASSERT_TRUE(fitted.ok());
  EXPECT_NEAR(fitted.value().params.pass_overhead_seconds, 0.25, 1e-9);
  EXPECT_NEAR(fitted.value().residual_seconds, 0.0, 1e-9);
}

TEST(FitFromStatsTest, RejectsEmptyOrTimerlessStats) {
  exec::PipelineStats stats;
  EXPECT_FALSE(FitFromStats(stats, 1 << 20).ok());  // no passes
  stats.passes = 1;
  EXPECT_FALSE(FitFromStats(stats, 0).ok());  // no bytes
  EXPECT_FALSE(FitFromStats(stats, 1 << 20).ok());  // no drive time
  stats.drive_seconds = 1.0;
  EXPECT_FALSE(FitFromStats(stats, 1 << 20).ok());  // no compute time
  stats.compute_seconds = 0.5;
  EXPECT_TRUE(FitFromStats(stats, 1 << 20).ok());
}

TEST(MeasuredReadBandwidthTest, PrefersPrefetchTimingThenDriveLeftover) {
  exec::PipelineStats stats;
  stats.stalls = 4;
  stats.prefetch_bytes = 100 << 20;
  stats.prefetch_seconds = 1.0;  // pread-style: real read time
  stats.compute_seconds = 0.2;
  stats.drive_seconds = 1.1;
  EXPECT_NEAR(MeasuredReadBandwidth(stats, 1e9),
              static_cast<double>(100 << 20), 1.0);

  // madvise-style: WILLNEED returns before the I/O, so the read time
  // shows up as drive time not covered by compute.
  stats.prefetch_seconds = 0.001;
  stats.drive_seconds = 2.2;  // 2.0 s of waiting beyond compute
  EXPECT_NEAR(MeasuredReadBandwidth(stats, 1e9),
              static_cast<double>(100 << 20) / 2.0, 1.0);
}

TEST(MeasuredReadBandwidthTest, NoStallEvidenceReturnsFallback) {
  exec::PipelineStats stats;
  stats.prefetch_bytes = 1 << 20;
  stats.prefetch_seconds = 1.0;
  EXPECT_DOUBLE_EQ(MeasuredReadBandwidth(stats, 42.0), 42.0);  // stalls=0
  stats.stalls = 3;
  stats.prefetch_bytes = 0;
  EXPECT_DOUBLE_EQ(MeasuredReadBandwidth(stats, 42.0), 42.0);  // no bytes
}

// ---------------------------------------------------------------------------
// End to end: calibrate on measured engine passes, predict a second
// measured run.
// ---------------------------------------------------------------------------

class ModelFitE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_model_fit_" +
           std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(ModelFitE2ETest, CalibratedModelPredictsMeasuredRun) {
  // A tier-1-sized dataset: 8 MiB of doubles, scanned warm so the
  // measurement is CPU-bound and reproducible (the cold regime depends
  // on the CI host's filesystem and is exercised by the slow suite).
  const size_t kRows = 16384, kCols = 64;
  const uint64_t kBytes = kRows * kCols * sizeof(double);
  const std::string path = dir_ + "/data.bin";
  {
    std::vector<double> values(kRows * kCols);
    std::iota(values.begin(), values.end(), 0.0);
    std::string blob(reinterpret_cast<const char*>(values.data()),
                     values.size() * sizeof(double));
    ASSERT_TRUE(io::WriteStringToFile(path, blob).ok());
  }
  io::MemoryMappedFile mapped = io::MemoryMappedFile::Map(path).ValueOrDie();
  mapped.TouchAllPages();

  exec::PipelineOptions options;
  options.readahead_chunks = 2;
  exec::ChunkPipeline pipeline({&mapped, 0, kCols * sizeof(double)},
                               options);
  const la::RowChunker chunker(kRows, 1024);
  const double* data = mapped.As<const double>();
  volatile double sink = 0;
  auto scan = [&](size_t passes) {
    for (size_t pass = 0; pass < passes; ++pass) {
      pipeline.Run(chunker, [&](size_t, size_t begin, size_t end) {
        double sum = 0;
        for (size_t r = begin; r < end; ++r) {
          for (size_t c = 0; c < kCols; ++c) {
            const double v = data[r * kCols + c];
            sum += v * v;
          }
        }
        sink = sink + sum;
      });
    }
  };

  scan(1);  // settle page tables / branch predictors before calibrating
  pipeline.ConsumeStats();

  const size_t kPasses = 3;
  scan(kPasses);
  const exec::PipelineStats calibration = pipeline.ConsumeStats();
  ASSERT_EQ(calibration.passes, kPasses);

  auto fit = FitFromStats(calibration, kPasses * kBytes, FitOptions());
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  EXPECT_GT(fit.value().params.cpu_seconds_per_byte, 0.0);

  // Predict a second, identically-shaped measured run. The dataset is in
  // RAM, so the prediction is the CPU term (+ fitted overlap of the
  // near-zero prefetch stage); tolerate generous CI timer noise — the
  // point is that the calibrated model lands in the right ballpark, not
  // nanosecond agreement.
  scan(kPasses);
  const exec::PipelineStats measured = pipeline.ConsumeStats();
  const PerfModel model(fit.value().params);
  const double predicted =
      model.PredictPass(kBytes).seconds * static_cast<double>(kPasses);
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  // Sanitizer instrumentation is nonuniform across scans (allocator
  // pauses, shadow-memory faults), so calibration and measurement can
  // legitimately diverge far beyond timer noise. Keep the e2e path
  // running for the memory/race checks, but only sanity-bound the ratio.
  constexpr double kTolerance = 25.0;
#else
  constexpr double kTolerance = 3.0;
#endif
  EXPECT_GT(predicted, measured.drive_seconds / kTolerance)
      << "calibrated prediction " << predicted << "s vs measured "
      << measured.drive_seconds << "s";
  EXPECT_LT(predicted, measured.drive_seconds * kTolerance)
      << "calibrated prediction " << predicted << "s vs measured "
      << measured.drive_seconds << "s";
}

}  // namespace
}  // namespace m3
