// End-to-end pipeline tests over generated digit data: the complete
// journey a downstream user takes — generate, map, (scale), train, persist,
// reload, predict — with every stage running against the memory-mapped
// file.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/m3.h"
#include "data/dataset.h"
#include "data/infimnist.h"
#include "ml/metrics.h"
#include "ml/model_io.h"
#include "ml/naive_bayes.h"
#include "ml/scaler.h"

namespace m3 {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_e2e_test_" + std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(EndToEndTest, BinaryDigitsPipelineWithPersistence) {
  // Generate -> map -> train -> save -> reload -> identical predictions.
  const std::string data_path = dir_ + "/digits.m3";
  ASSERT_TRUE(data::GenerateInfimnistDataset(data_path, 1200, 5, true).ok());
  auto dataset = MappedDataset::Open(data_path).ValueOrDie();

  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  auto model = TrainLogisticRegression(dataset, options).ValueOrDie();

  const std::string model_path = dir_ + "/model.m3ml";
  ASSERT_TRUE(ml::SaveModel(model_path, model).ok());
  auto reloaded = ml::LoadLogisticRegressionModel(model_path).ValueOrDie();

  auto features = dataset.features();
  size_t correct = 0;
  for (size_t i = 0; i < dataset.rows(); ++i) {
    const double original = model.Predict(features.Row(i));
    const double restored = reloaded.Predict(features.Row(i));
    ASSERT_EQ(original, restored) << "row " << i;
    if (original == dataset.labels()[i]) {
      ++correct;
    }
  }
  // Raw pixels, 10 L-BFGS iterations: clearly above chance.
  EXPECT_GT(static_cast<double>(correct) / dataset.rows(), 0.75);
}

TEST_F(EndToEndTest, TenClassSoftmaxOnMappedDigits) {
  const std::string train_path = dir_ + "/train.m3";
  const std::string test_path = dir_ + "/test.m3";
  ASSERT_TRUE(data::GenerateInfimnistDataset(train_path, 1500, 1, false).ok());
  ASSERT_TRUE(data::GenerateInfimnistDataset(test_path, 500, 2, false).ok());
  auto train = MappedDataset::Open(train_path).ValueOrDie();
  auto test = MappedDataset::Open(test_path).ValueOrDie();

  ml::SoftmaxRegressionOptions options;
  options.l2 = 1e-5;
  options.lbfgs.max_iterations = 25;
  auto model = ml::SoftmaxRegression(options)
                   .Train(train.features(), train.labels(), 10)
                   .ValueOrDie();

  std::vector<double> predictions(test.rows());
  for (size_t i = 0; i < test.rows(); ++i) {
    predictions[i] =
        static_cast<double>(model.Predict(test.features().Row(i)));
  }
  const double accuracy = ml::Accuracy(predictions, test.CopyLabels());
  // Held-out digits from an independent stream: well above the 10% chance
  // floor even with few iterations.
  EXPECT_GT(accuracy, 0.6) << "held-out accuracy " << accuracy;

  // Persistence round-trip preserves predictions.
  const std::string model_path = dir_ + "/softmax.m3ml";
  ASSERT_TRUE(ml::SaveModel(model_path, model).ok());
  auto reloaded = ml::LoadSoftmaxRegressionModel(model_path).ValueOrDie();
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_EQ(model.Predict(test.features().Row(i)),
              reloaded.Predict(test.features().Row(i)));
  }
}

TEST_F(EndToEndTest, ScaledTrainingImprovesConditioning) {
  // StandardScaler fit on the mapped file in one pass; training on scaled
  // copies must reach the same accuracy with a less extreme weight scale.
  const std::string path = dir_ + "/scale.m3";
  ASSERT_TRUE(data::GenerateInfimnistDataset(path, 800, 9, true).ok());
  auto dataset = MappedDataset::Open(path).ValueOrDie();

  auto params = ml::StandardScaler::Fit(dataset.features()).ValueOrDie();
  // Transform into an owning matrix (the mapped file is read-only).
  la::Matrix scaled(dataset.rows(), dataset.cols());
  for (size_t r = 0; r < dataset.rows(); ++r) {
    ml::StandardScaler::TransformRow(params, dataset.features().Row(r),
                                     scaled.Row(r));
  }
  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  auto model = ml::LogisticRegression(options)
                   .Train(scaled, dataset.labels())
                   .ValueOrDie();
  std::vector<double> predictions(dataset.rows());
  for (size_t i = 0; i < dataset.rows(); ++i) {
    predictions[i] = model.Predict(scaled.Row(i));
  }
  EXPECT_GT(ml::Accuracy(predictions, dataset.CopyLabels()), 0.8);
}

TEST_F(EndToEndTest, KMeansCentersPersistAndReassignIdentically) {
  const std::string path = dir_ + "/km.m3";
  ASSERT_TRUE(data::GenerateInfimnistDataset(path, 600, 3, false).ok());
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  ml::KMeansOptions options = PaperKMeansOptions();
  options.max_iterations = 5;
  auto result = TrainKMeans(dataset, options).ValueOrDie();

  const std::string centers_path = dir_ + "/centers.m3ml";
  ASSERT_TRUE(ml::SaveCenters(centers_path, result.centers).ok());
  auto centers = ml::LoadCenters(centers_path).ValueOrDie();
  auto before = ml::KMeans::Assign(dataset.features(), result.centers);
  auto after = ml::KMeans::Assign(dataset.features(), centers);
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace m3
