#include "core/resource_monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace m3 {
namespace {

TEST(ResourceMonitorTest, CollectsSamplesWhileRunning) {
  ResourceMonitor monitor(0.02);
  monitor.Start();
  EXPECT_TRUE(monitor.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  MonitorReport report = monitor.Stop();
  EXPECT_FALSE(monitor.running());
  EXPECT_GT(report.num_samples, 2u);
  EXPECT_GT(report.wall_seconds, 0.1);
}

TEST(ResourceMonitorTest, BusyLoopShowsCpuUtilization) {
  ResourceMonitor monitor(0.02);
  monitor.Start();
  volatile double sink = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
  while (std::chrono::steady_clock::now() < deadline) {
    sink = sink + 1.0;
  }
  MonitorReport report = monitor.Stop();
  // One busy thread out of NumCpus: utilization must be clearly nonzero.
  EXPECT_GT(report.mean_cpu_utilization, 0.1);
  EXPECT_GE(report.peak_cpu_utilization, report.mean_cpu_utilization * 0.5);
}

TEST(ResourceMonitorTest, IdleSleepShowsLowCpu) {
  ResourceMonitor monitor(0.02);
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  MonitorReport report = monitor.Stop();
  EXPECT_LT(report.mean_cpu_utilization, 0.5);
}

TEST(ResourceMonitorTest, RestartableAfterStop) {
  ResourceMonitor monitor(0.02);
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  monitor.Stop();
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  MonitorReport report = monitor.Stop();
  EXPECT_GT(report.num_samples, 0u);
}

TEST(ResourceMonitorTest, ReportToStringMentionsCpu) {
  ResourceMonitor monitor(0.02);
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  MonitorReport report = monitor.Stop();
  EXPECT_NE(report.ToString().find("cpu(mean/peak)"), std::string::npos);
}

TEST(ResourceMonitorTest, SamplesAccessorIsThreadSafeCopy) {
  ResourceMonitor monitor(0.01);
  monitor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto snapshot = monitor.samples();  // while running
  monitor.Stop();
  EXPECT_LE(snapshot.size(), monitor.samples().size());
}

}  // namespace
}  // namespace m3
