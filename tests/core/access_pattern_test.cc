#include "core/access_pattern.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace m3 {
namespace {

TEST(AccessPatternTest, PureSequentialScan) {
  AccessPatternTracer tracer(/*row_bytes=*/8);
  tracer.RecordRange(0, 1000);
  AccessPatternSummary summary = tracer.Summarize();
  EXPECT_EQ(summary.num_accesses, 1000u);
  EXPECT_EQ(summary.unique_rows, 1000u);
  EXPECT_DOUBLE_EQ(summary.sequential_fraction, 1.0);
  EXPECT_DOUBLE_EQ(summary.mean_abs_stride, 1.0);
  EXPECT_DOUBLE_EQ(summary.page_locality, 1.0);
}

TEST(AccessPatternTest, RandomAccessHasLowSequentiality) {
  AccessPatternTracer tracer(/*row_bytes=*/6272);  // one image per ~1.5 pages
  util::Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    tracer.Record(rng.UniformInt(uint64_t{100000}));
  }
  AccessPatternSummary summary = tracer.Summarize();
  EXPECT_LT(summary.sequential_fraction, 0.01);
  EXPECT_GT(summary.mean_abs_stride, 1000.0);
  EXPECT_LT(summary.page_locality, 0.05);
}

TEST(AccessPatternTest, ChunkedScanIsSequential) {
  // The access order produced by the chunked trainers: chunk after chunk,
  // rows in order within each chunk.
  AccessPatternTracer tracer(/*row_bytes=*/64);
  for (uint64_t chunk = 0; chunk < 10; ++chunk) {
    tracer.RecordRange(chunk * 100, (chunk + 1) * 100);
  }
  EXPECT_DOUBLE_EQ(tracer.Summarize().sequential_fraction, 1.0);
}

TEST(AccessPatternTest, ShuffledBatchOrderIsMostlySequential) {
  // SGD's pattern: batches visited in random order, rows sequential inside.
  AccessPatternTracer tracer(/*row_bytes=*/64);
  util::Rng rng(7);
  std::vector<size_t> batches(50);
  for (size_t i = 0; i < 50; ++i) {
    batches[i] = i;
  }
  rng.Shuffle(&batches);
  for (size_t b : batches) {
    tracer.RecordRange(b * 100, (b + 1) * 100);
  }
  AccessPatternSummary summary = tracer.Summarize();
  // 99 of 100 transitions inside each batch are sequential.
  EXPECT_GT(summary.sequential_fraction, 0.95);
  EXPECT_LT(summary.sequential_fraction, 1.0);
}

TEST(AccessPatternTest, SamplingBoundsTraceSize) {
  AccessPatternTracer tracer(/*row_bytes=*/8, /*sample_period=*/10);
  tracer.RecordRange(0, 1000);
  EXPECT_EQ(tracer.trace().size(), 100u);
  EXPECT_EQ(tracer.Summarize().num_accesses, 100u);
}

TEST(AccessPatternTest, EmptyTraceIsZeroes) {
  AccessPatternTracer tracer(8);
  AccessPatternSummary summary = tracer.Summarize();
  EXPECT_EQ(summary.num_accesses, 0u);
  EXPECT_DOUBLE_EQ(summary.sequential_fraction, 0.0);
}

TEST(AccessPatternTest, ClearResets) {
  AccessPatternTracer tracer(8);
  tracer.RecordRange(0, 10);
  tracer.Clear();
  EXPECT_TRUE(tracer.trace().empty());
  EXPECT_EQ(tracer.Summarize().num_accesses, 0u);
}

TEST(AccessPatternTest, ToStringIsInformative) {
  AccessPatternTracer tracer(8);
  tracer.RecordRange(0, 10);
  EXPECT_NE(tracer.Summarize().ToString().find("sequential=100.0%"),
            std::string::npos);
}

}  // namespace
}  // namespace m3
