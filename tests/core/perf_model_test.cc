#include "core/perf_model.h"

#include <gtest/gtest.h>

namespace m3 {
namespace {

PerfModelParams PaperLikeParams() {
  PerfModelParams params;
  params.cpu_seconds_per_byte = 1e-10;      // fast CPU work
  params.disk_read_bytes_per_sec = 1e9;     // ~RevoDrive 350
  params.ram_bytes = 32ull << 30;           // 32 GB like the paper
  return params;
}

TEST(PerfModelTest, InRamPassIsCpuBoundWithNoMisses) {
  PerfModel model(PaperLikeParams());
  const uint64_t bytes = 10ull << 30;  // 10 GB < 32 GB RAM
  PassPrediction pass = model.PredictPass(bytes);
  EXPECT_EQ(pass.miss_bytes, 0u);
  EXPECT_FALSE(pass.io_bound);
  EXPECT_DOUBLE_EQ(pass.io_seconds, 0.0);
  EXPECT_GT(pass.seconds, 0.0);
  EXPECT_NEAR(pass.cpu_utilization, 1.0, 1e-9);
}

TEST(PerfModelTest, OutOfCorePassReadsEverythingAndIsIoBound) {
  PerfModel model(PaperLikeParams());
  const uint64_t bytes = 190ull << 30;  // the paper's largest dataset
  PassPrediction pass = model.PredictPass(bytes);
  EXPECT_EQ(pass.miss_bytes, bytes);
  EXPECT_TRUE(pass.io_bound);
  // 190 GiB at 1 GB/s ~ 204 s per pass.
  EXPECT_NEAR(pass.io_seconds, static_cast<double>(bytes) / 1e9, 1e-6);
  // CPU utilization should be low when I/O-bound (paper saw ~13%).
  EXPECT_LT(pass.cpu_utilization, 0.5);
}

TEST(PerfModelTest, LinearInSizeOnBothSidesWithSlopeBreak) {
  // The Fig. 1a shape: runtime linear in size in-core and out-of-core,
  // with a steeper out-of-core slope.
  PerfModelParams params = PaperLikeParams();
  params.cpu_seconds_per_byte = 5e-10;
  PerfModel model(params);
  const size_t passes = 10;

  auto runtime = [&](uint64_t gb) {
    return model.PredictRun(gb << 30, passes);
  };
  // In-core segment: slope between 4->8 GB equals slope between 8->16 GB.
  const double in_slope_1 = (runtime(8) - runtime(4)) / 4.0;
  const double in_slope_2 = (runtime(16) - runtime(8)) / 8.0;
  EXPECT_NEAR(in_slope_1, in_slope_2, in_slope_1 * 0.01);
  // Out-of-core segment is also linear.
  const double out_slope_1 = (runtime(80) - runtime(40)) / 40.0;
  const double out_slope_2 = (runtime(160) - runtime(80)) / 80.0;
  EXPECT_NEAR(out_slope_1, out_slope_2, out_slope_1 * 0.01);
  // And steeper than the in-core slope.
  EXPECT_GT(out_slope_1, in_slope_1 * 1.5);
}

TEST(PerfModelTest, FirstPassIsAlwaysCold) {
  PerfModel model(PaperLikeParams());
  const uint64_t bytes = 1ull << 30;  // fits in RAM
  const double one_pass = model.PredictRun(bytes, 1);
  const double two_passes = model.PredictRun(bytes, 2);
  // Second (warm) pass must be cheaper than the first (cold) one.
  EXPECT_LT(two_passes - one_pass, one_pass);
}

TEST(PerfModelTest, ZeroPassesIsZero) {
  PerfModel model(PaperLikeParams());
  EXPECT_DOUBLE_EQ(model.PredictRun(1 << 30, 0), 0.0);
}

TEST(PerfModelTest, PassOverheadAdds) {
  PerfModelParams params = PaperLikeParams();
  params.pass_overhead_seconds = 2.0;
  PerfModel with(params);
  params.pass_overhead_seconds = 0.0;
  PerfModel without(params);
  EXPECT_NEAR(with.PredictRun(1 << 30, 5) - without.PredictRun(1 << 30, 5),
              10.0, 1e-9);
}

TEST(PerfModelTest, OverlapEfficiencyInterpolatesMaxToSum) {
  EXPECT_DOUBLE_EQ(CombineOverlap(3.0, 2.0, 1.0), 3.0);  // perfect: max
  EXPECT_DOUBLE_EQ(CombineOverlap(3.0, 2.0, 0.0), 5.0);  // serial: sum
  EXPECT_DOUBLE_EQ(CombineOverlap(3.0, 2.0, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(CombineOverlap(2.0, 3.0, 0.5), 4.0);  // symmetric
  EXPECT_DOUBLE_EQ(CombineOverlap(0.0, 3.0, 0.25), 3.0);  // nothing to hide

  PerfModelParams params = PaperLikeParams();
  params.overlap_efficiency = 0.5;
  PerfModel model(params);
  const uint64_t bytes = 190ull << 30;  // out-of-core: both terms nonzero
  const PassPrediction pass = model.PredictPass(bytes);
  EXPECT_NEAR(pass.seconds,
              CombineOverlap(pass.cpu_seconds, pass.io_seconds, 0.5), 1e-9);
  // Less overlap can only make the pass slower than the perfect-overlap
  // default.
  EXPECT_GT(pass.seconds, PerfModel(PaperLikeParams())
                              .PredictPass(bytes)
                              .seconds);
}

TEST(PerfModelTest, ColdPassSharesSteadyAccounting) {
  // The cold-pass regression: PredictRun used to hand-roll the cold pass
  // as max(cpu, io) + overhead, which silently disagreed with
  // PredictPass once the fitted overlap term existed. Both predictions
  // now run through one combine path, so for an out-of-core dataset
  // (every pass reads everything) cold and steady must agree exactly —
  // overlap, overhead and all.
  PerfModelParams params = PaperLikeParams();
  params.overlap_efficiency = 0.6;
  params.pass_overhead_seconds = 1.5;
  PerfModel model(params);
  const uint64_t bytes = 190ull << 30;  // exceeds RAM
  const PassPrediction cold = model.PredictColdPass(bytes);
  const PassPrediction steady = model.PredictPass(bytes);
  EXPECT_DOUBLE_EQ(cold.seconds, steady.seconds);
  EXPECT_EQ(cold.miss_bytes, steady.miss_bytes);
  // And a run is exactly one cold pass plus steady passes.
  EXPECT_NEAR(model.PredictRun(bytes, 4),
              cold.seconds + 3 * steady.seconds, 1e-9);

  // In-RAM, the cold pass still reads everything — with the overlap
  // formula, not a bare max.
  const uint64_t small = 1ull << 30;
  const PassPrediction cold_small = model.PredictColdPass(small);
  EXPECT_EQ(cold_small.miss_bytes, small);
  EXPECT_NEAR(cold_small.seconds,
              CombineOverlap(cold_small.cpu_seconds, cold_small.io_seconds,
                             0.6) +
                  params.pass_overhead_seconds,
              1e-9);
  EXPECT_NEAR(model.PredictRun(small, 3),
              cold_small.seconds + 2 * model.PredictPass(small).seconds,
              1e-9);
}

TEST(PerfModelTest, FitRecoversConstant) {
  // If a 2 GiB dataset took 20 s over 10 passes, cpu cost is 1e-9 s/B.
  const double fitted =
      PerfModel::FitCpuSecondsPerByte(20.0, 2ull << 30, 10);
  EXPECT_NEAR(fitted, 20.0 / (10.0 * (2ull << 30)), 1e-18);
}

TEST(PerfModelTest, SweepMarksOutOfCorePoints) {
  PerfModel model(PaperLikeParams());
  std::vector<uint64_t> sizes = {10ull << 30, 40ull << 30, 190ull << 30};
  auto sweep = PredictSweep(model, sizes, 10);
  ASSERT_EQ(sweep.size(), 3u);
  EXPECT_FALSE(sweep[0].out_of_core);
  EXPECT_TRUE(sweep[1].out_of_core);
  EXPECT_TRUE(sweep[2].out_of_core);
  // Monotone increasing runtime with size.
  EXPECT_LT(sweep[0].predicted_seconds, sweep[1].predicted_seconds);
  EXPECT_LT(sweep[1].predicted_seconds, sweep[2].predicted_seconds);
}

TEST(PerfModelTest, ToStringMentionsParameters) {
  PerfModel model(PaperLikeParams());
  EXPECT_NE(model.ToString().find("ram=32.00 GiB"), std::string::npos);
}

}  // namespace
}  // namespace m3
