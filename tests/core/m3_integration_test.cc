// The headline M3 integration test: an algorithm trained on a
// memory-mapped dataset must produce results identical to the same
// algorithm trained on the same data held in RAM. This is the paper's
// core claim ("memory mapping a dataset allows it to be treated
// identically as an in-memory dataset").

#include <gtest/gtest.h>

#include <filesystem>

#include "core/m3.h"
#include "data/synthetic.h"
#include "la/blas.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "ml/naive_bayes.h"
#include "ml/sgd.h"

namespace m3 {
namespace {

class M3IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_int_test_" + std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(M3IntegrationTest, LogisticRegressionIdenticalOnMmapAndRam) {
  data::SeparableResult sep = data::LinearlySeparable(3000, 12, 0.05, 42);
  const std::string path = dir_ + "/lr.m3";
  ASSERT_TRUE(
      data::WriteDataset(path, sep.data.features, sep.data.labels, 2).ok());

  // RAM path.
  la::ConstVectorView y(sep.data.labels.data(), sep.data.labels.size());
  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  auto ram_model =
      ml::LogisticRegression(options).Train(sep.data.features, y).ValueOrDie();

  // M3 path (same options, mapped views).
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  auto m3_model = TrainLogisticRegression(dataset, options).ValueOrDie();

  ASSERT_EQ(ram_model.weights.size(), m3_model.weights.size());
  for (size_t i = 0; i < ram_model.weights.size(); ++i) {
    ASSERT_EQ(ram_model.weights[i], m3_model.weights[i])
        << "weight " << i << " differs between RAM and mmap training";
  }
  ASSERT_EQ(ram_model.intercept, m3_model.intercept);
}

TEST_F(M3IntegrationTest, KMeansIdenticalOnMmapAndRam) {
  data::BlobsResult blobs = data::GaussianBlobs(2000, 8, 5, 1.0, 7);
  const std::string path = dir_ + "/km.m3";
  ASSERT_TRUE(
      data::WriteDataset(path, blobs.data.features, blobs.data.labels, 5)
          .ok());

  ml::KMeansOptions options = PaperKMeansOptions();
  options.seed = 99;
  auto ram_result =
      ml::KMeans(options).Cluster(blobs.data.features).ValueOrDie();

  auto dataset = MappedDataset::Open(path).ValueOrDie();
  auto m3_result = TrainKMeans(dataset, options).ValueOrDie();

  ASSERT_EQ(ram_result.inertia, m3_result.inertia);
  for (size_t c = 0; c < 5; ++c) {
    for (size_t d = 0; d < 8; ++d) {
      ASSERT_EQ(ram_result.centers(c, d), m3_result.centers(c, d));
    }
  }
}

TEST_F(M3IntegrationTest, RamBudgetDoesNotChangeResults) {
  // Eviction must be purely a performance emulation: training under an
  // absurdly small budget gives bit-identical models.
  data::SeparableResult sep = data::LinearlySeparable(2000, 10, 0.05, 11);
  const std::string path = dir_ + "/budget.m3";
  ASSERT_TRUE(
      data::WriteDataset(path, sep.data.features, sep.data.labels, 2).ok());

  ml::LogisticRegressionOptions options;
  options.lbfgs = PaperLbfgsOptions();
  options.chunk_rows = 128;

  auto unbudgeted = MappedDataset::Open(path).ValueOrDie();
  auto model_full = TrainLogisticRegression(unbudgeted, options).ValueOrDie();

  M3Options tight;
  tight.ram_budget_bytes = 64 << 10;  // 64 KiB "RAM" vs ~160 KB data
  tight.chunk_rows = 128;
  auto budgeted = MappedDataset::Open(path, tight).ValueOrDie();
  auto model_tight = TrainLogisticRegression(budgeted, options).ValueOrDie();

  ASSERT_GT(budgeted.ram_budget()->bytes_evicted(), 0u)
      << "budget emulator never fired";
  for (size_t i = 0; i < model_full.weights.size(); ++i) {
    ASSERT_EQ(model_full.weights[i], model_tight.weights[i]);
  }
  ASSERT_EQ(model_full.intercept, model_tight.intercept);
}

TEST_F(M3IntegrationTest, SgdRunsOnMappedData) {
  data::SeparableResult sep = data::LinearlySeparable(2000, 6, 0.0, 21);
  const std::string path = dir_ + "/sgd.m3";
  ASSERT_TRUE(
      data::WriteDataset(path, sep.data.features, sep.data.labels, 2).ok());
  auto dataset = MappedDataset::Open(path).ValueOrDie();

  ml::LogisticRegressionObjective objective(dataset.features(),
                                            dataset.labels(), 1e-4);
  la::Vector w(objective.Dimension());
  ml::SgdOptions options;
  options.epochs = 8;
  options.learning_rate = 0.5;
  auto result = ml::Sgd(options).Minimize(&objective, w);
  ASSERT_TRUE(result.ok());

  ml::LogisticRegressionModel model;
  model.weights = la::Vector(6);
  la::Copy(w.View().Slice(0, 6), model.weights);
  model.intercept = w[6];
  std::vector<double> predictions(2000);
  for (size_t i = 0; i < 2000; ++i) {
    predictions[i] = model.Predict(dataset.features().Row(i));
  }
  EXPECT_GT(ml::Accuracy(predictions, dataset.CopyLabels()), 0.95);
}

TEST_F(M3IntegrationTest, NaiveBayesAndLinearRegressionRunOnMappedData) {
  data::RegressionResult reg = data::LinearRegressionData(1000, 5, 0.1, 31);
  const std::string reg_path = dir_ + "/reg.m3";
  ASSERT_TRUE(
      data::WriteDataset(reg_path, reg.data.features, reg.data.labels, 0)
          .ok());
  auto reg_ds = MappedDataset::Open(reg_path).ValueOrDie();
  auto lin_model = ml::LinearRegression()
                       .Train(reg_ds.features(), reg_ds.labels())
                       .ValueOrDie();
  for (size_t d = 0; d < 5; ++d) {
    EXPECT_NEAR(lin_model.weights[d], reg.true_weights[d], 0.05);
  }

  data::BlobsResult blobs = data::GaussianBlobs(1000, 4, 3, 0.8, 17);
  const std::string nb_path = dir_ + "/nb.m3";
  ASSERT_TRUE(
      data::WriteDataset(nb_path, blobs.data.features, blobs.data.labels, 3)
          .ok());
  auto nb_ds = MappedDataset::Open(nb_path).ValueOrDie();
  auto nb_model =
      ml::NaiveBayes().Train(nb_ds.features(), nb_ds.labels(), 3).ValueOrDie();
  std::vector<double> predictions(1000);
  for (size_t i = 0; i < 1000; ++i) {
    predictions[i] =
        static_cast<double>(nb_model.Predict(nb_ds.features().Row(i)));
  }
  EXPECT_GT(ml::Accuracy(predictions, nb_ds.CopyLabels()), 0.95);
}

TEST_F(M3IntegrationTest, MmapAllocDoublesImplementsTableOne) {
  const std::string file = dir_ + "/table1.bin";
  const size_t rows = 32, cols = 4;
  // M3 version of Table 1:
  auto region = MmapAllocDoubles(file, rows * cols).ValueOrDie();
  double* m = region.As<double>();
  la::MatrixView data(m, rows, cols);
  data.Fill(1.5);
  ASSERT_TRUE(region.Sync().ok());
  // The file now holds the matrix.
  EXPECT_EQ(io::FileSize(file).ValueOrDie(), rows * cols * sizeof(double));
  auto reread = io::MemoryMappedFile::Map(file).ValueOrDie();
  EXPECT_DOUBLE_EQ(reread.As<const double>()[rows * cols - 1], 1.5);
}

TEST_F(M3IntegrationTest, PaperOptionsMatchPublishedSetup) {
  EXPECT_EQ(PaperLbfgsOptions().max_iterations, 10u);
  EXPECT_EQ(PaperKMeansOptions().k, 5u);
  EXPECT_EQ(PaperKMeansOptions().max_iterations, 10u);
}

}  // namespace
}  // namespace m3
