#include "core/mapped_dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <vector>

#include "core/m3.h"
#include "data/synthetic.h"

namespace m3 {
namespace {

class MappedDatasetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_mds_test_" + std::to_string(::getpid());
    ASSERT_TRUE(io::MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Writes a small dataset and returns its path.
  std::string MakeDataset(const std::string& name, size_t rows, size_t cols) {
    data::SeparableResult sep =
        data::LinearlySeparable(rows, cols, 0.0, 42);
    const std::string path = dir_ + "/" + name;
    EXPECT_TRUE(
        data::WriteDataset(path, sep.data.features, sep.data.labels, 2).ok());
    return path;
  }

  std::string dir_;
};

TEST_F(MappedDatasetTest, OpenExposesShapeAndViews) {
  const std::string path = MakeDataset("basic.m3", 100, 7);
  auto dataset = MappedDataset::Open(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().rows(), 100u);
  EXPECT_EQ(dataset.value().cols(), 7u);
  EXPECT_EQ(dataset.value().num_classes(), 2u);
  EXPECT_EQ(dataset.value().features().rows(), 100u);
  EXPECT_EQ(dataset.value().features().cols(), 7u);
  EXPECT_EQ(dataset.value().labels().size(), 100u);
}

TEST_F(MappedDatasetTest, ViewsMatchOriginalData) {
  data::SeparableResult sep = data::LinearlySeparable(50, 3, 0.0, 9);
  const std::string path = dir_ + "/match.m3";
  ASSERT_TRUE(
      data::WriteDataset(path, sep.data.features, sep.data.labels, 2).ok());
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  for (size_t r = 0; r < 50; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      ASSERT_EQ(dataset.features()(r, c), sep.data.features(r, c));
    }
    ASSERT_EQ(dataset.labels()[r], sep.data.labels[r]);
  }
  EXPECT_EQ(dataset.CopyLabels(), sep.data.labels);
}

TEST_F(MappedDatasetTest, OpenMissingFileFails) {
  EXPECT_FALSE(MappedDataset::Open(dir_ + "/missing.m3").ok());
}

TEST_F(MappedDatasetTest, NoBudgetMeansNoHooksAndNoEmulator) {
  const std::string path = MakeDataset("nobudget.m3", 10, 2);
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  EXPECT_EQ(dataset.ram_budget(), nullptr);
  ml::ScanHooks hooks = dataset.MakeScanHooks();
  EXPECT_FALSE(static_cast<bool>(hooks.after_chunk));
  EXPECT_FALSE(static_cast<bool>(hooks.before_pass));
}

TEST_F(MappedDatasetTest, BudgetCreatesWorkingEmulator) {
  const std::string path = MakeDataset("budget.m3", 1000, 8);
  M3Options options;
  options.ram_budget_bytes = 1000 * 8 * sizeof(double) / 4;  // quarter of data
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  ASSERT_NE(dataset.ram_budget(), nullptr);
  ml::ScanHooks hooks = dataset.MakeScanHooks();
  ASSERT_TRUE(static_cast<bool>(hooks.after_chunk));
  // Simulate a pass: chunks of 100 rows.
  hooks.before_pass(0);
  for (size_t begin = 0; begin < 1000; begin += 100) {
    hooks.after_chunk(begin, begin + 100);
  }
  EXPECT_GT(dataset.ram_budget()->evictions(), 0u);
  EXPECT_GT(dataset.ram_budget()->bytes_evicted(), 0u);
  EXPECT_EQ(dataset.ram_budget()->passes(), 1u);
}

TEST_F(MappedDatasetTest, EmulatorEvictsExactlyBehindTheWindow) {
  const std::string path = MakeDataset("window.m3", 100, 4);
  const uint64_t row_bytes = 4 * sizeof(double);
  M3Options options;
  options.ram_budget_bytes = 20 * row_bytes;  // window of 20 rows
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  auto hooks = dataset.MakeScanHooks();
  hooks.before_pass(0);
  hooks.after_chunk(0, 10);   // cursor 10 rows < window: nothing evicted
  EXPECT_EQ(dataset.ram_budget()->bytes_evicted(), 0u);
  hooks.after_chunk(10, 30);  // cursor 30 rows: evict rows [0, 10)
  EXPECT_EQ(dataset.ram_budget()->bytes_evicted(), 10 * row_bytes);
  hooks.after_chunk(30, 50);  // cursor 50: evict rows [10, 30)
  EXPECT_EQ(dataset.ram_budget()->bytes_evicted(), 30 * row_bytes);
  // New pass resets the cursor.
  hooks.before_pass(1);
  hooks.after_chunk(0, 50);
  EXPECT_EQ(dataset.ram_budget()->bytes_evicted(), 60 * row_bytes);
}

TEST_F(MappedDatasetTest, AdviseAndEvictAllSucceed) {
  const std::string path = MakeDataset("adv.m3", 64, 4);
  auto dataset = MappedDataset::Open(path).ValueOrDie();
  EXPECT_TRUE(dataset.Advise(io::Advice::kRandom).ok());
  EXPECT_TRUE(dataset.Advise(io::Advice::kSequential).ok());
  EXPECT_TRUE(dataset.EvictAll().ok());
  // Views still readable after eviction (pages fault back in).
  EXPECT_EQ(dataset.features()(0, 0), dataset.features()(0, 0));
}

TEST_F(MappedDatasetTest, MoveKeepsViewsAndEmulatorValid) {
  const std::string path = MakeDataset("move.m3", 200, 4);
  M3Options options;
  options.ram_budget_bytes = 1024;
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  const double first = dataset.features()(0, 0);
  auto hooks = dataset.MakeScanHooks();  // bound to emulator
  MappedDataset moved = std::move(dataset);
  EXPECT_EQ(moved.features()(0, 0), first);
  // Hooks captured the emulator owned via unique_ptr: still safe.
  hooks.before_pass(0);
  hooks.after_chunk(0, 200);
  EXPECT_GT(moved.ram_budget()->bytes_evicted(), 0u);
}

TEST_F(MappedDatasetTest, ShuffledScanOrderVisitsEveryChunkOnce) {
  const std::string path = MakeDataset("shuf.m3", 1024, 8);
  M3Options options;
  options.chunk_rows = 64;  // 16 chunks
  options.scan_order = exec::ScanOrder::kShuffled;
  options.scan_seed = 77;
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();

  auto collect = [&] {
    std::vector<size_t> chunks;
    size_t rows_seen = 0;
    dataset.ForEachChunk([&](size_t chunk, size_t begin, size_t end) {
      chunks.push_back(chunk);
      rows_seen += end - begin;
    });
    EXPECT_EQ(rows_seen, dataset.rows());
    return chunks;
  };

  const std::vector<size_t> first = collect();
  const std::vector<size_t> second = collect();
  ASSERT_EQ(first.size(), 16u);
  std::set<size_t> unique(first.begin(), first.end());
  EXPECT_EQ(unique.size(), first.size());  // permutation, no repeats
  EXPECT_NE(first, second);  // epoch-shuffled: pass p reseeds with seed + p
  std::vector<size_t> sorted = first;
  std::sort(sorted.begin(), sorted.end());
  bool is_identity = first == sorted;
  EXPECT_FALSE(is_identity);  // shuffled, not sequential

  // The schedule for the *next* pass is exposed and deterministic.
  const exec::ChunkSchedule schedule = dataset.MakeScanSchedule(16);
  const exec::ChunkSchedule again = dataset.MakeScanSchedule(16);
  for (size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(schedule.At(p), again.At(p));
  }
}

TEST_F(MappedDatasetTest, StridedScanHonorsStrideAndOffset) {
  const std::string path = MakeDataset("strided.m3", 1024, 8);
  M3Options options;
  options.chunk_rows = 64;  // 16 chunks
  options.scan_order = exec::ScanOrder::kStrided;
  options.scan_stride = 4;
  options.scan_stride_offset = 2;  // shard 2 of 4 scans its lane first
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();

  std::vector<size_t> chunks;
  dataset.ForEachChunk(
      [&](size_t chunk, size_t, size_t) { chunks.push_back(chunk); });
  ASSERT_EQ(chunks.size(), 16u);
  const exec::ChunkSchedule expected = exec::ChunkSchedule::Strided(16, 4, 2);
  for (size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(chunks[p], expected.At(p)) << "position " << p;
  }
  EXPECT_EQ(chunks[0], 2u);  // the offset lane leads
}

TEST_F(MappedDatasetTest, ShuffledScanWithBudgetEvictsEngineSide) {
  const std::string path = MakeDataset("shufbudget.m3", 1024, 8);
  const uint64_t row_bytes = 8 * sizeof(double);
  M3Options options;
  options.chunk_rows = 64;
  options.scan_order = exec::ScanOrder::kShuffled;
  options.ram_budget_bytes = 256 * row_bytes;  // quarter of the rows
  auto dataset = MappedDataset::Open(path, options).ValueOrDie();
  // The linear-cursor emulator cannot track a permuted scan; the engine's
  // visit-order window replaces it.
  EXPECT_EQ(dataset.ram_budget(), nullptr);
  double checksum = 0;
  dataset.ForEachChunk([&](size_t, size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      checksum += dataset.features()(r, 0);
    }
  });
  (void)checksum;
  const exec::PipelineStats stats = dataset.pipeline().stats();
  EXPECT_GT(stats.evictions, 0u);
  // Everything beyond the 4-chunk budget window was evicted.
  EXPECT_EQ(stats.bytes_evicted, (1024 - 256) * row_bytes);
}

TEST_F(MappedDatasetTest, PopulateOptionWorks) {
  const std::string path = MakeDataset("pop.m3", 64, 4);
  M3Options options;
  options.populate = true;
  auto dataset = MappedDataset::Open(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().features()(0, 0),
            dataset.value().features()(0, 0));
}

}  // namespace
}  // namespace m3
