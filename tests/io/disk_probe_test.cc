#include "io/disk_probe.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "io/file.h"

namespace m3::io {
namespace {

TEST(DiskProbeTest, ProbeProducesPositiveBandwidths) {
  const std::string dir = ::testing::TempDir() + "/m3_probe_test";
  ASSERT_TRUE(MakeDirs(dir).ok());
  auto result = ProbeDisk(dir, 8 << 20);  // small probe to keep tests fast
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().sequential_read_bytes_per_sec, 0.0);
  EXPECT_GT(result.value().sequential_write_bytes_per_sec, 0.0);
  EXPECT_GT(result.value().random_read_latency_sec, 0.0);
  // Scratch file must be cleaned up.
  EXPECT_FALSE(FileExists(dir + "/.m3_disk_probe.tmp"));
  std::filesystem::remove_all(dir);
}

TEST(DiskProbeTest, TinyProbeRejected) {
  EXPECT_FALSE(ProbeDisk("/tmp", 1024).ok());
}

TEST(DiskProbeTest, MissingDirectoryFails) {
  EXPECT_FALSE(ProbeDisk("/nonexistent_dir_m3", 8 << 20).ok());
}

}  // namespace
}  // namespace m3::io
