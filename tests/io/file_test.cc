#include "io/file.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace m3::io {
namespace {

class FileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_file_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(FileTest, CreateWriteReadRoundTrip) {
  const std::string path = Path("rt.bin");
  auto file = File::CreateTruncate(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  const std::string payload = "hello mmap world";
  ASSERT_TRUE(file.value().WriteExactAt(0, payload.data(), payload.size()).ok());
  std::string readback(payload.size(), '\0');
  ASSERT_TRUE(
      file.value().ReadExactAt(0, readback.data(), readback.size()).ok());
  EXPECT_EQ(readback, payload);
}

TEST_F(FileTest, OpenMissingFileIsIoError) {
  auto file = File::OpenReadOnly(Path("missing.bin"));
  ASSERT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), util::StatusCode::kIoError);
}

TEST_F(FileTest, SizeTracksWrites) {
  auto file = File::CreateTruncate(Path("sz.bin")).ValueOrDie();
  EXPECT_EQ(file.Size().ValueOrDie(), 0u);
  ASSERT_TRUE(file.WriteExactAt(0, "abcd", 4).ok());
  EXPECT_EQ(file.Size().ValueOrDie(), 4u);
  // Positional write beyond EOF extends with a hole.
  ASSERT_TRUE(file.WriteExactAt(100, "x", 1).ok());
  EXPECT_EQ(file.Size().ValueOrDie(), 101u);
}

TEST_F(FileTest, ResizeGrowsAndShrinks) {
  auto file = File::CreateTruncate(Path("resize.bin")).ValueOrDie();
  ASSERT_TRUE(file.Resize(4096).ok());
  EXPECT_EQ(file.Size().ValueOrDie(), 4096u);
  ASSERT_TRUE(file.Resize(10).ok());
  EXPECT_EQ(file.Size().ValueOrDie(), 10u);
}

TEST_F(FileTest, ShortReadBeyondEofIsError) {
  auto file = File::CreateTruncate(Path("eof.bin")).ValueOrDie();
  ASSERT_TRUE(file.WriteExactAt(0, "ab", 2).ok());
  char buf[10];
  util::Status st = file.ReadExactAt(0, buf, sizeof(buf));
  EXPECT_EQ(st.code(), util::StatusCode::kIoError);
}

TEST_F(FileTest, OperationsOnClosedFileFail) {
  auto file = File::CreateTruncate(Path("closed.bin")).ValueOrDie();
  ASSERT_TRUE(file.Close().ok());
  char c;
  EXPECT_EQ(file.ReadExactAt(0, &c, 1).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_EQ(file.WriteExactAt(0, &c, 1).code(),
            util::StatusCode::kFailedPrecondition);
  EXPECT_FALSE(file.Size().ok());
  EXPECT_TRUE(file.Close().ok());  // idempotent
}

TEST_F(FileTest, MoveTransfersOwnership) {
  auto file = File::CreateTruncate(Path("move.bin")).ValueOrDie();
  const int fd = file.fd();
  File moved = std::move(file);
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(file.is_open());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.is_open());
}

TEST_F(FileTest, SyncAndDropCacheSucceed) {
  auto file = File::CreateTruncate(Path("sync.bin")).ValueOrDie();
  ASSERT_TRUE(file.WriteExactAt(0, "data", 4).ok());
  EXPECT_TRUE(file.Sync().ok());
  EXPECT_TRUE(file.DropCache().ok());
  EXPECT_TRUE(file.AdviseSequential().ok());
  EXPECT_TRUE(file.AdviseRandom().ok());
}

TEST_F(FileTest, FileExistsAndRemove) {
  const std::string path = Path("exists.bin");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteStringToFile(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_EQ(RemoveFile(path).code(), util::StatusCode::kNotFound);
}

TEST_F(FileTest, FileSizeHelper) {
  const std::string path = Path("size.bin");
  ASSERT_TRUE(WriteStringToFile(path, "12345").ok());
  EXPECT_EQ(FileSize(path).ValueOrDie(), 5u);
  EXPECT_FALSE(FileSize(Path("no")).ok());
}

TEST_F(FileTest, MakeDirsCreatesNested) {
  const std::string nested = dir_ + "/a/b/c";
  ASSERT_TRUE(MakeDirs(nested).ok());
  EXPECT_TRUE(std::filesystem::is_directory(nested));
  // Idempotent.
  EXPECT_TRUE(MakeDirs(nested).ok());
}

TEST_F(FileTest, ReadWriteStringHelpers) {
  const std::string path = Path("str.bin");
  ASSERT_TRUE(WriteStringToFile(path, "contents here").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "contents here");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "");
}

}  // namespace
}  // namespace m3::io
