// Conformance suite for the pluggable prefetch backends: every backend
// compiled into this binary must (a) keep the engine's counter invariants,
// (b) degrade gracefully when its mechanism is unavailable, and (c) leave
// scan results bitwise identical — backends move bytes, never values.

#include "io/prefetch_backend.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <numeric>
#include <string>
#include <vector>

#include "exec/chunk_map_reduce.h"
#include "exec/chunk_pipeline.h"
#include "io/file.h"
#include "io/io_stats.h"
#include "io/platform.h"
#include "la/chunker.h"
#include "util/sys_info.h"

namespace m3::io {
namespace {

/// Every kind this binary can construct a real backend for. kUring is
/// always listed: when io_uring is compiled out or runtime-unavailable the
/// factory's graceful fallback is exactly what the suite must cover.
std::vector<PrefetchBackendKind> AllBackendKinds() {
  return {PrefetchBackendKind::kMadvise, PrefetchBackendKind::kPread,
          PrefetchBackendKind::kUring};
}

class PrefetchBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_prefetch_backend_test_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  // Creates a file with `count` doubles 0..count-1 and maps it read-only.
  MemoryMappedFile MakeMapped(const std::string& name, size_t count) {
    std::vector<double> values(count);
    std::iota(values.begin(), values.end(), 0.0);
    const std::string path = Path(name);
    std::string bytes(reinterpret_cast<const char*>(values.data()),
                      count * sizeof(double));
    EXPECT_TRUE(WriteStringToFile(path, bytes).ok());
    auto mapped = MemoryMappedFile::Map(path);
    EXPECT_TRUE(mapped.ok()) << mapped.status().ToString();
    return std::move(mapped.value());
  }

  std::string dir_;
};

TEST(PrefetchBackendKindTest, NamesRoundTrip) {
  for (const PrefetchBackendKind kind :
       {PrefetchBackendKind::kAuto, PrefetchBackendKind::kMadvise,
        PrefetchBackendKind::kPread, PrefetchBackendKind::kUring}) {
    auto parsed = ParsePrefetchBackendKind(PrefetchBackendKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << PrefetchBackendKindToString(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_EQ(ParsePrefetchBackendKind("io_uring").value(),
            PrefetchBackendKind::kUring);
  EXPECT_FALSE(ParsePrefetchBackendKind("sendfile").ok());
  EXPECT_FALSE(ParsePrefetchBackendKind("").ok());
}

TEST_F(PrefetchBackendTest, EveryBackendPrefetchesAndCounts) {
  MemoryMappedFile mapped = MakeMapped("data.bin", 64 << 10);  // 512 KiB
  for (const PrefetchBackendKind kind : AllBackendKinds()) {
    SCOPED_TRACE(std::string(PrefetchBackendKindToString(kind)));
    auto backend = MakePrefetchBackend(kind);
    ASSERT_NE(backend, nullptr);
    EXPECT_EQ(backend->kind(), kind);
    M3_IGNORE_STATUS(mapped.Evict(0, mapped.size()), "best-effort evict");
    auto outcome = backend->Prefetch(mapped, 0, mapped.size());
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_GE(outcome.value().submits, 1u);
    EXPECT_LE(outcome.value().completions, outcome.value().submits);
    // Lifetime counters accumulated the call.
    EXPECT_EQ(backend->counters().submits, outcome.value().submits);
    // The mapped data is untouched by any backend.
    const double* values = mapped.As<const double>();
    EXPECT_EQ(values[0], 0.0);
    EXPECT_EQ(values[1000], 1000.0);
  }
}

TEST_F(PrefetchBackendTest, PreadWarmsThePageCache) {
  if (!GetPlatformCapabilities().mincore_tracks_eviction) {
    GTEST_SKIP() << "mincore does not track eviction here";
  }
  MemoryMappedFile mapped = MakeMapped("warm.bin", 256 << 10);  // 2 MiB
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kPread);
  ASSERT_TRUE(mapped.Evict(0, mapped.size()).ok());
  auto outcome = backend->Prefetch(mapped, 0, mapped.size());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // The pread reads landed in the page cache, which a file mapping shares:
  // the mapping is resident again without a single fault through it.
  auto resident = mapped.CountResidentPages(0, mapped.size());
  ASSERT_TRUE(resident.ok());
  const uint64_t pages =
      (mapped.size() + util::PageSize() - 1) / util::PageSize();
  EXPECT_GT(resident.value(), pages / 2);
  EXPECT_EQ(outcome.value().fallbacks, 0u);
}

TEST_F(PrefetchBackendTest, PreadFallsBackToTouchOnAnonymousMappings) {
  auto mapped = MemoryMappedFile::MapAnonymous(1 << 20);
  ASSERT_TRUE(mapped.ok());
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kPread);
  auto outcome = backend->Prefetch(mapped.value(), 0, 1 << 20);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome.value().fallbacks, 1u);
  EXPECT_EQ(outcome.value().completions, outcome.value().submits);
}

TEST_F(PrefetchBackendTest, UringFallsBackGracefullyWhenProbeFails) {
  MemoryMappedFile mapped = MakeMapped("fallback.bin", 128 << 10);
  PrefetchBackendOptions options;
  options.force_uring_unavailable = true;
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kUring, options);
  ASSERT_NE(backend, nullptr);
  EXPECT_EQ(backend->kind(), PrefetchBackendKind::kUring);
  EXPECT_TRUE(backend->using_fallback());
  M3_IGNORE_STATUS(mapped.Evict(0, mapped.size()), "best-effort evict");
  auto outcome = backend->Prefetch(mapped, 0, mapped.size());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Every submit went through the pread fallback and is counted as such.
  EXPECT_GE(outcome.value().submits, 1u);
  EXPECT_EQ(outcome.value().fallbacks, outcome.value().submits);
}

TEST_F(PrefetchBackendTest, UringNativePathWhenAvailable) {
  if (!UringCompiledIn() || !UringAvailable()) {
    GTEST_SKIP() << "io_uring not available (compiled="
                 << UringCompiledIn() << ")";
  }
  MemoryMappedFile mapped = MakeMapped("uring.bin", 512 << 10);  // 4 MiB
  PrefetchBackendOptions options;
  options.block_bytes = 256 << 10;
  options.uring_queue_depth = 4;
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kUring, options);
  EXPECT_FALSE(backend->using_fallback());
  M3_IGNORE_STATUS(mapped.Evict(0, mapped.size()), "best-effort evict");
  auto outcome = backend->Prefetch(mapped, 0, mapped.size());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // 4 MiB in 256 KiB blocks = 16 SQEs, all reaped, none degraded.
  EXPECT_EQ(outcome.value().submits, 16u);
  EXPECT_EQ(outcome.value().completions, 16u);
  EXPECT_EQ(outcome.value().fallbacks, 0u);
}

// The engine invariant must hold under every backend: after any complete
// pass, prefetches == prefetch_hits + stalls + prefetch_unclassified, and
// every pipeline-level prefetch produced at least one backend submit.
TEST_F(PrefetchBackendTest, PipelineCounterInvariantHoldsPerBackend) {
  MemoryMappedFile mapped = MakeMapped("invariant.bin", 512 << 10);
  const uint64_t row_bytes = 256 * sizeof(double);
  const size_t rows = mapped.size() / row_bytes;
  for (const PrefetchBackendKind kind : AllBackendKinds()) {
    for (const size_t workers : {size_t{0}, size_t{2}}) {
      SCOPED_TRACE(std::string(PrefetchBackendKindToString(kind)) +
                   " workers=" + std::to_string(workers));
      exec::PipelineOptions options;
      options.readahead_chunks = 2;
      options.num_workers = workers;
      options.prefetch_backend = kind;
      exec::ChunkPipeline pipeline({&mapped, 0, row_bytes}, options);
      pipeline.Run(la::RowChunker(rows, 64),
                   [](size_t, size_t, size_t) {});
      const exec::PipelineStats stats = pipeline.ConsumeStats();
      EXPECT_GT(stats.prefetches, 0u);
      EXPECT_EQ(stats.prefetches, stats.prefetch_hits + stats.stalls +
                                      stats.prefetch_unclassified);
      EXPECT_GE(stats.backend_submits, stats.prefetches);
      EXPECT_LE(stats.backend_completions, stats.backend_submits);
    }
  }
}

// Backends move bytes, never values: a deterministic map-reduce over the
// same data must produce bitwise-identical results under every backend at
// every worker count.
TEST_F(PrefetchBackendTest, MapReduceBitwiseIdenticalAcrossBackends) {
  MemoryMappedFile mapped = MakeMapped("bitwise.bin", 256 << 10);
  const uint64_t row_bytes = 128 * sizeof(double);
  const size_t rows = mapped.size() / row_bytes;
  const double* values = mapped.As<const double>();

  auto run = [&](PrefetchBackendKind kind, size_t workers) {
    exec::PipelineOptions options;
    options.readahead_chunks = 2;
    options.num_workers = workers;
    options.prefetch_backend = kind;
    exec::ChunkPipeline pipeline({&mapped, 0, row_bytes}, options);
    double sum = 0;
    exec::MapReduceChunks<double>(
        &pipeline, la::RowChunker(rows, 37),
        [&](size_t, size_t row_begin, size_t row_end) {
          double partial = 0;
          for (size_t r = row_begin; r < row_end; ++r) {
            for (size_t c = 0; c < 128; ++c) {
              partial += values[r * 128 + c] * 1.000000119;
            }
          }
          return partial;
        },
        [&](size_t, double&& partial) { sum += partial; });
    return sum;
  };

  const double reference = run(PrefetchBackendKind::kMadvise, 0);
  for (const PrefetchBackendKind kind : AllBackendKinds()) {
    for (const size_t workers : {size_t{0}, size_t{2}, size_t{4}}) {
      SCOPED_TRACE(std::string(PrefetchBackendKindToString(kind)) +
                   " workers=" + std::to_string(workers));
      const double sum = run(kind, workers);
      EXPECT_EQ(std::memcmp(&sum, &reference, sizeof(sum)), 0)
          << sum << " vs " << reference;
    }
  }
}

TEST_F(PrefetchBackendTest, ProbeRestoresGlobalExecCounters) {
  ResetPrefetchProbeCacheForTesting();
  ExecCounters marker;
  marker.evictions = 123;
  marker.prefetches = 456;
  const ExecCounters before_probe = GlobalExecCounters();
  AddExecCounters(marker);
  const ExecCounters tagged = GlobalExecCounters();

  MemoryMappedFile mapped = MakeMapped("probe.bin", 512 << 10);
  const PrefetchProbeResult result = ProbePrefetchEfficacy(mapped);
  // Whatever evictions/reads the probe performed are measurement plumbing:
  // the process-wide counters are exactly what they were before it ran.
  const ExecCounters after = GlobalExecCounters();
  EXPECT_EQ(after.evictions, tagged.evictions);
  EXPECT_EQ(after.prefetches, tagged.prefetches);
  EXPECT_EQ(after.bytes_evicted, tagged.bytes_evicted);

  // The verdict recommends something constructible.
  EXPECT_NE(result.recommended, PrefetchBackendKind::kAuto);
  // And it is cached: a second call returns the same verdict.
  const PrefetchProbeResult again = ProbePrefetchEfficacy(mapped);
  EXPECT_EQ(again.willneed_effective, result.willneed_effective);
  EXPECT_EQ(again.recommended, result.recommended);

  // Restore the counters this test's own marker perturbed.
  SetExecCounters(before_probe);
  ResetPrefetchProbeCacheForTesting();
}

TEST_F(PrefetchBackendTest, AutoResolvesToConstructibleBackend) {
  ResetPrefetchProbeCacheForTesting();
  MemoryMappedFile mapped = MakeMapped("auto.bin", 512 << 10);
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kAuto,
                                     PrefetchBackendOptions(), &mapped);
  ASSERT_NE(backend, nullptr);
  EXPECT_NE(backend->kind(), PrefetchBackendKind::kAuto);
  auto outcome = backend->Prefetch(mapped, 0, mapped.size());
  EXPECT_TRUE(outcome.ok());
  ResetPrefetchProbeCacheForTesting();
}

TEST(UringAvailabilityTest, CompiledOutImpliesUnavailable) {
  if (!UringCompiledIn()) {
    EXPECT_FALSE(UringAvailable());
  }
}

}  // namespace
}  // namespace m3::io
