#include "io/io_stats.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "io/platform.h"
#include "util/sys_info.h"

namespace m3::io {
namespace {

TEST(IoStatsTest, ReadIoCountersParses) {
  auto counters = ReadIoCounters();
  ASSERT_TRUE(counters.ok()) << counters.status().ToString();
  if (!GetPlatformCapabilities().proc_io_counters_live) {
    GTEST_SKIP() << "kernel serves static /proc/self/io (sandbox)";
  }
  // We have certainly issued some read syscalls by now.
  EXPECT_GT(counters.value().syscr, 0u);
}

TEST(IoStatsTest, CountersDeltaIsNonNegativeAndMonotone) {
  if (!GetPlatformCapabilities().proc_io_counters_live) {
    GTEST_SKIP() << "kernel serves static /proc/self/io (sandbox)";
  }
  auto before = ReadIoCounters().ValueOrDie();
  // Generate some syscall traffic.
  for (int i = 0; i < 10; ++i) {
    ReadIoCounters().ValueOrDie();
  }
  auto after = ReadIoCounters().ValueOrDie();
  IoCounters delta = after - before;
  EXPECT_GT(delta.syscr, 0u);
  EXPECT_GE(after.rchar, before.rchar);
}

TEST(IoStatsTest, FaultCountersIncreaseWhenTouchingNewMemory) {
  if (!GetPlatformCapabilities().rusage_tracks_faults) {
    GTEST_SKIP() << "kernel does not account minor faults (sandbox)";
  }
  FaultCounters before = ReadFaultCounters();
  // Touch 16 MiB of fresh pages -> minor faults.
  std::vector<char> block(16 << 20);
  for (size_t i = 0; i < block.size(); i += util::PageSize()) {
    block[i] = 1;
  }
  FaultCounters after = ReadFaultCounters();
  EXPECT_GT(after.minor, before.minor);
}

TEST(IoStatsTest, PlatformCapabilitiesProbeIsStableAndPrintable) {
  const PlatformCapabilities& a = GetPlatformCapabilities();
  const PlatformCapabilities& b = GetPlatformCapabilities();
  EXPECT_EQ(&a, &b);  // cached singleton
  EXPECT_NE(a.ToString().find("mincore_tracks_eviction="), std::string::npos);
}

TEST(IoStatsTest, ProcessCpuSecondsAdvancesUnderLoad) {
  const double before = ProcessCpuSeconds();
  volatile double sink = 0;
  for (int i = 0; i < 20000000; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  const double after = ProcessCpuSeconds();
  EXPECT_GT(after, before);
}

TEST(IoStatsTest, ResourceSampleDeltaHasPositiveWall) {
  ResourceSample before = ResourceSample::Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ResourceSample delta = ResourceSample::Now() - before;
  EXPECT_GT(delta.wall_seconds, 0.01);
  EXPECT_GE(delta.cpu_seconds, 0.0);
}

TEST(IoStatsTest, CpuUtilizationBoundedByOne) {
  ResourceSample before = ResourceSample::Now();
  volatile double sink = 0;
  for (int i = 0; i < 20000000; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  ResourceSample delta = ResourceSample::Now() - before;
  const double util = delta.CpuUtilization(util::NumCpus());
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.5);  // allow scheduler noise above 1.0 per-core
}

TEST(IoStatsTest, UtilizationZeroCases) {
  ResourceSample zero;
  EXPECT_DOUBLE_EQ(zero.CpuUtilization(4), 0.0);
  EXPECT_DOUBLE_EQ(zero.ReadBandwidth(), 0.0);
  ResourceSample some;
  some.wall_seconds = 1.0;
  EXPECT_DOUBLE_EQ(some.CpuUtilization(0), 0.0);
}

// The quiescence contract (io_stats.h): concurrent pipeline passes nest
// freely — Reset/Set only CHECK against *in-flight* passes — and every
// pass's AddExecCounters lands exactly once in the global totals no
// matter how the pass guards interleave. Sanitizer-friendly sizes: 8
// threads x 16 passes is enough for TSan to see the interleavings.
TEST(IoStatsTest, ConcurrentExecCounterPassesAllLandExactlyOnce) {
  ASSERT_EQ(ActiveExecCountersPasses(), 0u);
  const ExecCounters baseline = GlobalExecCounters();
  constexpr int kThreads = 8;
  constexpr int kPassesPerThread = 16;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int p = 0; p < kPassesPerThread; ++p) {
        ScopedExecCountersPass guard;
        EXPECT_GE(ActiveExecCountersPasses(), 1u);
        ExecCounters delta;
        delta.passes = 1;
        delta.chunks = 3;
        delta.prefetch_bytes = 4096;
        AddExecCounters(delta);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ActiveExecCountersPasses(), 0u);
  const ExecCounters delta = GlobalExecCounters() - baseline;
  EXPECT_EQ(delta.passes, uint64_t{kThreads * kPassesPerThread});
  EXPECT_EQ(delta.chunks, uint64_t{3 * kThreads * kPassesPerThread});
  EXPECT_EQ(delta.prefetch_bytes, uint64_t{4096 * kThreads * kPassesPerThread});
  // Quiescent again: snapshot-restore is legal and restores the baseline.
  SetExecCounters(baseline);
  const ExecCounters restored = GlobalExecCounters() - baseline;
  EXPECT_EQ(restored.passes, 0u);
}

// Reset/Set while a pass is in flight must abort loudly (M3_CHECK) rather
// than silently corrupt the totals a mid-pass Add would stack on top of
// the overwritten value.
TEST(IoStatsDeathTest, ResetWhilePassInFlightAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_DEATH(
      {
        ScopedExecCountersPass guard;
        ResetExecCounters();
      },
      "pipeline pass\\(es\\) in flight");
  EXPECT_DEATH(
      {
        ScopedExecCountersPass guard;
        SetExecCounters(ExecCounters());
      },
      "pipeline pass\\(es\\) in flight");
}

TEST(IoStatsTest, ToStringsContainKeyFields) {
  IoCounters io;
  io.read_bytes = 1024;
  EXPECT_NE(io.ToString().find("read=1.00 KiB"), std::string::npos);
  FaultCounters faults{3, 1};
  EXPECT_NE(faults.ToString().find("major=1"), std::string::npos);
  ResourceSample sample = ResourceSample::Now();
  EXPECT_NE(sample.ToString().find("wall="), std::string::npos);
}

}  // namespace
}  // namespace m3::io
