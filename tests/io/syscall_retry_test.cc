// Regression suite for the raw-syscall edges of the io layer, driven
// through the io::testing injection seam: EINTR and short transfers must
// be retried to full length (File::ReadExactAt/WriteExactAt and the pread
// prefetch backend), a zero-byte pwrite must fail instead of looping
// forever, and a failed munmap must still close the backing fd and leave
// the mapping object inert (no dangling addr_, idempotent Unmap).

#include "io/syscall_injection.h"

#include <gtest/gtest.h>

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "io/buffered_io.h"
#include "io/file.h"
#include "io/mmap_file.h"
#include "io/prefetch_backend.h"

namespace m3::io {
namespace {

// Injection state; the overrides are plain function pointers, so the knobs
// live in file-scope globals reset by the guard below.
int g_pread_calls = 0;
int g_pwrite_calls = 0;
int g_munmap_fails_remaining = 0;

/// Restores every override (tests must never leak a fake syscall).
struct InjectionGuard {
  ~InjectionGuard() {
    testing::SetPreadOverride(nullptr);
    testing::SetPwriteOverride(nullptr);
    testing::SetMunmapOverride(nullptr);
  }
};

/// Every third call is interrupted; the rest transfer at most 3 bytes.
ssize_t FlakyShortPread(int fd, void* buf, size_t count, off_t offset) {
  ++g_pread_calls;
  if (g_pread_calls % 3 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::pread(fd, buf, std::min<size_t>(count, 3), offset);
}

ssize_t FlakyShortPwrite(int fd, const void* buf, size_t count, off_t offset) {
  ++g_pwrite_calls;
  if (g_pwrite_calls % 3 == 1) {
    errno = EINTR;
    return -1;
  }
  return ::pwrite(fd, buf, std::min<size_t>(count, 3), offset);
}

ssize_t ZeroPwrite(int, const void*, size_t, off_t) { return 0; }

int FailingMunmap(void* addr, size_t length) {
  if (g_munmap_fails_remaining > 0) {
    --g_munmap_fails_remaining;
    errno = EPERM;
    return -1;
  }
  return ::munmap(addr, length);
}

class SyscallRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/m3_syscall_retry_" +
           std::to_string(::getpid());
    ASSERT_TRUE(MakeDirs(dir_).ok());
    g_pread_calls = 0;
    g_pwrite_calls = 0;
    g_munmap_fails_remaining = 0;
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  /// Writes `bytes` through the REAL syscalls (no override installed yet).
  void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
    auto file = File::CreateTruncate(path).ValueOrDie();
    ASSERT_TRUE(file.WriteExactAt(0, bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(file.Close().ok());
  }

  std::string dir_;
  InjectionGuard guard_;
};

TEST_F(SyscallRetryTest, ReadExactAtRetriesEintrAndShortReads) {
  std::vector<uint8_t> expected(257);
  for (size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<uint8_t>(i * 7 + 1);
  }
  const std::string path = Path("short_reads.bin");
  WriteFile(path, expected);

  testing::SetPreadOverride(&FlakyShortPread);
  auto file = File::OpenReadOnly(path).ValueOrDie();
  std::vector<uint8_t> got(expected.size(), 0);
  ASSERT_TRUE(file.ReadExactAt(0, got.data(), got.size()).ok());
  EXPECT_EQ(got, expected);
  // 3-byte transfers with every third call interrupted: the loop really
  // iterated (this is the regression the seam exists to pin).
  EXPECT_GT(g_pread_calls, static_cast<int>(expected.size() / 3));
  testing::SetPreadOverride(nullptr);
}

TEST_F(SyscallRetryTest, ReadExactAtReportsEofOnTruncatedFile) {
  const std::string path = Path("truncated.bin");
  WriteFile(path, std::vector<uint8_t>(16, 0xAB));

  testing::SetPreadOverride(&FlakyShortPread);
  auto file = File::OpenReadOnly(path).ValueOrDie();
  std::vector<uint8_t> got(32, 0);
  const util::Status status = file.ReadExactAt(0, got.data(), got.size());
  EXPECT_FALSE(status.ok());  // EOF mid-transfer is an error, not a hang
  testing::SetPreadOverride(nullptr);
}

TEST_F(SyscallRetryTest, WriteExactAtRetriesEintrAndShortWrites) {
  std::vector<uint8_t> payload(201);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(255 - i % 251);
  }
  const std::string path = Path("short_writes.bin");

  testing::SetPwriteOverride(&FlakyShortPwrite);
  {
    auto file = File::CreateTruncate(path).ValueOrDie();
    ASSERT_TRUE(file.WriteExactAt(0, payload.data(), payload.size()).ok());
    ASSERT_TRUE(file.Close().ok());
  }
  testing::SetPwriteOverride(nullptr);
  EXPECT_GT(g_pwrite_calls, static_cast<int>(payload.size() / 3));

  auto file = File::OpenReadOnly(path).ValueOrDie();
  std::vector<uint8_t> got(payload.size(), 0);
  ASSERT_TRUE(file.ReadExactAt(0, got.data(), got.size()).ok());
  EXPECT_EQ(got, payload);
}

TEST_F(SyscallRetryTest, ZeroByteWriteFailsInsteadOfLooping) {
  testing::SetPwriteOverride(&ZeroPwrite);
  auto file = File::CreateTruncate(Path("zero_write.bin")).ValueOrDie();
  const uint8_t byte = 1;
  const util::Status status = file.WriteExactAt(0, &byte, 1);
  EXPECT_FALSE(status.ok());
  testing::SetPwriteOverride(nullptr);
}

TEST_F(SyscallRetryTest, PreadBackendSurvivesEintrAndShortReads) {
  const size_t bytes = 64 << 10;
  const std::string path = Path("prefetch.bin");
  WriteFile(path, std::vector<uint8_t>(bytes, 0x5A));
  auto mapping = MemoryMappedFile::Map(path).ValueOrDie();

  testing::SetPreadOverride(&FlakyShortPread);
  auto backend = MakePrefetchBackend(PrefetchBackendKind::kPread);
  auto outcome = backend->Prefetch(mapping, 0, bytes).ValueOrDie();
  testing::SetPreadOverride(nullptr);

  EXPECT_GT(outcome.submits, 0u);
  EXPECT_EQ(outcome.completions, outcome.submits);
  EXPECT_EQ(outcome.fallbacks, 0u);
}

TEST_F(SyscallRetryTest, FailedUnmapStillClosesFileAndStaysIdempotent) {
  const std::string path = Path("unmap.bin");
  WriteFile(path, std::vector<uint8_t>(4096, 0x11));
  auto mapping = MemoryMappedFile::Map(path).ValueOrDie();
  ASSERT_TRUE(mapping.is_mapped());

  g_munmap_fails_remaining = 1;
  testing::SetMunmapOverride(&FailingMunmap);
  const util::Status status = mapping.Unmap();
  EXPECT_FALSE(status.ok());  // the munmap failure is reported...
  EXPECT_FALSE(mapping.is_mapped());  // ...but no dangling mapping pointer
  // ...and the backing fd is closed, so a second Unmap is a clean no-op.
  EXPECT_TRUE(mapping.Unmap().ok());
  testing::SetMunmapOverride(nullptr);
}

TEST_F(SyscallRetryTest, FileDoubleCloseIsOk) {
  auto file = File::CreateTruncate(Path("double_close.bin")).ValueOrDie();
  EXPECT_TRUE(file.Close().ok());
  EXPECT_FALSE(file.is_open());
  EXPECT_TRUE(file.Close().ok());  // never a close(2) on a reused fd
}

TEST_F(SyscallRetryTest, BufferedWriterDoubleCloseIsOk) {
  auto writer = BufferedWriter::Create(Path("writer.bin"), 64).ValueOrDie();
  const uint64_t value = 42;
  ASSERT_TRUE(writer.AppendValue(value).ok());
  EXPECT_TRUE(writer.Close().ok());
  EXPECT_TRUE(writer.Close().ok());  // second close skips the flush path
}

}  // namespace
}  // namespace m3::io
